/root/repo/target/release/examples/quickstart-28f6e13d481d22a6.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-28f6e13d481d22a6: examples/quickstart.rs

examples/quickstart.rs:
