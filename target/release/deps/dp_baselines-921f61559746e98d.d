/root/repo/target/release/deps/dp_baselines-921f61559746e98d.d: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/crew.rs crates/baselines/src/driver.rs crates/baselines/src/uniproc.rs crates/baselines/src/value_log.rs

/root/repo/target/release/deps/libdp_baselines-921f61559746e98d.rlib: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/crew.rs crates/baselines/src/driver.rs crates/baselines/src/uniproc.rs crates/baselines/src/value_log.rs

/root/repo/target/release/deps/libdp_baselines-921f61559746e98d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/crew.rs crates/baselines/src/driver.rs crates/baselines/src/uniproc.rs crates/baselines/src/value_log.rs

crates/baselines/src/lib.rs:
crates/baselines/src/common.rs:
crates/baselines/src/crew.rs:
crates/baselines/src/driver.rs:
crates/baselines/src/uniproc.rs:
crates/baselines/src/value_log.rs:
