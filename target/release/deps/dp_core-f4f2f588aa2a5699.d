/root/repo/target/release/deps/dp_core-f4f2f588aa2a5699.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/faults.rs crates/core/src/logs/mod.rs crates/core/src/logs/codec.rs crates/core/src/logs/schedule.rs crates/core/src/logs/syscalls.rs crates/core/src/record/mod.rs crates/core/src/record/coordinator.rs crates/core/src/record/epoch_parallel.rs crates/core/src/record/interleave.rs crates/core/src/record/pipeline.rs crates/core/src/record/thread_parallel.rs crates/core/src/recording.rs crates/core/src/replay.rs crates/core/src/stats.rs crates/core/src/world.rs

/root/repo/target/release/deps/libdp_core-f4f2f588aa2a5699.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/faults.rs crates/core/src/logs/mod.rs crates/core/src/logs/codec.rs crates/core/src/logs/schedule.rs crates/core/src/logs/syscalls.rs crates/core/src/record/mod.rs crates/core/src/record/coordinator.rs crates/core/src/record/epoch_parallel.rs crates/core/src/record/interleave.rs crates/core/src/record/pipeline.rs crates/core/src/record/thread_parallel.rs crates/core/src/recording.rs crates/core/src/replay.rs crates/core/src/stats.rs crates/core/src/world.rs

/root/repo/target/release/deps/libdp_core-f4f2f588aa2a5699.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/faults.rs crates/core/src/logs/mod.rs crates/core/src/logs/codec.rs crates/core/src/logs/schedule.rs crates/core/src/logs/syscalls.rs crates/core/src/record/mod.rs crates/core/src/record/coordinator.rs crates/core/src/record/epoch_parallel.rs crates/core/src/record/interleave.rs crates/core/src/record/pipeline.rs crates/core/src/record/thread_parallel.rs crates/core/src/recording.rs crates/core/src/replay.rs crates/core/src/stats.rs crates/core/src/world.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/faults.rs:
crates/core/src/logs/mod.rs:
crates/core/src/logs/codec.rs:
crates/core/src/logs/schedule.rs:
crates/core/src/logs/syscalls.rs:
crates/core/src/record/mod.rs:
crates/core/src/record/coordinator.rs:
crates/core/src/record/epoch_parallel.rs:
crates/core/src/record/interleave.rs:
crates/core/src/record/pipeline.rs:
crates/core/src/record/thread_parallel.rs:
crates/core/src/recording.rs:
crates/core/src/replay.rs:
crates/core/src/stats.rs:
crates/core/src/world.rs:
