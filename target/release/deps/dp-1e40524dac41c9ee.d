/root/repo/target/release/deps/dp-1e40524dac41c9ee.d: src/bin/dp.rs

/root/repo/target/release/deps/dp-1e40524dac41c9ee: src/bin/dp.rs

src/bin/dp.rs:
