/root/repo/target/release/deps/diag-ede2a6335b5cef8d.d: crates/bench/src/bin/diag.rs

/root/repo/target/release/deps/diag-ede2a6335b5cef8d: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
