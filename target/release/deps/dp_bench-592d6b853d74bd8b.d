/root/repo/target/release/deps/dp_bench-592d6b853d74bd8b.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs crates/bench/src/walltime.rs

/root/repo/target/release/deps/libdp_bench-592d6b853d74bd8b.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs crates/bench/src/walltime.rs

/root/repo/target/release/deps/libdp_bench-592d6b853d74bd8b.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs crates/bench/src/walltime.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
crates/bench/src/walltime.rs:
