/root/repo/target/release/deps/doubleplay-3e8858a8b595c8d6.d: src/lib.rs

/root/repo/target/release/deps/libdoubleplay-3e8858a8b595c8d6.rlib: src/lib.rs

/root/repo/target/release/deps/libdoubleplay-3e8858a8b595c8d6.rmeta: src/lib.rs

src/lib.rs:
