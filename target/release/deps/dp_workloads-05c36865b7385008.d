/root/repo/target/release/deps/dp_workloads-05c36865b7385008.d: crates/workloads/src/lib.rs crates/workloads/src/aget.rs crates/workloads/src/gbuild.rs crates/workloads/src/harness.rs crates/workloads/src/kvstore.rs crates/workloads/src/ocean.rs crates/workloads/src/pcomp.rs crates/workloads/src/pfscan.rs crates/workloads/src/racey.rs crates/workloads/src/radix.rs crates/workloads/src/water.rs crates/workloads/src/webserve.rs

/root/repo/target/release/deps/libdp_workloads-05c36865b7385008.rlib: crates/workloads/src/lib.rs crates/workloads/src/aget.rs crates/workloads/src/gbuild.rs crates/workloads/src/harness.rs crates/workloads/src/kvstore.rs crates/workloads/src/ocean.rs crates/workloads/src/pcomp.rs crates/workloads/src/pfscan.rs crates/workloads/src/racey.rs crates/workloads/src/radix.rs crates/workloads/src/water.rs crates/workloads/src/webserve.rs

/root/repo/target/release/deps/libdp_workloads-05c36865b7385008.rmeta: crates/workloads/src/lib.rs crates/workloads/src/aget.rs crates/workloads/src/gbuild.rs crates/workloads/src/harness.rs crates/workloads/src/kvstore.rs crates/workloads/src/ocean.rs crates/workloads/src/pcomp.rs crates/workloads/src/pfscan.rs crates/workloads/src/racey.rs crates/workloads/src/radix.rs crates/workloads/src/water.rs crates/workloads/src/webserve.rs

crates/workloads/src/lib.rs:
crates/workloads/src/aget.rs:
crates/workloads/src/gbuild.rs:
crates/workloads/src/harness.rs:
crates/workloads/src/kvstore.rs:
crates/workloads/src/ocean.rs:
crates/workloads/src/pcomp.rs:
crates/workloads/src/pfscan.rs:
crates/workloads/src/racey.rs:
crates/workloads/src/radix.rs:
crates/workloads/src/water.rs:
crates/workloads/src/webserve.rs:
