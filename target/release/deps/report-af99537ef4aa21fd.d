/root/repo/target/release/deps/report-af99537ef4aa21fd.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-af99537ef4aa21fd: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
