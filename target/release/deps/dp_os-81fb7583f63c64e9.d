/root/repo/target/release/deps/dp_os-81fb7583f63c64e9.d: crates/os/src/lib.rs crates/os/src/abi.rs crates/os/src/cost.rs crates/os/src/exec.rs crates/os/src/faults.rs crates/os/src/fs.rs crates/os/src/guest.rs crates/os/src/kernel.rs crates/os/src/net.rs

/root/repo/target/release/deps/libdp_os-81fb7583f63c64e9.rlib: crates/os/src/lib.rs crates/os/src/abi.rs crates/os/src/cost.rs crates/os/src/exec.rs crates/os/src/faults.rs crates/os/src/fs.rs crates/os/src/guest.rs crates/os/src/kernel.rs crates/os/src/net.rs

/root/repo/target/release/deps/libdp_os-81fb7583f63c64e9.rmeta: crates/os/src/lib.rs crates/os/src/abi.rs crates/os/src/cost.rs crates/os/src/exec.rs crates/os/src/faults.rs crates/os/src/fs.rs crates/os/src/guest.rs crates/os/src/kernel.rs crates/os/src/net.rs

crates/os/src/lib.rs:
crates/os/src/abi.rs:
crates/os/src/cost.rs:
crates/os/src/exec.rs:
crates/os/src/faults.rs:
crates/os/src/fs.rs:
crates/os/src/guest.rs:
crates/os/src/kernel.rs:
crates/os/src/net.rs:
