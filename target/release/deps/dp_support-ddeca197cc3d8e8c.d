/root/repo/target/release/deps/dp_support-ddeca197cc3d8e8c.d: crates/support/src/lib.rs crates/support/src/check.rs crates/support/src/crc32.rs crates/support/src/rng.rs crates/support/src/wire.rs

/root/repo/target/release/deps/libdp_support-ddeca197cc3d8e8c.rlib: crates/support/src/lib.rs crates/support/src/check.rs crates/support/src/crc32.rs crates/support/src/rng.rs crates/support/src/wire.rs

/root/repo/target/release/deps/libdp_support-ddeca197cc3d8e8c.rmeta: crates/support/src/lib.rs crates/support/src/check.rs crates/support/src/crc32.rs crates/support/src/rng.rs crates/support/src/wire.rs

crates/support/src/lib.rs:
crates/support/src/check.rs:
crates/support/src/crc32.rs:
crates/support/src/rng.rs:
crates/support/src/wire.rs:
