/root/repo/target/debug/deps/interpreter-e759fca47199083a.d: crates/bench/benches/interpreter.rs Cargo.toml

/root/repo/target/debug/deps/libinterpreter-e759fca47199083a.rmeta: crates/bench/benches/interpreter.rs Cargo.toml

crates/bench/benches/interpreter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
