/root/repo/target/debug/deps/diag-3ed56fd208358e52.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-3ed56fd208358e52: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
