/root/repo/target/debug/deps/dp-8ab47b76cdc8ce81.d: src/bin/dp.rs

/root/repo/target/debug/deps/dp-8ab47b76cdc8ce81: src/bin/dp.rs

src/bin/dp.rs:
