/root/repo/target/debug/deps/doubleplay-6ad1adf19fabb0c9.d: src/lib.rs

/root/repo/target/debug/deps/doubleplay-6ad1adf19fabb0c9: src/lib.rs

src/lib.rs:
