/root/repo/target/debug/deps/doubleplay-9f95782aedaa2e96.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdoubleplay-9f95782aedaa2e96.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
