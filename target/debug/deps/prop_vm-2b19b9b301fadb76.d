/root/repo/target/debug/deps/prop_vm-2b19b9b301fadb76.d: crates/vm/tests/prop_vm.rs Cargo.toml

/root/repo/target/debug/deps/libprop_vm-2b19b9b301fadb76.rmeta: crates/vm/tests/prop_vm.rs Cargo.toml

crates/vm/tests/prop_vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
