/root/repo/target/debug/deps/record-b300e4f96ffb22a5.d: crates/bench/benches/record.rs

/root/repo/target/debug/deps/record-b300e4f96ffb22a5: crates/bench/benches/record.rs

crates/bench/benches/record.rs:
