/root/repo/target/debug/deps/dp_bench-bf05e442801a91e4.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs crates/bench/src/walltime.rs

/root/repo/target/debug/deps/libdp_bench-bf05e442801a91e4.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs crates/bench/src/walltime.rs

/root/repo/target/debug/deps/libdp_bench-bf05e442801a91e4.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs crates/bench/src/walltime.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
crates/bench/src/walltime.rs:
