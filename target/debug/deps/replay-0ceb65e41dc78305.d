/root/repo/target/debug/deps/replay-0ceb65e41dc78305.d: crates/bench/benches/replay.rs Cargo.toml

/root/repo/target/debug/deps/libreplay-0ceb65e41dc78305.rmeta: crates/bench/benches/replay.rs Cargo.toml

crates/bench/benches/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
