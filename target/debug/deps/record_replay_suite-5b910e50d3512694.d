/root/repo/target/debug/deps/record_replay_suite-5b910e50d3512694.d: tests/record_replay_suite.rs

/root/repo/target/debug/deps/record_replay_suite-5b910e50d3512694: tests/record_replay_suite.rs

tests/record_replay_suite.rs:
