/root/repo/target/debug/deps/dp_bench-8566bdd568bf290d.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs crates/bench/src/walltime.rs

/root/repo/target/debug/deps/dp_bench-8566bdd568bf290d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs crates/bench/src/walltime.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
crates/bench/src/walltime.rs:
