/root/repo/target/debug/deps/baselines-4aecafbb962b811f.d: crates/bench/benches/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-4aecafbb962b811f.rmeta: crates/bench/benches/baselines.rs Cargo.toml

crates/bench/benches/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
