/root/repo/target/debug/deps/diag-75ef2004d16ae5a3.d: crates/bench/src/bin/diag.rs Cargo.toml

/root/repo/target/debug/deps/libdiag-75ef2004d16ae5a3.rmeta: crates/bench/src/bin/diag.rs Cargo.toml

crates/bench/src/bin/diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
