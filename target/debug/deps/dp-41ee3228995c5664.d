/root/repo/target/debug/deps/dp-41ee3228995c5664.d: src/bin/dp.rs Cargo.toml

/root/repo/target/debug/deps/libdp-41ee3228995c5664.rmeta: src/bin/dp.rs Cargo.toml

src/bin/dp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
