/root/repo/target/debug/deps/doubleplay-ab9345aee2249f1f.d: src/lib.rs

/root/repo/target/debug/deps/libdoubleplay-ab9345aee2249f1f.rlib: src/lib.rs

/root/repo/target/debug/deps/libdoubleplay-ab9345aee2249f1f.rmeta: src/lib.rs

src/lib.rs:
