/root/repo/target/debug/deps/record-276213c260877333.d: crates/bench/benches/record.rs Cargo.toml

/root/repo/target/debug/deps/librecord-276213c260877333.rmeta: crates/bench/benches/record.rs Cargo.toml

crates/bench/benches/record.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
