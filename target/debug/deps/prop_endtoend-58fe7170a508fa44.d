/root/repo/target/debug/deps/prop_endtoend-58fe7170a508fa44.d: tests/prop_endtoend.rs

/root/repo/target/debug/deps/prop_endtoend-58fe7170a508fa44: tests/prop_endtoend.rs

tests/prop_endtoend.rs:
