/root/repo/target/debug/deps/dp_os-f9257ba01f9d6014.d: crates/os/src/lib.rs crates/os/src/abi.rs crates/os/src/cost.rs crates/os/src/exec.rs crates/os/src/faults.rs crates/os/src/fs.rs crates/os/src/guest.rs crates/os/src/kernel.rs crates/os/src/net.rs

/root/repo/target/debug/deps/dp_os-f9257ba01f9d6014: crates/os/src/lib.rs crates/os/src/abi.rs crates/os/src/cost.rs crates/os/src/exec.rs crates/os/src/faults.rs crates/os/src/fs.rs crates/os/src/guest.rs crates/os/src/kernel.rs crates/os/src/net.rs

crates/os/src/lib.rs:
crates/os/src/abi.rs:
crates/os/src/cost.rs:
crates/os/src/exec.rs:
crates/os/src/faults.rs:
crates/os/src/fs.rs:
crates/os/src/guest.rs:
crates/os/src/kernel.rs:
crates/os/src/net.rs:
