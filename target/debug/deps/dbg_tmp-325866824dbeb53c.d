/root/repo/target/debug/deps/dbg_tmp-325866824dbeb53c.d: crates/core/tests/dbg_tmp.rs

/root/repo/target/debug/deps/dbg_tmp-325866824dbeb53c: crates/core/tests/dbg_tmp.rs

crates/core/tests/dbg_tmp.rs:
