/root/repo/target/debug/deps/dp_vm-7bdc1968c1b9182f.d: crates/vm/src/lib.rs crates/vm/src/asm.rs crates/vm/src/builder.rs crates/vm/src/disasm.rs crates/vm/src/error.rs crates/vm/src/hash.rs crates/vm/src/instr.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/observer.rs crates/vm/src/program.rs crates/vm/src/thread.rs crates/vm/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libdp_vm-7bdc1968c1b9182f.rmeta: crates/vm/src/lib.rs crates/vm/src/asm.rs crates/vm/src/builder.rs crates/vm/src/disasm.rs crates/vm/src/error.rs crates/vm/src/hash.rs crates/vm/src/instr.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/observer.rs crates/vm/src/program.rs crates/vm/src/thread.rs crates/vm/src/value.rs Cargo.toml

crates/vm/src/lib.rs:
crates/vm/src/asm.rs:
crates/vm/src/builder.rs:
crates/vm/src/disasm.rs:
crates/vm/src/error.rs:
crates/vm/src/hash.rs:
crates/vm/src/instr.rs:
crates/vm/src/machine.rs:
crates/vm/src/memory.rs:
crates/vm/src/observer.rs:
crates/vm/src/program.rs:
crates/vm/src/thread.rs:
crates/vm/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
