/root/repo/target/debug/deps/prop_endtoend-d2c3cc883edb262a.d: tests/prop_endtoend.rs Cargo.toml

/root/repo/target/debug/deps/libprop_endtoend-d2c3cc883edb262a.rmeta: tests/prop_endtoend.rs Cargo.toml

tests/prop_endtoend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
