/root/repo/target/debug/deps/signals_and_persistence-14ac07a9d9503379.d: tests/signals_and_persistence.rs Cargo.toml

/root/repo/target/debug/deps/libsignals_and_persistence-14ac07a9d9503379.rmeta: tests/signals_and_persistence.rs Cargo.toml

tests/signals_and_persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
