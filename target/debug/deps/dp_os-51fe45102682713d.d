/root/repo/target/debug/deps/dp_os-51fe45102682713d.d: crates/os/src/lib.rs crates/os/src/abi.rs crates/os/src/cost.rs crates/os/src/exec.rs crates/os/src/faults.rs crates/os/src/fs.rs crates/os/src/guest.rs crates/os/src/kernel.rs crates/os/src/net.rs Cargo.toml

/root/repo/target/debug/deps/libdp_os-51fe45102682713d.rmeta: crates/os/src/lib.rs crates/os/src/abi.rs crates/os/src/cost.rs crates/os/src/exec.rs crates/os/src/faults.rs crates/os/src/fs.rs crates/os/src/guest.rs crates/os/src/kernel.rs crates/os/src/net.rs Cargo.toml

crates/os/src/lib.rs:
crates/os/src/abi.rs:
crates/os/src/cost.rs:
crates/os/src/exec.rs:
crates/os/src/faults.rs:
crates/os/src/fs.rs:
crates/os/src/guest.rs:
crates/os/src/kernel.rs:
crates/os/src/net.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
