/root/repo/target/debug/deps/dp_baselines-887512a85922b956.d: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/crew.rs crates/baselines/src/driver.rs crates/baselines/src/uniproc.rs crates/baselines/src/value_log.rs Cargo.toml

/root/repo/target/debug/deps/libdp_baselines-887512a85922b956.rmeta: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/crew.rs crates/baselines/src/driver.rs crates/baselines/src/uniproc.rs crates/baselines/src/value_log.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/common.rs:
crates/baselines/src/crew.rs:
crates/baselines/src/driver.rs:
crates/baselines/src/uniproc.rs:
crates/baselines/src/value_log.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
