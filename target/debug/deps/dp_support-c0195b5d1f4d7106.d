/root/repo/target/debug/deps/dp_support-c0195b5d1f4d7106.d: crates/support/src/lib.rs crates/support/src/check.rs crates/support/src/crc32.rs crates/support/src/rng.rs crates/support/src/wire.rs

/root/repo/target/debug/deps/libdp_support-c0195b5d1f4d7106.rlib: crates/support/src/lib.rs crates/support/src/check.rs crates/support/src/crc32.rs crates/support/src/rng.rs crates/support/src/wire.rs

/root/repo/target/debug/deps/libdp_support-c0195b5d1f4d7106.rmeta: crates/support/src/lib.rs crates/support/src/check.rs crates/support/src/crc32.rs crates/support/src/rng.rs crates/support/src/wire.rs

crates/support/src/lib.rs:
crates/support/src/check.rs:
crates/support/src/crc32.rs:
crates/support/src/rng.rs:
crates/support/src/wire.rs:
