/root/repo/target/debug/deps/replay-44271d436d799666.d: crates/bench/benches/replay.rs

/root/repo/target/debug/deps/replay-44271d436d799666: crates/bench/benches/replay.rs

crates/bench/benches/replay.rs:
