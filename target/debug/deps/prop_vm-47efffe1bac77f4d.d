/root/repo/target/debug/deps/prop_vm-47efffe1bac77f4d.d: crates/vm/tests/prop_vm.rs

/root/repo/target/debug/deps/prop_vm-47efffe1bac77f4d: crates/vm/tests/prop_vm.rs

crates/vm/tests/prop_vm.rs:
