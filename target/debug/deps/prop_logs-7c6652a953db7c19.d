/root/repo/target/debug/deps/prop_logs-7c6652a953db7c19.d: crates/core/tests/prop_logs.rs

/root/repo/target/debug/deps/prop_logs-7c6652a953db7c19: crates/core/tests/prop_logs.rs

crates/core/tests/prop_logs.rs:
