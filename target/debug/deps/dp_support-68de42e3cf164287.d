/root/repo/target/debug/deps/dp_support-68de42e3cf164287.d: crates/support/src/lib.rs crates/support/src/check.rs crates/support/src/crc32.rs crates/support/src/rng.rs crates/support/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libdp_support-68de42e3cf164287.rmeta: crates/support/src/lib.rs crates/support/src/check.rs crates/support/src/crc32.rs crates/support/src/rng.rs crates/support/src/wire.rs Cargo.toml

crates/support/src/lib.rs:
crates/support/src/check.rs:
crates/support/src/crc32.rs:
crates/support/src/rng.rs:
crates/support/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
