/root/repo/target/debug/deps/prop_logs-8765e289d98e8c05.d: crates/core/tests/prop_logs.rs Cargo.toml

/root/repo/target/debug/deps/libprop_logs-8765e289d98e8c05.rmeta: crates/core/tests/prop_logs.rs Cargo.toml

crates/core/tests/prop_logs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
