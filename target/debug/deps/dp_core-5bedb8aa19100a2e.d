/root/repo/target/debug/deps/dp_core-5bedb8aa19100a2e.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/faults.rs crates/core/src/logs/mod.rs crates/core/src/logs/codec.rs crates/core/src/logs/schedule.rs crates/core/src/logs/syscalls.rs crates/core/src/record/mod.rs crates/core/src/record/coordinator.rs crates/core/src/record/epoch_parallel.rs crates/core/src/record/interleave.rs crates/core/src/record/pipeline.rs crates/core/src/record/thread_parallel.rs crates/core/src/recording.rs crates/core/src/replay.rs crates/core/src/stats.rs crates/core/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libdp_core-5bedb8aa19100a2e.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/faults.rs crates/core/src/logs/mod.rs crates/core/src/logs/codec.rs crates/core/src/logs/schedule.rs crates/core/src/logs/syscalls.rs crates/core/src/record/mod.rs crates/core/src/record/coordinator.rs crates/core/src/record/epoch_parallel.rs crates/core/src/record/interleave.rs crates/core/src/record/pipeline.rs crates/core/src/record/thread_parallel.rs crates/core/src/recording.rs crates/core/src/replay.rs crates/core/src/stats.rs crates/core/src/world.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/faults.rs:
crates/core/src/logs/mod.rs:
crates/core/src/logs/codec.rs:
crates/core/src/logs/schedule.rs:
crates/core/src/logs/syscalls.rs:
crates/core/src/record/mod.rs:
crates/core/src/record/coordinator.rs:
crates/core/src/record/epoch_parallel.rs:
crates/core/src/record/interleave.rs:
crates/core/src/record/pipeline.rs:
crates/core/src/record/thread_parallel.rs:
crates/core/src/recording.rs:
crates/core/src/replay.rs:
crates/core/src/stats.rs:
crates/core/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
