/root/repo/target/debug/deps/interpreter-4d3c3011d9b4954f.d: crates/bench/benches/interpreter.rs

/root/repo/target/debug/deps/interpreter-4d3c3011d9b4954f: crates/bench/benches/interpreter.rs

crates/bench/benches/interpreter.rs:
