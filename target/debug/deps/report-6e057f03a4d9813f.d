/root/repo/target/debug/deps/report-6e057f03a4d9813f.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-6e057f03a4d9813f: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
