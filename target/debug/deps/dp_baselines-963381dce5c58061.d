/root/repo/target/debug/deps/dp_baselines-963381dce5c58061.d: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/crew.rs crates/baselines/src/driver.rs crates/baselines/src/uniproc.rs crates/baselines/src/value_log.rs

/root/repo/target/debug/deps/libdp_baselines-963381dce5c58061.rlib: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/crew.rs crates/baselines/src/driver.rs crates/baselines/src/uniproc.rs crates/baselines/src/value_log.rs

/root/repo/target/debug/deps/libdp_baselines-963381dce5c58061.rmeta: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/crew.rs crates/baselines/src/driver.rs crates/baselines/src/uniproc.rs crates/baselines/src/value_log.rs

crates/baselines/src/lib.rs:
crates/baselines/src/common.rs:
crates/baselines/src/crew.rs:
crates/baselines/src/driver.rs:
crates/baselines/src/uniproc.rs:
crates/baselines/src/value_log.rs:
