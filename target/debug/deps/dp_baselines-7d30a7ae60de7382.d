/root/repo/target/debug/deps/dp_baselines-7d30a7ae60de7382.d: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/crew.rs crates/baselines/src/driver.rs crates/baselines/src/uniproc.rs crates/baselines/src/value_log.rs

/root/repo/target/debug/deps/dp_baselines-7d30a7ae60de7382: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/crew.rs crates/baselines/src/driver.rs crates/baselines/src/uniproc.rs crates/baselines/src/value_log.rs

crates/baselines/src/lib.rs:
crates/baselines/src/common.rs:
crates/baselines/src/crew.rs:
crates/baselines/src/driver.rs:
crates/baselines/src/uniproc.rs:
crates/baselines/src/value_log.rs:
