/root/repo/target/debug/deps/dp-21c6fcbe17547a67.d: src/bin/dp.rs Cargo.toml

/root/repo/target/debug/deps/libdp-21c6fcbe17547a67.rmeta: src/bin/dp.rs Cargo.toml

src/bin/dp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
