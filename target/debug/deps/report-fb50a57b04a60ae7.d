/root/repo/target/debug/deps/report-fb50a57b04a60ae7.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-fb50a57b04a60ae7: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
