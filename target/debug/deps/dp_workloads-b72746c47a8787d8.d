/root/repo/target/debug/deps/dp_workloads-b72746c47a8787d8.d: crates/workloads/src/lib.rs crates/workloads/src/aget.rs crates/workloads/src/gbuild.rs crates/workloads/src/harness.rs crates/workloads/src/kvstore.rs crates/workloads/src/ocean.rs crates/workloads/src/pcomp.rs crates/workloads/src/pfscan.rs crates/workloads/src/racey.rs crates/workloads/src/radix.rs crates/workloads/src/water.rs crates/workloads/src/webserve.rs Cargo.toml

/root/repo/target/debug/deps/libdp_workloads-b72746c47a8787d8.rmeta: crates/workloads/src/lib.rs crates/workloads/src/aget.rs crates/workloads/src/gbuild.rs crates/workloads/src/harness.rs crates/workloads/src/kvstore.rs crates/workloads/src/ocean.rs crates/workloads/src/pcomp.rs crates/workloads/src/pfscan.rs crates/workloads/src/racey.rs crates/workloads/src/radix.rs crates/workloads/src/water.rs crates/workloads/src/webserve.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/aget.rs:
crates/workloads/src/gbuild.rs:
crates/workloads/src/harness.rs:
crates/workloads/src/kvstore.rs:
crates/workloads/src/ocean.rs:
crates/workloads/src/pcomp.rs:
crates/workloads/src/pfscan.rs:
crates/workloads/src/racey.rs:
crates/workloads/src/radix.rs:
crates/workloads/src/water.rs:
crates/workloads/src/webserve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
