/root/repo/target/debug/deps/dp_vm-d1bd7958c9fe2dca.d: crates/vm/src/lib.rs crates/vm/src/asm.rs crates/vm/src/builder.rs crates/vm/src/disasm.rs crates/vm/src/error.rs crates/vm/src/hash.rs crates/vm/src/instr.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/observer.rs crates/vm/src/program.rs crates/vm/src/thread.rs crates/vm/src/value.rs

/root/repo/target/debug/deps/libdp_vm-d1bd7958c9fe2dca.rlib: crates/vm/src/lib.rs crates/vm/src/asm.rs crates/vm/src/builder.rs crates/vm/src/disasm.rs crates/vm/src/error.rs crates/vm/src/hash.rs crates/vm/src/instr.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/observer.rs crates/vm/src/program.rs crates/vm/src/thread.rs crates/vm/src/value.rs

/root/repo/target/debug/deps/libdp_vm-d1bd7958c9fe2dca.rmeta: crates/vm/src/lib.rs crates/vm/src/asm.rs crates/vm/src/builder.rs crates/vm/src/disasm.rs crates/vm/src/error.rs crates/vm/src/hash.rs crates/vm/src/instr.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/observer.rs crates/vm/src/program.rs crates/vm/src/thread.rs crates/vm/src/value.rs

crates/vm/src/lib.rs:
crates/vm/src/asm.rs:
crates/vm/src/builder.rs:
crates/vm/src/disasm.rs:
crates/vm/src/error.rs:
crates/vm/src/hash.rs:
crates/vm/src/instr.rs:
crates/vm/src/machine.rs:
crates/vm/src/memory.rs:
crates/vm/src/observer.rs:
crates/vm/src/program.rs:
crates/vm/src/thread.rs:
crates/vm/src/value.rs:
