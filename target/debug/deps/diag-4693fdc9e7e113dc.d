/root/repo/target/debug/deps/diag-4693fdc9e7e113dc.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-4693fdc9e7e113dc: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
