/root/repo/target/debug/deps/dp-6d26979f8ec9154d.d: src/bin/dp.rs

/root/repo/target/debug/deps/dp-6d26979f8ec9154d: src/bin/dp.rs

src/bin/dp.rs:
