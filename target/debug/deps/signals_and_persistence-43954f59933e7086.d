/root/repo/target/debug/deps/signals_and_persistence-43954f59933e7086.d: tests/signals_and_persistence.rs

/root/repo/target/debug/deps/signals_and_persistence-43954f59933e7086: tests/signals_and_persistence.rs

tests/signals_and_persistence.rs:
