/root/repo/target/debug/deps/doubleplay-1209171a3205f630.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdoubleplay-1209171a3205f630.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
