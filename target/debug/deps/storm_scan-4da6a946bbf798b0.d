/root/repo/target/debug/deps/storm_scan-4da6a946bbf798b0.d: crates/core/tests/storm_scan.rs

/root/repo/target/debug/deps/storm_scan-4da6a946bbf798b0: crates/core/tests/storm_scan.rs

crates/core/tests/storm_scan.rs:
