/root/repo/target/debug/deps/baselines-4cf422038d079937.d: crates/bench/benches/baselines.rs

/root/repo/target/debug/deps/baselines-4cf422038d079937: crates/bench/benches/baselines.rs

crates/bench/benches/baselines.rs:
