/root/repo/target/debug/deps/dp_bench-cc184f96656a1593.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs crates/bench/src/walltime.rs Cargo.toml

/root/repo/target/debug/deps/libdp_bench-cc184f96656a1593.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs crates/bench/src/walltime.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
crates/bench/src/walltime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
