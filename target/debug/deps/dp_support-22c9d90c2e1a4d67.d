/root/repo/target/debug/deps/dp_support-22c9d90c2e1a4d67.d: crates/support/src/lib.rs crates/support/src/check.rs crates/support/src/crc32.rs crates/support/src/rng.rs crates/support/src/wire.rs

/root/repo/target/debug/deps/dp_support-22c9d90c2e1a4d67: crates/support/src/lib.rs crates/support/src/check.rs crates/support/src/crc32.rs crates/support/src/rng.rs crates/support/src/wire.rs

crates/support/src/lib.rs:
crates/support/src/check.rs:
crates/support/src/crc32.rs:
crates/support/src/rng.rs:
crates/support/src/wire.rs:
