/root/repo/target/debug/deps/record_replay_suite-5bcc3c122fd881c8.d: tests/record_replay_suite.rs Cargo.toml

/root/repo/target/debug/deps/librecord_replay_suite-5bcc3c122fd881c8.rmeta: tests/record_replay_suite.rs Cargo.toml

tests/record_replay_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
