/root/repo/target/debug/examples/server_recording-2ed4653053973278.d: examples/server_recording.rs

/root/repo/target/debug/examples/server_recording-2ed4653053973278: examples/server_recording.rs

examples/server_recording.rs:
