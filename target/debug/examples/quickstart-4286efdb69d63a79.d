/root/repo/target/debug/examples/quickstart-4286efdb69d63a79.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4286efdb69d63a79: examples/quickstart.rs

examples/quickstart.rs:
