/root/repo/target/debug/examples/race_debugging-3a3e505f43baeb72.d: examples/race_debugging.rs

/root/repo/target/debug/examples/race_debugging-3a3e505f43baeb72: examples/race_debugging.rs

examples/race_debugging.rs:
