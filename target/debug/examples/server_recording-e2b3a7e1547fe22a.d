/root/repo/target/debug/examples/server_recording-e2b3a7e1547fe22a.d: examples/server_recording.rs Cargo.toml

/root/repo/target/debug/examples/libserver_recording-e2b3a7e1547fe22a.rmeta: examples/server_recording.rs Cargo.toml

examples/server_recording.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
