/root/repo/target/debug/examples/race_debugging-34a81389e297ebc4.d: examples/race_debugging.rs Cargo.toml

/root/repo/target/debug/examples/librace_debugging-34a81389e297ebc4.rmeta: examples/race_debugging.rs Cargo.toml

examples/race_debugging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
