/root/repo/target/debug/examples/quickstart-b99f04e03b2b6d2a.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b99f04e03b2b6d2a.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
