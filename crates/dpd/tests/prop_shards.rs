//! The cross-shard crash property: kill the daemon at an arbitrary byte
//! instant while sessions record *sharded* journals, and every session's
//! shard set salvages to exactly the dependency-closed committed prefix —
//! which matches the sequential recording hash-for-hash and replays.
//!
//! This extends the N-journal crash machinery of `prop_daemon.rs` to
//! N·K streams: one [`CrashClock`] cuts every shard of every session at
//! a different, arbitrary point (including mid-frame). The oracle is a
//! solo sharded run instrumented with per-shard commit byte offsets:
//! because epochs land round-robin and each shard's durable bytes are a
//! prefix of its deterministic solo stream, the longest consistent
//! cross-shard prefix is the first epoch whose shard has run out of
//! durable commits — everything before it is dependency-closed by the
//! prefix property, everything after is unreachable.

use dp_core::{
    record_to, replay_sequential, DoublePlayConfig, JournalReader, RecordSink, RecordingMeta,
    ShardedJournalWriter,
};
use dp_dpd::{guests, CrashClock, Daemon, DaemonConfig, MemStore, SessionSpec, SessionStore};
use dp_support::rng::mix;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` handle whose bytes are observable mid-run, so the tap can
/// read per-shard stream lengths after every epoch hand-off.
#[derive(Clone)]
struct SharedVec(Arc<Mutex<Vec<u8>>>);

impl Write for SharedVec {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A solo oracle: the full shard streams plus, per shard, the stream
/// length right after each of its epochs' commit frames.
type ShardOracle = (Vec<Vec<u8>>, Vec<Vec<u64>>);

/// A solo sharded run: the full shard streams plus, per shard, the stream
/// length right after each of its epochs' commit frames (the per-shard
/// durability oracle — byte-granular, so group-commit batching is moot).
fn solo_sharded(spec: &SessionSpec, shards: u32) -> ShardOracle {
    struct Tap {
        w: ShardedJournalWriter<SharedVec>,
        bufs: Vec<Arc<Mutex<Vec<u8>>>>,
        commits: Vec<Vec<u64>>,
    }
    impl RecordSink for Tap {
        fn begin(
            &mut self,
            meta: &RecordingMeta,
            initial: &dp_core::CheckpointImage,
        ) -> std::io::Result<()> {
            self.w.begin(meta, initial)
        }
        fn epoch(&mut self, e: &dp_core::EpochRecord) -> std::io::Result<()> {
            self.w.epoch(e)?;
            let t = (e.index % self.w.shard_count()) as usize;
            self.commits[t].push(self.bufs[t].lock().unwrap().len() as u64);
            Ok(())
        }
        fn finish(&mut self) -> std::io::Result<()> {
            self.w.finish()
        }
    }
    let bufs: Vec<Arc<Mutex<Vec<u8>>>> = (0..shards).map(|_| Arc::default()).collect();
    let writers = bufs.iter().map(|b| SharedVec(b.clone())).collect();
    let mut tap = Tap {
        w: ShardedJournalWriter::new(writers, dp_core::DEFAULT_SHARD_BATCH).unwrap(),
        bufs,
        commits: vec![Vec::new(); shards as usize],
    };
    record_to(&spec.guest, &spec.config, &mut tap).unwrap();
    let streams = tap.bufs.iter().map(|b| b.lock().unwrap().clone()).collect();
    (streams, tap.commits)
}

/// The dependency-closed prefix length given how many committed epochs
/// survive per shard. Round-robin + per-shard prefix durability means the
/// merge stops at the first epoch whose shard has no commits left; every
/// earlier epoch's dependency vector is covered by construction.
fn expected_prefix(durable_epochs: &[usize], total_epochs: usize) -> usize {
    let n = durable_epochs.len();
    let mut taken = vec![0usize; n];
    for i in 0..total_epochs {
        let t = i % n;
        if taken[t] >= durable_epochs[t] {
            return i;
        }
        taken[t] += 1;
    }
    total_epochs
}

/// The session mix: shard counts 2..=4 across guest shapes and drivers.
fn session_mix(round: u64) -> Vec<(SessionSpec, u32)> {
    let mut specs = Vec::new();
    for i in 0..4u64 {
        let seed = mix(&[round, i, 0x5a4d]);
        let iters = 300 + (i as i64) * 80;
        let guest = if i % 2 == 1 {
            guests::racy_counter(2, iters)
        } else {
            guests::atomic_counter(2, iters)
        };
        let mut config = DoublePlayConfig::new(2)
            .epoch_cycles(500 + 120 * i)
            .hidden_seed(seed);
        if i == 2 {
            config = config.spare_workers(2).pipelined(true);
        }
        let shards = 2 + (i as u32) % 3;
        specs.push((
            SessionSpec::new(format!("sh{round}-{i}"), guest, config)
                .restart_budget(0)
                .journal_shards(shards),
            shards,
        ));
    }
    specs
}

#[test]
fn daemon_wide_crash_salvages_every_shard_set_to_its_consistent_prefix() {
    for round in 0..2u64 {
        let specs = session_mix(round);
        let oracles: Vec<ShardOracle> = specs
            .iter()
            .map(|(s, shards)| solo_sharded(s, *shards))
            .collect();
        let total: u64 = oracles
            .iter()
            .flat_map(|(streams, _)| streams.iter())
            .map(|b| b.len() as u64)
            .sum();
        assert!(
            oracles
                .iter()
                .all(|(_, commits)| commits.iter().map(Vec::len).sum::<usize>() >= 4),
            "sessions too small to cut interestingly"
        );

        // Crash instants spread over the whole timeline, one random, plus
        // the never-crashes control.
        let mut crash_points: Vec<u64> = (1..8).map(|k| total * k / 8).collect();
        crash_points.push(mix(&[round, 0xbeef]) % total.max(1));
        crash_points.push(total + 1);

        for &crash_at in &crash_points {
            let clock = CrashClock::new(crash_at);
            let store = Arc::new(MemStore::crashing(clock));
            let daemon = Daemon::start(
                DaemonConfig {
                    runners: 3,
                    verify_cores: 4,
                    queue_capacity: 64,
                    ..DaemonConfig::default()
                },
                store.clone(),
            );
            let ids: Vec<_> = specs
                .iter()
                .map(|(s, _)| daemon.submit(s.clone()).expect("admission"))
                .collect();
            daemon.drain();
            daemon.shutdown();

            for (((spec, shards), (solo_streams, commits)), &id) in
                specs.iter().zip(&oracles).zip(&ids)
            {
                let durable: Vec<Vec<u8>> = (0..*shards)
                    .map(|k| store.durable_shard(id, k).unwrap())
                    .collect();
                // Each shard's durability is a prefix of its deterministic
                // solo stream: daemon concurrency must not leak into any
                // shard.
                for (t, d) in durable.iter().enumerate() {
                    assert!(
                        solo_streams[t].starts_with(d),
                        "{}: shard {t} durable bytes diverge from solo \
                         (crash_at={crash_at})",
                        spec.name
                    );
                }
                let durable_epochs: Vec<usize> = commits
                    .iter()
                    .enumerate()
                    .map(|(t, offs)| {
                        offs.iter()
                            .filter(|&&o| o as usize <= durable[t].len())
                            .count()
                    })
                    .collect();
                let total_epochs: usize = commits.iter().map(Vec::len).sum();
                let expected = expected_prefix(&durable_epochs, total_epochs);
                let reference = JournalReader::salvage_shards(solo_streams).unwrap();
                assert!(reference.clean, "solo shard set must merge clean");

                match JournalReader::salvage_shards(&durable) {
                    Ok(salv) => {
                        assert_eq!(
                            salv.committed(),
                            expected,
                            "{}: merge != dependency-closure oracle \
                             (crash_at={crash_at}, durable_epochs={durable_epochs:?})",
                            spec.name
                        );
                        assert_eq!(
                            salv.dropped_epochs,
                            durable_epochs.iter().sum::<usize>() - expected,
                            "{}: durable-but-inconsistent epoch count \
                             (crash_at={crash_at})",
                            spec.name
                        );
                        let fully_durable = durable
                            .iter()
                            .zip(solo_streams)
                            .all(|(d, s)| d.len() == s.len());
                        assert_eq!(
                            salv.clean, fully_durable,
                            "{}: clean flag wrong (crash_at={crash_at})",
                            spec.name
                        );
                        // The merged epochs are the sequential recording's,
                        // hash for hash...
                        for (a, b) in salv
                            .recording
                            .epochs
                            .iter()
                            .zip(&reference.recording.epochs)
                        {
                            assert_eq!(a.index, b.index);
                            assert_eq!(
                                a.end_machine_hash, b.end_machine_hash,
                                "{}: epoch {} differs from solo (crash_at={crash_at})",
                                spec.name, a.index
                            );
                        }
                        // ...and the consistent prefix replays.
                        let report = replay_sequential(&salv.recording, &spec.guest.program)
                            .expect("salvaged prefix must replay");
                        assert_eq!(report.epochs as usize, expected);
                    }
                    Err(_) => {
                        // Only acceptable while shard 0's full header is
                        // not yet durable — no epoch can be consistent
                        // without the recording header.
                        assert_eq!(
                            expected, 0,
                            "{}: header lost but oracle expects {expected} epochs \
                             (crash_at={crash_at})",
                            spec.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn sharded_sessions_finalize_clean_without_a_crash() {
    let specs = session_mix(77);
    let store = Arc::new(MemStore::crashing(CrashClock::new(u64::MAX)));
    let daemon = Daemon::start(DaemonConfig::default(), store.clone());
    let ids: Vec<_> = specs
        .iter()
        .map(|(s, _)| daemon.submit(s.clone()).expect("admission"))
        .collect();
    daemon.drain();
    for ((spec, shards), &id) in specs.iter().zip(&ids) {
        let r = daemon.report(id).unwrap();
        assert_eq!(
            r.state,
            dp_dpd::SessionState::Finalized,
            "{}: {:?} ({:?})",
            spec.name,
            r.state,
            r.error
        );
        let bufs: Vec<Vec<u8>> = (0..*shards)
            .map(|k| store.durable_shard(id, k).unwrap())
            .collect();
        let salv = JournalReader::salvage_shards(&bufs).unwrap();
        assert!(salv.clean);
        assert_eq!(salv.committed(), r.epochs as usize);
        assert_eq!(salv.shard_count, *shards);
    }
    daemon.shutdown();
}
