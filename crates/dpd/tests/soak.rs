//! The mixed record + fault + salvage soak: hundreds of concurrent
//! sessions with per-session fault injection, a deliberately small
//! admission queue, and three invariants checked for every session:
//!
//! 1. **Zero cross-session interference** — every unaffected session's
//!    journal is byte-identical to a solo run of the same spec.
//! 2. **Containment** — faulted sessions finalize after retry (transient
//!    sink faults, survivable record faults) or salvage to exactly their
//!    committed epoch prefix (permanent sink faults, fatal record faults).
//! 3. **Typed backpressure** — oversubscription sheds with
//!    `AdmitError::Rejected`, never a panic or a hang; polite clients
//!    using the `retry_after` hint still land every session.

use dp_core::{record_to, DoublePlayConfig, FaultPlan, JournalReader, JournalWriter};
use dp_dpd::{
    guests, Daemon, DaemonConfig, MemStore, Priority, SessionSpec, SessionState, SessionStore,
};
use dp_os::SinkFaults;
use dp_support::rng::mix;
use std::sync::Arc;

const SESSIONS: usize = 210;
const CLASSES: usize = 6;

/// Fault class for global session number `i`.
fn class_of(i: usize) -> usize {
    i % CLASSES
}

/// Per-epoch commit byte offsets of a solo run (sink faults are outside
/// the recorded world, so this is the oracle for every class).
fn solo_offsets(spec: &SessionSpec) -> (Vec<u8>, Vec<u64>) {
    use dp_core::{CheckpointImage, EpochRecord, RecordSink, RecordingMeta};
    struct Tap {
        w: JournalWriter<Vec<u8>>,
        offsets: Vec<u64>,
    }
    impl RecordSink for Tap {
        fn begin(&mut self, meta: &RecordingMeta, init: &CheckpointImage) -> std::io::Result<()> {
            self.w.begin(meta, init)
        }
        fn epoch(&mut self, e: &EpochRecord) -> std::io::Result<()> {
            self.w.epoch(e)?;
            self.offsets.push(self.w.bytes_written());
            Ok(())
        }
        fn finish(&mut self) -> std::io::Result<()> {
            self.w.finish()
        }
    }
    let mut tap = Tap {
        w: JournalWriter::new(Vec::new()).unwrap(),
        offsets: Vec::new(),
    };
    record_to(&spec.guest, &spec.config, &mut tap).unwrap();
    (tap.w.into_inner(), tap.offsets)
}

/// The spec for session `i`. Classes:
/// 0 clean, 1 io faults (survivable short reads), 2 divergence storms,
/// 3 fatal worker panics, 4 transient sink fault (torn write on attempt 0
/// only), 5 permanent sink fault (torn write every attempt, no budget).
fn spec_for(i: usize) -> SessionSpec {
    let racy = i % 2 == 1;
    let iters = 300 + (i % 5) as i64 * 60;
    let guest = if racy {
        guests::racy_counter(2, iters)
    } else {
        guests::atomic_counter(2, iters)
    };
    let mut config = DoublePlayConfig::new(2)
        .epoch_cycles(700 + 100 * (i % 4) as u64)
        .hidden_seed(mix(&[i as u64, 0x50a6]));
    if !racy {
        config = config.spare_workers(2).pipelined(true);
    }
    let template = match class_of(i) {
        1 => FaultPlan::none().seed(7).io(0.0, 0.01, 0.0),
        2 => FaultPlan::none().seed(7).storms(0.03, 3, 16),
        3 => FaultPlan::none().seed(7).worker_panics_with(1.0),
        _ => FaultPlan::none(),
    };
    if template.is_active() {
        config = config.faults(template.for_session(i as u64));
    }
    let mut spec = SessionSpec::new(format!("soak-{i}"), guest, config)
        .priority(match i % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        })
        .restart_budget(2);
    match class_of(i) {
        4 | 5 => {
            // Tear the sink between the first and last epoch commits so
            // the faulted attempt always loses a suffix.
            let (solo, offsets) = solo_offsets(&spec);
            assert!(offsets.len() >= 2, "session {i} too small to tear");
            let torn = (offsets[0] + offsets[offsets.len() - 1]) / 2;
            assert!(torn < solo.len() as u64);
            spec = spec
                .sink_faults(SinkFaults {
                    torn_at: Some(torn),
                    ..SinkFaults::none()
                })
                .transient_sink_faults(class_of(i) == 4);
            if class_of(i) == 5 {
                spec = spec.restart_budget(0);
            }
            spec
        }
        _ => spec,
    }
}

#[test]
fn soak_mixed_faults_isolation_and_backpressure() {
    dp_core::faults::silence_injected_panics();
    let specs: Vec<SessionSpec> = (0..SESSIONS).map(spec_for).collect();
    let store = Arc::new(MemStore::new());
    // Queue far smaller than the offered load: rejections are expected
    // and must be typed, not panics or hangs.
    let daemon = Arc::new(Daemon::start(
        DaemonConfig {
            runners: 3,
            verify_cores: 4,
            queue_capacity: 4,
            ..DaemonConfig::default()
        },
        store.clone(),
    ));

    let ids = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..4usize {
            let daemon = daemon.clone();
            let specs = &specs;
            handles.push(scope.spawn(move || {
                let mut ids = Vec::new();
                let mut i = client;
                while i < SESSIONS {
                    let id = daemon
                        .submit_retrying(specs[i].clone(), 10_000)
                        .expect("polite client must eventually land every session");
                    ids.push((i, id));
                    i += 4;
                }
                ids
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
        all
    });
    daemon.drain();

    let m = daemon.metrics();
    assert_eq!(m.admitted as usize, SESSIONS);
    assert!(
        m.rejected > 0,
        "queue of 4 under {SESSIONS} sessions must shed at least once"
    );

    let mut finalized = 0usize;
    let mut salvaged_or_failed = 0usize;
    for &(i, id) in &ids {
        let spec = &specs[i];
        let r = daemon.report(id).expect("registry row");
        assert!(
            r.state.is_terminal(),
            "session {i} not terminal: {:?}",
            r.state
        );
        let durable = store.durable(id).expect("durable bytes");
        match class_of(i) {
            // Unaffected and survivable-fault sessions: finalized, and the
            // journal is byte-identical to a solo run — the zero-
            // interference oracle.
            0..=2 => {
                assert_eq!(
                    r.state,
                    SessionState::Finalized,
                    "session {i}: {:?} ({:?})",
                    r.state,
                    r.error
                );
                let (solo, _) = solo_offsets(spec);
                assert_eq!(durable, solo, "session {i} diverged from its solo run");
                finalized += 1;
            }
            // Fatal injected record faults (`worker_panic_p = 1.0`): the
            // run can never succeed, so containment means the session
            // consumes its budget, lands in a terminal failure state with
            // the panic detail in its own row, and whatever journal
            // prefix it left behind still salvages without error.
            3 => {
                assert!(
                    matches!(r.state, SessionState::Salvaged | SessionState::Failed),
                    "session {i}: fatal faults must not finalize ({:?})",
                    r.state
                );
                assert!(r.attempts >= 2, "fatal faults must consume the budget");
                assert!(r.error.is_some(), "session {i} lost its failure detail");
                if let Ok(salv) = JournalReader::salvage(&durable) {
                    assert!(!salv.clean, "a failed session cannot leave a clean journal");
                }
                salvaged_or_failed += 1;
            }
            // Transient sink fault: attempt 0 tears, the retry finalizes
            // byte-identically.
            4 => {
                assert_eq!(
                    r.state,
                    SessionState::Finalized,
                    "session {i}: {:?} ({:?})",
                    r.state,
                    r.error
                );
                assert!(r.attempts >= 2, "session {i} must have retried");
                let (solo, _) = solo_offsets(spec);
                assert_eq!(durable, solo, "session {i} retry not byte-identical");
                finalized += 1;
            }
            // Permanent sink fault, no budget: salvaged to exactly the
            // committed prefix.
            _ => {
                assert_eq!(
                    r.state,
                    SessionState::Salvaged,
                    "session {i}: {:?} ({:?})",
                    r.state,
                    r.error
                );
                let (solo, offsets) = solo_offsets(spec);
                check_exact_prefix(i, &durable, &solo, &offsets);
                let salv = JournalReader::salvage(&durable).unwrap();
                assert!(salv.committed() >= 1 && salv.committed() < offsets.len());
                salvaged_or_failed += 1;
            }
        }
    }
    assert_eq!(finalized + salvaged_or_failed, SESSIONS);
    assert_eq!(
        m.finalized as usize, finalized,
        "metrics disagree with the registry"
    );

    match Arc::try_unwrap(daemon) {
        Ok(d) => d.shutdown(),
        Err(_) => panic!("daemon still shared at exit"),
    }
}

/// Assert `durable` is a prefix of `solo` and salvages to exactly the
/// epochs whose commit offsets fit inside it.
fn check_exact_prefix(i: usize, durable: &[u8], solo: &[u8], offsets: &[u64]) {
    assert!(
        solo.starts_with(durable),
        "session {i}: durable bytes are not a solo-run prefix"
    );
    let expected = offsets
        .iter()
        .filter(|&&o| o as usize <= durable.len())
        .count();
    match JournalReader::salvage(durable) {
        Ok(salv) => assert_eq!(
            salv.committed(),
            expected,
            "session {i}: salvage disagrees with the commit-offset oracle"
        ),
        Err(_) => assert_eq!(expected, 0, "session {i}: committed epochs lost"),
    }
}
