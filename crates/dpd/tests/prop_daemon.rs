//! The daemon-wide crash property: kill the whole daemon at an arbitrary
//! instant and *every* per-session journal salvages independently to
//! exactly its committed epoch prefix.
//!
//! This extends the single-journal prefix-salvage property to N
//! concurrent journals sharing one durability timeline: a global byte
//! clock ([`CrashClock`]) advances with every write from every session,
//! and the crash instant cuts each journal at a different, arbitrary
//! point — including mid-write (a torn frame).
//!
//! The oracle is a solo run of each spec instrumented with per-epoch
//! commit byte offsets: for a durable prefix of length `L`, the
//! salvageable epoch count must be exactly the number of commit offsets
//! `<= L`, the salvaged epochs must match the solo run hash-for-hash
//! (recording is deterministic, so concurrency must not leak into any
//! journal), and the salvaged prefix must replay.

use dp_core::{
    record_to, replay_sequential, DoublePlayConfig, JournalReader, JournalWriter, RecordSink,
    RecordingMeta,
};
use dp_dpd::{guests, CrashClock, Daemon, DaemonConfig, MemStore, SessionSpec, SessionStore};
use dp_support::rng::mix;
use std::sync::Arc;

/// A solo run capturing the journal bytes and each epoch's commit offset.
fn solo_with_offsets(spec: &SessionSpec) -> (Vec<u8>, Vec<u64>) {
    struct Tap {
        w: JournalWriter<Vec<u8>>,
        offsets: Vec<u64>,
    }
    impl RecordSink for Tap {
        fn begin(
            &mut self,
            meta: &RecordingMeta,
            initial: &dp_core::CheckpointImage,
        ) -> std::io::Result<()> {
            self.w.begin(meta, initial)
        }
        fn epoch(&mut self, e: &dp_core::EpochRecord) -> std::io::Result<()> {
            self.w.epoch(e)?;
            self.offsets.push(self.w.bytes_written());
            Ok(())
        }
        fn finish(&mut self) -> std::io::Result<()> {
            self.w.finish()
        }
    }
    let mut tap = Tap {
        w: JournalWriter::new(Vec::new()).unwrap(),
        offsets: Vec::new(),
    };
    record_to(&spec.guest, &spec.config, &mut tap).unwrap();
    (tap.w.into_inner(), tap.offsets)
}

/// The session mix for one round: a spread of guest shapes, epoch sizes,
/// and (byte-identical) driver choices, seeded per round.
fn session_mix(round: u64) -> Vec<SessionSpec> {
    let mut specs = Vec::new();
    for i in 0..6u64 {
        let seed = mix(&[round, i, 0xc4a5]);
        let racy = i % 2 == 1;
        let iters = 250 + (i as i64) * 70;
        let guest = if racy {
            guests::racy_counter(2, iters)
        } else {
            guests::atomic_counter(2, iters)
        };
        let mut config = DoublePlayConfig::new(2)
            .epoch_cycles(600 + 150 * i)
            .hidden_seed(seed);
        if i == 4 {
            // One pipelined session: same bytes, different driver.
            config = config.spare_workers(2).pipelined(true);
        }
        specs.push(SessionSpec::new(format!("p{round}-{i}"), guest, config).restart_budget(0));
    }
    specs
}

#[test]
fn daemon_wide_crash_leaves_every_journal_salvageable_to_its_commits() {
    for round in 0..2u64 {
        let specs = session_mix(round);
        let oracles: Vec<(Vec<u8>, Vec<u64>)> = specs.iter().map(solo_with_offsets).collect();
        let total: u64 = oracles.iter().map(|(b, _)| b.len() as u64).sum();
        assert!(
            oracles.iter().all(|(_, offs)| offs.len() >= 2),
            "sessions too small to cut interestingly"
        );

        // Crash instants: spread over the whole timeline plus the
        // never-crashes control (>= total bytes).
        let mut crash_points: Vec<u64> = (1..8).map(|k| total * k / 8).collect();
        crash_points.push(mix(&[round, 0xdead]) % total.max(1));
        crash_points.push(total + 1);

        for &crash_at in &crash_points {
            let clock = CrashClock::new(crash_at);
            let store = Arc::new(MemStore::crashing(clock));
            let daemon = Daemon::start(
                DaemonConfig {
                    runners: 3,
                    verify_cores: 4,
                    queue_capacity: 64,
                    ..DaemonConfig::default()
                },
                store.clone(),
            );
            let ids: Vec<_> = specs
                .iter()
                .map(|s| daemon.submit(s.clone()).expect("admission"))
                .collect();
            daemon.drain();
            daemon.shutdown();

            for ((spec, (solo, offsets)), &id) in specs.iter().zip(&oracles).zip(&ids) {
                let durable = store.durable(id).unwrap();
                // Per-session durability is a prefix of the deterministic
                // solo byte stream: concurrency must not leak into any
                // journal.
                assert!(
                    solo.starts_with(&durable),
                    "{}: durable bytes diverge from solo run (crash_at={crash_at})",
                    spec.name
                );
                let expected = offsets
                    .iter()
                    .filter(|&&o| o as usize <= durable.len())
                    .count();
                match JournalReader::salvage(&durable) {
                    Ok(salv) => {
                        assert_eq!(
                            salv.committed(),
                            expected,
                            "{}: salvage != commit-offset oracle (crash_at={crash_at}, \
                             durable={} of {})",
                            spec.name,
                            durable.len(),
                            solo.len()
                        );
                        assert_eq!(
                            salv.clean,
                            durable.len() == solo.len(),
                            "{}: clean flag wrong (crash_at={crash_at})",
                            spec.name
                        );
                        // The salvaged epochs are the solo run's, hash for
                        // hash...
                        let reference = JournalReader::salvage(solo).unwrap();
                        for (a, b) in salv
                            .recording
                            .epochs
                            .iter()
                            .zip(&reference.recording.epochs)
                        {
                            assert_eq!(a.index, b.index);
                            assert_eq!(
                                a.end_machine_hash, b.end_machine_hash,
                                "{}: epoch {} differs from solo (crash_at={crash_at})",
                                spec.name, a.index
                            );
                        }
                        // ...and the prefix replays.
                        let report = replay_sequential(&salv.recording, &spec.guest.program)
                            .expect("salvaged prefix must replay");
                        assert_eq!(report.epochs as usize, expected);
                    }
                    Err(_) => {
                        // Only acceptable before the header became durable
                        // — by the commit rule no epoch can be committed.
                        assert_eq!(
                            expected, 0,
                            "{}: header lost but oracle expects {expected} epochs \
                             (crash_at={crash_at})",
                            spec.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn crash_beyond_the_timeline_finalizes_everything() {
    let specs = session_mix(99);
    let store = Arc::new(MemStore::crashing(CrashClock::new(u64::MAX)));
    let daemon = Daemon::start(DaemonConfig::default(), store.clone());
    let ids: Vec<_> = specs
        .iter()
        .map(|s| daemon.submit(s.clone()).expect("admission"))
        .collect();
    daemon.drain();
    for (spec, &id) in specs.iter().zip(&ids) {
        let r = daemon.report(id).unwrap();
        assert_eq!(
            r.state,
            dp_dpd::SessionState::Finalized,
            "{}: {:?} ({:?})",
            spec.name,
            r.state,
            r.error
        );
        let salv = JournalReader::salvage(&store.durable(id).unwrap()).unwrap();
        assert!(salv.clean);
        assert_eq!(salv.committed(), r.epochs as usize);
    }
    daemon.shutdown();
}
