//! Live attach streams under daemon death: a client severed mid-stream
//! must hold a salvageable journal prefix equal to exactly the committed
//! epochs it received — the socket extension of the crash-prefix
//! property, judged by the same solo commit-offset oracle.

mod common;

use common::{solo_with_offsets, start_server};
use dp_core::{DoublePlayConfig, JournalReader};
use dp_dpd::{
    Client, ClientError, Daemon, DaemonConfig, GuestRef, MemStore, ServerConfig, SessionState,
    SessionStore, SubmitSpec,
};
use dp_os::SinkFaults;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn counter_spec(name: &str, iters: i64, epoch_cycles: u64) -> SubmitSpec {
    SubmitSpec::new(
        name,
        GuestRef::AtomicCounter { workers: 2, iters },
        DoublePlayConfig::new(2).epoch_cycles(epoch_cycles),
    )
}

#[test]
fn attach_streams_the_whole_journal_live_and_matches_solo() {
    let daemon = Arc::new(Daemon::start(
        DaemonConfig::default(),
        Arc::new(MemStore::new()),
    ));
    let (path, _handle) = start_server(&daemon, "attach-live", ServerConfig::default());
    let mut client = Client::connect(&path).unwrap();
    let spec = counter_spec("live", 2_000, 700);
    let (solo, offsets) = solo_with_offsets(&spec.to_session_spec().unwrap());
    // Attach immediately, while the session is still recording: bytes
    // arrive epoch by epoch and the stream ends with the terminal report.
    let id = client.submit(&spec).unwrap();
    let mut streamed = Vec::new();
    let outcome = client.attach(id, &mut streamed).unwrap();
    assert_eq!(outcome.state, SessionState::Finalized);
    assert!(outcome.clean);
    assert_eq!(outcome.epochs as usize, offsets.len());
    assert_eq!(streamed, solo, "live-attached journal diverges from solo");
    client.shutdown().unwrap();
}

#[test]
fn severed_attach_stream_salvages_to_exactly_the_committed_epochs() {
    let daemon = Arc::new(Daemon::start(
        DaemonConfig {
            runners: 1,
            verify_cores: 2,
            queue_capacity: 8,
            ..DaemonConfig::default()
        },
        Arc::new(MemStore::new()),
    ));
    let (path, handle) = start_server(&daemon, "attach-crash", ServerConfig::default());
    let mut client = Client::connect(&path).unwrap();
    // Long enough that the daemon dies mid-recording below.
    let spec = counter_spec("doomed", 60_000, 900);
    let (solo, offsets) = solo_with_offsets(&spec.to_session_spec().unwrap());
    let id = client.submit(&spec).unwrap();

    let attacher = std::thread::spawn({
        let path = path.clone();
        move || {
            let mut conn = Client::connect(&path).unwrap();
            let mut bytes = Vec::new();
            let result = conn.attach(id, &mut bytes);
            (bytes, result)
        }
    });

    // Wait until the journal has committed a few epochs, then kill the
    // server mid-stream (the daemon's accept loop and every connection
    // thread exit without sending AttachEnd).
    let store = daemon.store();
    let deadline = Instant::now() + Duration::from_secs(60);
    while store.durable(id).map(|b| b.len()).unwrap_or(0) < offsets[2] as usize {
        assert!(
            Instant::now() < deadline,
            "session never committed 3 epochs"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();

    let (prefix, result) = attacher.join().unwrap();
    match result {
        Err(ClientError::Frame(_)) | Err(ClientError::Io(_)) => {}
        other => panic!("stream should have been severed, got {other:?}"),
    }
    // The received prefix is a prefix of the deterministic solo bytes,
    // cut exactly at a commit boundary — salvage loses nothing.
    assert!(
        solo.starts_with(&prefix),
        "severed prefix diverges from solo bytes"
    );
    let expected = offsets
        .iter()
        .filter(|&&o| o as usize <= prefix.len())
        .count();
    assert!(expected >= 1, "stream severed before any epoch arrived");
    let salv = JournalReader::salvage(&prefix).expect("prefix must salvage");
    assert_eq!(
        salv.committed(),
        expected,
        "salvaged epochs != commit-offset oracle"
    );
    assert_eq!(
        salv.salvaged_bytes,
        prefix.len(),
        "attach chunks must end at salvage boundaries"
    );

    // The daemon object outlives its server; let the doomed session
    // finish so shutdown is clean.
    daemon.drain();
    match Arc::try_unwrap(daemon) {
        Ok(d) => d.shutdown(),
        Err(_) => panic!("a connection thread still holds the daemon"),
    }
}

#[test]
fn attach_follows_a_transient_sink_fault_through_the_retry() {
    let daemon = Arc::new(Daemon::start(
        DaemonConfig::default(),
        Arc::new(MemStore::new()),
    ));
    let (path, _handle) = start_server(&daemon, "attach-retry", ServerConfig::default());
    let mut client = Client::connect(&path).unwrap();
    // Attempt 0 dies when its sink reports a full device mid-journal;
    // the retry rewrites the journal in place. An attach that saw
    // attempt-0 bytes must restart and still deliver the final journal.
    let mut spec = counter_spec("retry", 2_000, 700);
    spec.restart_budget = 2;
    spec.transient_sink_faults = true;
    spec.sink_faults = SinkFaults {
        enospc_at: Some(2_000),
        ..SinkFaults::none()
    };
    let (solo, _) = solo_with_offsets(&spec.to_session_spec().unwrap());
    let id = client.submit(&spec).unwrap();
    let mut streamed = Vec::new();
    let outcome = client.attach(id, &mut streamed).unwrap();
    assert_eq!(outcome.state, SessionState::Finalized);
    assert!(outcome.clean);
    assert_eq!(
        streamed, solo,
        "post-retry attach must deliver the rewritten journal"
    );
    let report = client.status(id).unwrap();
    assert!(
        report.attempts >= 2,
        "sink fault should have cost attempt 0"
    );
    client.shutdown().unwrap();
}
