//! The `dpnet` protocol over a real unix-domain socket: byte identity of
//! socket-submitted recordings against solo in-process runs, typed fault
//! mirroring, typed connection backpressure, and malformed-frame
//! hardening (no panic, no hang, no unbounded allocation — every bad
//! frame earns a typed answer).

mod common;

use common::{sock_path, solo_with_offsets, start_server};
use dp_core::{DoublePlayConfig, FaultPlan};
use dp_dpd::proto::frame::{expect_hello, read_frame, send_hello, write_frame};
use dp_dpd::{
    Client, ClientError, Daemon, DaemonConfig, GuestRef, MemStore, Priority, Request, Response,
    ServerConfig, SessionId, SessionState, SessionStore, SubmitSpec, WireFault,
};
use dp_support::rng::mix;
use dp_support::wire::{from_bytes, to_bytes};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::sync::Arc;

fn start_default(tag: &str) -> (Arc<Daemon<MemStore>>, std::path::PathBuf) {
    let daemon = Arc::new(Daemon::start(
        DaemonConfig {
            runners: 2,
            verify_cores: 4,
            queue_capacity: 64,
            ..DaemonConfig::default()
        },
        Arc::new(MemStore::new()),
    ));
    let (path, _handle) = start_server(&daemon, tag, ServerConfig::default());
    (daemon, path)
}

/// The sweep's submit spec for one (seed, priority, fault-plan) point:
/// a tiny counter guest whose recording is deterministic for the spec,
/// so a solo run is an exact byte oracle.
fn sweep_spec(seed: u64, priority: Priority, faulted: bool, i: u64) -> SubmitSpec {
    let guest = if i.is_multiple_of(2) {
        GuestRef::AtomicCounter {
            workers: 2,
            iters: 250 + (i as i64) * 40,
        }
    } else {
        GuestRef::RacyCounter {
            workers: 2,
            iters: 250 + (i as i64) * 40,
        }
    };
    let mut config = DoublePlayConfig::new(2)
        .epoch_cycles(600 + 90 * i)
        .hidden_seed(mix(&[seed, i, 0xd9e7]));
    if i.is_multiple_of(3) {
        config = config.spare_workers(2).pipelined(true);
    }
    if faulted {
        // Divergence storms perturb the recording deterministically —
        // the solo oracle runs the same plan, so bytes must still match.
        config = config.faults(FaultPlan::none().seed(mix(&[seed, i])).storms(0.3, 2, 12));
    }
    let mut spec = SubmitSpec::new(format!("sweep-{seed}-{i}"), guest, config);
    spec.priority = priority;
    spec.restart_budget = 0;
    spec
}

#[test]
fn socket_submissions_are_byte_identical_to_solo_runs() {
    let (daemon, path) = start_default("identity");
    let mut client = Client::connect(&path).unwrap();
    let mut points = Vec::new();
    let mut i = 0u64;
    for seed in [11u64, 47] {
        for priority in [Priority::High, Priority::Normal, Priority::Low] {
            for faulted in [false, true] {
                points.push(sweep_spec(seed, priority, faulted, i));
                i += 1;
            }
        }
    }
    let ids: Vec<SessionId> = points
        .iter()
        .map(|spec| client.submit_retrying(spec, 1_000).expect("admission"))
        .collect();
    for (spec, id) in points.iter().zip(&ids) {
        let report = client.wait(*id).unwrap();
        assert_eq!(
            report.state,
            SessionState::Finalized,
            "{}: {:?} ({:?})",
            spec.name,
            report.state,
            report.error
        );
        // The solo oracle resolves the same guest reference locally —
        // exactly what a remote client can do to audit the daemon.
        let session = spec.to_session_spec().unwrap();
        let (solo, _) = solo_with_offsets(&session);
        let mut streamed = Vec::new();
        let outcome = client.attach(*id, &mut streamed).unwrap();
        assert!(outcome.clean, "{}: journal not clean", spec.name);
        assert_eq!(
            streamed, solo,
            "{}: socket-submitted journal diverges from solo run",
            spec.name
        );
        let durable = daemon.store().durable(*id).unwrap();
        assert_eq!(durable, solo, "{}: durable bytes diverge", spec.name);
    }
    client.shutdown().unwrap();
}

#[test]
fn typed_faults_mirror_in_process_errors() {
    let (_daemon, path) = start_default("faults");
    let mut client = Client::connect(&path).unwrap();

    match client.status(SessionId(404)) {
        Err(ClientError::Fault(WireFault::UnknownSession { id })) => assert_eq!(id, SessionId(404)),
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    match client.cancel(SessionId(404)) {
        Err(ClientError::Fault(WireFault::UnknownSession { .. })) => {}
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    let mut missing = sweep_spec(1, Priority::Normal, false, 0);
    missing.guest = GuestRef::Workload {
        name: "no-such-workload".into(),
        threads: 2,
        size: dp_dpd::SizeRef::Small,
    };
    match client.submit(&missing) {
        Err(ClientError::Fault(WireFault::UnknownGuest { detail })) => {
            assert!(detail.contains("no-such-workload"), "{detail}");
        }
        other => panic!("expected UnknownGuest, got {other:?}"),
    }
    let mut streamed = Vec::new();
    match client.attach(SessionId(404), &mut streamed) {
        Err(ClientError::Fault(WireFault::UnknownSession { .. })) => {}
        other => panic!("expected UnknownSession, got {other:?}"),
    }

    // A finalized session is not cancellable — the typed mirror of
    // SessionError::NotCancellable, with the state it was caught in.
    let spec = sweep_spec(2, Priority::Normal, false, 1);
    let id = client.submit(&spec).unwrap();
    let report = client.wait(id).unwrap();
    assert_eq!(report.state, SessionState::Finalized);
    match client.cancel(id) {
        Err(ClientError::Fault(WireFault::NotCancellable { id: got, state })) => {
            assert_eq!(got, id);
            assert_eq!(state, SessionState::Finalized);
        }
        other => panic!("expected NotCancellable, got {other:?}"),
    }
    client.shutdown().unwrap();
}

#[test]
fn over_limit_connections_get_typed_busy_backpressure() {
    let daemon = Arc::new(Daemon::start(
        DaemonConfig::default(),
        Arc::new(MemStore::new()),
    ));
    let cfg = ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    };
    let (path, _handle) = start_server(&daemon, "busy", cfg);
    let mut first = Client::connect(&path).unwrap();
    first.sessions().unwrap(); // fully established and counted
    let mut second = Client::connect(&path).unwrap();
    match second.sessions() {
        Err(ClientError::Fault(WireFault::Busy { active, limit })) => {
            assert_eq!((active, limit), (1, 1));
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    drop(second);
    first.shutdown().unwrap();
}

/// A raw protocol connection for crafting hostile frames.
fn raw_conn(path: &std::path::Path) -> UnixStream {
    let mut s = UnixStream::connect(path).unwrap();
    send_hello(&mut s).unwrap();
    expect_hello(&mut s).unwrap();
    s
}

fn read_response(s: &mut UnixStream) -> Response {
    let mut buf = Vec::new();
    read_frame(s, &mut buf).unwrap();
    from_bytes(&buf).unwrap()
}

#[test]
fn malformed_frames_get_typed_errors_never_panics() {
    let (_daemon, path) = start_default("fuzz");

    // An intact frame with an undecodable payload: typed answer, and the
    // connection keeps serving.
    let mut s = raw_conn(&path);
    write_frame(&mut s, &[0xff; 16]).unwrap();
    assert!(
        matches!(
            read_response(&mut s),
            Response::Error {
                fault: WireFault::Malformed { .. }
            }
        ),
        "undecodable payload must earn Malformed"
    );
    write_frame(&mut s, &to_bytes(&Request::Sessions)).unwrap();
    assert!(matches!(
        read_response(&mut s),
        Response::SessionList { .. }
    ));
    drop(s);

    // A corrupt CRC desynchronizes the stream: typed answer, then close.
    let mut s = raw_conn(&path);
    let mut frame = Vec::new();
    write_frame(&mut frame, &to_bytes(&Request::Sessions)).unwrap();
    let last = frame.len() - 1;
    frame[last] ^= 0x40;
    s.write_all(&frame).unwrap();
    s.flush().unwrap();
    assert!(matches!(
        read_response(&mut s),
        Response::Error {
            fault: WireFault::Malformed { .. }
        }
    ));
    drop(s);

    // An oversized declared length is refused before allocation.
    let mut s = raw_conn(&path);
    s.write_all(&(u32::MAX).to_le_bytes()).unwrap();
    s.write_all(&0u32.to_le_bytes()).unwrap();
    s.flush().unwrap();
    match read_response(&mut s) {
        Response::Error {
            fault: WireFault::Malformed { detail },
        } => assert!(detail.contains("exceeds"), "{detail}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
    drop(s);

    // A frame truncated by a dying peer: typed answer on the way out.
    let mut s = raw_conn(&path);
    s.write_all(&frame[..frame.len() / 2]).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    assert!(matches!(
        read_response(&mut s),
        Response::Error {
            fault: WireFault::Malformed { .. }
        }
    ));
    drop(s);

    // Bit-flip fuzz: every single-bit mutation of a valid frame earns a
    // typed Malformed answer (CRC catches payload flips; length flips end
    // as truncated or oversized), and the server survives them all.
    let mut good = Vec::new();
    write_frame(&mut good, &to_bytes(&Request::Metrics)).unwrap();
    for round in 0..48u64 {
        let bit = (mix(&[round, 0xf1u64]) % (good.len() as u64 * 8)) as usize;
        let mut bad = good.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        let mut s = raw_conn(&path);
        s.write_all(&bad).unwrap();
        let _ = s.shutdown(std::net::Shutdown::Write);
        match read_response(&mut s) {
            Response::Error {
                fault: WireFault::Malformed { .. },
            } => {}
            other => panic!("bit {bit}: expected Malformed, got {other:?}"),
        }
    }

    // After all of that the server still serves honest clients.
    let mut client = Client::connect(&path).unwrap();
    let spec = sweep_spec(3, Priority::Normal, false, 2);
    let id = client.submit(&spec).unwrap();
    let report = client.wait(id).unwrap();
    assert_eq!(report.state, SessionState::Finalized);
    client.shutdown().unwrap();
}

#[test]
fn cancel_over_the_socket_dequeues_a_queued_session() {
    // One runner jammed by a slow session keeps the next one Admitted
    // long enough to cancel it through the protocol.
    let daemon = Arc::new(Daemon::start(
        DaemonConfig {
            runners: 1,
            verify_cores: 2,
            queue_capacity: 16,
            ..DaemonConfig::default()
        },
        Arc::new(MemStore::new()),
    ));
    let (path, _handle) = start_server(&daemon, "cancel", ServerConfig::default());
    let mut client = Client::connect(&path).unwrap();
    let slow = SubmitSpec::new(
        "jam",
        GuestRef::AtomicCounter {
            workers: 2,
            iters: 20_000,
        },
        DoublePlayConfig::new(2).epoch_cycles(800),
    );
    let jam = client.submit(&slow).unwrap();
    let queued = client
        .submit(&sweep_spec(9, Priority::Low, false, 4))
        .unwrap();
    client
        .cancel(queued)
        .expect("queued session is cancellable");
    let report = client.status(queued).unwrap();
    assert_eq!(report.state, SessionState::Failed);
    assert_eq!(report.error.as_deref(), Some("cancelled by client"));
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.cancelled, 1);
    client.wait(jam).unwrap();
    client.shutdown().unwrap();
}

#[test]
fn resume_over_the_socket_continues_crashed_session_byte_identical() {
    // One runner so the resume stays queued while we probe status,
    // idempotency, and the attach stream across the crash boundary.
    let daemon = Arc::new(Daemon::start(
        DaemonConfig {
            runners: 1,
            ..DaemonConfig::default()
        },
        Arc::new(MemStore::new()),
    ));
    let (path, _handle) = start_server(&daemon, "resume", ServerConfig::default());
    let mut client = Client::connect(&path).unwrap();
    let base = SubmitSpec::new(
        "reborn",
        GuestRef::AtomicCounter {
            workers: 2,
            iters: 400,
        },
        DoublePlayConfig::new(2).epoch_cycles(800),
    );
    let session = base.to_session_spec().unwrap();
    let (solo, offsets) = solo_with_offsets(&session);
    assert!(offsets.len() >= 2);
    // The crash model: the sink tears mid-epoch-2 on attempt 0 only (the
    // bytes are gone, the device is fine), no restart budget.
    let mut spec = base;
    spec.restart_budget = 0;
    spec.transient_sink_faults = true;
    spec.sink_faults = {
        let mut f = dp_os::SinkFaults::none();
        f.torn_at = Some((offsets[0] + offsets[1]) / 2);
        f
    };
    let id = client.submit(&spec).unwrap();
    let crashed = client.wait(id).unwrap();
    assert_eq!(crashed.state, SessionState::Salvaged, "{:?}", crashed.error);
    assert_eq!(crashed.epochs, 1);

    // Jam the runner, then resume: the session re-queues as Resuming.
    let jam = client
        .submit(&SubmitSpec::new(
            "jam",
            GuestRef::AtomicCounter {
                workers: 2,
                iters: 20_000,
            },
            DoublePlayConfig::new(2).epoch_cycles(800),
        ))
        .unwrap();
    let from = client.resume(id).unwrap();
    assert_eq!(from, 1, "resume from the one committed epoch");
    let st = client.status(id).unwrap();
    assert_eq!(st.state, SessionState::Resuming { from_epoch: 1 });
    // A racing second client double-resumes: same answer, no re-admission.
    let mut second = Client::connect(&path).unwrap();
    assert_eq!(second.resume(id).unwrap(), 1);

    // Attach before the resumed attempt runs: the stream must carry the
    // salvaged prefix and the post-crash epochs as one seamless journal.
    let attach_path = path.clone();
    let attacher = std::thread::spawn(move || {
        let mut c = Client::connect(&attach_path).unwrap();
        let mut out = Vec::new();
        let outcome = c.attach(id, &mut out).unwrap();
        (outcome, out)
    });
    let (outcome, streamed) = attacher.join().unwrap();
    assert_eq!(outcome.state, SessionState::Finalized);
    assert!(outcome.clean);
    assert_eq!(
        streamed, solo,
        "attach across the crash boundary diverges from an uninterrupted run"
    );
    assert_eq!(daemon.store().durable(id).unwrap(), solo);
    let m = client.metrics().unwrap();
    assert_eq!(m.resumed, 1, "double-resume must admit exactly once");
    assert_eq!(m.resume_failed, 0);
    client.wait(jam).unwrap();
    client.shutdown().unwrap();
}

#[test]
fn resume_refusals_and_idempotent_submit_over_the_socket() {
    let (_daemon, path) = start_default("resume-refuse");
    let mut client = Client::connect(&path).unwrap();
    match client.resume(SessionId(404)) {
        Err(ClientError::Fault(WireFault::UnknownSession { id })) => assert_eq!(id, SessionId(404)),
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    // A finalized session refuses with the typed wrong-state detail.
    let spec = sweep_spec(21, Priority::Normal, false, 0);
    let id = client.submit(&spec).unwrap();
    assert_eq!(client.wait(id).unwrap().state, SessionState::Finalized);
    match client.resume(id) {
        Err(ClientError::Fault(WireFault::NotResumable { id: got, detail })) => {
            assert_eq!(got, id);
            assert!(detail.contains("only salvaged sessions resume"), "{detail}");
        }
        other => panic!("expected NotResumable, got {other:?}"),
    }
    // Idempotent re-submission: a reconnecting client re-issues Submit
    // with its token and gets the original id, not a duplicate session.
    let tok = sweep_spec(22, Priority::Normal, false, 1).idempotency("submit-tok-1");
    let first = client.submit(&tok).unwrap();
    let mut reconnected = Client::connect(&path).unwrap();
    let again = reconnected.submit(&tok).unwrap();
    assert_eq!(first, again, "token must dedupe across connections");
    let admitted = client.metrics().unwrap().admitted;
    assert_eq!(
        admitted, 2,
        "one for the finalized probe, one for the token"
    );
    client.wait(first).unwrap();
    client.shutdown().unwrap();
}

#[test]
fn handshake_mismatches_are_refused() {
    let (_daemon, path) = start_default("hello");
    // A client speaking the wrong magic is refused at handshake; the
    // server stays up.
    let mut s = UnixStream::connect(&path).unwrap();
    s.write_all(b"NOPE\x01\x00\x00\x00").unwrap();
    s.flush().unwrap();
    // Server read our bad hello and closed; our read sees its hello then
    // EOF, never a frame.
    let mut client = Client::connect(&path).unwrap();
    client.sessions().unwrap();
    client.shutdown().unwrap();
    // The socket file is gone once serve() returns.
    std::thread::sleep(std::time::Duration::from_millis(100));
    assert!(!sock_path("hello").exists());
}
