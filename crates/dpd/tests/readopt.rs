//! Crash-restart journal re-adoption: a daemon booting over a `DirStore`
//! directory a previous incarnation died in must re-adopt every journal
//! — finalized ones as `Finalized`, truncated ones as `Salvaged` with
//! exactly the committed epoch prefix (swept across crash instants), and
//! junk as reported garbage that never wedges boot.

mod common;

use common::{scratch_dir, solo_with_offsets, start_server};
use dp_core::DoublePlayConfig;
use dp_dpd::{
    guests, Client, Daemon, DaemonConfig, DirStore, GuestRef, OrphanClass, ServerConfig, SessionId,
    SessionSpec, SessionState, SessionStore, SubmitSpec,
};
use dp_support::rng::mix;
use std::sync::Arc;

fn boot(dir: &std::path::Path) -> Arc<Daemon<DirStore>> {
    Arc::new(Daemon::start(
        DaemonConfig::default(),
        Arc::new(DirStore::new(dir).unwrap()),
    ))
}

#[test]
fn readoption_recovers_the_exact_commit_prefix_at_every_crash_instant() {
    let spec = SessionSpec::new(
        "victim",
        guests::atomic_counter(2, 600),
        DoublePlayConfig::new(2)
            .epoch_cycles(700)
            .hidden_seed(mix(&[7, 0xcab])),
    );
    let (solo, offsets) = solo_with_offsets(&spec);
    assert!(offsets.len() >= 3, "victim too small to cut interestingly");
    let total = solo.len() as u64;

    // Crash instants across the whole journal, a seeded arbitrary one,
    // and the no-crash control (the full journal, finalized cleanly).
    let mut crash_points: Vec<u64> = (1..8).map(|k| total * k / 8).collect();
    crash_points.push(mix(&[0x5eed, total]) % total);
    crash_points.push(total);

    for &crash_at in &crash_points {
        let dir = scratch_dir(&format!("readopt-{crash_at}"));
        // The journal exactly as the dying daemon left it: a prefix of
        // the deterministic byte stream, torn at an arbitrary instant.
        std::fs::write(dir.join("s0001-victim.dprj"), &solo[..crash_at as usize]).unwrap();

        let daemon = boot(&dir);
        let orphans = daemon.adopt_orphans().unwrap();
        assert_eq!(orphans.len(), 1, "crash_at={crash_at}");
        let expected = offsets.iter().filter(|&&o| o <= crash_at).count();

        let rows = daemon.sessions();
        if crash_at == total {
            assert!(
                matches!(orphans[0].class, OrphanClass::Finalized { .. }),
                "full journal must re-adopt clean (got {:?})",
                orphans[0].class
            );
            assert_eq!(rows[0].state, SessionState::Finalized);
        } else {
            match &orphans[0].class {
                OrphanClass::Salvageable { epochs, .. } => assert_eq!(
                    *epochs as usize, expected,
                    "crash_at={crash_at}: salvage != commit-offset oracle"
                ),
                OrphanClass::Garbage { .. } => assert_eq!(
                    expected, 0,
                    "crash_at={crash_at}: journal called garbage but oracle expects epochs"
                ),
                other => panic!("crash_at={crash_at}: unexpected class {other:?}"),
            }
        }
        if let Some(row) = rows.first() {
            assert_eq!(row.id, SessionId(1));
            assert_eq!(row.epochs as usize, expected, "crash_at={crash_at}");
            // The adopted journal is servable: durable bytes are exactly
            // what the dead incarnation persisted.
            assert_eq!(
                daemon.store().durable(SessionId(1)).unwrap(),
                &solo[..crash_at as usize]
            );
        }

        // The new incarnation records fresh sessions with non-colliding
        // ids in the same directory.
        let fresh = daemon
            .submit(SessionSpec::new(
                "fresh",
                guests::atomic_counter(2, 300),
                DoublePlayConfig::new(2).epoch_cycles(700),
            ))
            .unwrap();
        assert!(fresh.0 > 1, "fresh id must not collide with adopted ones");
        daemon.drain();
        assert_eq!(daemon.report(fresh).unwrap().state, SessionState::Finalized);
        match Arc::try_unwrap(daemon) {
            Ok(d) => d.shutdown(),
            Err(_) => panic!("daemon still shared"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn garbage_in_the_store_is_reported_and_never_wedges_boot() {
    let dir = scratch_dir("readopt-garbage");
    // Everything a crashed or misbehaving incarnation might leave:
    std::fs::write(dir.join("s0001-empty.dprj"), b"").unwrap(); // zero-length
    std::fs::write(dir.join("s0002-half.dprj.tmp"), b"partial").unwrap(); // torn tmp
    std::fs::write(dir.join("s0003-junk.dprj"), [0xabu8; 64]).unwrap(); // not a journal
    std::fs::write(dir.join("notes.txt"), b"operator scribbles").unwrap();
    std::fs::write(dir.join("weird.dprj"), b"DPRJ????").unwrap(); // bad name

    let daemon = boot(&dir);
    let orphans = daemon.adopt_orphans().unwrap();
    assert_eq!(orphans.len(), 5);
    assert!(
        orphans
            .iter()
            .all(|o| matches!(o.class, OrphanClass::Garbage { .. })),
        "every file should classify as garbage: {orphans:?}"
    );
    assert!(daemon.sessions().is_empty(), "garbage must not become rows");
    let notes = daemon.orphan_notes();
    assert_eq!(notes.len(), 5);
    assert!(notes.iter().any(|n| n.contains("zero-length")), "{notes:?}");
    assert!(
        notes.iter().any(|n| n.contains("temporary leftover")),
        "{notes:?}"
    );

    // Boot is not wedged: the daemon serves over a socket and records.
    let (path, _handle) = start_server(&daemon, "readopt-garbage", ServerConfig::default());
    let mut client = Client::connect(&path).unwrap();
    let id = client
        .submit(&SubmitSpec::new(
            "after-garbage",
            GuestRef::AtomicCounter {
                workers: 2,
                iters: 300,
            },
            DoublePlayConfig::new(2).epoch_cycles(700),
        ))
        .unwrap();
    let report = client.wait(id).unwrap();
    assert_eq!(report.state, SessionState::Finalized);
    // The garbage notes travel to protocol clients too.
    let (_, notes) = client.sessions().unwrap();
    assert_eq!(notes.len(), 5);
    client.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_incarnations_chain_their_sessions() {
    let dir = scratch_dir("readopt-chain");
    // Incarnation 1 records two sessions to completion and is dropped
    // without cleanup (the kill -9 stand-in for in-process tests).
    let first = boot(&dir);
    for i in 0..2 {
        first
            .submit(SessionSpec::new(
                format!("gen1-{i}"),
                guests::atomic_counter(2, 300 + 50 * i),
                DoublePlayConfig::new(2).epoch_cycles(700),
            ))
            .unwrap();
    }
    first.drain();
    let gen1_rows = first.sessions();
    match Arc::try_unwrap(first) {
        Ok(d) => d.shutdown(),
        Err(_) => panic!("daemon still shared"),
    }

    // Incarnation 2 re-adopts both and keeps counting ids upward.
    let second = boot(&dir);
    let orphans = second.adopt_orphans().unwrap();
    assert_eq!(orphans.len(), 2);
    let rows = second.sessions();
    assert_eq!(rows.len(), 2);
    for (adopted, original) in rows.iter().zip(&gen1_rows) {
        assert_eq!(adopted.id, original.id);
        assert_eq!(adopted.state, SessionState::Finalized);
        assert_eq!(adopted.epochs, original.epochs);
    }
    let fresh = second
        .submit(SessionSpec::new(
            "gen2",
            guests::atomic_counter(2, 300),
            DoublePlayConfig::new(2).epoch_cycles(700),
        ))
        .unwrap();
    assert_eq!(fresh, SessionId(3));
    second.drain();
    assert_eq!(second.metrics().adopted, 2);
    match Arc::try_unwrap(second) {
        Ok(d) => d.shutdown(),
        Err(_) => panic!("daemon still shared"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
