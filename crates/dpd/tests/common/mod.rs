//! Shared harness for the `dpnet` socket tests: unique socket paths (the
//! test binary runs tests concurrently in one process), a server spun up
//! on a background thread, and the solo-run commit-offset oracle the
//! crash properties compare against.

#![allow(dead_code)] // each test binary uses its own subset

use dp_core::{record_to, JournalWriter, RecordSink, RecordingMeta};
use dp_dpd::{Daemon, ServerConfig, SessionSpec, SessionStore};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A socket path unique to this process and tag, in the system temp dir
/// (unix-socket paths have a ~100-byte limit, so not under target/).
pub fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dpnet-{}-{tag}.sock", std::process::id()))
}

/// A scratch directory unique to this process and tag.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpnet-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Serves `daemon` on a fresh socket from a background thread, returning
/// once the socket is accepting. Join the handle after a client sends
/// shutdown.
pub fn start_server<S: SessionStore + 'static>(
    daemon: &Arc<Daemon<S>>,
    tag: &str,
    cfg: ServerConfig,
) -> (PathBuf, JoinHandle<io::Result<()>>) {
    let path = sock_path(tag);
    let _ = std::fs::remove_file(&path);
    let d = daemon.clone();
    let p = path.clone();
    let handle = std::thread::spawn(move || dp_dpd::serve(&d, &p, cfg));
    let deadline = Instant::now() + Duration::from_secs(5);
    while !path.exists() {
        assert!(Instant::now() < deadline, "server never bound {path:?}");
        std::thread::sleep(Duration::from_millis(2));
    }
    (path, handle)
}

/// A solo run of `spec` capturing the journal bytes and each epoch's
/// commit byte offset — the oracle for "salvages to exactly the
/// committed prefix".
pub fn solo_with_offsets(spec: &SessionSpec) -> (Vec<u8>, Vec<u64>) {
    struct Tap {
        w: JournalWriter<Vec<u8>>,
        offsets: Vec<u64>,
    }
    impl RecordSink for Tap {
        fn begin(
            &mut self,
            meta: &RecordingMeta,
            initial: &dp_core::CheckpointImage,
        ) -> io::Result<()> {
            self.w.begin(meta, initial)
        }
        fn epoch(&mut self, e: &dp_core::EpochRecord) -> io::Result<()> {
            self.w.epoch(e)?;
            self.offsets.push(self.w.bytes_written());
            Ok(())
        }
        fn finish(&mut self) -> io::Result<()> {
            self.w.finish()
        }
    }
    let mut tap = Tap {
        w: JournalWriter::new(Vec::new()).unwrap(),
        offsets: Vec::new(),
    };
    record_to(&spec.guest, &spec.config, &mut tap).unwrap();
    (tap.w.into_inner(), tap.offsets)
}
