//! Typed admission outcomes: the service sheds load, it never hangs.

use dp_core::ConfigError;
use std::fmt;
use std::time::Duration;

/// Why a submission was not admitted. Every variant is immediate and
/// typed — the daemon never blocks a submitter and never panics on bad
/// input.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitError {
    /// The bounded admission queue is full. `retry_after` estimates when a
    /// slot frees up (queue depth × smoothed session runtime / runners);
    /// clients back off for that long and resubmit.
    Rejected {
        /// Sessions queued at rejection time.
        queued: usize,
        /// The configured queue capacity.
        capacity: usize,
        /// Suggested client back-off before resubmitting.
        retry_after: Duration,
    },
    /// The daemon is draining for shutdown and accepts no new sessions.
    Draining,
    /// The submitted recorder configuration is structurally invalid
    /// (degenerate worker counts — see [`dp_core::validate_worker_counts`]).
    Invalid(ConfigError),
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Rejected {
                queued,
                capacity,
                retry_after,
            } => write!(
                f,
                "admission queue full ({queued}/{capacity}); retry after {}ms",
                retry_after.as_millis()
            ),
            AdmitError::Draining => write!(f, "daemon is draining; no new sessions"),
            AdmitError::Invalid(e) => write!(f, "invalid session config: {e}"),
        }
    }
}

impl std::error::Error for AdmitError {}

impl From<ConfigError> for AdmitError {
    fn from(e: ConfigError) -> Self {
        AdmitError::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_operator_context() {
        let e = AdmitError::Rejected {
            queued: 9,
            capacity: 8,
            retry_after: Duration::from_millis(250),
        };
        let s = e.to_string();
        assert!(s.contains("9/8"));
        assert!(s.contains("250ms"));
        assert!(AdmitError::Draining.to_string().contains("draining"));
        let inv = AdmitError::from(ConfigError::PipelinedWithoutWorkers);
        assert!(inv.to_string().contains("spare worker"));
    }
}
