//! The daemon: registry, runner pool, verify-core leases, supervision.
//!
//! One mutex-guarded [`Registry`] holds every session as a row; a fixed
//! pool of runner threads claims queued sessions and executes recording
//! attempts outside the lock. The shared verify-core pool is a counting
//! lease: a pipelined session needs `spare_workers` permits to run
//! pipelined; when permits are short, low-priority sessions (and sessions
//! whose demand exceeds the whole pool) *degrade* to the serialized
//! driver instead of waiting — recording the same bytes (the pipelined
//! flag is not wire-encoded) at lower throughput, which is the graceful
//! form of backpressure. Every attempt runs under `catch_unwind`, so a
//! panicking session is a row update, never a dead daemon.

use crate::admission::AdmitError;
use crate::session::{Priority, SessionError, SessionId, SessionReport, SessionSpec, SessionState};
use crate::store::{DirStore, Orphan, OrphanClass, SessionStore};
use dp_core::{
    record_to, resume_from, DoublePlayConfig, GuestSpec, JournalReader, JournalWriter,
    RecordingMeta, ShardedJournalWriter, DEFAULT_SHARD_BATCH,
};
use dp_os::FaultedSink;
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Claim passes a core-short queue head survives before the scheduler
/// earmarks freed cores for it (the anti-starvation threshold).
const STARVATION_PASS_LIMIT: u32 = 16;

/// Admission-wait samples kept for the latency percentiles — a sliding
/// window over the most recent first-claims, so a long-lived daemon's
/// metrics stay O(window) in memory and reflect *recent* behaviour.
const ADMISSION_WINDOW: usize = 1024;

/// Service-level tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct DaemonConfig {
    /// Runner threads — the maximum number of concurrently recording
    /// sessions.
    pub runners: usize,
    /// Size of the shared verify-core pool pipelined sessions lease from.
    pub verify_cores: usize,
    /// Bound on queued (not yet claimed) sessions; submissions beyond it
    /// are shed with [`AdmitError::Rejected`]. Retries of already-admitted
    /// sessions re-queue regardless — admission is the only gate.
    pub queue_capacity: usize,
    /// Per-daemon (per-boot) crash-resume budget: at most this many
    /// [`resume`](Daemon::resume) requests are accepted for the daemon's
    /// lifetime, bounding the prefix re-enactment work one boot can take
    /// on. This is deliberately *not* per-attempt: a crash-looping machine
    /// must converge on serving fresh work, not re-replay forever.
    pub resume_budget: u32,
    /// Admission lane resumed sessions re-queue on. Resumes flow through
    /// the normal claim path — they share runners and verify cores with
    /// fresh sessions at exactly this priority, nothing more.
    pub resume_priority: Priority,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            runners: 4,
            verify_cores: 8,
            queue_capacity: 64,
            resume_budget: 16,
            resume_priority: Priority::Normal,
        }
    }
}

/// Aggregate service counters, for `dpd-load`, `dp serve`, and E14.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonMetrics {
    /// Sessions admitted.
    pub admitted: u64,
    /// Submissions shed with [`AdmitError::Rejected`].
    pub rejected: u64,
    /// Sessions that reached [`SessionState::Finalized`].
    pub finalized: u64,
    /// Sessions that reached [`SessionState::Salvaged`].
    pub salvaged: u64,
    /// Sessions that reached [`SessionState::Failed`].
    pub failed: u64,
    /// Attempts re-queued after a contained failure.
    pub retries: u64,
    /// Attempts run serialized because the verify-core pool was
    /// oversubscribed.
    pub degraded_runs: u64,
    /// Epochs committed across all terminal sessions (their journals'
    /// salvageable view).
    pub epochs_committed: u64,
    /// Median queue wait from submission to first claim, nanoseconds.
    /// Nearest-rank over a sliding window of the most recent admissions
    /// (up to 1024 samples) — not the daemon's whole lifetime.
    pub admission_p50_ns: u64,
    /// 99th-percentile queue wait, nanoseconds. Same sliding-window
    /// nearest-rank semantics as `admission_p50_ns`.
    pub admission_p99_ns: u64,
    /// Queued sessions cancelled by a client before a runner claimed them
    /// (counted separately from `failed`: no attempt ever ran).
    pub cancelled: u64,
    /// Sessions re-adopted from a previous incarnation's store at boot.
    /// Their terminal states are *not* folded into `finalized` /
    /// `salvaged` — those count this incarnation's own work.
    pub adopted: u64,
    /// Crash-resume requests accepted (the session re-queued as
    /// [`SessionState::Resuming`]). A resumed session that finalizes
    /// counts in `finalized` like any other.
    pub resumed: u64,
    /// Crash-resumes that did not finalize: the salvaged prefix failed to
    /// parse or re-enact, the store refused the append-reopen, or the
    /// resumed run itself failed. The session row keeps the typed detail.
    pub resume_failed: u64,
}

dp_support::impl_wire_struct!(DaemonMetrics {
    admitted,
    rejected,
    finalized,
    salvaged,
    failed,
    retries,
    degraded_runs,
    epochs_committed,
    admission_p50_ns,
    admission_p99_ns,
    cancelled,
    adopted,
    resumed,
    resume_failed,
});

/// One registry row.
struct Session {
    spec: SessionSpec,
    state: SessionState,
    /// Attempts started (the next attempt to run is `attempts`).
    attempts: u32,
    epochs: u32,
    degraded: bool,
    submitted_at: Instant,
    admission_wait_ns: Option<u64>,
    error: Option<String>,
    /// Claim passes that skipped this queued session because its core
    /// demand outstripped the free pool (the starvation detector).
    bypassed: u32,
    /// Set while a crash-resume is queued or running: the epoch the
    /// resumed attempt continues from (= epochs in the salvaged prefix).
    resume_from: Option<u32>,
    /// True for rows re-adopted from a previous incarnation's store —
    /// their spec is a placeholder until a resume reconstructs it from
    /// the journal's metadata.
    adopted: bool,
}

/// All daemon state behind one lock. Runners hold it only to claim and to
/// retire; recording itself runs unlocked.
struct Registry {
    next_id: u64,
    sessions: HashMap<u64, Session>,
    /// Queued session ids, one FIFO deque per priority lane.
    lanes: [VecDeque<u64>; 3],
    free_cores: usize,
    active: usize,
    draining: bool,
    shutdown: bool,
    /// A starved core-waiting session that freed cores are earmarked for:
    /// while set, no other session may take cores (degrade-and-run and
    /// zero-core claims still pass), so the pool can only refill until the
    /// reservation holder fits.
    reserved: Option<u64>,
    /// Exponentially smoothed attempt runtime, for `retry_after` hints.
    ewma_run_ns: f64,
    /// Sliding window (most recent [`ADMISSION_WINDOW`] samples) of
    /// submission-to-first-claim waits, feeding the metrics percentiles.
    admission_waits: VecDeque<u64>,
    /// Operator-facing notes from boot re-adoption: one line per garbage
    /// file found in the store directory (surfaced by session listings).
    orphan_notes: Vec<String>,
    /// Crash-resume requests this boot may still accept (counts down from
    /// [`DaemonConfig::resume_budget`]).
    resume_budget_left: u32,
    /// Idempotency-token dedup map: token → admitted session id. A
    /// re-submission bearing a known token is answered with the original
    /// id instead of admitting a duplicate.
    idempotency: HashMap<String, u64>,
    metrics: DaemonMetrics,
}

struct Inner<S: SessionStore + ?Sized> {
    cfg: DaemonConfig,
    reg: Mutex<Registry>,
    cv: Condvar,
    store: Arc<S>,
}

/// A claimed unit of work: run `sid`'s next attempt holding `lease`
/// verify-core permits (0 under degradation or for sequential configs).
struct Claim {
    sid: u64,
    attempt: u32,
    lease: usize,
    degraded: bool,
    spec: SessionSpec,
    /// `Some(from_epoch)` for a crash-resume attempt: continue the
    /// existing journal instead of rewriting it.
    resume_from: Option<u32>,
}

/// The multi-session recording service. See the crate docs for the
/// contract; see [`DaemonConfig`] for sizing.
pub struct Daemon<S: SessionStore + 'static> {
    inner: Arc<Inner<S>>,
    runners: Vec<JoinHandle<()>>,
}

impl<S: SessionStore + 'static> Daemon<S> {
    /// Starts the runner pool over `store`.
    pub fn start(cfg: DaemonConfig, store: Arc<S>) -> Self {
        let inner = Arc::new(Inner {
            cfg,
            reg: Mutex::new(Registry {
                next_id: 1,
                sessions: HashMap::new(),
                lanes: Default::default(),
                free_cores: cfg.verify_cores,
                active: 0,
                draining: false,
                shutdown: false,
                reserved: None,
                ewma_run_ns: 0.0,
                admission_waits: VecDeque::new(),
                orphan_notes: Vec::new(),
                resume_budget_left: cfg.resume_budget,
                idempotency: HashMap::new(),
                metrics: DaemonMetrics::default(),
            }),
            cv: Condvar::new(),
            store,
        });
        let runners = (0..cfg.runners.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("dpd-runner-{i}"))
                    .spawn(move || runner_loop(&*inner))
                    .expect("spawn dpd runner")
            })
            .collect();
        Daemon { inner, runners }
    }

    /// The session store this daemon records into — the attach path
    /// reads durable bytes through it.
    pub fn store(&self) -> Arc<S> {
        self.inner.store.clone()
    }

    /// Submits a session. Returns its id, or a typed admission error —
    /// never blocks, never panics on bad input.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Invalid`] for degenerate configurations,
    /// [`AdmitError::Draining`] during shutdown, [`AdmitError::Rejected`]
    /// (with a back-off hint) when the admission queue is full.
    pub fn submit(&self, spec: SessionSpec) -> Result<SessionId, AdmitError> {
        spec.config.validate()?;
        let mut guard = self_lock(&self.inner);
        let reg = &mut *guard;
        // Idempotent re-submission: a client that lost its connection
        // mid-Submit re-issues with the same token and gets the already
        // admitted session's id back — checked before every other gate,
        // because the original admission already paid them.
        if !spec.idempotency.is_empty() {
            if let Some(&id) = reg.idempotency.get(&spec.idempotency) {
                return Ok(SessionId(id));
            }
        }
        if reg.draining || reg.shutdown {
            return Err(AdmitError::Draining);
        }
        let queued: usize = reg.lanes.iter().map(VecDeque::len).sum();
        if queued >= self.inner.cfg.queue_capacity {
            reg.metrics.rejected += 1;
            let retry_after = retry_after(reg, &self.inner.cfg, queued);
            return Err(AdmitError::Rejected {
                queued,
                capacity: self.inner.cfg.queue_capacity,
                retry_after,
            });
        }
        let id = reg.next_id;
        reg.next_id += 1;
        let lane = spec.priority.lane();
        if !spec.idempotency.is_empty() {
            reg.idempotency.insert(spec.idempotency.clone(), id);
        }
        reg.sessions.insert(
            id,
            Session {
                spec,
                state: SessionState::Admitted,
                attempts: 0,
                epochs: 0,
                degraded: false,
                submitted_at: Instant::now(),
                admission_wait_ns: None,
                error: None,
                bypassed: 0,
                resume_from: None,
                adopted: false,
            },
        );
        reg.lanes[lane].push_back(id);
        reg.metrics.admitted += 1;
        self.inner.cv.notify_all();
        Ok(SessionId(id))
    }

    /// [`submit`](Daemon::submit), retrying up to `tries` times on
    /// [`AdmitError::Rejected`] with the suggested (capped) back-off —
    /// the polite client loop, shared by the load generator and the soak.
    ///
    /// # Errors
    ///
    /// The last admission error once retries are exhausted.
    pub fn submit_retrying(
        &self,
        spec: SessionSpec,
        tries: usize,
    ) -> Result<SessionId, AdmitError> {
        let mut last = None;
        for _ in 0..tries.max(1) {
            match self.submit(spec.clone()) {
                Ok(id) => return Ok(id),
                Err(e @ AdmitError::Rejected { .. }) => {
                    let AdmitError::Rejected { retry_after, .. } = e else {
                        unreachable!()
                    };
                    last = Some(e);
                    std::thread::sleep(retry_after.min(Duration::from_millis(10)));
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("tries >= 1"))
    }

    /// A snapshot of one session's row.
    pub fn report(&self, id: SessionId) -> Option<SessionReport> {
        let reg = self_lock(&self.inner);
        reg.sessions.get(&id.0).map(|s| snapshot(id.0, s))
    }

    /// Snapshots every session, ordered by id.
    pub fn sessions(&self) -> Vec<SessionReport> {
        let reg = self_lock(&self.inner);
        let mut rows: Vec<SessionReport> = reg
            .sessions
            .iter()
            .map(|(&id, s)| snapshot(id, s))
            .collect();
        rows.sort_by_key(|r| r.id);
        rows
    }

    /// Cancels a queued session: it leaves its lane and turns terminal
    /// ([`SessionState::Failed`] with a "cancelled by client" error)
    /// without any attempt running. Only [`SessionState::Admitted`]
    /// sessions are cancellable — a running attempt is never killed
    /// mid-journal (its journal would be a torn lie), and terminal rows
    /// are history.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownSession`] for an id the registry has never
    /// seen, [`SessionError::NotCancellable`] for any non-queued state.
    pub fn cancel(&self, id: SessionId) -> Result<(), SessionError> {
        let mut guard = self_lock(&self.inner);
        let reg = &mut *guard;
        let Some(s) = reg.sessions.get_mut(&id.0) else {
            return Err(SessionError::UnknownSession(id));
        };
        if s.state != SessionState::Admitted {
            return Err(SessionError::NotCancellable { id, state: s.state });
        }
        s.state = SessionState::Failed;
        s.error = Some("cancelled by client".into());
        let lane = s.spec.priority.lane();
        reg.lanes[lane].retain(|&sid| sid != id.0);
        if reg.reserved == Some(id.0) {
            reg.reserved = None;
        }
        reg.metrics.cancelled += 1;
        self.inner.cv.notify_all();
        Ok(())
    }

    /// Crash-resumes a [`SessionState::Salvaged`] session: its journal's
    /// committed prefix stays byte-for-byte in place, the recorder
    /// re-enacts it to reconstruct the carried state, and recording
    /// continues from the next epoch — the finished journal is
    /// byte-identical to a run that never crashed. The session re-queues
    /// on the [`DaemonConfig::resume_priority`] lane and runs through the
    /// normal claim path, reported as [`SessionState::Resuming`] until it
    /// retires. Returns the epoch the resume continues from.
    ///
    /// Resuming is idempotent: a second request while the resume is
    /// queued or running (two racing clients, a reconnect) returns the
    /// same from-epoch without re-admitting anything.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownSession`] for an id the registry has never
    /// seen; [`SessionError::NotResumable`] when the session is not
    /// [`SessionState::Salvaged`], the per-boot
    /// [`DaemonConfig::resume_budget`] is spent, the durable prefix does
    /// not salvage, or (for adopted rows) the guest cannot be
    /// reconstructed from the journal's metadata.
    pub fn resume(&self, id: SessionId) -> Result<u32, SessionError> {
        let not = |detail: String| SessionError::NotResumable { id, detail };
        // Phase 1: validate the row and snapshot what reconstruction
        // needs, under the lock.
        let (spec, adopted) = {
            let reg = self_lock(&self.inner);
            let Some(s) = reg.sessions.get(&id.0) else {
                return Err(SessionError::UnknownSession(id));
            };
            match s.state {
                SessionState::Resuming { from_epoch } => return Ok(from_epoch),
                SessionState::Salvaged => {}
                state => {
                    return Err(not(format!(
                        "state is {state}; only salvaged sessions resume"
                    )))
                }
            }
            if reg.resume_budget_left == 0 {
                return Err(not("per-boot resume budget exhausted".into()));
            }
            (s.spec.clone(), s.adopted)
        };
        // Phase 2: read and salvage the durable prefix and, for adopted
        // rows, rebuild the real spec from the journal's metadata — pure
        // byte and program-builder work, outside the lock.
        let (meta, from_epoch) = match salvage_view(&*self.inner.store, id, spec.journal_shards) {
            Ok(v) => v,
            Err(detail) => {
                self_lock(&self.inner).metrics.resume_failed += 1;
                return Err(not(detail));
            }
        };
        let spec = if adopted {
            let Some(guest) = resolve_guest(&meta) else {
                self_lock(&self.inner).metrics.resume_failed += 1;
                return Err(not(format!(
                    "cannot reconstruct guest '{}' (program {:#x}) from journal metadata",
                    meta.guest_name, meta.program_hash
                )));
            };
            SessionSpec::new(spec.name, guest, meta.config).journal_shards(spec.journal_shards)
        } else {
            spec
        };
        // Phase 3: commit the transition, re-validating against a racing
        // resume (only the winner spends budget and queues).
        let mut guard = self_lock(&self.inner);
        let reg = &mut *guard;
        let s = reg
            .sessions
            .get_mut(&id.0)
            .expect("registry rows are never removed");
        match s.state {
            SessionState::Resuming { from_epoch } => return Ok(from_epoch),
            SessionState::Salvaged => {}
            state => {
                return Err(not(format!(
                    "state is {state}; only salvaged sessions resume"
                )))
            }
        }
        if reg.resume_budget_left == 0 {
            return Err(not("per-boot resume budget exhausted".into()));
        }
        reg.resume_budget_left -= 1;
        s.spec = spec;
        s.spec.priority = self.inner.cfg.resume_priority;
        s.resume_from = Some(from_epoch);
        s.state = SessionState::Resuming { from_epoch };
        reg.lanes[self.inner.cfg.resume_priority.lane()].push_back(id.0);
        reg.metrics.resumed += 1;
        self.inner.cv.notify_all();
        Ok(from_epoch)
    }

    /// Crash-resumes every re-adopted [`SessionState::Salvaged`] row (in
    /// id order, oldest first) until the per-boot resume budget runs out —
    /// the engine behind `dp serve --resume-adopted`. Returns each
    /// attempted id with its [`resume`](Daemon::resume) outcome, for the
    /// caller to print.
    pub fn resume_adopted(&self) -> Vec<(SessionId, Result<u32, SessionError>)> {
        let mut ids: Vec<u64> = {
            let reg = self_lock(&self.inner);
            reg.sessions
                .iter()
                .filter(|(_, s)| s.adopted && s.state == SessionState::Salvaged)
                .map(|(&id, _)| id)
                .collect()
        };
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| (SessionId(id), self.resume(SessionId(id))))
            .collect()
    }

    /// Adopts one session recovered from a previous incarnation as a
    /// terminal registry row under its **original** id, so listings,
    /// reports, and attach see it exactly as the dead daemon's clients
    /// would have. The id counter jumps past adopted ids, keeping new
    /// submissions collision-free. Returns `false` (and changes nothing)
    /// if the id is already taken or `state` is not terminal.
    pub fn adopt(
        &self,
        id: SessionId,
        name: &str,
        state: SessionState,
        epochs: u32,
        journal_shards: u32,
        error: Option<String>,
    ) -> bool {
        if !state.is_terminal() {
            return false;
        }
        let mut guard = self_lock(&self.inner);
        let reg = &mut *guard;
        if reg.sessions.contains_key(&id.0) {
            return false;
        }
        // Terminal rows are never scheduled, so the spec's guest/config
        // are inert placeholders — only name, priority, and shard count
        // surface in reports.
        let spec = SessionSpec::new(name, crate::guests::atomic_counter(1, 1), {
            DoublePlayConfig::new(1)
        })
        .journal_shards(journal_shards);
        reg.sessions.insert(
            id.0,
            Session {
                spec,
                state,
                attempts: 0,
                epochs,
                degraded: false,
                submitted_at: Instant::now(),
                admission_wait_ns: Some(0),
                error,
                bypassed: 0,
                resume_from: None,
                adopted: true,
            },
        );
        reg.next_id = reg.next_id.max(id.0 + 1);
        reg.metrics.adopted += 1;
        true
    }

    /// Records an operator-facing note (a garbage file found during boot
    /// re-adoption, for example) for session listings to surface.
    pub fn add_orphan_note(&self, note: impl Into<String>) {
        self_lock(&self.inner).orphan_notes.push(note.into());
    }

    /// The notes recorded by [`add_orphan_note`](Daemon::add_orphan_note)
    /// / [`adopt_orphans`](Daemon::adopt_orphans), in insertion order.
    pub fn orphan_notes(&self) -> Vec<String> {
        self_lock(&self.inner).orphan_notes.clone()
    }

    /// Aggregate counters plus admission-latency percentiles (computed
    /// nearest-rank over the sliding sample window — see
    /// [`DaemonMetrics::admission_p50_ns`]).
    pub fn metrics(&self) -> DaemonMetrics {
        let reg = self_lock(&self.inner);
        let mut m = reg.metrics;
        if !reg.admission_waits.is_empty() {
            let mut waits: Vec<u64> = reg.admission_waits.iter().copied().collect();
            waits.sort_unstable();
            m.admission_p50_ns = percentile(&waits, 50);
            m.admission_p99_ns = percentile(&waits, 99);
        }
        m
    }

    /// Stops admitting and blocks until every admitted session is
    /// terminal. Queued and running work completes normally.
    pub fn drain(&self) {
        let mut reg = self_lock(&self.inner);
        reg.draining = true;
        self.inner.cv.notify_all();
        while reg.sessions.values().any(|s| !s.state.is_terminal()) {
            reg = self
                .inner
                .cv
                .wait(reg)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Drains, stops the runner pool, and joins it.
    pub fn shutdown(self) {
        self.drain();
        {
            let mut reg = self_lock(&self.inner);
            reg.shutdown = true;
            self.inner.cv.notify_all();
        }
        for h in self.runners {
            let _ = h.join();
        }
    }
}

impl Daemon<DirStore> {
    /// Boot-time journal re-adoption: scans the store directory for
    /// journals a previous incarnation left behind and re-adopts every
    /// recoverable one — finalized journals become
    /// [`SessionState::Finalized`] rows, crash-cut ones
    /// [`SessionState::Salvaged`] rows at exactly their committed epoch
    /// count, both under their original ids with their backing paths
    /// registered (so attach and `durable` work). Garbage files become
    /// operator notes, never wedged sessions. Returns the scan for
    /// callers that want to print it.
    ///
    /// # Errors
    ///
    /// Store directory or file I/O failures.
    pub fn adopt_orphans(&self) -> std::io::Result<Vec<Orphan>> {
        let orphans = self.inner.store.scan_orphans()?;
        for o in &orphans {
            let (state, epochs, error) = match &o.class {
                OrphanClass::Finalized { epochs } => (SessionState::Finalized, *epochs, None),
                OrphanClass::Salvageable { epochs, detail } => (
                    SessionState::Salvaged,
                    *epochs,
                    Some(format!("re-adopted after daemon crash: {detail}")),
                ),
                OrphanClass::Garbage { reason } => {
                    self.add_orphan_note(format!("garbage: {} ({reason})", o.name));
                    continue;
                }
            };
            let Some(id) = o.id else { continue };
            let shards = o.files.iter().filter(|(k, _)| k.is_some()).count() as u32;
            if self.adopt(id, &o.name, state, epochs, shards, error) {
                for (shard, path) in &o.files {
                    self.inner.store.adopt_path(id, *shard, path.clone());
                }
            } else {
                self.add_orphan_note(format!("skipped: {} ({id} already registered)", o.name));
            }
        }
        Ok(orphans)
    }
}

/// The salvaged durable view of a session's journal as crash-resume
/// needs it: the recording metadata plus the committed epoch count.
/// Errors are operator-facing strings (they become the
/// [`SessionError::NotResumable`] detail).
fn salvage_view<S: SessionStore + ?Sized>(
    store: &S,
    id: SessionId,
    shards: u32,
) -> Result<(RecordingMeta, u32), String> {
    if shards >= 2 {
        let mut bufs = Vec::new();
        for k in 0..shards {
            bufs.push(
                store
                    .durable_shard(id, k)
                    .map_err(|e| format!("store read failed (shard {k}): {e}"))?,
            );
        }
        let s = JournalReader::salvage_shards(&bufs).map_err(|e| format!("salvage failed: {e}"))?;
        if s.shard_keep.iter().any(Option::is_none) {
            return Err("a shard stream is missing its header; cannot resume".into());
        }
        let epochs = s.committed() as u32;
        Ok((s.recording.meta, epochs))
    } else {
        let bytes = store
            .durable(id)
            .map_err(|e| format!("store read failed: {e}"))?;
        let s = JournalReader::salvage(&bytes).map_err(|e| format!("salvage failed: {e}"))?;
        let epochs = s.committed() as u32;
        Ok((s.recording.meta, epochs))
    }
}

/// Reconstructs an adopted session's guest from its journal metadata:
/// tiny service guests rebuild from their parameter-encoding names
/// ([`crate::guests::from_name`]); workload guests rebuild by sweeping
/// the suite's thread/size grid under the journaled name. Either way the
/// journal's program hash must confirm the reconstruction — a name
/// collision yields `None`, never a wrong guest (and even a hash-colliding
/// wrong guest would still die typed in the resume's per-epoch prefix
/// checks, not continue silently).
fn resolve_guest(meta: &RecordingMeta) -> Option<GuestSpec> {
    let confirm = |g: GuestSpec| (g.program_hash() == meta.program_hash).then_some(g);
    if let Some(g) = crate::guests::from_name(&meta.guest_name) {
        return confirm(g);
    }
    use dp_workloads::Size;
    for size in [Size::Small, Size::Medium, Size::Large] {
        for threads in 1..=8 {
            if let Some(case) = dp_workloads::find(&meta.guest_name, threads, size) {
                if let Some(g) = confirm(case.spec) {
                    return Some(g);
                }
            }
        }
    }
    None
}

/// Nearest-rank percentile of an ascending-sorted, non-empty sample:
/// `rank = ceil(pct/100 · n)`, clamped into `1..=n`, returning the
/// rank-th smallest. Unlike the floor-biased `sorted[n·pct/100]`, this is
/// exact for small n (n=10, p99 → the maximum, not the 9th value).
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len() as u64;
    let rank = (n * pct).div_ceil(100).max(1);
    sorted[(rank.min(n) - 1) as usize]
}

fn snapshot(id: u64, s: &Session) -> SessionReport {
    SessionReport {
        id: SessionId(id),
        name: s.spec.name.clone(),
        priority: s.spec.priority,
        state: s.state,
        attempts: s.attempts,
        epochs: s.epochs,
        degraded: s.degraded,
        admission_wait_ns: s.admission_wait_ns.unwrap_or(0),
        journal_shards: s.spec.journal_shards,
        error: s.error.clone(),
    }
}

/// The `retry_after` hint: queue depth over runner count, in units of the
/// smoothed attempt runtime (floored at 1ms so a cold daemon still
/// suggests a sane back-off).
fn retry_after(reg: &Registry, cfg: &DaemonConfig, queued: usize) -> Duration {
    let per_slot = reg.ewma_run_ns.max(1_000_000.0);
    let slots = (queued as f64 / cfg.runners.max(1) as f64).max(1.0);
    Duration::from_nanos((per_slot * slots) as u64)
}

/// Picks the next runnable session, FIFO within each lane, lanes in
/// priority order. A whole lane is scanned so one head session waiting
/// for a big core lease does not block smaller siblings behind it —
/// but only up to a point: a core-waiting session skipped
/// [`STARVATION_PASS_LIMIT`] times acquires a *reservation*, after which
/// freed cores are earmarked for it alone (no other session may take
/// cores; degrade-and-run and zero-core claims still pass), so the pool
/// refills monotonically until the starved head fits. Without this, a
/// continuous stream of narrow siblings can bypass a wide high-priority
/// session forever.
fn claim(reg: &mut Registry, cfg: &DaemonConfig) -> Option<Claim> {
    for lane in 0..reg.lanes.len() {
        let mut idx = 0;
        while idx < reg.lanes[lane].len() {
            let sid = reg.lanes[lane][idx];
            // A stale queue entry (no row) is dropped, not indexed into —
            // one bad id must never panic a runner mid-lock.
            let Some(s) = reg.sessions.get(&sid) else {
                reg.lanes[lane].remove(idx);
                continue;
            };
            let want = if s.spec.config.pipelined {
                s.spec.config.spare_workers
            } else {
                0
            };
            let core_taking = want > 0 && want <= reg.free_cores;
            let reserved_for_other = reg.reserved.is_some_and(|r| r != sid);
            let (lease, degraded) = if want == 0 {
                (0, false)
            } else if core_taking && !reserved_for_other {
                (want, false)
            } else if lane == 2 || want > cfg.verify_cores {
                // Low priority never waits for cores, and a demand larger
                // than the whole pool can never be satisfied: both degrade
                // to the serialized driver (same bytes, no lease).
                (0, true)
            } else {
                // Bypassed: cores are short (or earmarked for a starved
                // session). Count the pass; past the threshold this
                // session becomes the reservation holder.
                let s = reg.sessions.get_mut(&sid).expect("row checked above");
                s.bypassed += 1;
                if s.bypassed >= STARVATION_PASS_LIMIT && reg.reserved.is_none() {
                    reg.reserved = Some(sid);
                }
                idx += 1;
                continue;
            };
            reg.lanes[lane].remove(idx);
            reg.free_cores -= lease;
            if reg.reserved == Some(sid) {
                reg.reserved = None;
            }
            return Some(make_claim(reg, sid, lease, degraded));
        }
    }
    // Stall breaker: if nothing is running and nothing was claimable,
    // waiting can only deadlock — degrade the highest-priority head.
    // (With lease release on every retire this is belt-and-braces: an
    // idle pool is a full pool, so pass one should always have matched.)
    if reg.active == 0 {
        for lane in 0..reg.lanes.len() {
            if let Some(sid) = reg.lanes[lane].pop_front() {
                if reg.reserved == Some(sid) {
                    reg.reserved = None;
                }
                return Some(make_claim(reg, sid, 0, true));
            }
        }
    }
    None
}

fn make_claim(reg: &mut Registry, sid: u64, lease: usize, degraded: bool) -> Claim {
    reg.active += 1;
    if degraded {
        reg.metrics.degraded_runs += 1;
    }
    let s = reg
        .sessions
        .get_mut(&sid)
        .expect("claimed session has a row");
    let attempt = s.attempts;
    s.attempts += 1;
    // A claimed resume keeps its Resuming state so Status/Sessions report
    // the crash-resume (and its from-epoch) for the attempt's whole life.
    s.state = match s.resume_from {
        Some(from_epoch) => SessionState::Resuming { from_epoch },
        None => SessionState::Recording { attempt },
    };
    s.degraded |= degraded;
    s.bypassed = 0;
    if s.admission_wait_ns.is_none() {
        let wait = s.submitted_at.elapsed().as_nanos() as u64;
        s.admission_wait_ns = Some(wait);
        if reg.admission_waits.len() == ADMISSION_WINDOW {
            reg.admission_waits.pop_front();
        }
        reg.admission_waits.push_back(wait);
    }
    Claim {
        sid,
        attempt,
        lease,
        degraded,
        spec: s.spec.clone(),
        resume_from: s.resume_from,
    }
}

/// What one recording attempt produced, gathered outside the lock.
struct AttemptOutcome {
    /// `None` = the run returned cleanly.
    error: Option<String>,
    run_ns: u64,
}

fn runner_loop<S: SessionStore + ?Sized>(inner: &Inner<S>) {
    loop {
        let claimed = {
            let mut reg = self_lock(inner);
            loop {
                if let Some(c) = claim(&mut reg, &inner.cfg) {
                    break Some(c);
                }
                if reg.shutdown {
                    break None;
                }
                reg = inner.cv.wait(reg).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(c) = claimed else { return };
        let outcome = run_attempt(&*inner.store, &c);
        retire(inner, c, outcome);
    }
}

/// The single registry lock site: a poisoned mutex is *recovered*, not
/// propagated. Every registry mutation is transactional (row updates and
/// counter bumps complete before any panic-prone work, which runs outside
/// the lock), so the state behind a poisoned lock is consistent — and one
/// panicking API caller or runner must degrade to a row update, never to
/// a daemon where every subsequent `lock().unwrap()` panics too.
fn self_lock<S: SessionStore + ?Sized>(inner: &Inner<S>) -> MutexGuard<'_, Registry> {
    inner.reg.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Executes one attempt: open the store writer (faulted if the session's
/// sink-fault plan applies to this attempt), stream the journal, contain
/// panics. No daemon lock is held anywhere in here.
fn run_attempt<S: SessionStore + ?Sized>(store: &S, c: &Claim) -> AttemptOutcome {
    if c.resume_from.is_some() {
        return run_resume_attempt(store, c);
    }
    let started = Instant::now();
    let mut cfg = c.spec.config;
    if c.degraded {
        // Serialized degradation changes the execution strategy only:
        // `pipelined` is not wire-encoded, and `spare_workers` (which is)
        // stays untouched, so the journal bytes are identical to the
        // pipelined run the session asked for.
        cfg.pipelined = false;
    }
    let faulted =
        c.spec.sink_faults.is_active() && (c.attempt == 0 || !c.spec.transient_sink_faults);
    let wrap = |raw: Box<dyn Write + Send>| -> Box<dyn Write + Send> {
        if faulted {
            Box::new(FaultedSink::new(raw, c.spec.sink_faults))
        } else {
            raw
        }
    };
    let error = (|| -> Option<String> {
        if c.spec.journal_shards >= 2 {
            // Sharded journaling: one store stream per shard, group
            // commit inside the sharded writer. Sink faults wrap each
            // shard stream independently — a faulted device cuts shards
            // at uncorrelated points, which is exactly what the
            // cross-shard salvage must cope with.
            let mut sinks: Vec<Box<dyn Write + Send>> = Vec::new();
            for shard in 0..c.spec.journal_shards {
                match store.open_shard(SessionId(c.sid), &c.spec.name, c.attempt, shard) {
                    Ok(w) => sinks.push(wrap(w)),
                    Err(e) => return Some(format!("store open failed (shard {shard}): {e}")),
                }
            }
            let mut journal = match ShardedJournalWriter::new(sinks, DEFAULT_SHARD_BATCH) {
                Ok(j) => j,
                Err(e) => return Some(format!("journal preamble failed: {e}")),
            };
            match catch_unwind(AssertUnwindSafe(|| {
                record_to(&c.spec.guest, &cfg, &mut journal)
            })) {
                Ok(Ok(_bundle)) => None,
                Ok(Err(e)) => Some(e.to_string()),
                Err(payload) => Some(format!("session panicked: {}", panic_detail(&*payload))),
            }
        } else {
            let raw = match store.open(SessionId(c.sid), &c.spec.name, c.attempt) {
                Ok(w) => w,
                Err(e) => return Some(format!("store open failed: {e}")),
            };
            let mut journal = match JournalWriter::new(wrap(raw)) {
                Ok(j) => j,
                Err(e) => return Some(format!("journal preamble failed: {e}")),
            };
            match catch_unwind(AssertUnwindSafe(|| {
                record_to(&c.spec.guest, &cfg, &mut journal)
            })) {
                Ok(Ok(_bundle)) => None,
                Ok(Err(e)) => Some(e.to_string()),
                Err(payload) => Some(format!("session panicked: {}", panic_detail(&*payload))),
            }
        }
    })();
    AttemptOutcome {
        error,
        run_ns: started.elapsed().as_nanos() as u64,
    }
}

/// Executes one crash-resume attempt: salvage the durable prefix, reopen
/// every stream truncated to it and positioned for append, re-enact the
/// prefix, and continue recording. Unlike [`run_attempt`]'s truncating
/// opens, nothing here ever rewrites a committed byte. No daemon lock is
/// held anywhere in here.
fn run_resume_attempt<S: SessionStore + ?Sized>(store: &S, c: &Claim) -> AttemptOutcome {
    let started = Instant::now();
    let mut cfg = c.spec.config;
    if c.degraded {
        cfg.pipelined = false;
    }
    let faulted =
        c.spec.sink_faults.is_active() && (c.attempt == 0 || !c.spec.transient_sink_faults);
    let wrap = |raw: Box<dyn Write + Send>| -> Box<dyn Write + Send> {
        if faulted {
            Box::new(FaultedSink::new(raw, c.spec.sink_faults))
        } else {
            raw
        }
    };
    let error = (|| -> Option<String> {
        if c.spec.journal_shards >= 2 {
            let mut bufs = Vec::new();
            for k in 0..c.spec.journal_shards {
                match store.durable_shard(SessionId(c.sid), k) {
                    Ok(b) => bufs.push(b),
                    Err(e) => return Some(format!("store read failed (shard {k}): {e}")),
                }
            }
            let s = match JournalReader::salvage_shards(&bufs) {
                Ok(s) => s,
                Err(e) => return Some(format!("salvage failed: {e}")),
            };
            let Some(keeps) = s.shard_keep.iter().copied().collect::<Option<Vec<usize>>>() else {
                return Some("a shard stream is missing its header; cannot resume".into());
            };
            let mut sinks: Vec<Box<dyn Write + Send>> = Vec::new();
            for (k, keep) in keeps.iter().enumerate() {
                match store.open_resume_shard(SessionId(c.sid), k as u32, *keep as u64) {
                    Ok(w) => sinks.push(wrap(w)),
                    Err(e) => return Some(format!("store resume open failed (shard {k}): {e}")),
                }
            }
            let mut journal = match ShardedJournalWriter::resume(sinks, DEFAULT_SHARD_BATCH, &s) {
                Ok(j) => j,
                Err(e) => return Some(format!("journal resume failed: {e}")),
            };
            match catch_unwind(AssertUnwindSafe(|| {
                resume_from(&c.spec.guest, &cfg, s.recording, &mut journal)
            })) {
                Ok(Ok(_bundle)) => None,
                Ok(Err(e)) => Some(e.to_string()),
                Err(payload) => Some(format!("session panicked: {}", panic_detail(&*payload))),
            }
        } else {
            let bytes = match store.durable(SessionId(c.sid)) {
                Ok(b) => b,
                Err(e) => return Some(format!("store read failed: {e}")),
            };
            let s = match JournalReader::salvage(&bytes) {
                Ok(s) => s,
                Err(e) => return Some(format!("salvage failed: {e}")),
            };
            let raw = match store.open_resume(SessionId(c.sid), s.committed_bytes as u64) {
                Ok(w) => w,
                Err(e) => return Some(format!("store resume open failed: {e}")),
            };
            let mut journal = JournalWriter::resume_after(wrap(raw), &s);
            match catch_unwind(AssertUnwindSafe(|| {
                resume_from(&c.spec.guest, &cfg, s.recording, &mut journal)
            })) {
                Ok(Ok(_bundle)) => None,
                Ok(Err(e)) => Some(e.to_string()),
                Err(payload) => Some(format!("session panicked: {}", panic_detail(&*payload))),
            }
        }
    })();
    AttemptOutcome {
        error,
        run_ns: started.elapsed().as_nanos() as u64,
    }
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into())
}

/// Retires a finished attempt: release the lease, update the EWMA, then
/// either re-queue (contained failure, budget left) or classify the
/// durable journal into a terminal state.
fn retire<S: SessionStore + ?Sized>(inner: &Inner<S>, c: Claim, out: AttemptOutcome) {
    // Salvage the durable view outside the lock; it is pure byte work.
    // Both journal modes reduce to the same classification inputs: was
    // the durable view clean, and how many epochs does it commit.
    // Resumed attempts are always terminal: the prefix re-enactment is
    // deterministic, so a failed resume would fail identically on retry —
    // the row returns to Salvaged (re-resumable within budget) instead.
    let terminal =
        out.error.is_none() || c.resume_from.is_some() || c.attempt >= c.spec.restart_budget;
    let salvaged: Option<(bool, usize)> = if !terminal {
        None
    } else if c.spec.journal_shards >= 2 {
        let bufs: Vec<Vec<u8>> = (0..c.spec.journal_shards)
            .filter_map(|k| inner.store.durable_shard(SessionId(c.sid), k).ok())
            .collect();
        JournalReader::salvage_shards(&bufs)
            .ok()
            .map(|s| (s.clean, s.committed()))
    } else {
        match inner.store.durable(SessionId(c.sid)) {
            Ok(bytes) => JournalReader::salvage(&bytes)
                .ok()
                .map(|s| (s.clean, s.committed())),
            Err(_) => None,
        }
    };

    let mut guard = self_lock(inner);
    let reg = &mut *guard;
    // Saturating: a retire racing a recovered-from-poison state must
    // never underflow (and re-poison) the active count.
    reg.active = reg.active.saturating_sub(1);
    reg.free_cores += c.lease;
    reg.ewma_run_ns = if reg.ewma_run_ns == 0.0 {
        out.run_ns as f64
    } else {
        0.8 * reg.ewma_run_ns + 0.2 * out.run_ns as f64
    };

    let s = reg.sessions.get_mut(&c.sid).unwrap();
    s.error = out.error;
    s.resume_from = None;
    if !terminal {
        // Contained failure with budget left: back to the lane with a
        // fresh journal. Re-queues bypass the admission capacity gate —
        // the session was already admitted.
        s.state = SessionState::Admitted;
        reg.lanes[s.spec.priority.lane()].push_back(c.sid);
        reg.metrics.retries += 1;
    } else {
        let (state, epochs) = match (&salvaged, &s.error) {
            (Some((true, committed)), None) => (SessionState::Finalized, *committed),
            (Some((_, committed)), _) => (SessionState::Salvaged, *committed),
            (None, _) => (SessionState::Failed, 0),
        };
        s.state = state;
        s.epochs = epochs as u32;
        match state {
            SessionState::Finalized => reg.metrics.finalized += 1,
            SessionState::Salvaged => reg.metrics.salvaged += 1,
            _ => reg.metrics.failed += 1,
        }
        if let Some(from_epoch) = c.resume_from {
            // A resumed retire adds only the epochs recorded past the
            // crash point — the salvaged prefix was already counted when
            // the session first retired as Salvaged.
            reg.metrics.epochs_committed += (epochs as u64).saturating_sub(u64::from(from_epoch));
            if state != SessionState::Finalized {
                reg.metrics.resume_failed += 1;
            }
        } else {
            reg.metrics.epochs_committed += epochs as u64;
        }
    }
    inner.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guests;
    use crate::session::Priority;
    use crate::store::MemStore;
    use dp_core::{DoublePlayConfig, FaultPlan};

    fn tiny_config() -> DoublePlayConfig {
        DoublePlayConfig::new(2).epoch_cycles(800)
    }

    fn tiny_spec(name: &str) -> SessionSpec {
        SessionSpec::new(name, guests::atomic_counter(2, 400), tiny_config())
    }

    /// A solo run of the same spec: the byte-identity oracle.
    fn solo_bytes(spec: &SessionSpec) -> Vec<u8> {
        let mut w = JournalWriter::new(Vec::new()).unwrap();
        record_to(&spec.guest, &spec.config, &mut w).unwrap();
        w.into_inner()
    }

    /// A solo run instrumented with per-epoch commit byte offsets — the
    /// oracle for "salvages to exactly its committed prefix".
    fn solo_with_offsets(spec: &SessionSpec) -> (Vec<u8>, Vec<u64>) {
        struct Tap {
            w: JournalWriter<Vec<u8>>,
            offsets: Vec<u64>,
        }
        impl dp_core::RecordSink for Tap {
            fn begin(
                &mut self,
                meta: &dp_core::RecordingMeta,
                initial: &dp_core::CheckpointImage,
            ) -> std::io::Result<()> {
                self.w.begin(meta, initial)
            }
            fn epoch(&mut self, e: &dp_core::EpochRecord) -> std::io::Result<()> {
                self.w.epoch(e)?;
                self.offsets.push(self.w.bytes_written());
                Ok(())
            }
            fn finish(&mut self) -> std::io::Result<()> {
                self.w.finish()
            }
        }
        let mut tap = Tap {
            w: JournalWriter::new(Vec::new()).unwrap(),
            offsets: Vec::new(),
        };
        record_to(&spec.guest, &spec.config, &mut tap).unwrap();
        (tap.w.into_inner(), tap.offsets)
    }

    #[test]
    fn clean_session_finalizes_byte_identical_to_solo() {
        let store = Arc::new(MemStore::new());
        let daemon = Daemon::start(DaemonConfig::default(), store.clone());
        let spec = tiny_spec("clean");
        let solo = solo_bytes(&spec);
        let id = daemon.submit(spec).unwrap();
        daemon.drain();
        let r = daemon.report(id).unwrap();
        assert_eq!(r.state, SessionState::Finalized);
        assert!(r.epochs >= 2);
        assert!(r.error.is_none());
        assert_eq!(store.durable(id).unwrap(), solo);
        let m = daemon.metrics();
        assert_eq!(m.finalized, 1);
        assert_eq!(m.epochs_committed, u64::from(r.epochs));
        daemon.shutdown();
    }

    #[test]
    fn invalid_config_is_rejected_typed() {
        let daemon = Daemon::start(DaemonConfig::default(), Arc::new(MemStore::new()));
        let spec = SessionSpec::new(
            "bad",
            guests::atomic_counter(2, 8),
            tiny_config().spare_workers(0).pipelined(true),
        );
        assert!(matches!(
            daemon.submit(spec),
            Err(AdmitError::Invalid(
                dp_core::ConfigError::PipelinedWithoutWorkers
            ))
        ));
        daemon.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_retry_hint_and_draining_refuses() {
        let cfg = DaemonConfig {
            runners: 1,
            verify_cores: 2,
            queue_capacity: 2,
            ..DaemonConfig::default()
        };
        let daemon = Daemon::start(cfg, Arc::new(MemStore::new()));
        // Saturate: the single runner can hold one, the queue two more.
        let mut rejected = 0;
        for i in 0..32 {
            match daemon.submit(tiny_spec(&format!("s{i}"))) {
                Ok(_) => {}
                Err(AdmitError::Rejected { retry_after, .. }) => {
                    rejected += 1;
                    assert!(retry_after > Duration::ZERO);
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        assert!(rejected > 0, "queue of 2 absorbed 32 instant submissions");
        assert_eq!(daemon.metrics().rejected, rejected);
        daemon.drain();
        assert!(matches!(
            daemon.submit(tiny_spec("late")),
            Err(AdmitError::Draining)
        ));
        daemon.shutdown();
    }

    #[test]
    fn oversubscribed_pool_degrades_low_priority_not_bytes() {
        // One verify core, sessions wanting two: low priority degrades to
        // serialized immediately; bytes stay identical to the solo run.
        let cfg = DaemonConfig {
            runners: 2,
            verify_cores: 1,
            queue_capacity: 64,
            ..DaemonConfig::default()
        };
        let store = Arc::new(MemStore::new());
        let daemon = Daemon::start(cfg, store.clone());
        let spec = SessionSpec::new(
            "low",
            guests::atomic_counter(2, 400),
            tiny_config().spare_workers(2).pipelined(true),
        )
        .priority(Priority::Low);
        let solo = solo_bytes(&spec);
        let id = daemon.submit(spec).unwrap();
        daemon.drain();
        let r = daemon.report(id).unwrap();
        assert_eq!(r.state, SessionState::Finalized);
        assert!(r.degraded, "1-core pool must degrade a 2-core low session");
        assert_eq!(store.durable(id).unwrap(), solo);
        assert!(daemon.metrics().degraded_runs >= 1);
        daemon.shutdown();
    }

    #[test]
    fn transient_sink_fault_finalizes_after_retry() {
        let store = Arc::new(MemStore::new());
        let daemon = Daemon::start(DaemonConfig::default(), store.clone());
        let spec = tiny_spec("flaky-disk")
            .restart_budget(2)
            .transient_sink_faults(true);
        let solo = solo_bytes(&spec);
        let spec = spec.sink_faults({
            let mut f = dp_os::SinkFaults::none();
            f.torn_at = Some(200);
            f
        });
        let id = daemon.submit(spec).unwrap();
        daemon.drain();
        let r = daemon.report(id).unwrap();
        assert_eq!(r.state, SessionState::Finalized, "error: {:?}", r.error);
        assert!(r.attempts >= 2, "should have retried past the torn write");
        assert_eq!(store.durable(id).unwrap(), solo);
        assert_eq!(daemon.metrics().retries, u64::from(r.attempts - 1));
        daemon.shutdown();
    }

    #[test]
    fn permanent_sink_fault_salvages_exact_committed_prefix() {
        let store = Arc::new(MemStore::new());
        let daemon = Daemon::start(DaemonConfig::default(), store.clone());
        let base = tiny_spec("dead-disk").restart_budget(0);
        let (_solo, offsets) = solo_with_offsets(&base);
        assert!(offsets.len() >= 2, "need multiple epochs to cut between");
        // Die between the first and second commit: exactly one epoch must
        // survive salvage.
        let torn_at = (offsets[0] + offsets[1]) / 2;
        let spec = base.sink_faults({
            let mut f = dp_os::SinkFaults::none();
            f.torn_at = Some(torn_at);
            f
        });
        let id = daemon.submit(spec).unwrap();
        daemon.drain();
        let r = daemon.report(id).unwrap();
        let expect = offsets.iter().filter(|&&o| o <= torn_at).count();
        assert_eq!(expect, 1);
        assert_eq!(r.state, SessionState::Salvaged);
        assert_eq!(r.epochs as usize, expect, "salvage != committed prefix");
        assert!(r.error.as_deref().unwrap_or("").contains("torn"));
        daemon.shutdown();
    }

    #[test]
    fn panicking_sink_is_contained_and_isolated_from_siblings() {
        /// A store whose writers panic mid-journal — modelling a bug in a
        /// session's sink plugin, the worst-case tenant.
        struct PanicStore {
            inner: MemStore,
            panic_for: u64,
        }
        struct PanicWriter {
            wrote: usize,
        }
        impl Write for PanicWriter {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.wrote += data.len();
                if self.wrote > 100 {
                    panic!("sink plugin bug");
                }
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        impl SessionStore for PanicStore {
            fn open(
                &self,
                id: SessionId,
                name: &str,
                attempt: u32,
            ) -> std::io::Result<Box<dyn Write + Send>> {
                if id.0 == self.panic_for {
                    Ok(Box::new(PanicWriter { wrote: 0 }))
                } else {
                    self.inner.open(id, name, attempt)
                }
            }
            fn durable(&self, id: SessionId) -> std::io::Result<Vec<u8>> {
                if id.0 == self.panic_for {
                    Err(std::io::Error::other("panicked sink has no bytes"))
                } else {
                    self.inner.durable(id)
                }
            }
        }

        let store = Arc::new(PanicStore {
            inner: MemStore::new(),
            panic_for: 1,
        });
        let daemon = Daemon::start(
            DaemonConfig {
                runners: 2,
                verify_cores: 8,
                queue_capacity: 64,
                ..DaemonConfig::default()
            },
            store.clone(),
        );
        let bad = daemon
            .submit(tiny_spec("panicky").restart_budget(1))
            .unwrap();
        let good_spec = tiny_spec("innocent");
        let solo = solo_bytes(&good_spec);
        let good = daemon.submit(good_spec).unwrap();
        daemon.drain();
        let rb = daemon.report(bad).unwrap();
        assert_eq!(rb.state, SessionState::Failed);
        assert!(rb.error.as_deref().unwrap().contains("panicked"));
        assert_eq!(rb.attempts, 2, "panic should be retried within budget");
        let rg = daemon.report(good).unwrap();
        assert_eq!(rg.state, SessionState::Finalized);
        assert_eq!(store.durable(good).unwrap(), solo, "sibling perturbed");
        daemon.shutdown();
    }

    #[test]
    fn sharded_session_finalizes_and_merges_byte_identical_to_solo() {
        let store = Arc::new(MemStore::new());
        let daemon = Daemon::start(DaemonConfig::default(), store.clone());
        let spec = tiny_spec("sharded").journal_shards(3);
        // The oracle: a solo sequential run's *recording* bytes (the
        // container bytes differ by design — DPRS streams vs one DPRJ).
        let mut solo_rec = Vec::new();
        {
            let mut w = JournalWriter::new(Vec::new()).unwrap();
            let bundle = record_to(&spec.guest, &spec.config, &mut w).unwrap();
            bundle.recording.save(&mut solo_rec).unwrap();
        }
        let id = daemon.submit(spec).unwrap();
        daemon.drain();
        let r = daemon.report(id).unwrap();
        assert_eq!(r.state, SessionState::Finalized, "error: {:?}", r.error);
        assert!(r.epochs >= 2);
        let bufs: Vec<Vec<u8>> = (0..3)
            .map(|k| store.durable_shard(id, k).unwrap())
            .collect();
        let merged = JournalReader::salvage_shards(&bufs).unwrap();
        assert!(merged.clean);
        assert_eq!(merged.committed(), r.epochs as usize);
        let mut merged_rec = Vec::new();
        merged.recording.save(&mut merged_rec).unwrap();
        assert_eq!(merged_rec, solo_rec);
        daemon.shutdown();
    }

    #[test]
    fn sharded_session_with_torn_sink_salvages_consistent_prefix() {
        let store = Arc::new(MemStore::new());
        let daemon = Daemon::start(DaemonConfig::default(), store.clone());
        // Each shard stream dies after 300 durable bytes: the session
        // cannot finalize, but the cross-shard salvage must still produce
        // a dependency-closed prefix (possibly empty) without panicking.
        let spec = tiny_spec("torn-shards")
            .journal_shards(2)
            .restart_budget(0)
            .sink_faults({
                let mut f = dp_os::SinkFaults::none();
                f.torn_at = Some(300);
                f
            });
        let id = daemon.submit(spec).unwrap();
        daemon.drain();
        let r = daemon.report(id).unwrap();
        assert!(
            matches!(r.state, SessionState::Salvaged | SessionState::Failed),
            "state: {:?}",
            r.state
        );
        assert!(r.error.as_deref().unwrap_or("").contains("torn"));
        daemon.shutdown();
    }

    #[test]
    fn poisoned_registry_lock_does_not_kill_the_daemon() {
        let store = Arc::new(MemStore::new());
        let daemon = Daemon::start(DaemonConfig::default(), store);
        let before = daemon.submit(tiny_spec("before")).unwrap();
        // Poison the registry mutex the way a buggy in-lock code path
        // would: panic while holding the guard.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = self_lock(&daemon.inner);
            panic!("simulated panic while holding the registry lock");
        }));
        assert!(daemon.inner.reg.is_poisoned(), "test failed to poison");
        // Every API surface must keep working: submit, report, sessions,
        // metrics, drain — one panicking caller is not a dead daemon.
        let after = daemon.submit(tiny_spec("after")).unwrap();
        assert!(daemon.report(before).is_some());
        assert_eq!(daemon.sessions().len(), 2);
        assert!(daemon.metrics().admitted == 2);
        daemon.drain();
        for id in [before, after] {
            assert_eq!(
                daemon.report(id).unwrap().state,
                SessionState::Finalized,
                "session {id} did not survive the poisoned lock"
            );
        }
        daemon.shutdown();
    }

    #[test]
    fn wide_high_priority_session_is_not_starved_by_narrow_stream() {
        // Two runners, four cores. A continuous stream of narrow
        // low-priority pipelined sessions (1 core each) would bypass a
        // wide lane-0 session (needs all 4 cores) forever without the
        // reservation threshold: every time a core frees, a narrow
        // sibling takes it first.
        let cfg = DaemonConfig {
            runners: 2,
            verify_cores: 4,
            queue_capacity: 2048,
            ..DaemonConfig::default()
        };
        let store = Arc::new(MemStore::new());
        let daemon = Daemon::start(cfg, store);
        let narrow = || {
            SessionSpec::new(
                "narrow",
                guests::atomic_counter(2, 150),
                tiny_config().spare_workers(1).pipelined(true),
            )
            .priority(Priority::Low)
        };
        // Prime both runners with narrow core-holding work, then queue
        // the wide session plus a sustained narrow backlog behind it.
        for _ in 0..4 {
            daemon.submit(narrow()).unwrap();
        }
        let wide = daemon
            .submit(
                SessionSpec::new(
                    "wide",
                    guests::atomic_counter(2, 400),
                    tiny_config().spare_workers(4).pipelined(true),
                )
                .priority(Priority::High),
            )
            .unwrap();
        for _ in 0..1000 {
            daemon.submit(narrow()).unwrap();
        }
        daemon.drain();
        let r = daemon.report(wide).unwrap();
        assert_eq!(r.state, SessionState::Finalized, "error: {:?}", r.error);
        assert!(
            !r.degraded,
            "anti-starvation must grant the wide session its cores, \
             not degrade it"
        );
        // Everyone else still finished too.
        assert!(daemon
            .sessions()
            .iter()
            .all(|s| s.state == SessionState::Finalized));
        daemon.shutdown();
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let v: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&v, 50), 5, "p50 of 1..=10 is the 5th value");
        assert_eq!(percentile(&v, 99), 10, "p99 of n=10 is the maximum");
        assert_eq!(percentile(&v, 100), 10);
        assert_eq!(percentile(&[42], 50), 42);
        assert_eq!(percentile(&[42], 99), 42);
        let two = [10, 20];
        assert_eq!(percentile(&two, 50), 10);
        assert_eq!(percentile(&two, 99), 20);
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&hundred, 50), 50);
        assert_eq!(percentile(&hundred, 99), 99);
        // The old floor-biased formula read index (10*99)/100 = 9 only by
        // accident for n=10 but index (50*99)/100 = 49 for n=50 — which
        // is the p100, not p99, of a 50-sample window... the regression
        // this pins: rank is ceil(p·n/100), clamped into 1..=n.
        let fifty: Vec<u64> = (1..=50).collect();
        assert_eq!(percentile(&fifty, 99), 50);
        assert_eq!(percentile(&fifty, 50), 25);
    }

    #[test]
    fn admission_wait_window_is_bounded() {
        let store = Arc::new(MemStore::new());
        let daemon = Daemon::start(DaemonConfig::default(), store);
        {
            let mut reg = self_lock(&daemon.inner);
            for i in 0..(ADMISSION_WINDOW as u64 + 500) {
                if reg.admission_waits.len() == ADMISSION_WINDOW {
                    reg.admission_waits.pop_front();
                }
                reg.admission_waits.push_back(i);
            }
            assert_eq!(reg.admission_waits.len(), ADMISSION_WINDOW);
            assert_eq!(*reg.admission_waits.front().unwrap(), 500);
        }
        // Percentiles come from the window that remains.
        let m = daemon.metrics();
        assert!(m.admission_p99_ns >= m.admission_p50_ns);
        assert!(m.admission_p50_ns >= 500);
        daemon.shutdown();
    }

    #[test]
    fn cancel_dequeues_admitted_sessions_only() {
        // No runners claiming: a 0-runner pool is clamped to 1, so jam the
        // single runner with a long session and queue a victim behind it.
        let cfg = DaemonConfig {
            runners: 1,
            verify_cores: 2,
            queue_capacity: 8,
            ..DaemonConfig::default()
        };
        let daemon = Daemon::start(cfg, Arc::new(MemStore::new()));
        let long = daemon
            .submit(SessionSpec::new(
                "long",
                guests::atomic_counter(2, 20_000),
                tiny_config(),
            ))
            .unwrap();
        let victim = daemon.submit(tiny_spec("victim")).unwrap();
        assert_eq!(daemon.cancel(victim), Ok(()));
        assert!(matches!(
            daemon.cancel(SessionId(999)),
            Err(SessionError::UnknownSession(_))
        ));
        // Cancelling twice: the row is now terminal.
        assert!(matches!(
            daemon.cancel(victim),
            Err(SessionError::NotCancellable {
                state: SessionState::Failed,
                ..
            })
        ));
        daemon.drain();
        let r = daemon.report(victim).unwrap();
        assert_eq!(r.state, SessionState::Failed);
        assert_eq!(r.attempts, 0, "no attempt may run after cancel");
        assert_eq!(r.error.as_deref(), Some("cancelled by client"));
        assert_eq!(daemon.report(long).unwrap().state, SessionState::Finalized);
        let m = daemon.metrics();
        assert_eq!(m.cancelled, 1);
        assert_eq!(m.failed, 0, "cancellation is not an attempt failure");
        assert!(matches!(
            daemon.cancel(long),
            Err(SessionError::NotCancellable { .. })
        ));
        daemon.shutdown();
    }

    #[test]
    fn adopt_orphans_restores_previous_incarnation() {
        let tmp = crate::testdir::TempDir::new("dpd-adopt-test");
        let dir = tmp.path().to_path_buf();
        // First incarnation: one finalized session, then the daemon "dies"
        // leaving a truncated sibling and assorted junk.
        let spec = tiny_spec("first");
        let epochs;
        {
            let store = Arc::new(crate::store::DirStore::new(&dir).unwrap());
            let daemon = Daemon::start(DaemonConfig::default(), store.clone());
            let id = daemon.submit(spec.clone()).unwrap();
            daemon.drain();
            let r = daemon.report(id).unwrap();
            assert_eq!(r.state, SessionState::Finalized);
            epochs = r.epochs;
            let full = std::fs::read(store.path(id).unwrap()).unwrap();
            std::fs::write(dir.join("s0002-cut.dprj"), &full[..full.len() - 5]).unwrap();
            std::fs::write(dir.join("s0003-empty.dprj"), b"").unwrap();
            std::fs::write(dir.join("s0004-mid.dprj.tmp"), b"half").unwrap();
            daemon.shutdown();
        }
        // Second incarnation re-adopts on boot.
        let store = Arc::new(crate::store::DirStore::new(&dir).unwrap());
        let daemon = Daemon::start(DaemonConfig::default(), store.clone());
        let orphans = daemon.adopt_orphans().unwrap();
        assert_eq!(orphans.len(), 4, "{orphans:?}");
        let rows = daemon.sessions();
        assert_eq!(rows.len(), 2, "{rows:?}");
        assert_eq!(rows[0].id, SessionId(1));
        assert_eq!(rows[0].state, SessionState::Finalized);
        assert_eq!(rows[0].epochs, epochs);
        assert_eq!(rows[1].id, SessionId(2));
        assert_eq!(rows[1].state, SessionState::Salvaged);
        assert!(rows[1]
            .error
            .as_deref()
            .unwrap()
            .contains("re-adopted after daemon crash"));
        let notes = daemon.orphan_notes();
        assert_eq!(notes.len(), 2, "{notes:?}");
        assert!(notes.iter().any(|n| n.contains("s0003-empty.dprj")));
        assert!(notes.iter().any(|n| n.contains("s0004-mid.dprj.tmp")));
        // Adopted paths are registered: durable() serves the old bytes,
        // and new ids don't collide with adopted ones.
        assert!(!store.durable(SessionId(1)).unwrap().is_empty());
        assert_eq!(daemon.metrics().adopted, 2);
        let fresh = daemon.submit(spec).unwrap();
        assert!(fresh.0 >= 3, "id counter must jump past adopted ids");
        daemon.drain();
        daemon.shutdown();
    }

    /// Submits a session whose sink tears mid-epoch on attempt 0 only
    /// (the daemon-crash model: the bytes are gone, the device is fine),
    /// with no restart budget, so it retires [`SessionState::Salvaged`].
    /// Returns the id, the uninterrupted oracle bytes, and the epochs the
    /// torn run commits.
    fn salvage_one(daemon: &Daemon<MemStore>, name: &str) -> (SessionId, Vec<u8>, u32) {
        let base = tiny_spec(name)
            .restart_budget(0)
            .transient_sink_faults(true);
        let (solo, offsets) = solo_with_offsets(&base);
        assert!(offsets.len() >= 2, "need multiple epochs to cut between");
        let torn_at = (offsets[0] + offsets[1]) / 2;
        let spec = base.sink_faults({
            let mut f = dp_os::SinkFaults::none();
            f.torn_at = Some(torn_at);
            f
        });
        let id = daemon.submit(spec).unwrap();
        loop {
            let r = daemon.report(id).unwrap();
            if r.state.is_terminal() {
                assert_eq!(r.state, SessionState::Salvaged, "error: {:?}", r.error);
                return (id, solo, r.epochs);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn resumed_session_finishes_byte_identical_to_uninterrupted_run() {
        let store = Arc::new(MemStore::new());
        let daemon = Daemon::start(DaemonConfig::default(), store.clone());
        let (id, solo, committed) = salvage_one(&daemon, "reborn");
        assert_eq!(committed, 1, "cut between commits 1 and 2");
        let from = daemon.resume(id).unwrap();
        assert_eq!(from, committed);
        daemon.drain();
        let r = daemon.report(id).unwrap();
        assert_eq!(r.state, SessionState::Finalized, "error: {:?}", r.error);
        assert_eq!(
            store.durable(id).unwrap(),
            solo,
            "resumed journal must be byte-identical to an uninterrupted run"
        );
        let m = daemon.metrics();
        assert_eq!(m.resumed, 1);
        assert_eq!(m.resume_failed, 0);
        assert_eq!(m.finalized, 1);
        assert_eq!(m.salvaged, 1, "the pre-resume retirement still counts");
        assert_eq!(
            m.epochs_committed,
            u64::from(r.epochs),
            "resume must add only the epochs past the crash point"
        );
        daemon.shutdown();
    }

    #[test]
    fn resume_is_idempotent_while_queued() {
        // A single runner jammed with a long session keeps the resumed
        // session queued, so the second resume call observes Resuming.
        let cfg = DaemonConfig {
            runners: 1,
            ..DaemonConfig::default()
        };
        let store = Arc::new(MemStore::new());
        let daemon = Daemon::start(cfg, store);
        let (id, _solo, committed) = salvage_one(&daemon, "twice");
        daemon
            .submit(SessionSpec::new(
                "jam",
                guests::atomic_counter(2, 20_000),
                tiny_config(),
            ))
            .unwrap();
        let first = daemon.resume(id).unwrap();
        assert_eq!(first, committed);
        let second = daemon.resume(id).unwrap();
        assert_eq!(second, first, "double-resume must not re-admit");
        assert_eq!(daemon.metrics().resumed, 1, "exactly one admission");
        daemon.drain();
        assert_eq!(daemon.report(id).unwrap().state, SessionState::Finalized);
        daemon.shutdown();
    }

    #[test]
    fn resume_refusals_are_typed_and_budget_is_per_boot() {
        let cfg = DaemonConfig {
            resume_budget: 1,
            ..DaemonConfig::default()
        };
        let store = Arc::new(MemStore::new());
        let daemon = Daemon::start(cfg, store);
        assert!(matches!(
            daemon.resume(SessionId(999)),
            Err(SessionError::UnknownSession(_))
        ));
        // A finalized session is not resumable — typed, not a no-op resume.
        let done = daemon.submit(tiny_spec("done")).unwrap();
        let (a, _, _) = salvage_one(&daemon, "first");
        let (b, _, _) = salvage_one(&daemon, "second");
        loop {
            if daemon.report(done).unwrap().state.is_terminal() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        match daemon.resume(done) {
            Err(SessionError::NotResumable { detail, .. }) => {
                assert!(detail.contains("only salvaged sessions resume"), "{detail}")
            }
            other => panic!("expected NotResumable, got {other:?}"),
        }
        daemon.resume(a).unwrap();
        match daemon.resume(b) {
            Err(SessionError::NotResumable { detail, .. }) => {
                assert!(detail.contains("resume budget exhausted"), "{detail}")
            }
            other => panic!("expected budget refusal, got {other:?}"),
        }
        let m = daemon.metrics();
        assert_eq!(m.resumed, 1);
        assert_eq!(m.resume_failed, 0, "budget refusals are not failures");
        daemon.drain();
        daemon.shutdown();
    }

    #[test]
    fn resume_adopted_continues_previous_incarnation_byte_identical() {
        let tmp = crate::testdir::TempDir::new("dpd-resume-adopt");
        let dir = tmp.path().to_path_buf();
        let base = tiny_spec("carryover")
            .restart_budget(0)
            .transient_sink_faults(true);
        let (solo, offsets) = solo_with_offsets(&base);
        let torn_at = (offsets[0] + offsets[1]) / 2;
        let id;
        {
            // First incarnation: the session's sink tears mid-epoch (the
            // crash model) and the daemon dies with it Salvaged on disk.
            let store = Arc::new(crate::store::DirStore::new(&dir).unwrap());
            let daemon = Daemon::start(DaemonConfig::default(), store);
            let spec = base.clone().sink_faults({
                let mut f = dp_os::SinkFaults::none();
                f.torn_at = Some(torn_at);
                f
            });
            id = daemon.submit(spec).unwrap();
            daemon.drain();
            assert_eq!(daemon.report(id).unwrap().state, SessionState::Salvaged);
            daemon.shutdown();
        }
        // Second incarnation: re-adopt, then resume every salvaged row.
        let store = Arc::new(crate::store::DirStore::new(&dir).unwrap());
        let daemon = Daemon::start(DaemonConfig::default(), store.clone());
        daemon.adopt_orphans().unwrap();
        let outcomes = daemon.resume_adopted();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].0, id);
        let from = outcomes[0].1.as_ref().unwrap();
        assert_eq!(*from, 1, "resume from the one committed epoch");
        daemon.drain();
        let r = daemon.report(id).unwrap();
        assert_eq!(r.state, SessionState::Finalized, "error: {:?}", r.error);
        assert_eq!(
            store.durable(id).unwrap(),
            solo,
            "cross-incarnation resume must be byte-identical to an \
             uninterrupted run"
        );
        let m = daemon.metrics();
        assert_eq!(m.adopted, 1);
        assert_eq!(m.resumed, 1);
        assert_eq!(m.resume_failed, 0);
        daemon.shutdown();
    }

    #[test]
    fn idempotency_token_deduplicates_resubmission() {
        let daemon = Daemon::start(DaemonConfig::default(), Arc::new(MemStore::new()));
        let a = daemon
            .submit(tiny_spec("one").idempotency("tok-1"))
            .unwrap();
        let again = daemon
            .submit(tiny_spec("one").idempotency("tok-1"))
            .unwrap();
        assert_eq!(a, again, "same token must return the admitted id");
        let other = daemon
            .submit(tiny_spec("two").idempotency("tok-2"))
            .unwrap();
        assert_ne!(a, other);
        assert_eq!(daemon.metrics().admitted, 2, "dedup is not an admission");
        daemon.drain();
        daemon.shutdown();
    }

    #[test]
    fn injected_record_faults_are_contained_per_session() {
        dp_core::faults::silence_injected_panics();
        let store = Arc::new(MemStore::new());
        let daemon = Daemon::start(DaemonConfig::default(), store.clone());
        // worker_panic_p = 1.0 defeats the coordinator's internal retry
        // budget every time: the attempt fails, the daemon retries it,
        // and the budget runs out -> the committed prefix salvages.
        let storm = SessionSpec::new(
            "doomed",
            guests::racy_counter(2, 400),
            tiny_config().faults(FaultPlan::none().seed(5).worker_panics_with(1.0)),
        )
        .restart_budget(1);
        let doomed = daemon.submit(storm).unwrap();
        let fine = daemon.submit(tiny_spec("fine")).unwrap();
        daemon.drain();
        let rd = daemon.report(doomed).unwrap();
        assert!(
            matches!(rd.state, SessionState::Salvaged | SessionState::Failed),
            "state: {:?}",
            rd.state
        );
        assert!(rd.error.is_some());
        assert_eq!(rd.attempts, 2);
        assert_eq!(daemon.report(fine).unwrap().state, SessionState::Finalized);
        daemon.shutdown();
    }
}
