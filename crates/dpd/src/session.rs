//! Sessions as data: identity, priority, state machine, spec, report.
//!
//! The identity/state/report types carry [`Wire`](dp_support::wire::Wire)
//! impls so the `dpnet` socket protocol can ship them verbatim — the
//! socket path and the in-process path expose the *same* rows, and the
//! shared [`sessions_json`] formatter renders both identically.

use dp_core::{DoublePlayConfig, GuestSpec};
use dp_os::SinkFaults;
use std::fmt;

/// Daemon-assigned session identity, unique for the daemon's lifetime and
/// embedded in the session's journal name so post-crash salvage can pair
/// journals with sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{:04}", self.0)
    }
}

/// Admission lane. Within a lane the queue is FIFO; across lanes, higher
/// priority is always scanned first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Claimed first; waits for verify cores rather than degrade (unless
    /// the whole daemon would otherwise stall).
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Claimed last; degrades to serialized recording immediately when the
    /// verify-core pool is exhausted, instead of waiting or being refused.
    Low,
}

impl Priority {
    /// Lane index (0 = highest priority).
    pub(crate) fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::High => write!(f, "high"),
            Priority::Normal => write!(f, "normal"),
            Priority::Low => write!(f, "low"),
        }
    }
}

/// The per-session state machine:
///
/// ```text
/// Admitted → Recording → Draining → Finalized   (clean journal)
///     ↑          │            └───→ Salvaged    (committed prefix only)
///     └──retry───┘            └───→ Failed      (nothing salvageable)
/// ```
///
/// A failed attempt with remaining restart budget loops back to
/// `Admitted` (the session re-queues on its lane with a fresh journal);
/// past the budget the attempt's durable bytes decide between `Salvaged`
/// and `Failed`.
///
/// `Salvaged` has one non-terminal exit: a crash-resume request moves the
/// row to `Resuming`, which re-queues it and — on success — continues the
/// journal from its committed prefix to `Finalized`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// In the admission queue, waiting for a runner (and, for pipelined
    /// sessions, a verify-core lease).
    Admitted,
    /// A runner is executing this attempt (0-based).
    Recording {
        /// The attempt number being executed.
        attempt: u32,
    },
    /// The run finished; the daemon is classifying the durable journal.
    Draining,
    /// The journal is durable and clean (FINAL marker): nothing was lost.
    Finalized,
    /// The durable journal salvages to a committed epoch prefix, but the
    /// run did not finalize cleanly (sink fault past the retry budget, or
    /// durability lost to a crash).
    Salvaged,
    /// Nothing was salvageable (the journal header never became durable).
    Failed,
    /// A crash-resume is queued or running: the salvaged committed prefix
    /// (epochs `0..from_epoch`) stays in place and recording continues
    /// from `from_epoch`, byte-identical to an uninterrupted run.
    Resuming {
        /// First epoch the resumed attempt will append (= epochs salvaged).
        from_epoch: u32,
    },
}

impl SessionState {
    /// True for the three terminal states.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SessionState::Finalized | SessionState::Salvaged | SessionState::Failed
        )
    }
}

impl fmt::Display for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionState::Admitted => write!(f, "admitted"),
            SessionState::Recording { attempt } => write!(f, "recording#{attempt}"),
            SessionState::Draining => write!(f, "draining"),
            SessionState::Finalized => write!(f, "finalized"),
            SessionState::Salvaged => write!(f, "salvaged"),
            SessionState::Failed => write!(f, "failed"),
            SessionState::Resuming { from_epoch } => write!(f, "resuming@{from_epoch}"),
        }
    }
}

/// Everything a client submits to open a recording session.
///
/// The guest-perturbing fault plan rides inside `config.faults` exactly as
/// it does for a solo [`dp_core::record_to`] run — the daemon executes the
/// submitted configuration verbatim, so a solo re-run of the same spec is
/// byte-identical to the session's journal (the isolation oracle). Clients
/// decorrelate per-session plans with [`dp_core::FaultPlan::for_session`].
/// Sink faults are separate: they model *this session's* durable path
/// dying, so they wrap the sink inside the daemon, outside the recorded
/// world.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Display name, embedded in the journal name.
    pub name: String,
    /// The guest to record.
    pub guest: GuestSpec,
    /// Recorder configuration (validated at admission).
    pub config: DoublePlayConfig,
    /// Admission lane.
    pub priority: Priority,
    /// Failed attempts are retried this many times (0 = one attempt).
    pub restart_budget: u32,
    /// Faults of this session's durable sink (default: none).
    pub sink_faults: SinkFaults,
    /// When true, `sink_faults` apply to attempt 0 only — modelling a
    /// transient durable-path outage that a retry recovers from. When
    /// false, every attempt hits the same faults (a dead disk).
    pub transient_sink_faults: bool,
    /// Journal shard streams. `0` or `1` records the classic single
    /// `DPRJ` stream; `N >= 2` records `N` group-committed `DPRS` shard
    /// streams (the store must support
    /// [`SessionStore::open_shard`](crate::SessionStore::open_shard)),
    /// which salvage to the longest consistent cross-shard prefix.
    pub journal_shards: u32,
    /// Client-chosen idempotency token (empty = none). Submitting twice
    /// with the same non-empty token admits exactly one session: the
    /// second submission is answered with the first one's id, so a client
    /// that lost its connection mid-`Submit` can re-issue without
    /// double-admitting.
    pub idempotency: String,
}

impl SessionSpec {
    /// A normal-priority session with no sink faults and one retry.
    pub fn new(name: impl Into<String>, guest: GuestSpec, config: DoublePlayConfig) -> Self {
        SessionSpec {
            name: name.into(),
            guest,
            config,
            priority: Priority::Normal,
            restart_budget: 1,
            sink_faults: SinkFaults::none(),
            transient_sink_faults: false,
            journal_shards: 0,
            idempotency: String::new(),
        }
    }

    /// Sets the admission lane.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Sets the restart budget (retries after a failed attempt).
    pub fn restart_budget(mut self, n: u32) -> Self {
        self.restart_budget = n;
        self
    }

    /// Sets this session's durable-sink fault plan.
    pub fn sink_faults(mut self, faults: SinkFaults) -> Self {
        self.sink_faults = faults;
        self
    }

    /// Marks the sink faults transient (attempt 0 only).
    pub fn transient_sink_faults(mut self, transient: bool) -> Self {
        self.transient_sink_faults = transient;
        self
    }

    /// Records into `n` sharded journal streams (`< 2` = single stream).
    pub fn journal_shards(mut self, n: u32) -> Self {
        self.journal_shards = n;
        self
    }

    /// Sets the idempotency token (duplicate submissions with the same
    /// token are answered with the original session's id).
    pub fn idempotency(mut self, token: impl Into<String>) -> Self {
        self.idempotency = token.into();
        self
    }
}

/// A typed per-session operation error — the session-level counterpart of
/// [`AdmitError`](crate::AdmitError), mirrored verbatim onto the wire by
/// the `dpnet` protocol so a remote client sees exactly what an
/// in-process caller would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// No session with this id exists in the registry.
    UnknownSession(SessionId),
    /// The session is not in a cancellable state: only queued
    /// ([`SessionState::Admitted`]) sessions can be cancelled — a running
    /// attempt is never killed mid-journal, and terminal rows are history.
    NotCancellable {
        /// The session the caller tried to cancel.
        id: SessionId,
        /// Its state at the time of the attempt.
        state: SessionState,
    },
    /// The session cannot be crash-resumed: it is not
    /// [`SessionState::Salvaged`], its guest cannot be reconstructed, its
    /// salvaged prefix does not parse, the store cannot reopen its
    /// journal for append, or the daemon's per-boot resume budget is
    /// spent.
    NotResumable {
        /// The session the caller tried to resume.
        id: SessionId,
        /// Why the resume was refused.
        detail: String,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownSession(id) => write!(f, "unknown session {id}"),
            SessionError::NotCancellable { id, state } => {
                write!(f, "session {id} is {state}, not cancellable")
            }
            SessionError::NotResumable { id, detail } => {
                write!(f, "session {id} is not resumable: {detail}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// A snapshot of one session's registry row.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Daemon-assigned identity.
    pub id: SessionId,
    /// Submitted display name.
    pub name: String,
    /// Admission lane.
    pub priority: Priority,
    /// Current state.
    pub state: SessionState,
    /// Attempts started so far (1 = no retries yet).
    pub attempts: u32,
    /// Epochs committed to the journal by the most recent attempt.
    pub epochs: u32,
    /// True when at least one attempt ran serialized because the
    /// verify-core pool was oversubscribed (backpressure by degradation).
    pub degraded: bool,
    /// Queue wait from submission to the first runner claim, in
    /// nanoseconds (the admission-latency metric).
    pub admission_wait_ns: u64,
    /// Journal shard streams the session records (`0` = the classic
    /// single `DPRJ` stream) — the attach path needs this to know which
    /// store streams back the session.
    pub journal_shards: u32,
    /// The most recent attempt's error, if any.
    pub error: Option<String>,
}

dp_support::impl_wire_newtype!(SessionId);
dp_support::impl_wire_enum!(Priority { 0 => High, 1 => Normal, 2 => Low });
dp_support::impl_wire_enum!(SessionState {
    0 => Admitted,
    1 => Recording { attempt },
    2 => Draining,
    3 => Finalized,
    4 => Salvaged,
    5 => Failed,
    6 => Resuming { from_epoch },
});
dp_support::impl_wire_struct!(SessionReport {
    id,
    name,
    priority,
    state,
    attempts,
    epochs,
    degraded,
    admission_wait_ns,
    journal_shards,
    error,
});

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// and control characters).
fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl SessionReport {
    /// This row as one JSON object — the machine-readable form behind
    /// `dp sessions --json`, shared by the in-process and socket paths so
    /// tooling never screen-scrapes the human table.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"id\":{},\"label\":\"{}\",\"name\":\"",
            self.id.0, self.id
        ));
        json_escape(&mut s, &self.name);
        s.push_str(&format!(
            "\",\"priority\":\"{}\",\"state\":\"{}\",\"attempts\":{},\
             \"epochs\":{},\"degraded\":{},\"admission_wait_ns\":{},\
             \"journal_shards\":{},\"error\":",
            self.priority,
            self.state,
            self.attempts,
            self.epochs,
            self.degraded,
            self.admission_wait_ns,
            self.journal_shards,
        ));
        match &self.error {
            Some(e) => {
                s.push('"');
                json_escape(&mut s, e);
                s.push('"');
            }
            None => s.push_str("null"),
        }
        s.push('}');
        s
    }
}

/// A full session listing as one JSON document:
/// `{"sessions":[...],"notes":[...]}`. `notes` carries operator-facing
/// strings that are not session rows — garbage files found during boot
/// re-adoption, for example.
pub fn sessions_json(rows: &[SessionReport], notes: &[String]) -> String {
    let mut s = String::from("{\"sessions\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&r.to_json());
    }
    s.push_str("],\"notes\":[");
    for (i, n) in notes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('"');
        json_escape(&mut s, n);
        s.push('"');
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(SessionState::Finalized.is_terminal());
        assert!(SessionState::Salvaged.is_terminal());
        assert!(SessionState::Failed.is_terminal());
        assert!(!SessionState::Admitted.is_terminal());
        assert!(!SessionState::Recording { attempt: 2 }.is_terminal());
        assert!(!SessionState::Draining.is_terminal());
        assert!(!SessionState::Resuming { from_epoch: 4 }.is_terminal());
        assert_eq!(
            SessionState::Recording { attempt: 2 }.to_string(),
            "recording#2"
        );
        assert_eq!(
            SessionState::Resuming { from_epoch: 4 }.to_string(),
            "resuming@4"
        );
    }

    #[test]
    fn lanes_are_ordered() {
        assert!(Priority::High.lane() < Priority::Normal.lane());
        assert!(Priority::Normal.lane() < Priority::Low.lane());
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn spec_builder_chains() {
        let spec = SessionSpec::new(
            "x",
            crate::guests::atomic_counter(2, 8),
            DoublePlayConfig::new(2),
        )
        .priority(Priority::Low)
        .restart_budget(3)
        .transient_sink_faults(true);
        assert_eq!(spec.priority, Priority::Low);
        assert_eq!(spec.restart_budget, 3);
        assert!(spec.transient_sink_faults);
        assert_eq!(SessionId(7).to_string(), "s0007");
    }

    #[test]
    fn report_round_trips_on_the_wire() {
        use dp_support::wire::{from_bytes, to_bytes};
        let r = SessionReport {
            id: SessionId(42),
            name: "we\"ird\nname".into(),
            priority: Priority::High,
            state: SessionState::Recording { attempt: 3 },
            attempts: 4,
            epochs: 17,
            degraded: true,
            admission_wait_ns: 12_345,
            journal_shards: 3,
            error: Some("torn write".into()),
        };
        let bytes = to_bytes(&r);
        let back: SessionReport = from_bytes(&bytes).unwrap();
        assert_eq!(back.id, r.id);
        assert_eq!(back.name, r.name);
        assert_eq!(back.priority, r.priority);
        assert_eq!(back.state, r.state);
        assert_eq!(back.attempts, r.attempts);
        assert_eq!(back.epochs, r.epochs);
        assert_eq!(back.degraded, r.degraded);
        assert_eq!(back.admission_wait_ns, r.admission_wait_ns);
        assert_eq!(back.journal_shards, r.journal_shards);
        assert_eq!(back.error, r.error);
        // Truncation at every prefix is a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(from_bytes::<SessionReport>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn sessions_json_escapes_and_lists() {
        let r = SessionReport {
            id: SessionId(7),
            name: "quo\"te".into(),
            priority: Priority::Normal,
            state: SessionState::Finalized,
            attempts: 1,
            epochs: 5,
            degraded: false,
            admission_wait_ns: 0,
            journal_shards: 0,
            error: None,
        };
        let doc = sessions_json(&[r], &["garbage: x.tmp".to_string()]);
        assert!(doc.starts_with("{\"sessions\":["));
        assert!(doc.contains("\"label\":\"s0007\""));
        assert!(doc.contains("\"name\":\"quo\\\"te\""));
        assert!(doc.contains("\"state\":\"finalized\""));
        assert!(doc.contains("\"error\":null"));
        assert!(doc.contains("\"notes\":[\"garbage: x.tmp\"]"));
        assert_eq!(sessions_json(&[], &[]), "{\"sessions\":[],\"notes\":[]}");
    }

    #[test]
    fn session_error_displays() {
        assert_eq!(
            SessionError::UnknownSession(SessionId(9)).to_string(),
            "unknown session s0009"
        );
        assert_eq!(
            SessionError::NotCancellable {
                id: SessionId(2),
                state: SessionState::Finalized,
            }
            .to_string(),
            "session s0002 is finalized, not cancellable"
        );
        assert_eq!(
            SessionError::NotResumable {
                id: SessionId(3),
                detail: "resume budget exhausted".into(),
            }
            .to_string(),
            "session s0003 is not resumable: resume budget exhausted"
        );
    }
}
