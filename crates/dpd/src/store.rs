//! Pluggable per-session journal stores, including a crash-simulating one.
//!
//! The daemon streams each session's `DPRJ` journal through a
//! [`SessionStore`], which hands out one writer per attempt and can later
//! produce the bytes that would survive a machine crash. Two
//! implementations:
//!
//! * [`MemStore`] — in-memory buffers, optionally threaded onto a shared
//!   [`CrashClock`] that models a daemon-wide SIGKILL: one global byte
//!   clock advances with every write from every session, and only bytes
//!   written before the crash instant are durable (a write straddling the
//!   instant is torn). This is the engine of the N-journal crash property
//!   tests.
//! * [`DirStore`] — one `s{id}-{name}.dprj` file per session in a
//!   directory, for `dp serve`; a killed daemon leaves files that
//!   `dp sessions` / `dp salvage` recover independently.

use crate::session::SessionId;
use dp_core::JournalReader;
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where per-session journals go. Implementations are shared across
/// runner threads.
pub trait SessionStore: Send + Sync {
    /// Opens (or truncates, on a retry) the journal for `id`'s given
    /// attempt and returns its writer. Attempts rewrite in place: the
    /// journal a session leaves behind is always its *latest* attempt's.
    ///
    /// # Errors
    ///
    /// Store I/O failures (these surface as the session's sink error).
    fn open(&self, id: SessionId, name: &str, attempt: u32) -> io::Result<Box<dyn Write + Send>>;

    /// The bytes of `id`'s journal that would survive a crash right now —
    /// what a post-mortem salvage scan would read.
    ///
    /// # Errors
    ///
    /// Unknown session, or store I/O failures.
    fn durable(&self, id: SessionId) -> io::Result<Vec<u8>>;

    /// Opens (or truncates, on a retry) one `DPRS` shard stream of `id`'s
    /// sharded journal. Sessions recording with `journal_shards >= 2`
    /// open one writer per shard; single-stream sessions use
    /// [`open`](SessionStore::open) instead. The default refuses, so a
    /// store that never sees sharded sessions needs no shard support.
    ///
    /// # Errors
    ///
    /// `Unsupported` by default; store I/O failures otherwise.
    fn open_shard(
        &self,
        id: SessionId,
        name: &str,
        attempt: u32,
        shard: u32,
    ) -> io::Result<Box<dyn Write + Send>> {
        let _ = (id, name, attempt, shard);
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "store does not support sharded journals",
        ))
    }

    /// The crash-surviving bytes of one shard stream of `id`'s sharded
    /// journal — the per-shard counterpart of
    /// [`durable`](SessionStore::durable).
    ///
    /// # Errors
    ///
    /// `Unsupported` by default; unknown session or store I/O failures
    /// otherwise.
    fn durable_shard(&self, id: SessionId, shard: u32) -> io::Result<Vec<u8>> {
        let _ = (id, shard);
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "store does not support sharded journals",
        ))
    }

    /// Reopens `id`'s journal for crash-resume: truncates the stored
    /// stream to its `keep`-byte salvaged prefix (dropping the torn tail)
    /// and returns a writer positioned to **append** after it — unlike
    /// [`open`](SessionStore::open), the prefix is preserved, not
    /// rewritten. The default refuses, so stores predating resume keep
    /// working (resume just reports the store can't).
    ///
    /// # Errors
    ///
    /// `Unsupported` by default; unknown session or store I/O failures
    /// otherwise.
    fn open_resume(&self, id: SessionId, keep: u64) -> io::Result<Box<dyn Write + Send>> {
        let _ = (id, keep);
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "store does not support crash-resume",
        ))
    }

    /// The sharded counterpart of [`open_resume`](SessionStore::open_resume):
    /// truncates one shard stream to its `keep`-byte consistent prefix
    /// and returns an appending writer.
    ///
    /// # Errors
    ///
    /// `Unsupported` by default; unknown session or store I/O failures
    /// otherwise.
    fn open_resume_shard(
        &self,
        id: SessionId,
        shard: u32,
        keep: u64,
    ) -> io::Result<Box<dyn Write + Send>> {
        let _ = (id, shard, keep);
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "store does not support crash-resume",
        ))
    }
}

/// A daemon-wide crash instant, measured on a global byte clock.
///
/// Every write from every session advances the clock by its length; bytes
/// ticked off before `crash_at` are durable, bytes after are lost, and
/// the write straddling the instant is torn (a prefix survives). Because
/// sessions interleave on the clock in whatever order the OS schedules
/// their commits, this reproduces the failure mode of one machine dying
/// under N concurrent recording sessions — each journal is cut at an
/// arbitrary, *different* point.
#[derive(Debug)]
pub struct CrashClock {
    now: AtomicU64,
    crash_at: u64,
}

impl CrashClock {
    /// A clock that crashes once `crash_at` total bytes have been written.
    pub fn new(crash_at: u64) -> Arc<Self> {
        Arc::new(CrashClock {
            now: AtomicU64::new(0),
            crash_at,
        })
    }

    /// Advances the clock by a write of `n` bytes and returns how many of
    /// them land before the crash instant (possibly 0, possibly a torn
    /// prefix).
    fn grant(&self, n: u64) -> u64 {
        let start = self.now.fetch_add(n, Ordering::Relaxed);
        self.crash_at.saturating_sub(start).min(n)
    }

    /// Total bytes written on this clock so far.
    pub fn elapsed(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct SessionBuf {
    /// Everything the session wrote (the process's own view — writes keep
    /// "succeeding" after the crash instant; the process just doesn't know
    /// the machine is dead).
    bytes: Vec<u8>,
    /// Prefix of `bytes` that landed before the crash instant.
    durable: usize,
}

/// [`MemStore`]'s buffer map: keyed by `(session id, shard)`.
type SessionBufs = HashMap<(u64, u32), Arc<Mutex<SessionBuf>>>;

/// An in-memory [`SessionStore`], optionally crash-simulating. Sharded
/// journals are supported: each `(session, shard)` pair gets its own
/// buffer on the same crash clock, so one machine death cuts every shard
/// of every session at a different point.
#[derive(Default)]
pub struct MemStore {
    /// Keyed by `(session id, shard)`; the single-stream journal is
    /// shard 0.
    sessions: Mutex<SessionBufs>,
    clock: Option<Arc<CrashClock>>,
}

impl MemStore {
    /// A store with no crash: `durable` returns everything written.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// A store whose durability is cut by `clock`.
    pub fn crashing(clock: Arc<CrashClock>) -> Self {
        MemStore {
            sessions: Mutex::new(HashMap::new()),
            clock: Some(clock),
        }
    }

    fn buf(&self, id: SessionId, shard: u32) -> Arc<Mutex<SessionBuf>> {
        self.sessions
            .lock()
            .unwrap()
            .entry((id.0, shard))
            .or_default()
            .clone()
    }

    fn open_buf(&self, id: SessionId, shard: u32) -> Box<dyn Write + Send> {
        let buf = self.buf(id, shard);
        {
            let mut b = buf.lock().unwrap();
            // Truncating reopen. If the crash already happened, the
            // truncate itself never reaches the device: the old durable
            // prefix would in reality survive, but modelling that would
            // need per-attempt files — the crash tests use budget 0, so
            // a post-crash retry simply contributes nothing durable.
            b.bytes.clear();
            b.durable = 0;
        }
        Box::new(MemWriter {
            buf,
            clock: self.clock.clone(),
        })
    }

    /// Everything the session has written, durable or not (the live view).
    pub fn live(&self, id: SessionId) -> Vec<u8> {
        self.buf(id, 0).lock().unwrap().bytes.clone()
    }

    /// Seeds a `(session, shard)` stream with fully-durable `bytes` —
    /// models a daemon reboot: the new incarnation's store starts from
    /// whatever the dead one left durable. Shard `0` doubles as the
    /// single-stream journal.
    pub fn seed(&self, id: SessionId, shard: u32, bytes: Vec<u8>) {
        let buf = self.buf(id, shard);
        let mut b = buf.lock().unwrap();
        b.durable = bytes.len();
        b.bytes = bytes;
    }

    fn open_resume_buf(&self, id: SessionId, shard: u32, keep: u64) -> Box<dyn Write + Send> {
        let buf = self.buf(id, shard);
        {
            let mut b = buf.lock().unwrap();
            // Keep the salvaged prefix, drop the torn tail. The surviving
            // prefix is durable by definition — it was salvaged from the
            // device — so the appended continuation extends from there.
            b.bytes.truncate(keep as usize);
            let len = b.bytes.len();
            b.durable = b.durable.min(len);
        }
        Box::new(MemWriter {
            buf,
            clock: self.clock.clone(),
        })
    }
}

struct MemWriter {
    buf: Arc<Mutex<SessionBuf>>,
    clock: Option<Arc<CrashClock>>,
}

impl Write for MemWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut b = self.buf.lock().unwrap();
        let granted = match &self.clock {
            Some(c) => c.grant(data.len() as u64) as usize,
            None => data.len(),
        };
        // The durable prefix only grows while the journal tail is exactly
        // where the device left off; a crash freezes it forever.
        if b.durable == b.bytes.len() {
            b.durable += granted;
        }
        b.bytes.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl SessionStore for MemStore {
    fn open(&self, id: SessionId, _name: &str, _attempt: u32) -> io::Result<Box<dyn Write + Send>> {
        Ok(self.open_buf(id, 0))
    }

    fn durable(&self, id: SessionId) -> io::Result<Vec<u8>> {
        self.durable_shard(id, 0)
    }

    fn open_shard(
        &self,
        id: SessionId,
        _name: &str,
        _attempt: u32,
        shard: u32,
    ) -> io::Result<Box<dyn Write + Send>> {
        Ok(self.open_buf(id, shard))
    }

    fn durable_shard(&self, id: SessionId, shard: u32) -> io::Result<Vec<u8>> {
        let buf = self.buf(id, shard);
        let b = buf.lock().unwrap();
        Ok(b.bytes[..b.durable].to_vec())
    }

    fn open_resume(&self, id: SessionId, keep: u64) -> io::Result<Box<dyn Write + Send>> {
        Ok(self.open_resume_buf(id, 0, keep))
    }

    fn open_resume_shard(
        &self,
        id: SessionId,
        shard: u32,
        keep: u64,
    ) -> io::Result<Box<dyn Write + Send>> {
        Ok(self.open_resume_buf(id, shard, keep))
    }
}

/// How one orphaned journal left behind by a previous daemon incarnation
/// classifies on re-adoption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrphanClass {
    /// A clean, FINAL-marked journal: the session completed and nothing
    /// was lost. Adopted as [`Finalized`](crate::SessionState::Finalized).
    Finalized {
        /// Epochs the journal commits.
        epochs: u32,
    },
    /// The journal salvages to a committed epoch prefix but did not
    /// finalize — the previous daemon died mid-recording. Adopted as
    /// [`Salvaged`](crate::SessionState::Salvaged).
    Salvageable {
        /// Epochs in the committed prefix (possibly 0).
        epochs: u32,
        /// Why salvage stopped, for operator-facing reporting.
        detail: String,
    },
    /// Not a recoverable journal: a zero-length file, a `.tmp` leftover
    /// from an interrupted write, an unrecognized name, or bytes that no
    /// salvage scan accepts. Reported, never adopted — garbage must not
    /// wedge boot.
    Garbage {
        /// What disqualified the file.
        reason: String,
    },
}

/// One journal (or shard set) found in a [`DirStore`] directory that the
/// current incarnation did not write — a candidate for boot re-adoption.
#[derive(Debug)]
pub struct Orphan {
    /// The session id parsed from the file name; garbage entries whose
    /// names do not parse have none.
    pub id: Option<SessionId>,
    /// The session name parsed from the file name (for garbage, the raw
    /// file name).
    pub name: String,
    /// The backing files: a single `.dprj` as `(None, path)`, or the
    /// `.dprs` shard set as `(Some(shard), path)` in shard order.
    pub files: Vec<(Option<u32>, PathBuf)>,
    /// What the salvage scan concluded.
    pub class: OrphanClass,
}

/// Parses a journal file stem of the form `s{id:04}-{name}`.
fn parse_stem(stem: &str) -> Option<(u64, &str)> {
    let rest = stem.strip_prefix('s')?;
    let dash = rest.find('-')?;
    let (digits, name) = (&rest[..dash], &rest[dash + 1..]);
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((digits.parse().ok()?, name))
}

/// Parses a shard-stream stem of the form `s{id:04}-{name}.s{shard}`.
fn parse_shard_stem(stem: &str) -> Option<(u64, &str, u32)> {
    let dot = stem.rfind('.')?;
    let shard = stem[dot + 1..].strip_prefix('s')?;
    if shard.is_empty() || !shard.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let (id, name) = parse_stem(&stem[..dot])?;
    Some((id, name, shard.parse().ok()?))
}

/// A directory of `s{id:04}-{name}.dprj` files, one per session; sharded
/// sessions write `s{id:04}-{name}.s{shard}.dprs` siblings instead.
pub struct DirStore {
    dir: PathBuf,
    paths: Mutex<HashMap<(u64, Option<u32>), PathBuf>>,
}

impl DirStore {
    /// Creates the directory (if needed) and the store.
    ///
    /// # Errors
    ///
    /// Directory creation failures.
    pub fn new(dir: impl AsRef<Path>) -> io::Result<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(DirStore {
            dir: dir.as_ref().to_path_buf(),
            paths: Mutex::new(HashMap::new()),
        })
    }

    /// The journal path assigned to `id`, if it opened one.
    pub fn path(&self, id: SessionId) -> Option<PathBuf> {
        self.paths.lock().unwrap().get(&(id.0, None)).cloned()
    }

    /// The path of one shard stream of `id`'s journal, if it opened one.
    pub fn shard_path(&self, id: SessionId, shard: u32) -> Option<PathBuf> {
        self.paths
            .lock()
            .unwrap()
            .get(&(id.0, Some(shard)))
            .cloned()
    }

    /// Registers an existing journal file as `id`'s backing path (shard
    /// `None` = the single `.dprj` stream), so
    /// [`durable`](SessionStore::durable) /
    /// [`durable_shard`](SessionStore::durable_shard) — and therefore the
    /// attach path — work for sessions adopted from a previous
    /// incarnation rather than opened by this one.
    pub fn adopt_path(&self, id: SessionId, shard: Option<u32>, path: PathBuf) {
        self.paths.lock().unwrap().insert((id.0, shard), path);
    }

    /// Scans the store directory for journal files this incarnation did
    /// not write and classifies each: clean journals are
    /// [`OrphanClass::Finalized`], crash-cut ones
    /// [`OrphanClass::Salvageable`] (with their committed epoch count),
    /// and everything unrecoverable — zero-length files, `.tmp` leftovers
    /// from interrupted writes, unrecognized names, unsalvageable bytes —
    /// is [`OrphanClass::Garbage`] with a reason, reported rather than
    /// wedging boot. Shard sets (`.s{k}.dprs` siblings) are grouped and
    /// classified by their cross-shard merge. Results are ordered by
    /// session id, then name.
    ///
    /// # Errors
    ///
    /// Directory or file I/O failures.
    pub fn scan_orphans(&self) -> io::Result<Vec<Orphan>> {
        let own: HashSet<PathBuf> = self.paths.lock().unwrap().values().cloned().collect();
        let garbage = |path: PathBuf, reason: String| {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            Orphan {
                id: None,
                name,
                files: vec![(None, path)],
                class: OrphanClass::Garbage { reason },
            }
        };
        let mut orphans: Vec<Orphan> = Vec::new();
        let mut singles: Vec<(u64, String, PathBuf)> = Vec::new();
        let mut shard_sets: HashMap<(u64, String), Vec<(u32, PathBuf)>> = HashMap::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if !entry.file_type()?.is_file() || own.contains(&path) {
                continue;
            }
            let Some(fname) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
                orphans.push(garbage(path, "non-UTF-8 file name".into()));
                continue;
            };
            if fname.ends_with(".tmp") {
                orphans.push(garbage(
                    path,
                    "temporary leftover from an interrupted write".into(),
                ));
            } else if entry.metadata()?.len() == 0 {
                orphans.push(garbage(path, "zero-length file".into()));
            } else if let Some(stem) = fname.strip_suffix(".dprj") {
                match parse_stem(stem) {
                    Some((id, name)) => singles.push((id, name.to_string(), path)),
                    None => orphans.push(garbage(path, "unrecognized journal name".into())),
                }
            } else if let Some(stem) = fname.strip_suffix(".dprs") {
                match parse_shard_stem(stem) {
                    Some((id, name, shard)) => shard_sets
                        .entry((id, name.to_string()))
                        .or_default()
                        .push((shard, path)),
                    None => orphans.push(garbage(path, "unrecognized shard-stream name".into())),
                }
            } else {
                orphans.push(garbage(path, "not a journal file".into()));
            }
        }
        for (id, name, path) in singles {
            let bytes = std::fs::read(&path)?;
            let class = match JournalReader::salvage(&bytes) {
                Ok(s) if s.clean => OrphanClass::Finalized {
                    epochs: s.committed() as u32,
                },
                Ok(s) => OrphanClass::Salvageable {
                    epochs: s.committed() as u32,
                    detail: s.detail,
                },
                Err(e) => OrphanClass::Garbage {
                    reason: e.to_string(),
                },
            };
            orphans.push(Orphan {
                id: Some(SessionId(id)),
                name,
                files: vec![(None, path)],
                class,
            });
        }
        for ((id, name), mut set) in shard_sets {
            set.sort_by_key(|&(k, _)| k);
            let bufs = set
                .iter()
                .map(|(_, p)| std::fs::read(p))
                .collect::<io::Result<Vec<Vec<u8>>>>()?;
            let class = match JournalReader::salvage_shards(&bufs) {
                Ok(s) if s.clean => OrphanClass::Finalized {
                    epochs: s.committed() as u32,
                },
                Ok(s) => OrphanClass::Salvageable {
                    epochs: s.committed() as u32,
                    detail: s.detail,
                },
                Err(e) => OrphanClass::Garbage {
                    reason: e.to_string(),
                },
            };
            orphans.push(Orphan {
                id: Some(SessionId(id)),
                name,
                files: set.into_iter().map(|(k, p)| (Some(k), p)).collect(),
                class,
            });
        }
        orphans.sort_by(|a, b| a.id.cmp(&b.id).then_with(|| a.name.cmp(&b.name)));
        Ok(orphans)
    }

    fn create(
        &self,
        id: SessionId,
        name: &str,
        shard: Option<u32>,
    ) -> io::Result<Box<dyn Write + Send>> {
        // Session names come from workload names, but sanitize anyway so a
        // hostile name cannot escape the store directory.
        let safe: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let file_name = match shard {
            None => format!("{id}-{safe}.dprj"),
            Some(k) => format!("{id}-{safe}.s{k}.dprs"),
        };
        let path = self.dir.join(file_name);
        let file = File::create(&path)?;
        self.paths.lock().unwrap().insert((id.0, shard), path);
        Ok(Box::new(file))
    }

    fn reopen_truncated(
        &self,
        id: SessionId,
        shard: Option<u32>,
        keep: u64,
    ) -> io::Result<Box<dyn Write + Send>> {
        let path = self
            .paths
            .lock()
            .unwrap()
            .get(&(id.0, shard))
            .cloned()
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("no journal for {id}"))
            })?;
        let mut file = std::fs::OpenOptions::new().write(true).open(&path)?;
        // Make the truncation to the salvaged prefix durable before any
        // continuation byte can land after it — a crash between the two
        // must leave the prefix, never prefix + stale tail + new tail.
        file.set_len(keep)?;
        file.sync_data()?;
        io::Seek::seek(&mut file, io::SeekFrom::End(0))?;
        Ok(Box::new(file))
    }

    fn read_back(&self, id: SessionId, shard: Option<u32>) -> io::Result<Vec<u8>> {
        let path = self
            .paths
            .lock()
            .unwrap()
            .get(&(id.0, shard))
            .cloned()
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("no journal for {id}"))
            })?;
        std::fs::read(path)
    }
}

impl SessionStore for DirStore {
    fn open(&self, id: SessionId, name: &str, _attempt: u32) -> io::Result<Box<dyn Write + Send>> {
        self.create(id, name, None)
    }

    fn durable(&self, id: SessionId) -> io::Result<Vec<u8>> {
        self.read_back(id, None)
    }

    fn open_shard(
        &self,
        id: SessionId,
        name: &str,
        _attempt: u32,
        shard: u32,
    ) -> io::Result<Box<dyn Write + Send>> {
        self.create(id, name, Some(shard))
    }

    fn durable_shard(&self, id: SessionId, shard: u32) -> io::Result<Vec<u8>> {
        self.read_back(id, Some(shard))
    }

    fn open_resume(&self, id: SessionId, keep: u64) -> io::Result<Box<dyn Write + Send>> {
        self.reopen_truncated(id, None, keep)
    }

    fn open_resume_shard(
        &self,
        id: SessionId,
        shard: u32,
        keep: u64,
    ) -> io::Result<Box<dyn Write + Send>> {
        self.reopen_truncated(id, Some(shard), keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_without_clock_is_fully_durable() {
        let store = MemStore::new();
        let id = SessionId(1);
        let mut w = store.open(id, "a", 0).unwrap();
        w.write_all(b"hello").unwrap();
        w.flush().unwrap();
        drop(w);
        assert_eq!(store.durable(id).unwrap(), b"hello");
        assert_eq!(store.live(id), b"hello");
        // A retry truncates in place.
        let mut w = store.open(id, "a", 1).unwrap();
        w.write_all(b"x").unwrap();
        drop(w);
        assert_eq!(store.durable(id).unwrap(), b"x");
    }

    #[test]
    fn crash_clock_tears_the_straddling_write() {
        let clock = CrashClock::new(7);
        let store = MemStore::crashing(clock.clone());
        let id = SessionId(2);
        let mut w = store.open(id, "b", 0).unwrap();
        w.write_all(b"abcde").unwrap(); // bytes 0..5: durable
        w.write_all(b"fghij").unwrap(); // bytes 5..10: 2 land, torn at 7
        w.write_all(b"klmno").unwrap(); // after the crash: lost
        drop(w);
        assert_eq!(store.durable(id).unwrap(), b"abcdefg");
        assert_eq!(store.live(id), b"abcdefghijklmno");
        assert_eq!(clock.elapsed(), 15);
    }

    #[test]
    fn crash_clock_interleaves_sessions() {
        let clock = CrashClock::new(4);
        let store = MemStore::crashing(clock);
        let a = SessionId(1);
        let b = SessionId(2);
        let mut wa = store.open(a, "a", 0).unwrap();
        let mut wb = store.open(b, "b", 0).unwrap();
        wa.write_all(b"111").unwrap(); // clock 0..3: durable
        wb.write_all(b"222").unwrap(); // clock 3..6: torn at 4
        wa.write_all(b"333").unwrap(); // clock 6..9: lost
        assert_eq!(store.durable(a).unwrap(), b"111");
        assert_eq!(store.durable(b).unwrap(), b"2");
    }

    #[test]
    fn mem_store_shards_share_the_crash_clock() {
        let clock = CrashClock::new(4);
        let store = MemStore::crashing(clock);
        let id = SessionId(7);
        let mut w0 = store.open_shard(id, "s", 0, 0).unwrap();
        let mut w1 = store.open_shard(id, "s", 0, 1).unwrap();
        w0.write_all(b"111").unwrap(); // clock 0..3: durable
        w1.write_all(b"222").unwrap(); // clock 3..6: torn at 4
        w0.write_all(b"333").unwrap(); // clock 6..9: lost
        assert_eq!(store.durable_shard(id, 0).unwrap(), b"111");
        assert_eq!(store.durable_shard(id, 1).unwrap(), b"2");
    }

    #[test]
    fn default_shard_methods_refuse() {
        struct Plain;
        impl SessionStore for Plain {
            fn open(
                &self,
                _id: SessionId,
                _name: &str,
                _attempt: u32,
            ) -> io::Result<Box<dyn Write + Send>> {
                Ok(Box::new(Vec::new()))
            }
            fn durable(&self, _id: SessionId) -> io::Result<Vec<u8>> {
                Ok(Vec::new())
            }
        }
        let Err(err) = Plain.open_shard(SessionId(1), "x", 0, 0) else {
            panic!("default open_shard must refuse");
        };
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
        let err = Plain.durable_shard(SessionId(1), 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn dir_store_writes_shard_siblings() {
        let tmp = crate::testdir::TempDir::new("dpd-shard-test");
        let store = DirStore::new(tmp.path()).unwrap();
        let id = SessionId(5);
        for k in 0..3u32 {
            let mut w = store.open_shard(id, "job", 0, k).unwrap();
            w.write_all(format!("shard{k}").as_bytes()).unwrap();
        }
        for k in 0..3u32 {
            assert_eq!(
                store.durable_shard(id, k).unwrap(),
                format!("shard{k}").as_bytes()
            );
            let path = store.shard_path(id, k).unwrap();
            assert!(path.to_str().unwrap().ends_with(&format!(".s{k}.dprs")));
        }
        assert!(store.durable(id).is_err(), "no single-stream journal");
    }

    #[test]
    fn stem_parsers_accept_store_names_only() {
        assert_eq!(
            parse_stem("s0004-pfscan_2_small"),
            Some((4, "pfscan_2_small"))
        );
        assert_eq!(parse_stem("s0123-x"), Some((123, "x")));
        assert_eq!(parse_stem("0004-x"), None, "missing s prefix");
        assert_eq!(parse_stem("s-x"), None, "no digits");
        assert_eq!(parse_stem("s00x4-y"), None, "non-digit id");
        assert_eq!(parse_stem("s0004"), None, "no name separator");
        assert_eq!(
            parse_shard_stem("s0004-job.s2"),
            Some((4, "job", 2)),
            "shard stems nest the plain stem"
        );
        assert_eq!(parse_shard_stem("s0004-job.2"), None, "missing s on shard");
        assert_eq!(parse_shard_stem("s0004-job"), None, "no shard suffix");
    }

    #[test]
    fn scan_classifies_orphans_and_reports_garbage() {
        use dp_core::{record_to, DoublePlayConfig, JournalWriter};
        let tmp = crate::testdir::TempDir::new("dpd-orphan-test");
        let dir = tmp.path().to_path_buf();
        // A previous incarnation: one clean journal, one truncated one.
        let spec = crate::guests::atomic_counter(2, 300);
        let cfg = DoublePlayConfig::new(2).epoch_cycles(600);
        let mut w = JournalWriter::new(Vec::new()).unwrap();
        record_to(&spec, &cfg, &mut w).unwrap();
        let clean = w.into_inner();
        {
            let old = DirStore::new(&dir).unwrap();
            let mut f = old.open(SessionId(1), "done", 0).unwrap();
            f.write_all(&clean).unwrap();
            let mut f = old.open(SessionId(2), "cut", 0).unwrap();
            f.write_all(&clean[..clean.len() - 3]).unwrap();
        }
        // Crash leftovers that must be garbage, not wedge boot.
        std::fs::write(dir.join("s0003-empty.dprj"), b"").unwrap();
        std::fs::write(dir.join("s0004-half.dprj.tmp"), b"partial").unwrap();
        std::fs::write(dir.join("notes.txt"), b"hi").unwrap();
        std::fs::write(dir.join("weird.dprj"), b"DPRJ????").unwrap();

        let store = DirStore::new(&dir).unwrap();
        let orphans = store.scan_orphans().unwrap();
        assert_eq!(orphans.len(), 6, "{orphans:?}");
        let by_name = |n: &str| {
            orphans
                .iter()
                .find(|o| o.name == n)
                .unwrap_or_else(|| panic!("no orphan named {n}: {orphans:?}"))
        };
        let done = by_name("done");
        assert_eq!(done.id, Some(SessionId(1)));
        assert!(
            matches!(done.class, OrphanClass::Finalized { epochs } if epochs >= 1),
            "{:?}",
            done.class
        );
        let cut = by_name("cut");
        assert_eq!(cut.id, Some(SessionId(2)));
        assert!(
            matches!(cut.class, OrphanClass::Salvageable { .. }),
            "{:?}",
            cut.class
        );
        for n in [
            "s0003-empty.dprj",
            "s0004-half.dprj.tmp",
            "notes.txt",
            "weird.dprj",
        ] {
            assert!(
                matches!(by_name(n).class, OrphanClass::Garbage { .. }),
                "{n}: {:?}",
                by_name(n).class
            );
            assert_eq!(by_name(n).id, None);
        }
        // Files registered by this incarnation are not orphans.
        let mut f = store.open(SessionId(9), "mine", 0).unwrap();
        f.write_all(&clean).unwrap();
        drop(f);
        assert_eq!(store.scan_orphans().unwrap().len(), 6);
        // Adoption registers the path so durable() works.
        store.adopt_path(SessionId(1), None, done.files[0].1.clone());
        assert_eq!(store.durable(SessionId(1)).unwrap(), clean);
    }

    #[test]
    fn scan_groups_shard_sets() {
        use dp_core::{record_to, DoublePlayConfig, ShardedJournalWriter};
        let tmp = crate::testdir::TempDir::new("dpd-orphan-shards");
        let dir = tmp.path().to_path_buf();
        let spec = crate::guests::atomic_counter(2, 300);
        let cfg = DoublePlayConfig::new(2).epoch_cycles(600);
        {
            let old = DirStore::new(&dir).unwrap();
            let sinks = (0..3u32)
                .map(|k| old.open_shard(SessionId(5), "sharded", 0, k).unwrap())
                .collect();
            let mut w = ShardedJournalWriter::new(sinks, dp_core::DEFAULT_SHARD_BATCH).unwrap();
            record_to(&spec, &cfg, &mut w).unwrap();
        }
        let store = DirStore::new(&dir).unwrap();
        let orphans = store.scan_orphans().unwrap();
        assert_eq!(orphans.len(), 1, "{orphans:?}");
        let o = &orphans[0];
        assert_eq!(o.id, Some(SessionId(5)));
        assert_eq!(o.name, "sharded");
        assert_eq!(
            o.files.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![Some(0), Some(1), Some(2)]
        );
        assert!(
            matches!(o.class, OrphanClass::Finalized { epochs } if epochs >= 1),
            "{:?}",
            o.class
        );
    }

    #[test]
    fn dir_store_round_trips_and_sanitizes() {
        let tmp = crate::testdir::TempDir::new("dpd-store-test");
        let store = DirStore::new(tmp.path()).unwrap();
        let id = SessionId(3);
        let mut w = store.open(id, "we/ird name", 0).unwrap();
        w.write_all(b"journal").unwrap();
        drop(w);
        assert_eq!(store.durable(id).unwrap(), b"journal");
        let path = store.path(id).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("we_ird_name"));
        assert!(store.durable(SessionId(99)).is_err());
    }

    #[test]
    fn default_resume_methods_refuse() {
        struct Plain;
        impl SessionStore for Plain {
            fn open(
                &self,
                _id: SessionId,
                _name: &str,
                _attempt: u32,
            ) -> io::Result<Box<dyn Write + Send>> {
                Ok(Box::new(Vec::new()))
            }
            fn durable(&self, _id: SessionId) -> io::Result<Vec<u8>> {
                Ok(Vec::new())
            }
        }
        let Err(err) = Plain.open_resume(SessionId(1), 4) else {
            panic!("default open_resume must refuse")
        };
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
        let Err(err) = Plain.open_resume_shard(SessionId(1), 0, 4) else {
            panic!("default open_resume_shard must refuse")
        };
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn mem_store_resume_appends_after_the_kept_prefix() {
        let store = MemStore::new();
        let id = SessionId(4);
        store.seed(id, 0, b"prefix+torn".to_vec());
        let mut w = store.open_resume(id, 6).unwrap();
        w.write_all(b"-more").unwrap();
        drop(w);
        assert_eq!(store.durable(id).unwrap(), b"prefix-more");
        // Shard streams truncate and append independently.
        store.seed(id, 1, b"abcdef".to_vec());
        let mut w = store.open_resume_shard(id, 1, 3).unwrap();
        w.write_all(b"XY").unwrap();
        drop(w);
        assert_eq!(store.durable_shard(id, 1).unwrap(), b"abcXY");
    }

    #[test]
    fn dir_store_resume_truncates_then_appends() {
        let tmp = crate::testdir::TempDir::new("dpd-resume-test");
        let store = DirStore::new(tmp.path()).unwrap();
        let id = SessionId(8);
        let mut w = store.open(id, "r", 0).unwrap();
        w.write_all(b"prefix+torn-tail").unwrap();
        drop(w);
        let mut w = store.open_resume(id, 6).unwrap();
        w.write_all(b"-more").unwrap();
        drop(w);
        assert_eq!(store.durable(id).unwrap(), b"prefix-more");
        assert!(store.open_resume(SessionId(99), 0).is_err());
    }
}
