//! `dpd-load` — the load-generator client for the `dpd` recording service.
//!
//! Opens hundreds of sessions over the mixed workload suite from several
//! client threads, with bursty submission, per-session derived fault
//! plans, mixed priorities, and polite back-off on typed rejections.
//! Prints the session table summary and service metrics at the end.
//!
//! ```text
//! dpd-load [--sessions N] [--clients N] [--runners N] [--cores N]
//!          [--capacity N] [--threads N] [--size small|medium|large]
//!          [--faults] [--check] [--seed N]
//! ```

use dp_core::{record_to, DoublePlayConfig, FaultPlan, JournalWriter};
use dp_dpd::{
    AdmitError, Daemon, DaemonConfig, MemStore, Priority, SessionId, SessionSpec, SessionState,
    SessionStore,
};
use dp_support::rng::mix;
use dp_workloads::{mixed_suite, Size};
use std::sync::Arc;
use std::time::Instant;

struct Opts {
    sessions: usize,
    clients: usize,
    runners: usize,
    cores: usize,
    capacity: usize,
    threads: usize,
    size: Size,
    faults: bool,
    check: bool,
    seed: u64,
}

fn fail(detail: &str) -> ! {
    eprintln!("dpd-load: {detail}");
    std::process::exit(1);
}

fn parse() -> Opts {
    let mut o = Opts {
        sessions: 200,
        clients: 4,
        runners: 4,
        cores: 4,
        capacity: 32,
        threads: 2,
        size: Size::Small,
        faults: false,
        check: false,
        seed: 42,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |what: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| fail(&format!("{what} needs a number")))
        };
        match a.as_str() {
            "--sessions" => o.sessions = num("--sessions"),
            "--clients" => o.clients = num("--clients").max(1),
            "--runners" => o.runners = num("--runners").max(1),
            "--cores" => o.cores = num("--cores"),
            "--capacity" => o.capacity = num("--capacity").max(1),
            "--threads" => o.threads = num("--threads").max(1),
            "--seed" => o.seed = num("--seed") as u64,
            "--size" => {
                o.size = match args.next().as_deref() {
                    Some("small") => Size::Small,
                    Some("medium") => Size::Medium,
                    Some("large") => Size::Large,
                    other => fail(&format!("unknown size {other:?}")),
                }
            }
            "--faults" => o.faults = true,
            "--check" => o.check = true,
            "--help" | "-h" => {
                println!(
                    "dpd-load [--sessions N] [--clients N] [--runners N] [--cores N] \
                     [--capacity N] [--threads N] [--size small|medium|large] \
                     [--faults] [--check] [--seed N]"
                );
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }
    o
}

/// The spec for global session number `i`: workloads cycle through the
/// mixed suite, priorities cycle through the lanes, and (with `--faults`)
/// every third session carries a per-session decorrelated fault plan.
fn spec_for(o: &Opts, i: usize) -> SessionSpec {
    let cases = mixed_suite(o.threads, o.size);
    let case = &cases[i % cases.len()];
    let mut config = DoublePlayConfig::new(o.threads)
        .epoch_cycles(50_000)
        .hidden_seed(mix(&[o.seed, i as u64, 0x10ad]));
    if i.is_multiple_of(2) {
        config = config.spare_workers(o.threads).pipelined(true);
    }
    if o.faults && i.is_multiple_of(3) {
        let template = FaultPlan::none()
            .seed(o.seed)
            .io(0.0, 0.002, 0.0)
            .worker_panics_with(0.01)
            .storms(0.05, 4, 32);
        config = config.faults(template.for_session(i as u64));
    }
    let priority = match i % 3 {
        0 => Priority::High,
        1 => Priority::Normal,
        _ => Priority::Low,
    };
    SessionSpec::new(case.name, case.spec.clone(), config)
        .priority(priority)
        .restart_budget(2)
}

fn main() {
    let o = parse();
    dp_core::faults::silence_injected_panics();
    let store = Arc::new(MemStore::new());
    let daemon = Arc::new(Daemon::start(
        DaemonConfig {
            runners: o.runners,
            verify_cores: o.cores,
            queue_capacity: o.capacity,
        },
        store.clone(),
    ));

    let started = Instant::now();
    let ids = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..o.clients {
            let daemon = daemon.clone();
            let o = &o;
            handles.push(scope.spawn(move || {
                let mut ids = Vec::new();
                let mut i = client;
                while i < o.sessions {
                    match daemon.submit_retrying(spec_for(o, i), 1_000) {
                        Ok(id) => ids.push((i, id)),
                        Err(AdmitError::Draining) => break,
                        Err(e) => fail(&format!("session {i} not admitted: {e}")),
                    }
                    i += o.clients;
                }
                ids
            }));
        }
        let mut all: Vec<(usize, SessionId)> = Vec::new();
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
        all
    });
    daemon.drain();
    let wall = started.elapsed();

    let m = daemon.metrics();
    let rows = daemon.sessions();
    let terminal = rows.iter().filter(|r| r.state.is_terminal()).count();
    println!(
        "sessions: {} admitted, {} terminal ({} finalized, {} salvaged, {} failed)",
        m.admitted, terminal, m.finalized, m.salvaged, m.failed
    );
    println!(
        "backpressure: {} rejections shed, {} degraded runs, {} retries",
        m.rejected, m.degraded_runs, m.retries
    );
    println!(
        "throughput: {:.1} sessions/s, {:.0} epochs/s ({} epochs committed)",
        m.admitted as f64 / wall.as_secs_f64(),
        m.epochs_committed as f64 / wall.as_secs_f64(),
        m.epochs_committed
    );
    println!(
        "admission latency: p50 {:.2}ms, p99 {:.2}ms",
        m.admission_p50_ns as f64 / 1e6,
        m.admission_p99_ns as f64 / 1e6
    );

    if o.check {
        // Byte-identity spot check: every 10th session's journal must be
        // identical to a solo run of the same spec (isolation oracle).
        let mut checked = 0;
        for (i, id) in ids.iter().step_by(10) {
            let spec = spec_for(&o, *i);
            let row = rows.iter().find(|r| r.id == *id).expect("row");
            if row.state != SessionState::Finalized {
                continue;
            }
            let mut w = JournalWriter::new(Vec::new()).expect("journal");
            record_to(&spec.guest, &spec.config, &mut w).expect("solo run");
            if store.durable(*id).expect("durable") != w.into_inner() {
                fail(&format!("session {id} diverged from its solo run"));
            }
            checked += 1;
        }
        println!("checked: {checked} sessions byte-identical to solo runs");
    }

    match Arc::try_unwrap(daemon) {
        Ok(d) => d.shutdown(),
        Err(_) => fail("daemon still shared at exit"),
    }
}
