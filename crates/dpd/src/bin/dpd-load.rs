//! `dpd-load` — the load-generator client for the `dpd` recording service.
//!
//! Opens hundreds of sessions over the mixed workload suite from several
//! client threads, with bursty submission, per-session derived fault
//! plans, mixed priorities, and polite back-off on typed rejections.
//! Prints the session table summary and service metrics at the end.
//!
//! ```text
//! dpd-load [--sessions N] [--clients N] [--runners N] [--cores N]
//!          [--capacity N] [--threads N] [--size small|medium|large]
//!          [--faults] [--check] [--seed N] [--socket PATH]
//! ```
//!
//! With `--socket PATH` the same load runs over the `dpnet` protocol
//! against an already-running `dp serve --socket` daemon: every client
//! thread opens its own connection, submits by guest *reference*, and
//! `--check` fetches each spot-checked journal over an attach stream —
//! proving socket-submitted recordings byte-identical to solo in-process
//! runs of the same spec.

use dp_core::{record_to, DoublePlayConfig, FaultPlan, JournalWriter};
use dp_dpd::{
    AdmitError, Client, ClientError, Daemon, DaemonConfig, GuestRef, MemStore, Priority, SessionId,
    SessionSpec, SessionState, SessionStore, SizeRef, SubmitSpec, WireFault,
};
use dp_support::rng::mix;
use dp_workloads::{mixed_suite, Size};
use std::sync::Arc;
use std::time::Instant;

struct Opts {
    sessions: usize,
    clients: usize,
    runners: usize,
    cores: usize,
    capacity: usize,
    threads: usize,
    size: Size,
    faults: bool,
    check: bool,
    seed: u64,
    socket: Option<String>,
}

fn fail(detail: &str) -> ! {
    eprintln!("dpd-load: {detail}");
    std::process::exit(1);
}

fn parse() -> Opts {
    let mut o = Opts {
        sessions: 200,
        clients: 4,
        runners: 4,
        cores: 4,
        capacity: 32,
        threads: 2,
        size: Size::Small,
        faults: false,
        check: false,
        seed: 42,
        socket: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |what: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| fail(&format!("{what} needs a number")))
        };
        match a.as_str() {
            "--sessions" => o.sessions = num("--sessions"),
            "--clients" => o.clients = num("--clients").max(1),
            "--runners" => o.runners = num("--runners").max(1),
            "--cores" => o.cores = num("--cores"),
            "--capacity" => o.capacity = num("--capacity").max(1),
            "--threads" => o.threads = num("--threads").max(1),
            "--seed" => o.seed = num("--seed") as u64,
            "--size" => {
                o.size = match args.next().as_deref() {
                    Some("small") => Size::Small,
                    Some("medium") => Size::Medium,
                    Some("large") => Size::Large,
                    other => fail(&format!("unknown size {other:?}")),
                }
            }
            "--faults" => o.faults = true,
            "--check" => o.check = true,
            "--socket" => {
                o.socket = Some(args.next().unwrap_or_else(|| fail("--socket needs a path")))
            }
            "--help" | "-h" => {
                println!(
                    "dpd-load [--sessions N] [--clients N] [--runners N] [--cores N] \
                     [--capacity N] [--threads N] [--size small|medium|large] \
                     [--faults] [--check] [--seed N] [--socket PATH]"
                );
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }
    o
}

/// The configuration and lane for global session number `i` — shared by
/// the in-process and socket paths so `--check`'s solo oracle reproduces
/// exactly what was submitted either way.
fn config_for(o: &Opts, i: usize) -> (DoublePlayConfig, Priority) {
    let mut config = DoublePlayConfig::new(o.threads)
        .epoch_cycles(50_000)
        .hidden_seed(mix(&[o.seed, i as u64, 0x10ad]));
    if i.is_multiple_of(2) {
        config = config.spare_workers(o.threads).pipelined(true);
    }
    if o.faults && i.is_multiple_of(3) {
        let template = FaultPlan::none()
            .seed(o.seed)
            .io(0.0, 0.002, 0.0)
            .worker_panics_with(0.01)
            .storms(0.05, 4, 32);
        config = config.faults(template.for_session(i as u64));
    }
    let priority = match i % 3 {
        0 => Priority::High,
        1 => Priority::Normal,
        _ => Priority::Low,
    };
    (config, priority)
}

/// The spec for global session number `i`: workloads cycle through the
/// mixed suite, priorities cycle through the lanes, and (with `--faults`)
/// every third session carries a per-session decorrelated fault plan.
fn spec_for(o: &Opts, i: usize) -> SessionSpec {
    let cases = mixed_suite(o.threads, o.size);
    let case = &cases[i % cases.len()];
    let (config, priority) = config_for(o, i);
    SessionSpec::new(case.name, case.spec.clone(), config)
        .priority(priority)
        .restart_budget(2)
}

/// The wire twin of [`spec_for`]: the same session, with the guest by
/// reference (the daemon resolves the identical workload on its side).
fn submit_spec_for(o: &Opts, i: usize) -> SubmitSpec {
    let cases = mixed_suite(o.threads, o.size);
    let case = &cases[i % cases.len()];
    let (config, priority) = config_for(o, i);
    let guest = GuestRef::Workload {
        name: case.name.to_string(),
        threads: o.threads as u64,
        size: SizeRef::from_size(o.size),
    };
    let mut spec = SubmitSpec::new(case.name, guest, config);
    spec.priority = priority;
    spec.restart_budget = 2;
    spec
}

/// The `--socket` load path: the same burst of sessions, submitted over
/// `dpnet` from one connection per client thread against a daemon that is
/// already serving. `--check` fetches journals back over attach streams.
fn run_socket(o: &Opts, socket: &str) {
    let started = Instant::now();
    let ids = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..o.clients {
            let o = &*o;
            handles.push(scope.spawn(move || {
                let mut conn = Client::connect(socket)
                    .unwrap_or_else(|e| fail(&format!("cannot connect to `{socket}`: {e}")));
                let mut ids = Vec::new();
                let mut i = client;
                while i < o.sessions {
                    match conn.submit_retrying(&submit_spec_for(o, i), 1_000) {
                        Ok(id) => ids.push((i, id)),
                        Err(ClientError::Fault(WireFault::Draining)) => break,
                        Err(e) => fail(&format!("session {i} not admitted: {e}")),
                    }
                    i += o.clients;
                }
                for (_, id) in &ids {
                    conn.wait(*id)
                        .unwrap_or_else(|e| fail(&format!("waiting on {id}: {e}")));
                }
                ids
            }));
        }
        let mut all: Vec<(usize, SessionId)> = Vec::new();
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
        all
    });
    let wall = started.elapsed();

    let mut conn = Client::connect(socket)
        .unwrap_or_else(|e| fail(&format!("cannot connect to `{socket}`: {e}")));
    let m = conn
        .metrics()
        .unwrap_or_else(|e| fail(&format!("metrics: {e}")));
    let (rows, _notes) = conn
        .sessions()
        .unwrap_or_else(|e| fail(&format!("sessions: {e}")));
    let terminal = rows.iter().filter(|r| r.state.is_terminal()).count();
    println!(
        "sessions: {} submitted over {socket}, {} terminal daemon-wide \
         ({} finalized, {} salvaged, {} failed)",
        ids.len(),
        terminal,
        m.finalized,
        m.salvaged,
        m.failed
    );
    println!(
        "backpressure: {} rejections shed, {} degraded runs, {} retries",
        m.rejected, m.degraded_runs, m.retries
    );
    println!(
        "throughput: {:.1} sessions/s over the socket ({} epochs committed)",
        ids.len() as f64 / wall.as_secs_f64(),
        m.epochs_committed
    );

    if o.check {
        // Byte-identity spot check over the wire: every 10th session's
        // journal, fetched back through an attach stream, must be
        // identical to a solo in-process run of the same spec.
        let mut checked = 0;
        for (i, id) in ids.iter().step_by(10) {
            let row = rows.iter().find(|r| r.id == *id).expect("row");
            if row.state != SessionState::Finalized {
                continue;
            }
            let spec = spec_for(o, *i);
            let mut w = JournalWriter::new(Vec::new()).expect("journal");
            record_to(&spec.guest, &spec.config, &mut w).expect("solo run");
            let mut streamed = Vec::new();
            conn.attach(*id, &mut streamed)
                .unwrap_or_else(|e| fail(&format!("attach {id}: {e}")));
            if streamed != w.into_inner() {
                fail(&format!("session {id} diverged from its solo run"));
            }
            checked += 1;
        }
        println!("checked: {checked} sessions byte-identical to solo runs via attach");
    }
}

fn main() {
    let o = parse();
    dp_core::faults::silence_injected_panics();
    if let Some(socket) = o.socket.clone() {
        return run_socket(&o, &socket);
    }
    let store = Arc::new(MemStore::new());
    let daemon = Arc::new(Daemon::start(
        DaemonConfig {
            runners: o.runners,
            verify_cores: o.cores,
            queue_capacity: o.capacity,
            ..DaemonConfig::default()
        },
        store.clone(),
    ));

    let started = Instant::now();
    let ids = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..o.clients {
            let daemon = daemon.clone();
            let o = &o;
            handles.push(scope.spawn(move || {
                let mut ids = Vec::new();
                let mut i = client;
                while i < o.sessions {
                    match daemon.submit_retrying(spec_for(o, i), 1_000) {
                        Ok(id) => ids.push((i, id)),
                        Err(AdmitError::Draining) => break,
                        Err(e) => fail(&format!("session {i} not admitted: {e}")),
                    }
                    i += o.clients;
                }
                ids
            }));
        }
        let mut all: Vec<(usize, SessionId)> = Vec::new();
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
        all
    });
    daemon.drain();
    let wall = started.elapsed();

    let m = daemon.metrics();
    let rows = daemon.sessions();
    let terminal = rows.iter().filter(|r| r.state.is_terminal()).count();
    println!(
        "sessions: {} admitted, {} terminal ({} finalized, {} salvaged, {} failed)",
        m.admitted, terminal, m.finalized, m.salvaged, m.failed
    );
    println!(
        "backpressure: {} rejections shed, {} degraded runs, {} retries",
        m.rejected, m.degraded_runs, m.retries
    );
    println!(
        "throughput: {:.1} sessions/s, {:.0} epochs/s ({} epochs committed)",
        m.admitted as f64 / wall.as_secs_f64(),
        m.epochs_committed as f64 / wall.as_secs_f64(),
        m.epochs_committed
    );
    println!(
        "admission latency: p50 {:.2}ms, p99 {:.2}ms",
        m.admission_p50_ns as f64 / 1e6,
        m.admission_p99_ns as f64 / 1e6
    );

    if o.check {
        // Byte-identity spot check: every 10th session's journal must be
        // identical to a solo run of the same spec (isolation oracle).
        let mut checked = 0;
        for (i, id) in ids.iter().step_by(10) {
            let spec = spec_for(&o, *i);
            let row = rows.iter().find(|r| r.id == *id).expect("row");
            if row.state != SessionState::Finalized {
                continue;
            }
            let mut w = JournalWriter::new(Vec::new()).expect("journal");
            record_to(&spec.guest, &spec.config, &mut w).expect("solo run");
            if store.durable(*id).expect("durable") != w.into_inner() {
                fail(&format!("session {id} diverged from its solo run"));
            }
            checked += 1;
        }
        println!("checked: {checked} sessions byte-identical to solo runs");
    }

    match Arc::try_unwrap(daemon) {
        Ok(d) => d.shutdown(),
        Err(_) => fail("daemon still shared at exit"),
    }
}
