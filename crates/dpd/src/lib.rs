//! # dp-dpd — the multi-session recording service
//!
//! DoublePlay's recorder logs one guest cheaply on spare cores. A fleet
//! deployment needs the next layer up: many concurrent recording sessions
//! sharing one machine, where any single tenant's divergence storm, sink
//! failure, or worker panic must not take down its neighbors. `dpd` is
//! that layer — a long-lived daemon that multiplexes sessions over a
//! bounded pool of runner threads and one shared global verify-core pool,
//! turning sessions into *data* (rows in a registry) instead of processes.
//!
//! ## The contract
//!
//! Following the partially-constrained-logging insight, the service
//! relaxes *admission* freely — shed load, reorder lanes, degrade — but
//! never relaxes *recoverability*: every admitted session is, at every
//! instant, salvageable to exactly its committed epoch prefix, because
//! each session streams its own `DPRJ` journal through
//! [`dp_core::JournalWriter`] and the journal's commit rule makes the
//! per-epoch flush the durability point.
//!
//! * **Session state machine** — `Admitted → Recording → Draining →
//!   {Finalized, Salvaged, Failed}` ([`SessionState`]); retries within a
//!   restart budget loop back to `Admitted`.
//! * **Admission control** — a bounded queue with three priority lanes;
//!   oversubscription yields a typed [`AdmitError::Rejected`] with a
//!   `retry_after` hint, never a hang ([`admission`]).
//! * **Graceful degradation** — when the shared verify-core pool is
//!   exhausted, low-priority sessions record *serialized* (sequential
//!   driver, same bytes — the pipelined flag is not wire-encoded) instead
//!   of being refused ([`daemon`]).
//! * **Fault isolation** — each session attempt runs under
//!   `catch_unwind`; a `RecordError`, an injected panic, or a sink fault
//!   is contained, retried within budget, and reported in the session's
//!   own registry row without disturbing siblings.
//! * **Crash story** — SIGKILL the whole daemon mid-run and every
//!   admitted session salvages independently (`dp salvage` per journal);
//!   [`store::MemStore`] plus [`store::CrashClock`] simulate exactly this
//!   for the property tests.
//!
//! ## Quick start
//!
//! ```
//! use dp_dpd::{guests, Daemon, DaemonConfig, MemStore, SessionSpec};
//! use dp_core::DoublePlayConfig;
//! use std::sync::Arc;
//!
//! let store = Arc::new(MemStore::new());
//! let daemon = Daemon::start(DaemonConfig::default(), store.clone());
//! let spec = SessionSpec::new(
//!     "demo",
//!     guests::atomic_counter(2, 400),
//!     DoublePlayConfig::new(2).epoch_cycles(800),
//! );
//! let id = daemon.submit(spec)?;
//! daemon.drain();
//! let report = daemon.report(id).unwrap();
//! assert!(report.state.is_terminal());
//! daemon.shutdown();
//! # Ok::<(), dp_dpd::AdmitError>(())
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod daemon;
pub mod guests;
pub mod proto;
pub mod session;
pub mod store;

pub use admission::AdmitError;
pub use client::{AttachOutcome, Client, ClientError};
pub use daemon::{Daemon, DaemonConfig, DaemonMetrics};
pub use proto::{serve, GuestRef, Request, Response, ServerConfig, SizeRef, SubmitSpec, WireFault};
pub use session::{
    sessions_json, Priority, SessionError, SessionId, SessionReport, SessionSpec, SessionState,
};
pub use store::{CrashClock, DirStore, MemStore, Orphan, OrphanClass, SessionStore};

/// Unique scratch directories for this crate's unit tests. `cargo test`
/// runs tests in parallel threads of one process, so a pid-keyed
/// directory name is *not* unique — two tests (or an aborted earlier run)
/// can collide. Each [`testdir::TempDir`] gets a process-wide counter
/// suffix and removes its tree on drop, even when the test fails.
#[cfg(test)]
pub(crate) mod testdir {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static NEXT: AtomicUsize = AtomicUsize::new(0);

    /// An exclusively-owned scratch directory, removed on drop.
    pub struct TempDir(PathBuf);

    impl TempDir {
        /// Creates `$TMPDIR/{tag}-{pid}-{n}`, empty.
        pub fn new(tag: &str) -> Self {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!("{tag}-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        /// The directory path.
        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}
