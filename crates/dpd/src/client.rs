//! The `dpnet` client: a blocking unix-socket handle to a remote
//! [`Daemon`](crate::Daemon), mirroring the in-process API call for
//! call. Every daemon-side failure arrives as a typed
//! [`WireFault`] inside [`ClientError::Fault`]; transport and framing
//! trouble stay distinguishable so callers can tell "the daemon said no"
//! from "the daemon died".

use crate::proto::frame::{expect_hello, read_frame, send_hello, write_frame, FrameError};
use crate::proto::msg::{Request, Response, SubmitSpec, WireFault};
use crate::session::{SessionId, SessionReport, SessionState};
use crate::DaemonMetrics;
use dp_support::wire::{from_bytes, to_bytes};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A typed client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport I/O failed.
    Io(io::Error),
    /// The framing layer failed (stream severed, corrupt frame).
    Frame(FrameError),
    /// The daemon answered with a typed fault.
    Fault(WireFault),
    /// The daemon answered with a response the protocol does not allow
    /// here.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Fault(fault) => write!(f, "daemon refused: {fault}"),
            ClientError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// What a completed attach stream delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttachOutcome {
    /// The session's terminal state.
    pub state: SessionState,
    /// Epochs its journal commits.
    pub epochs: u32,
    /// True when the journal finalized cleanly.
    pub clean: bool,
    /// Journal bytes received (after any restarts).
    pub bytes: u64,
    /// Chunk frames received over the stream's lifetime.
    pub chunks: u64,
}

/// One connection to a serving daemon. Methods are blocking and the
/// handle is single-threaded by design — open one per client thread.
pub struct Client {
    stream: UnixStream,
    buf: Vec<u8>,
    /// The socket path, kept so retry loops can reconnect after the
    /// server answers typed backpressure and closes the connection.
    path: PathBuf,
}

impl Client {
    /// Connects and performs the `DPN1` handshake.
    ///
    /// # Errors
    ///
    /// Transport failures, or a magic/version mismatch.
    pub fn connect(path: impl AsRef<Path>) -> Result<Self, ClientError> {
        let path = path.as_ref().to_path_buf();
        let mut stream = UnixStream::connect(&path).map_err(ClientError::Io)?;
        send_hello(&mut stream).map_err(ClientError::Io)?;
        expect_hello(&mut stream)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
            path,
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        if let Err(e) = write_frame(&mut self.stream, &to_bytes(req)) {
            // The server may have refused this connection with a typed
            // fault before closing (its Busy backpressure): surface that
            // instead of the raw broken-pipe error.
            if read_frame(&mut self.stream, &mut self.buf).is_ok() {
                if let Ok(Response::Error { fault }) = from_bytes::<Response>(&self.buf) {
                    return Err(ClientError::Fault(fault));
                }
            }
            return Err(ClientError::Io(e));
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        read_frame(&mut self.stream, &mut self.buf)?;
        let resp = from_bytes::<Response>(&self.buf)
            .map_err(|e| ClientError::Protocol(format!("undecodable response: {e}")))?;
        if let Response::Error { fault } = resp {
            return Err(ClientError::Fault(fault));
        }
        Ok(resp)
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv()
    }

    /// Submits a session; the socket twin of
    /// [`Daemon::submit`](crate::Daemon::submit).
    ///
    /// # Errors
    ///
    /// [`ClientError::Fault`] mirroring the admission error, or
    /// transport trouble.
    pub fn submit(&mut self, spec: &SubmitSpec) -> Result<SessionId, ClientError> {
        match self.call(&Request::Submit { spec: spec.clone() })? {
            Response::Admitted { id } => Ok(id),
            other => Err(unexpected("Admitted", &other)),
        }
    }

    /// [`submit`](Client::submit) with polite back-off on typed
    /// backpressure, up to `tries` attempts — the socket twin of
    /// [`Daemon::submit_retrying`](crate::Daemon::submit_retrying).
    ///
    /// Retries both backpressure faults: [`WireFault::Rejected`] (the
    /// admission queue is full; the connection stays usable) and
    /// [`WireFault::Busy`] (the accept loop refused this *connection* and
    /// closed it — the retry reconnects first). The wait is capped
    /// exponential with deterministic jitter derived from the spec name
    /// and attempt number, so a thundering herd of identical clients fans
    /// out without sharing a clock or an RNG — and a given client's retry
    /// schedule is reproducible.
    ///
    /// # Errors
    ///
    /// The last backpressure error once retries are exhausted; any other
    /// error immediately.
    pub fn submit_retrying(
        &mut self,
        spec: &SubmitSpec,
        tries: usize,
    ) -> Result<SessionId, ClientError> {
        let mut last = None;
        for attempt in 0..tries.max(1) as u32 {
            match self.submit(spec) {
                Ok(id) => return Ok(id),
                Err(
                    e @ ClientError::Fault(WireFault::Rejected { .. } | WireFault::Busy { .. }),
                ) => {
                    let reconnect = matches!(e, ClientError::Fault(WireFault::Busy { .. }));
                    last = Some(e);
                    std::thread::sleep(backoff(&spec.name, attempt));
                    if reconnect {
                        *self = Client::connect(self.path.clone())?;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("tries >= 1"))
    }

    /// Crash-resumes a salvaged session; the socket twin of
    /// [`Daemon::resume`](crate::Daemon::resume). Returns the epoch the
    /// resume continues from.
    ///
    /// # Errors
    ///
    /// [`WireFault::UnknownSession`] / [`WireFault::NotResumable`] as
    /// faults, or transport trouble.
    pub fn resume(&mut self, id: SessionId) -> Result<u32, ClientError> {
        match self.call(&Request::Resume { id })? {
            Response::Resumed { from_epoch, .. } => Ok(from_epoch),
            other => Err(unexpected("Resumed", &other)),
        }
    }

    /// One session's report.
    ///
    /// # Errors
    ///
    /// [`WireFault::UnknownSession`] as a fault, or transport trouble.
    pub fn status(&mut self, id: SessionId) -> Result<SessionReport, ClientError> {
        match self.call(&Request::Status { id })? {
            Response::Report { report } => Ok(report),
            other => Err(unexpected("Report", &other)),
        }
    }

    /// Polls [`status`](Client::status) until the session is terminal.
    ///
    /// # Errors
    ///
    /// Any status failure.
    pub fn wait(&mut self, id: SessionId) -> Result<SessionReport, ClientError> {
        loop {
            let report = self.status(id)?;
            if report.state.is_terminal() {
                return Ok(report);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Every session's report plus operator notes (re-adoption garbage).
    ///
    /// # Errors
    ///
    /// Transport trouble.
    pub fn sessions(&mut self) -> Result<(Vec<SessionReport>, Vec<String>), ClientError> {
        match self.call(&Request::Sessions)? {
            Response::SessionList { rows, notes } => Ok((rows, notes)),
            other => Err(unexpected("SessionList", &other)),
        }
    }

    /// Cancels a queued session; the socket twin of
    /// [`Daemon::cancel`](crate::Daemon::cancel).
    ///
    /// # Errors
    ///
    /// [`WireFault::UnknownSession`] / [`WireFault::NotCancellable`] as
    /// faults, or transport trouble.
    pub fn cancel(&mut self, id: SessionId) -> Result<(), ClientError> {
        match self.call(&Request::Cancel { id })? {
            Response::Cancelled { .. } => Ok(()),
            other => Err(unexpected("Cancelled", &other)),
        }
    }

    /// Aggregate daemon counters.
    ///
    /// # Errors
    ///
    /// Transport trouble.
    pub fn metrics(&mut self) -> Result<DaemonMetrics, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::MetricsReport { metrics } => Ok(metrics),
            other => Err(unexpected("MetricsReport", &other)),
        }
    }

    /// Asks the server to shut down; returns once it acknowledges.
    ///
    /// # Errors
    ///
    /// Transport trouble.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// Tails a session's journal live into `out`: committed bytes stream
    /// in as the daemon records, a mid-run retry clears `out` and starts
    /// over (attempts rewrite the journal in place), and the call
    /// returns once the session is terminal and fully streamed.
    ///
    /// On error `out` keeps everything received so far — and because the
    /// server cuts chunks at salvage boundaries, that prefix is itself a
    /// salvageable journal: a client severed by a daemon crash holds
    /// exactly the committed epochs (the crash-attach property tests
    /// pin this).
    ///
    /// # Errors
    ///
    /// Typed faults (unknown session, sharded journal), a severed
    /// stream as [`ClientError::Frame`], or protocol violations.
    pub fn attach(
        &mut self,
        id: SessionId,
        out: &mut Vec<u8>,
    ) -> Result<AttachOutcome, ClientError> {
        self.send(&Request::Attach { id })?;
        match self.recv()? {
            Response::AttachStart { .. } => {}
            other => return Err(unexpected("AttachStart", &other)),
        }
        let mut chunks = 0u64;
        loop {
            match self.recv()? {
                Response::AttachChunk { offset, bytes } => {
                    if offset != out.len() as u64 {
                        return Err(ClientError::Protocol(format!(
                            "attach chunk at offset {offset}, expected {}",
                            out.len()
                        )));
                    }
                    out.extend_from_slice(&bytes.0);
                    chunks += 1;
                }
                Response::AttachRestart => out.clear(),
                Response::AttachEnd {
                    state,
                    epochs,
                    clean,
                } => {
                    return Ok(AttachOutcome {
                        state,
                        epochs,
                        clean,
                        bytes: out.len() as u64,
                        chunks,
                    })
                }
                other => return Err(unexpected("Attach stream frame", &other)),
            }
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}

/// Capped exponential back-off with deterministic jitter: attempt `k`
/// waits `1ms·2^min(k,4)` plus a jitter slice (up to half the base)
/// hashed from the spec name and attempt number. Purely a function of
/// its inputs — no wall clock, no global RNG — so two clients submitting
/// *different* specs desynchronize while any one client's schedule is
/// reproducible run to run.
fn backoff(name: &str, attempt: u32) -> Duration {
    let base_us = 1_000u64 << attempt.min(4);
    let name_hash = name
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(u64::from(b)));
    let jitter_us = dp_support::rng::mix(&[name_hash, u64::from(attempt)]) % (base_us / 2 + 1);
    Duration::from_micros(base_us + jitter_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential_with_deterministic_jitter() {
        for attempt in 0..8 {
            let base = Duration::from_micros(1_000 << attempt.min(4));
            let d = backoff("spec-a", attempt);
            assert!(d >= base, "attempt {attempt}: {d:?} < base {base:?}");
            assert!(d <= base + base / 2, "attempt {attempt}: {d:?} over cap");
            assert_eq!(d, backoff("spec-a", attempt), "must be reproducible");
        }
        // The cap holds forever.
        assert!(backoff("spec-a", 1_000) <= Duration::from_micros(24_000));
        // Different specs land on different schedules (the fan-out).
        assert_ne!(backoff("spec-a", 3), backoff("spec-b", 3));
    }
}
