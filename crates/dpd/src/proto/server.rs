//! The socket server: a unix-domain accept loop in front of a
//! [`Daemon`], one thread per connection, bounded by a connection limit
//! with *typed* backpressure (an over-limit client gets a
//! [`WireFault::Busy`] frame, never a silent hang-up).
//!
//! The server owns no session state — it translates frames to daemon
//! calls and faults to [`Response::Error`]. Live attach streams poll the
//! daemon's store and forward exactly the committed journal prefix,
//! frame-aligned, so a client severed mid-stream holds a salvageable
//! journal prefix by construction.

use super::frame::{expect_hello, read_frame, send_hello, write_frame, FrameError};
use super::msg::{Request, Response, WireFault};
use crate::daemon::Daemon;
use crate::session::{SessionId, SessionState};
use crate::store::SessionStore;
use dp_core::JournalReader;
use dp_support::wire::{from_bytes, to_bytes, Bytes};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Attach chunks are split at this size so one frame never balloons.
const ATTACH_CHUNK: usize = 64 * 1024;

/// Accept-loop and connection tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent connections served; the accept loop answers the
    /// (limit+1)-th client with [`WireFault::Busy`] and closes it.
    pub max_connections: usize,
    /// Poll interval for the accept loop, idle connections, and attach
    /// streams.
    pub poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 8,
            poll: Duration::from_millis(2),
        }
    }
}

/// Serves `daemon` on a unix-domain socket at `path` until a client
/// sends [`Request::Shutdown`]. A stale socket file at `path` is
/// replaced. Returns once every connection thread has exited; draining
/// and shutting down the daemon itself stays the caller's job (the
/// server only borrows it).
///
/// # Errors
///
/// Socket bind/accept failures. Per-connection errors never surface
/// here — they end that connection only.
pub fn serve<S: SessionStore + 'static>(
    daemon: &Arc<Daemon<S>>,
    path: &Path,
    cfg: ServerConfig,
) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let now = active.load(Ordering::SeqCst);
                if now >= cfg.max_connections {
                    reject_busy(stream, now, cfg.max_connections);
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let daemon = daemon.clone();
                let shutdown = shutdown.clone();
                let active = active.clone();
                handles.push(std::thread::spawn(move || {
                    let _ = handle_conn(&daemon, stream, &shutdown, cfg.poll);
                    active.fetch_sub(1, Ordering::SeqCst);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(cfg.poll),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    for h in handles {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Typed backpressure for the over-limit client: greet, explain, close.
fn reject_busy(mut stream: UnixStream, active: usize, limit: usize) {
    let _ = stream.set_nonblocking(false);
    let _ = send_hello(&mut stream);
    let _ = send(
        &mut stream,
        &Response::Error {
            fault: WireFault::Busy {
                active: active as u64,
                limit: limit as u64,
            },
        },
    );
}

fn send(stream: &mut UnixStream, resp: &Response) -> Result<(), FrameError> {
    write_frame(stream, &to_bytes(resp)).map_err(FrameError::Io)
}

/// One connection's request loop. Returns when the peer closes, the
/// stream desyncs, or the server shuts down; a decodable-but-invalid
/// request is answered typed and the loop continues.
fn handle_conn<S: SessionStore + 'static>(
    daemon: &Arc<Daemon<S>>,
    mut stream: UnixStream,
    shutdown: &AtomicBool,
    poll: Duration,
) -> Result<(), FrameError> {
    stream.set_nonblocking(false).map_err(FrameError::Io)?;
    // Reads time out so an idle connection notices server shutdown.
    stream
        .set_read_timeout(Some(poll.max(Duration::from_millis(1)) * 16))
        .map_err(FrameError::Io)?;
    send_hello(&mut stream).map_err(FrameError::Io)?;
    expect_hello(&mut stream)?;
    let mut buf = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match read_frame(&mut stream, &mut buf) {
            Ok(()) => {}
            Err(FrameError::Closed) => return Ok(()),
            Err(FrameError::Idle) => continue,
            Err(
                e @ (FrameError::Oversized { .. }
                | FrameError::Corrupt { .. }
                | FrameError::Truncated { .. }),
            ) => {
                // The stream is desynchronized: answer typed, then close —
                // there is no safe way to find the next frame boundary.
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        fault: WireFault::Malformed {
                            detail: e.to_string(),
                        },
                    },
                );
                return Err(e);
            }
            Err(e) => return Err(e),
        }
        let req = match from_bytes::<Request>(&buf) {
            Ok(r) => r,
            Err(e) => {
                // The frame was intact (CRC passed), so the framing layer
                // still delimits messages — answer typed and keep serving.
                send(
                    &mut stream,
                    &Response::Error {
                        fault: WireFault::Malformed {
                            detail: format!("undecodable request: {e}"),
                        },
                    },
                )?;
                continue;
            }
        };
        match req {
            Request::Submit { spec } => {
                let resp = match spec.to_session_spec() {
                    Ok(s) => match daemon.submit(s) {
                        Ok(id) => Response::Admitted { id },
                        Err(e) => Response::Error { fault: e.into() },
                    },
                    Err(fault) => Response::Error { fault },
                };
                send(&mut stream, &resp)?;
            }
            Request::Status { id } => {
                let resp = match daemon.report(id) {
                    Some(report) => Response::Report { report },
                    None => Response::Error {
                        fault: WireFault::UnknownSession { id },
                    },
                };
                send(&mut stream, &resp)?;
            }
            Request::Sessions => {
                let resp = Response::SessionList {
                    rows: daemon.sessions(),
                    notes: daemon.orphan_notes(),
                };
                send(&mut stream, &resp)?;
            }
            Request::Cancel { id } => {
                let resp = match daemon.cancel(id) {
                    Ok(()) => Response::Cancelled { id },
                    Err(e) => Response::Error { fault: e.into() },
                };
                send(&mut stream, &resp)?;
            }
            Request::Attach { id } => {
                stream_attach(daemon, &mut stream, id, shutdown, poll)?;
            }
            Request::Metrics => {
                send(
                    &mut stream,
                    &Response::MetricsReport {
                        metrics: daemon.metrics(),
                    },
                )?;
            }
            Request::Shutdown => {
                let _ = send(&mut stream, &Response::ShuttingDown);
                shutdown.store(true, Ordering::SeqCst);
                return Ok(());
            }
            Request::Resume { id } => {
                let resp = match daemon.resume(id) {
                    Ok(from_epoch) => Response::Resumed { id, from_epoch },
                    Err(e) => Response::Error { fault: e.into() },
                };
                send(&mut stream, &resp)?;
            }
        }
    }
}

/// The live attach stream: polls the session's durable journal and
/// forwards its committed (salvageable) prefix as it grows, ending with
/// [`Response::AttachEnd`] once the session is terminal and fully
/// streamed. Chunks are cut at salvage boundaries, so the client's
/// received prefix is always a valid journal prefix — even if the
/// daemon dies mid-stream.
fn stream_attach<S: SessionStore + 'static>(
    daemon: &Arc<Daemon<S>>,
    stream: &mut UnixStream,
    id: SessionId,
    shutdown: &AtomicBool,
    poll: Duration,
) -> Result<(), FrameError> {
    let Some(report) = daemon.report(id) else {
        return send(
            stream,
            &Response::Error {
                fault: WireFault::UnknownSession { id },
            },
        );
    };
    if report.journal_shards >= 2 {
        return send(
            stream,
            &Response::Error {
                fault: WireFault::AttachUnsupported {
                    detail: format!(
                        "session {id} records {} shard streams; salvage them offline",
                        report.journal_shards
                    ),
                },
            },
        );
    }
    send(stream, &Response::AttachStart { id })?;
    let store = daemon.store();
    let mut offset = 0u64;
    let mut seen_attempts: Option<u32> = None;
    loop {
        // Report first, bytes second: if the report is terminal, the
        // bytes read after it are complete.
        let report = daemon.report(id).expect("rows are never removed");
        let bytes = store.durable(id).unwrap_or_default();
        let salv = JournalReader::salvage(&bytes).ok();
        let avail = salv.as_ref().map_or(0, |s| s.salvaged_bytes as u64);
        // A retry rewrites the journal in place: everything streamed so
        // far belongs to a dead attempt. Tell the client to start over.
        // A crash-resume also bumps the attempt counter, but *appends*
        // past the committed prefix instead of rewriting — the streamed
        // bytes stay valid, so the stream continues seamlessly across
        // the crash boundary (no restart unless bytes actually shrank).
        let resuming = matches!(report.state, SessionState::Resuming { .. });
        if avail < offset || (seen_attempts != Some(report.attempts) && !resuming) {
            if offset > 0 {
                send(stream, &Response::AttachRestart)?;
                offset = 0;
            }
            seen_attempts = Some(report.attempts);
        } else if resuming {
            seen_attempts = Some(report.attempts);
        }
        while offset < avail {
            let end = avail.min(offset + ATTACH_CHUNK as u64);
            send(
                stream,
                &Response::AttachChunk {
                    offset,
                    bytes: Bytes(bytes[offset as usize..end as usize].to_vec()),
                },
            )?;
            offset = end;
        }
        if report.state.is_terminal() {
            return send(
                stream,
                &Response::AttachEnd {
                    state: report.state,
                    epochs: report.epochs,
                    clean: salv.as_ref().is_some_and(|s| s.clean),
                },
            );
        }
        if shutdown.load(Ordering::SeqCst) {
            // Server dying mid-stream: the client keeps its prefix.
            return Ok(());
        }
        std::thread::sleep(poll);
    }
}
