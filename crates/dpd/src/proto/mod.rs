//! `dpnet`: the out-of-process face of the daemon — a framed
//! request/response protocol over a unix-domain socket.
//!
//! Layering, bottom to top:
//!
//! - [`frame`] — transport framing and handshake. Each direction opens
//!   with `magic "DPN1" | version u32 le`; every message after that is
//!   one frame:
//!
//!   ```text
//!   frame := len u32 le | crc32 u32 le | payload[len]      (len ≤ 4 MiB)
//!   ```
//!
//! - [`msg`] — the payload grammar: [`msg::Request`] / [`msg::Response`]
//!   encoded with the `dp_support::wire` codec, plus [`msg::WireFault`],
//!   the typed error vocabulary mirroring the in-process
//!   `AdmitError`/`SessionError` types. Every daemon-side failure is a
//!   `Response::Error { fault }` frame — a protocol client never sees a
//!   silently dropped connection.
//!
//! - [`server`] — the accept loop: one thread per connection, a
//!   connection cap answered with typed [`msg::WireFault::Busy`]
//!   backpressure, and live journal-attach streaming whose chunks are
//!   cut at salvage boundaries so a severed client always holds a
//!   salvageable journal prefix.
//!
//! The client half lives in [`crate::client`].

pub mod frame;
pub mod msg;
pub mod server;

pub use frame::{FrameError, MAX_FRAME, PROTO_MAGIC, PROTO_VERSION};
pub use msg::{GuestRef, Request, Response, SizeRef, SubmitSpec, WireFault};
pub use server::{serve, ServerConfig};
