//! The `dpnet` message vocabulary: requests, responses, and the typed
//! fault mirror — everything that crosses the socket, encoded with the
//! [`Wire`](dp_support::wire::Wire) codec inside CRC-framed frames.
//!
//! Two deliberate asymmetries with the in-process API:
//!
//! * Guests travel as [`GuestRef`] — a *name*, not a program. `Program`
//!   is not wire-encodable (recordings carry only its hash), so both ends
//!   resolve the same reference to the same [`GuestSpec`] locally, which
//!   keeps the byte-identity oracle honest: the client can run the solo
//!   reference itself.
//! * The `pipelined` flag rides in [`SubmitSpec`] explicitly, because
//!   [`DoublePlayConfig`]'s wire form excludes it by design (pipelined
//!   and serialized runs must stay byte-identical).

use crate::session::{Priority, SessionId, SessionReport, SessionState};
use crate::{DaemonMetrics, SessionSpec};
use dp_core::{DoublePlayConfig, GuestSpec};
use dp_os::SinkFaults;
use dp_support::wire::Bytes;
use std::fmt;

/// Wire form of [`dp_workloads::Size`] (a foreign type, so the codec
/// lives here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeRef {
    /// Seconds-scale unit-test size.
    Small,
    /// Benchmark size.
    Medium,
    /// Stress size.
    Large,
}

dp_support::impl_wire_enum!(SizeRef { 0 => Small, 1 => Medium, 2 => Large });

impl SizeRef {
    /// The workload-harness size this names.
    pub fn to_size(self) -> dp_workloads::Size {
        match self {
            SizeRef::Small => dp_workloads::Size::Small,
            SizeRef::Medium => dp_workloads::Size::Medium,
            SizeRef::Large => dp_workloads::Size::Large,
        }
    }

    /// The wire form of a harness size.
    pub fn from_size(s: dp_workloads::Size) -> Self {
        match s {
            dp_workloads::Size::Small => SizeRef::Small,
            dp_workloads::Size::Medium => SizeRef::Medium,
            dp_workloads::Size::Large => SizeRef::Large,
        }
    }
}

/// A guest named by reference, resolved identically on both ends of the
/// socket (see the module docs for why programs never travel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuestRef {
    /// A workload from [`dp_workloads::mixed_suite`], by name.
    Workload {
        /// The case name (`"pfscan"`, `"pbzip"`, ...).
        name: String,
        /// Worker-thread count the instance is built for.
        threads: u64,
        /// Input size.
        size: SizeRef,
    },
    /// The tiny synchronized counter from [`crate::guests`].
    AtomicCounter {
        /// Worker threads.
        workers: u64,
        /// Increments per worker.
        iters: i64,
    },
    /// The tiny racy counter from [`crate::guests`] (the divergence
    /// generator).
    RacyCounter {
        /// Worker threads.
        workers: u64,
        /// Increments per worker.
        iters: i64,
    },
}

dp_support::impl_wire_enum!(GuestRef {
    0 => Workload { name, threads, size },
    1 => AtomicCounter { workers, iters },
    2 => RacyCounter { workers, iters },
});

impl GuestRef {
    /// Resolves the reference to a bootable guest.
    ///
    /// # Errors
    ///
    /// [`WireFault::UnknownGuest`] when no workload matches.
    pub fn resolve(&self) -> Result<GuestSpec, WireFault> {
        match self {
            GuestRef::Workload {
                name,
                threads,
                size,
            } => dp_workloads::find(name, *threads as usize, size.to_size())
                .map(|case| case.spec)
                .ok_or_else(|| WireFault::UnknownGuest {
                    detail: format!("no workload {name:?} with {threads} threads"),
                }),
            GuestRef::AtomicCounter { workers, iters } => {
                Ok(crate::guests::atomic_counter(*workers as usize, *iters))
            }
            GuestRef::RacyCounter { workers, iters } => {
                Ok(crate::guests::racy_counter(*workers as usize, *iters))
            }
        }
    }
}

/// Everything a remote client submits to open a session — the wire twin
/// of [`SessionSpec`], with the guest by reference and `pipelined`
/// carried explicitly (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitSpec {
    /// Display name, embedded in the journal name.
    pub name: String,
    /// The guest to record, by reference.
    pub guest: GuestRef,
    /// Recorder configuration (validated at admission; its wire form
    /// excludes `pipelined`).
    pub config: DoublePlayConfig,
    /// Whether the run should use the pipelined driver.
    pub pipelined: bool,
    /// Admission lane.
    pub priority: Priority,
    /// Failed attempts are retried this many times (0 = one attempt).
    pub restart_budget: u32,
    /// Faults of the session's durable sink.
    pub sink_faults: SinkFaults,
    /// When true, sink faults apply to attempt 0 only.
    pub transient_sink_faults: bool,
    /// Journal shard streams (`< 2` = single `DPRJ` stream).
    pub journal_shards: u32,
    /// Idempotency token (empty = none): a client that loses its
    /// connection mid-Submit re-issues the same spec with the same token
    /// and receives the already-admitted session's id instead of a
    /// duplicate admission.
    pub idempotency: String,
}

dp_support::impl_wire_struct!(SubmitSpec {
    name,
    guest,
    config,
    pipelined,
    priority,
    restart_budget,
    sink_faults,
    transient_sink_faults,
    journal_shards,
    // Appended last: wire structs are append-only for compatibility.
    idempotency,
});

impl SubmitSpec {
    /// A normal-priority spec with no sink faults and one retry,
    /// capturing `pipelined` out of `config`. The stored config carries
    /// `pipelined: false` — the explicit field is the single source of
    /// truth, so a decoded spec equals the one encoded.
    pub fn new(name: impl Into<String>, guest: GuestRef, mut config: DoublePlayConfig) -> Self {
        let pipelined = config.pipelined;
        config.pipelined = false;
        SubmitSpec {
            name: name.into(),
            guest,
            pipelined,
            config,
            priority: Priority::Normal,
            restart_budget: 1,
            sink_faults: SinkFaults::none(),
            transient_sink_faults: false,
            journal_shards: 0,
            idempotency: String::new(),
        }
    }

    /// Sets the idempotency token (builder style).
    #[must_use]
    pub fn idempotency(mut self, token: impl Into<String>) -> Self {
        self.idempotency = token.into();
        self
    }

    /// Resolves to the in-process [`SessionSpec`] the daemon runs — the
    /// same resolution a client performs for its solo byte-identity
    /// oracle.
    ///
    /// # Errors
    ///
    /// [`WireFault::UnknownGuest`] when the guest reference resolves to
    /// nothing.
    pub fn to_session_spec(&self) -> Result<SessionSpec, WireFault> {
        let guest = self.guest.resolve()?;
        let mut config = self.config;
        config.pipelined = self.pipelined;
        Ok(SessionSpec {
            name: self.name.clone(),
            guest,
            config,
            priority: self.priority,
            restart_budget: self.restart_budget,
            sink_faults: self.sink_faults,
            transient_sink_faults: self.transient_sink_faults,
            journal_shards: self.journal_shards,
            idempotency: self.idempotency.clone(),
        })
    }
}

/// A client request. Every request gets at least one response frame; the
/// `Attach` request gets a stream ([`Response::AttachStart`], zero or
/// more chunks, [`Response::AttachEnd`]).
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // one transient value per frame, never stored in bulk
pub enum Request {
    /// Open a session.
    Submit {
        /// What to record.
        spec: SubmitSpec,
    },
    /// One session's report.
    Status {
        /// Which session.
        id: SessionId,
    },
    /// Every session's report plus operator notes.
    Sessions,
    /// Cancel a queued session.
    Cancel {
        /// Which session.
        id: SessionId,
    },
    /// Stream a session's committed journal bytes, live, until it is
    /// terminal.
    Attach {
        /// Which session.
        id: SessionId,
    },
    /// Aggregate daemon counters.
    Metrics,
    /// Stop accepting connections and shut the server down.
    Shutdown,
    /// Crash-resume a salvaged session: its committed journal prefix
    /// stays in place and recording continues from the next epoch.
    Resume {
        /// Which session.
        id: SessionId,
    },
}

dp_support::impl_wire_enum!(Request {
    0 => Submit { spec },
    1 => Status { id },
    2 => Sessions,
    3 => Cancel { id },
    4 => Attach { id },
    5 => Metrics,
    6 => Shutdown,
    7 => Resume { id },
});

/// A server response. Errors are always the typed
/// [`Response::Error`] — a protocol-level failure never silently drops
/// the connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The submitted session's id.
    Admitted {
        /// The daemon-assigned id.
        id: SessionId,
    },
    /// One session's report.
    Report {
        /// The row snapshot.
        report: SessionReport,
    },
    /// Every session plus operator notes (boot re-adoption garbage).
    SessionList {
        /// Row snapshots, ordered by id.
        rows: Vec<SessionReport>,
        /// Operator-facing notes.
        notes: Vec<String>,
    },
    /// The cancel took effect.
    Cancelled {
        /// The cancelled session.
        id: SessionId,
    },
    /// The attach stream is starting.
    AttachStart {
        /// The session being streamed.
        id: SessionId,
    },
    /// One span of committed journal bytes, frame-aligned.
    AttachChunk {
        /// Byte offset of this span in the journal.
        offset: u64,
        /// The bytes.
        bytes: Bytes,
    },
    /// The attached session restarted its recording attempt and rewrote
    /// its journal from byte 0 (attempts rewrite in place): the client
    /// must discard everything received so far and resume from offset 0.
    AttachRestart,
    /// The attach stream is complete: the session is terminal and every
    /// committed byte has been sent.
    AttachEnd {
        /// The session's terminal state.
        state: SessionState,
        /// Epochs its journal commits.
        epochs: u32,
        /// True when the journal finalized cleanly.
        clean: bool,
    },
    /// Aggregate daemon counters.
    MetricsReport {
        /// The counters.
        metrics: DaemonMetrics,
    },
    /// The server acknowledges shutdown and will close.
    ShuttingDown,
    /// A typed failure (see [`WireFault`]).
    Error {
        /// What went wrong.
        fault: WireFault,
    },
    /// The crash-resume was accepted and the session re-queued.
    Resumed {
        /// The resumed session.
        id: SessionId,
        /// The epoch the resume continues from (= the committed prefix).
        from_epoch: u32,
    },
}

dp_support::impl_wire_enum!(Response {
    0 => Admitted { id },
    1 => Report { report },
    2 => SessionList { rows, notes },
    3 => Cancelled { id },
    4 => AttachStart { id },
    5 => AttachChunk { offset, bytes },
    6 => AttachEnd { state, epochs, clean },
    7 => MetricsReport { metrics },
    8 => ShuttingDown,
    9 => Error { fault },
    10 => AttachRestart,
    11 => Resumed { id, from_epoch },
});

/// The typed fault vocabulary: every in-process error
/// ([`AdmitError`](crate::AdmitError), [`SessionError`](crate::SessionError))
/// plus the socket-only failure modes, mirrored onto the wire so remote
/// clients get the same typed story as in-process callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFault {
    /// Admission queue full; mirror of [`crate::AdmitError::Rejected`].
    Rejected {
        /// Sessions queued at refusal time.
        queued: u64,
        /// The queue capacity.
        capacity: u64,
        /// Suggested back-off, milliseconds.
        retry_after_ms: u64,
    },
    /// The daemon is draining; mirror of [`crate::AdmitError::Draining`].
    Draining,
    /// The submitted configuration is degenerate; mirror of
    /// [`crate::AdmitError::Invalid`].
    InvalidConfig {
        /// The validation failure.
        detail: String,
    },
    /// No session with this id; mirror of
    /// [`crate::SessionError::UnknownSession`].
    UnknownSession {
        /// The id the caller named.
        id: SessionId,
    },
    /// The session is not in a cancellable state; mirror of
    /// [`crate::SessionError::NotCancellable`].
    NotCancellable {
        /// The session.
        id: SessionId,
        /// Its state at the time.
        state: SessionState,
    },
    /// The guest reference resolved to nothing.
    UnknownGuest {
        /// What failed to resolve.
        detail: String,
    },
    /// The session cannot be attached (sharded journals stream per shard
    /// and are salvaged offline instead).
    AttachUnsupported {
        /// Why.
        detail: String,
    },
    /// The peer sent bytes that do not decode (bad frame or bad
    /// payload).
    Malformed {
        /// The decode failure.
        detail: String,
    },
    /// The server is at its connection limit — typed backpressure, the
    /// accept-loop sibling of [`WireFault::Rejected`].
    Busy {
        /// Connections currently served.
        active: u64,
        /// The configured limit.
        limit: u64,
    },
    /// An unexpected server-side failure.
    Internal {
        /// What happened.
        detail: String,
    },
    /// The session cannot be crash-resumed; mirror of
    /// [`crate::SessionError::NotResumable`].
    NotResumable {
        /// The session.
        id: SessionId,
        /// Why (wrong state, budget spent, prefix does not salvage, ...).
        detail: String,
    },
}

dp_support::impl_wire_enum!(WireFault {
    0 => Rejected { queued, capacity, retry_after_ms },
    1 => Draining,
    2 => InvalidConfig { detail },
    3 => UnknownSession { id },
    4 => NotCancellable { id, state },
    5 => UnknownGuest { detail },
    6 => AttachUnsupported { detail },
    7 => Malformed { detail },
    8 => Busy { active, limit },
    9 => Internal { detail },
    10 => NotResumable { id, detail },
});

impl fmt::Display for WireFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireFault::Rejected {
                queued,
                capacity,
                retry_after_ms,
            } => write!(
                f,
                "admission queue full ({queued}/{capacity}); retry in ~{retry_after_ms}ms"
            ),
            WireFault::Draining => write!(f, "daemon is draining; no new sessions"),
            WireFault::InvalidConfig { detail } => write!(f, "invalid config: {detail}"),
            WireFault::UnknownSession { id } => write!(f, "unknown session {id}"),
            WireFault::NotCancellable { id, state } => {
                write!(f, "session {id} is {state}, not cancellable")
            }
            WireFault::UnknownGuest { detail } => write!(f, "unknown guest: {detail}"),
            WireFault::AttachUnsupported { detail } => {
                write!(f, "attach unsupported: {detail}")
            }
            WireFault::Malformed { detail } => write!(f, "malformed request: {detail}"),
            WireFault::Busy { active, limit } => {
                write!(f, "server busy ({active}/{limit} connections)")
            }
            WireFault::Internal { detail } => write!(f, "internal error: {detail}"),
            WireFault::NotResumable { id, detail } => {
                write!(f, "session {id} is not resumable: {detail}")
            }
        }
    }
}

impl std::error::Error for WireFault {}

impl From<crate::AdmitError> for WireFault {
    fn from(e: crate::AdmitError) -> Self {
        match e {
            crate::AdmitError::Rejected {
                queued,
                capacity,
                retry_after,
            } => WireFault::Rejected {
                queued: queued as u64,
                capacity: capacity as u64,
                retry_after_ms: retry_after.as_millis() as u64,
            },
            crate::AdmitError::Draining => WireFault::Draining,
            crate::AdmitError::Invalid(e) => WireFault::InvalidConfig {
                detail: e.to_string(),
            },
        }
    }
}

impl From<crate::SessionError> for WireFault {
    fn from(e: crate::SessionError) -> Self {
        match e {
            crate::SessionError::UnknownSession(id) => WireFault::UnknownSession { id },
            crate::SessionError::NotCancellable { id, state } => {
                WireFault::NotCancellable { id, state }
            }
            crate::SessionError::NotResumable { id, detail } => {
                WireFault::NotResumable { id, detail }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_support::wire::{from_bytes, to_bytes};

    fn sample_spec() -> SubmitSpec {
        let mut s = SubmitSpec::new(
            "demo",
            GuestRef::Workload {
                name: "pfscan".into(),
                threads: 2,
                size: SizeRef::Small,
            },
            DoublePlayConfig::new(2)
                .epoch_cycles(900)
                .spare_workers(2)
                .pipelined(true),
        );
        s.priority = Priority::High;
        s.restart_budget = 3;
        s.journal_shards = 2;
        s
    }

    #[test]
    fn submit_spec_round_trips_with_pipelined() {
        let spec = sample_spec();
        assert!(spec.pipelined, "new() must capture config.pipelined");
        let back: SubmitSpec = from_bytes(&to_bytes(&spec)).unwrap();
        assert_eq!(back, spec);
        // The resolved session spec re-applies the flag the config codec
        // deliberately drops.
        let session = back.to_session_spec().unwrap();
        assert!(session.config.pipelined);
        assert_eq!(session.name, "demo");
        assert_eq!(session.priority, Priority::High);
        assert_eq!(session.journal_shards, 2);
    }

    #[test]
    fn guest_refs_resolve_or_fault() {
        let spec = GuestRef::AtomicCounter {
            workers: 2,
            iters: 50,
        }
        .resolve()
        .unwrap();
        assert_eq!(spec.name, "tiny-atomic-2x50");
        assert!(GuestRef::RacyCounter {
            workers: 2,
            iters: 50
        }
        .resolve()
        .is_ok());
        let missing = GuestRef::Workload {
            name: "no-such-workload".into(),
            threads: 2,
            size: SizeRef::Small,
        };
        assert!(matches!(
            missing.resolve(),
            Err(WireFault::UnknownGuest { .. })
        ));
    }

    #[test]
    fn requests_and_responses_round_trip() {
        let reqs = vec![
            Request::Submit {
                spec: sample_spec(),
            },
            Request::Status { id: SessionId(7) },
            Request::Sessions,
            Request::Cancel { id: SessionId(7) },
            Request::Attach { id: SessionId(7) },
            Request::Metrics,
            Request::Shutdown,
            Request::Resume { id: SessionId(7) },
        ];
        for r in reqs {
            let back: Request = from_bytes(&to_bytes(&r)).unwrap();
            assert_eq!(back, r);
        }
        let resps = vec![
            Response::Admitted { id: SessionId(1) },
            Response::AttachChunk {
                offset: 9,
                bytes: Bytes(vec![1, 2, 3]),
            },
            Response::AttachEnd {
                state: SessionState::Salvaged,
                epochs: 4,
                clean: false,
            },
            Response::ShuttingDown,
            Response::Resumed {
                id: SessionId(2),
                from_epoch: 3,
            },
            Response::Error {
                fault: WireFault::Busy {
                    active: 8,
                    limit: 8,
                },
            },
        ];
        for r in resps {
            let back: Response = from_bytes(&to_bytes(&r)).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn faults_mirror_in_process_errors() {
        let f: WireFault = crate::AdmitError::Rejected {
            queued: 3,
            capacity: 4,
            retry_after: std::time::Duration::from_millis(17),
        }
        .into();
        assert_eq!(
            f,
            WireFault::Rejected {
                queued: 3,
                capacity: 4,
                retry_after_ms: 17
            }
        );
        let f: WireFault = crate::SessionError::NotCancellable {
            id: SessionId(2),
            state: SessionState::Draining,
        }
        .into();
        assert!(matches!(f, WireFault::NotCancellable { .. }));
        // Every fault round-trips and displays.
        let all = vec![
            WireFault::Draining,
            WireFault::InvalidConfig { detail: "x".into() },
            WireFault::UnknownSession { id: SessionId(1) },
            WireFault::UnknownGuest { detail: "y".into() },
            WireFault::AttachUnsupported { detail: "z".into() },
            WireFault::Malformed { detail: "m".into() },
            WireFault::Internal { detail: "i".into() },
            WireFault::NotResumable {
                id: SessionId(4),
                detail: "r".into(),
            },
        ];
        for f in all {
            let back: WireFault = from_bytes(&to_bytes(&f)).unwrap();
            assert_eq!(back, f);
            assert!(!f.to_string().is_empty());
        }
    }

    #[test]
    fn truncated_messages_are_typed_errors() {
        let bytes = to_bytes(&Request::Submit {
            spec: sample_spec(),
        });
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Request>(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
