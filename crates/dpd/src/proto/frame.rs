//! The transport framing layer: length-prefixed, CRC-guarded frames over
//! a byte stream, plus the connection handshake.
//!
//! ```text
//! handshake (each direction, once):  magic "DPN1" | version u32 le
//! frame:  len u32 le | crc32 u32 le | payload[len]
//! ```
//!
//! The framing extends the `wire.rs` no-OOM guarantee to the socket: a
//! declared length above [`MAX_FRAME`] is refused before any allocation,
//! and the payload is read in bounded chunks so a lying length can never
//! pre-allocate. Every failure is a typed [`FrameError`], never a panic.

use dp_support::crc32::crc32;
use std::io::{self, Read, Write};

/// Connection magic, exchanged by both ends before any frame.
pub const PROTO_MAGIC: [u8; 4] = *b"DPN1";

/// Protocol version, exchanged with the magic. Mismatches are refused at
/// handshake time so framing never has to guess.
pub const PROTO_VERSION: u32 = 1;

/// Hard cap on a frame's declared payload length. Requests are tiny and
/// attach chunks are bounded well under this; anything larger is a
/// corrupt or hostile stream.
pub const MAX_FRAME: usize = 4 << 20;

/// Payload bytes read per `read` call while draining a frame — the
/// allocation granule that keeps lying lengths harmless.
const READ_CHUNK: usize = 4096;

/// A typed framing-layer failure.
#[derive(Debug)]
pub enum FrameError {
    /// Transport I/O failed (peer died mid-frame, socket error).
    Io(io::Error),
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// A read timeout expired with no frame started (only seen on
    /// streams with a read timeout configured — the server's idle tick).
    Idle,
    /// The declared payload length exceeds [`MAX_FRAME`].
    Oversized {
        /// The length the header claimed.
        len: usize,
        /// The cap it violated.
        max: usize,
    },
    /// The stream ended mid-frame.
    Truncated {
        /// Bytes of the current unit actually read.
        got: usize,
        /// Bytes the frame required.
        want: usize,
    },
    /// The payload CRC does not match the header.
    Corrupt {
        /// CRC the header declared.
        expected: u32,
        /// CRC of the bytes received.
        got: u32,
    },
    /// The handshake magic or version did not match.
    BadHandshake {
        /// Which part mismatched.
        detail: &'static str,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Closed => write!(f, "peer closed the connection"),
            FrameError::Idle => write!(f, "read timed out before a frame started"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            FrameError::Truncated { got, want } => {
                write!(f, "stream truncated mid-frame ({got} of {want} bytes)")
            }
            FrameError::Corrupt { expected, got } => write!(
                f,
                "frame CRC mismatch (header {expected:#010x}, payload {got:#010x})"
            ),
            FrameError::BadHandshake { detail } => write!(f, "handshake failed: {detail}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// True when the error kind means "the read timed out", for streams with
/// a read timeout configured.
fn timed_out(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Fills `dst` from `r`, distinguishing a clean close before the first
/// byte (`ok(false)`) from truncation after it.
fn read_full(r: &mut impl Read, dst: &mut [u8], what_want: usize) -> Result<bool, FrameError> {
    let mut got = 0;
    while got < dst.len() {
        match r.read(&mut dst[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(false)
                } else {
                    Err(FrameError::Truncated {
                        got,
                        want: what_want,
                    })
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Before the first byte a timeout is the idle tick; once a
            // frame has started the peer is committed, so keep waiting —
            // a dead peer ends with a close (`Ok(0)`), not a timeout.
            Err(e) if timed_out(&e) => {
                if got == 0 {
                    return Err(FrameError::Idle);
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Writes the handshake greeting (magic + version).
///
/// # Errors
///
/// Transport I/O failures.
pub fn send_hello(w: &mut impl Write) -> io::Result<()> {
    w.write_all(&PROTO_MAGIC)?;
    w.write_all(&PROTO_VERSION.to_le_bytes())?;
    w.flush()
}

/// Reads and verifies the peer's handshake greeting.
///
/// # Errors
///
/// [`FrameError::BadHandshake`] on magic/version mismatch,
/// [`FrameError::Closed`] / [`FrameError::Truncated`] /
/// [`FrameError::Io`] on transport trouble.
pub fn expect_hello(r: &mut impl Read) -> Result<(), FrameError> {
    let mut hello = [0u8; 8];
    if !read_full(r, &mut hello, 8)? {
        return Err(FrameError::Closed);
    }
    if hello[0..4] != PROTO_MAGIC {
        return Err(FrameError::BadHandshake {
            detail: "bad magic",
        });
    }
    let version = u32::from_le_bytes(hello[4..8].try_into().expect("4 bytes"));
    if version != PROTO_VERSION {
        return Err(FrameError::BadHandshake {
            detail: "version mismatch",
        });
    }
    Ok(())
}

/// Writes one frame (header + CRC + payload) and flushes.
///
/// # Errors
///
/// `InvalidInput` when the payload exceeds [`MAX_FRAME`]; transport I/O
/// failures otherwise.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {} exceeds cap {MAX_FRAME}", payload.len()),
        ));
    }
    // One write call per frame: a reader with a read timeout must never
    // see a gap between the header and the payload just because the
    // writer got descheduled between two syscalls.
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    w.write_all(&out)?;
    w.flush()
}

/// Reads one frame's payload into `buf` (cleared first).
///
/// The declared length is validated against [`MAX_FRAME`] before a byte
/// of payload is read, and the payload accumulates in [`READ_CHUNK`]
/// steps — a hostile header cannot force a large allocation.
///
/// # Errors
///
/// Every [`FrameError`] variant: `Closed` at a frame boundary, `Idle` on
/// a pre-frame read timeout, `Truncated`/`Io` mid-frame, `Oversized` and
/// `Corrupt` for bad frames.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<(), FrameError> {
    let mut head = [0u8; 8];
    if !read_full(r, &mut head, 8)? {
        return Err(FrameError::Closed);
    }
    let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
    let expected = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    buf.clear();
    let mut chunk = [0u8; READ_CHUNK];
    while buf.len() < len {
        let want = (len - buf.len()).min(READ_CHUNK);
        match r.read(&mut chunk[..want]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    got: buf.len(),
                    want: len,
                })
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Mid-frame timeouts keep waiting (see `read_full`).
            Err(e) if timed_out(&e) => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let got = crc32(buf);
    if got != expected {
        return Err(FrameError::Corrupt { expected, got });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], b"x", &[0u8; 10_000][..]] {
            let encoded = frame_bytes(payload);
            let mut buf = Vec::new();
            read_frame(&mut &encoded[..], &mut buf).unwrap();
            assert_eq!(buf, payload);
        }
    }

    #[test]
    fn every_truncation_is_typed() {
        let encoded = frame_bytes(b"hello framing");
        for cut in 0..encoded.len() {
            let mut buf = Vec::new();
            let err = read_frame(&mut &encoded[..cut], &mut buf).unwrap_err();
            match (cut, err) {
                (0, FrameError::Closed) => {}
                (_, FrameError::Truncated { .. }) => {}
                (c, e) => panic!("cut {c}: unexpected {e}"),
            }
        }
    }

    #[test]
    fn bit_flips_are_corrupt_or_bounded() {
        let encoded = frame_bytes(b"flip me");
        for bit in 0..encoded.len() * 8 {
            let mut bad = encoded.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let mut buf = Vec::new();
            // Flipping a length byte up yields Truncated/Oversized;
            // flipping it down leaves trailing bytes (fine for a single
            // read); anything touching CRC or payload must be Corrupt.
            match read_frame(&mut &bad[..], &mut buf) {
                Ok(()) => assert!(bit / 8 < 4, "payload/CRC flip at bit {bit} passed"),
                Err(
                    FrameError::Corrupt { .. }
                    | FrameError::Truncated { .. }
                    | FrameError::Oversized { .. },
                ) => {}
                Err(e) => panic!("bit {bit}: unexpected {e}"),
            }
        }
    }

    #[test]
    fn oversized_header_is_refused_before_allocation() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&(u32::MAX).to_le_bytes());
        bad.extend_from_slice(&0u32.to_le_bytes());
        let mut buf = Vec::new();
        let err = read_frame(&mut &bad[..], &mut buf).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }), "{err}");
        assert_eq!(buf.capacity(), 0, "oversized length must not allocate");
        assert!(write_frame(&mut Vec::new(), &vec![0u8; MAX_FRAME + 1]).is_err());
    }

    #[test]
    fn handshake_round_trips_and_rejects() {
        let mut hello = Vec::new();
        send_hello(&mut hello).unwrap();
        expect_hello(&mut &hello[..]).unwrap();
        let mut bad_magic = hello.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            expect_hello(&mut &bad_magic[..]),
            Err(FrameError::BadHandshake {
                detail: "bad magic"
            })
        ));
        let mut bad_version = hello.clone();
        bad_version[4] = 99;
        assert!(matches!(
            expect_hello(&mut &bad_version[..]),
            Err(FrameError::BadHandshake {
                detail: "version mismatch"
            })
        ));
        assert!(matches!(
            expect_hello(&mut &hello[..3]),
            Err(FrameError::Truncated { .. })
        ));
        assert!(matches!(
            expect_hello(&mut &[][..]),
            Err(FrameError::Closed)
        ));
    }
}
