//! Tiny synthetic guests for service tests and soaks.
//!
//! The soak and crash-property tests run hundreds of sessions in debug
//! builds, so they need guests that record in a handful of epochs. These
//! builders are deliberately minimal counter loops — the real workload mix
//! lives in `dp_workloads` and is what `dpd-load` and `dp serve` submit.

use dp_core::GuestSpec;
use dp_os::abi;
use dp_os::kernel::WorldConfig;
use dp_vm::builder::ProgramBuilder;
use dp_vm::Reg;
use std::sync::Arc;

/// `workers` threads each perform `iters` increments on a shared counter,
/// then main exits with the counter value. `racy` selects plain
/// load/add/store (schedule-dependent — drives divergences) versus
/// `fetch_add` (schedule-independent — never diverges).
fn counter(workers: usize, iters: i64, racy: bool) -> GuestSpec {
    let mut pb = ProgramBuilder::new();
    let counter = pb.global("counter", 8);
    let mut w = pb.function("worker");
    let top = w.label();
    let done = w.label();
    w.consti(Reg(10), 0);
    w.consti(Reg(9), counter as i64);
    w.bind(top);
    w.bin(dp_vm::BinOp::Ltu, Reg(11), Reg(10), iters);
    w.jz(Reg(11), done);
    if racy {
        w.load(Reg(12), Reg(9), 0, dp_vm::Width::W8);
        w.add(Reg(12), Reg(12), 1i64);
        w.store(Reg(12), Reg(9), 0, dp_vm::Width::W8);
    } else {
        w.fetch_add(Reg(12), Reg(9), 1i64);
    }
    w.add(Reg(10), Reg(10), 1i64);
    w.jmp(top);
    w.bind(done);
    w.consti(Reg(0), 0);
    w.syscall(abi::SYS_THREAD_EXIT);
    w.finish();
    let worker = pb.declare("worker");
    let mut f = pb.function("main");
    for _ in 0..workers {
        f.consti(Reg(0), worker.0 as i64);
        f.consti(Reg(1), 0);
        f.consti(Reg(2), 0);
        f.syscall(abi::SYS_SPAWN);
    }
    for t in 1..=workers as i64 {
        f.consti(Reg(0), t);
        f.syscall(abi::SYS_JOIN);
    }
    f.consti(Reg(9), counter as i64);
    f.load(Reg(0), Reg(9), 0, dp_vm::Width::W8);
    f.syscall(abi::SYS_EXIT);
    f.finish();
    // The parameters ride in the guest name so a journal's metadata alone
    // (guest name + program hash) is enough to rebuild the guest — the
    // crash-resume path reconstructs adopted sessions this way.
    let kind = if racy { "tiny-racy" } else { "tiny-atomic" };
    let name = format!("{kind}-{workers}x{iters}");
    GuestSpec::new(name, Arc::new(pb.finish("main")), WorldConfig::default())
}

/// Rebuilds a tiny guest from its parameter-encoding name
/// (`tiny-atomic-{workers}x{iters}` / `tiny-racy-{workers}x{iters}`), or
/// `None` if the name is not a tiny guest's. Callers confirm the result
/// against the journal's program hash.
pub fn from_name(name: &str) -> Option<GuestSpec> {
    let (racy, rest) = if let Some(rest) = name.strip_prefix("tiny-atomic-") {
        (false, rest)
    } else if let Some(rest) = name.strip_prefix("tiny-racy-") {
        (true, rest)
    } else {
        return None;
    };
    let (workers, iters) = rest.split_once('x')?;
    Some(counter(workers.parse().ok()?, iters.parse().ok()?, racy))
}

/// A race-free counter guest: deterministic final state, no divergences.
pub fn atomic_counter(workers: usize, iters: i64) -> GuestSpec {
    counter(workers, iters, false)
}

/// A racy counter guest: unsynchronized read-modify-write increments, the
/// divergence generator.
pub fn racy_counter(workers: usize, iters: i64) -> GuestSpec {
    counter(workers, iters, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::{record, DoublePlayConfig};

    #[test]
    fn tiny_guests_record_in_a_few_epochs() {
        let cfg = DoublePlayConfig::new(2).epoch_cycles(800);
        let atomic = record(&atomic_counter(2, 400), &cfg).unwrap();
        assert!(
            atomic.stats.epochs >= 2,
            "want multiple epochs for crash tests"
        );
        assert_eq!(atomic.stats.divergences, 0);
        let racy = record(&racy_counter(2, 400), &cfg).unwrap();
        assert!(racy.stats.epochs >= 2);
    }

    #[test]
    fn names_round_trip_through_from_name() {
        for spec in [atomic_counter(2, 400), racy_counter(3, 50)] {
            let back = from_name(&spec.name).unwrap();
            assert_eq!(back.name, spec.name);
            assert_eq!(back.program_hash(), spec.program_hash());
        }
        assert!(from_name("pfscan").is_none());
        assert!(from_name("tiny-atomic-2").is_none());
        assert!(from_name("tiny-atomic-ax4").is_none());
    }
}
