//! Property-based tests for the VM substrate: memory model equivalence,
//! copy-on-write isolation, and the determinism contract that the whole
//! DoublePlay stack relies on.

use dp_support::check::{check, Gen};
use dp_vm::builder::ProgramBuilder;
use dp_vm::memory::Memory;
use dp_vm::observer::NullObserver;
use dp_vm::{BinOp, Machine, Reg, SliceLimits, Src, Tid, Width};
use std::collections::HashMap;
use std::sync::Arc;

/// A write operation for the memory model test.
#[derive(Debug, Clone)]
struct WriteOp {
    addr: u64,
    value: u64,
    width: Width,
}

const WIDTHS: [Width; 4] = [Width::W1, Width::W2, Width::W4, Width::W8];

fn write_op(g: &mut Gen) -> WriteOp {
    // Cluster addresses near page boundaries to exercise straddling.
    let page = g.below(4);
    let off = g.below(32);
    WriteOp {
        addr: page * 4096
            + if off < 16 {
                off
            } else {
                4096 - 8 + (off - 16) % 8
            },
        value: g.u64(),
        width: *g.pick(&WIDTHS),
    }
}

fn write_ops(g: &mut Gen, min: usize, max: usize) -> Vec<WriteOp> {
    let n = min + g.index(max - min);
    (0..n).map(|_| write_op(g)).collect()
}

/// Memory behaves like a flat byte array initialized to zero.
#[test]
fn memory_matches_byte_model() {
    check("memory_matches_byte_model", 96, |g| {
        let ops = write_ops(g, 1, 64);
        let mut mem = Memory::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in &ops {
            mem.write(op.addr, op.value, op.width);
            for i in 0..op.width.bytes() {
                model.insert(op.addr.wrapping_add(i), (op.value >> (8 * i)) as u8);
            }
        }
        // Every byte the model knows about must match; and reads of each
        // written word must reassemble little-endian.
        for (&addr, &byte) in &model {
            assert_eq!(mem.read_u8(addr), byte);
        }
        for op in &ops {
            let read = mem.read(op.addr, op.width);
            let mut expect = 0u64;
            for i in 0..op.width.bytes() {
                expect |= (*model.get(&op.addr.wrapping_add(i)).unwrap() as u64) << (8 * i);
            }
            assert_eq!(read, expect);
        }
    });
}

/// Snapshots are immune to later writes, and writes to a snapshot do not
/// leak back — the checkpoint property.
#[test]
fn cow_snapshots_are_isolated() {
    check("cow_snapshots_are_isolated", 96, |g| {
        let before = write_ops(g, 1, 32);
        let after = write_ops(g, 1, 32);
        let mut mem = Memory::new();
        for op in &before {
            mem.write(op.addr, op.value, op.width);
        }
        let snap = mem.clone();
        let baseline: Vec<u64> = before
            .iter()
            .map(|op| snap.read(op.addr, op.width))
            .collect();
        let mut snap2 = mem.clone();
        for op in &after {
            mem.write(op.addr, op.value.wrapping_add(1), op.width);
            snap2.write(op.addr, op.value.wrapping_sub(1), op.width);
        }
        for (op, expect) in before.iter().zip(baseline) {
            assert_eq!(snap.read(op.addr, op.width), expect);
        }
        assert_eq!(snap.first_difference(&snap.clone()), None);
    });
}

/// Executing the same straight-line program with arbitrary slice
/// boundaries produces identical final state hashes.
#[test]
fn slicing_does_not_change_semantics() {
    check("slicing_does_not_change_semantics", 48, |g| {
        let seeds: Vec<u64> = (0..g.range(4, 16)).map(|_| g.u64()).collect();
        let slice_len = g.range(1, 7);
        let mut pb = ProgramBuilder::new();
        let scratch = pb.global("scratch", 64);
        let mut f = pb.function("main");
        f.consti(Reg(10), scratch as i64);
        for (i, &s) in seeds.iter().enumerate() {
            f.constu(Reg(1), s);
            f.bin(BinOp::Xor, Reg(2), Reg(2), Src::Reg(Reg(1)));
            f.bin(BinOp::Add, Reg(3), Reg(3), Src::Reg(Reg(2)));
            f.bin(BinOp::Mul, Reg(4), Reg(3), Src::Imm(31));
            f.store(Reg(4), Reg(10), (i as i64 % 8) * 8, Width::W8);
        }
        f.mov(Reg(0), Reg(4));
        f.ret();
        f.finish();
        let program = Arc::new(pb.finish("main"));

        let mut whole = Machine::new(program.clone(), &[]);
        whole
            .run_slice(Tid(0), SliceLimits::budget(1_000_000), &mut NullObserver)
            .unwrap();

        let mut sliced = Machine::new(program, &[]);
        while !sliced.thread(Tid(0)).is_exited() {
            sliced
                .run_slice(Tid(0), SliceLimits::budget(slice_len), &mut NullObserver)
                .unwrap();
        }
        assert_eq!(whole.state_hash(), sliced.state_hash());
        assert_eq!(
            whole.thread(Tid(0)).exit_value,
            sliced.thread(Tid(0)).exit_value
        );
    });
}

/// The incremental per-page digest equals a from-scratch digest after any
/// interleaving of writes, CoW clones, snapshot restores, and dirty-set
/// drains — the invariant the recorder's verify hot path rests on. Clones
/// share the digest cache, restores revive older cache states, and
/// `take_dirty` exercises the separation between the recorder's dirty set
/// and the cache's staleness set.
#[test]
fn incremental_digest_equals_scratch_under_any_interleaving() {
    check("incremental_digest_equals_scratch", 96, |g| {
        let mut mem = Memory::new();
        let mut snapshots: Vec<Memory> = Vec::new();
        for _ in 0..g.range(4, 40) {
            match g.index(8) {
                // Writes dominate: dirty some pages (occasionally writing
                // zero, which must keep zero-fill equivalence).
                0..=3 => {
                    let op = write_op(g);
                    let v = if g.index(8) == 0 { 0 } else { op.value };
                    mem.write(op.addr, v, op.width);
                }
                4 => snapshots.push(mem.clone()),
                5 => {
                    if let Some(snap) = snapshots.pop() {
                        mem = snap; // restore an older world
                    }
                }
                6 => {
                    mem.take_dirty();
                }
                _ => {
                    assert_eq!(mem.state_digest(), mem.state_digest_scratch());
                }
            }
        }
        assert_eq!(mem.state_digest(), mem.state_digest_scratch());
        for snap in &snapshots {
            assert_eq!(snap.state_digest(), snap.state_digest_scratch());
        }
    });
}

/// state_hash distinguishes states that differ in a single memory byte.
#[test]
fn state_hash_detects_byte_flips() {
    check("state_hash_detects_byte_flips", 64, |g| {
        let addr = g.range(0x1000, 0x9000);
        let val = g.range(1, 256) as u8;
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.ret();
        f.finish();
        let p = Arc::new(pb.finish("main"));
        let a = Machine::new(p.clone(), &[]);
        let mut b = Machine::new(p, &[]);
        b.mem_mut().write_u8(addr, val);
        assert_ne!(a.state_hash(), b.state_hash());
    });
}

mod asm_props {
    use dp_support::check::{check, Gen};
    use dp_vm::asm::{assemble, program_to_asm};
    use dp_vm::{BinOp, Instr, Reg, Src, UnOp, Width};

    fn reg(g: &mut Gen) -> Reg {
        Reg(g.below(32) as u8)
    }

    fn src(g: &mut Gen) -> Src {
        if g.bool() {
            Src::Reg(reg(g))
        } else {
            Src::Imm(g.u64() as u32 as i32 as i64)
        }
    }

    fn width(g: &mut Gen) -> Width {
        *g.pick(&[Width::W1, Width::W2, Width::W4, Width::W8])
    }

    fn binop(g: &mut Gen) -> BinOp {
        *g.pick(&[
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Ltu,
            BinOp::Les,
            BinOp::Minu,
        ])
    }

    fn mem_offset(g: &mut Gen) -> i64 {
        g.range(0, 128) as i64 - 64
    }

    /// Straight-line instructions only (jumps are added separately with
    /// valid targets).
    fn instr(g: &mut Gen) -> Instr {
        match g.index(10) {
            0 => Instr::Const {
                dst: reg(g),
                imm: g.u64(),
            },
            1 => Instr::Mov {
                dst: reg(g),
                src: src(g),
            },
            2 => Instr::Bin {
                op: binop(g),
                dst: reg(g),
                a: reg(g),
                b: src(g),
            },
            3 => Instr::Un {
                op: UnOp::Not,
                dst: reg(g),
                a: reg(g),
            },
            4 => Instr::Load {
                dst: reg(g),
                addr: reg(g),
                offset: mem_offset(g),
                width: width(g),
            },
            5 => Instr::Store {
                src: reg(g),
                addr: reg(g),
                offset: mem_offset(g),
                width: width(g),
            },
            6 => Instr::Cas {
                dst: reg(g),
                addr: reg(g),
                expected: reg(g),
                new: reg(g),
            },
            7 => Instr::FetchAdd {
                dst: reg(g),
                addr: reg(g),
                val: src(g),
            },
            8 => Instr::Syscall {
                num: g.below(28) as u32,
            },
            _ => Instr::Nop,
        }
    }

    /// Any program of random instructions (plus valid jumps and a final
    /// ret) survives a dump/parse roundtrip instruction-for-instruction.
    #[test]
    fn asm_roundtrip_random_programs() {
        check("asm_roundtrip_random_programs", 96, |g| {
            use dp_vm::builder::ProgramBuilder;
            let mut code: Vec<Instr> = (0..g.range(1, 40)).map(|_| instr(g)).collect();
            // Interleave jumps with valid in-range targets.
            for _ in 0..g.index(6) {
                let at = g.index(code.len());
                let target = g.index(code.len() + 1) as u32;
                let j = match g.index(3) {
                    0 => Instr::Jmp { target },
                    1 => Instr::Jnz {
                        cond: Reg(1),
                        target,
                    },
                    _ => Instr::Jz {
                        cond: Reg(2),
                        target,
                    },
                };
                code.insert(at, j);
            }
            // Fix up targets that insertion may have shifted out of range.
            let len = code.len() as u32 + 1;
            for i in &mut code {
                if let Instr::Jmp { target }
                | Instr::Jnz { target, .. }
                | Instr::Jz { target, .. } = i
                {
                    *target %= len;
                }
            }
            code.push(Instr::Ret);

            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("main");
            // Install raw instructions via the builder's label machinery:
            // bind a label per index so jumps resolve identically.
            let labels: Vec<_> = (0..=code.len()).map(|_| f.label()).collect();
            for (i, instr) in code.iter().enumerate() {
                f.bind(labels[i]);
                match *instr {
                    Instr::Jmp { target } => {
                        f.jmp(labels[target as usize]);
                    }
                    Instr::Jnz { cond, target } => {
                        f.jnz(cond, labels[target as usize]);
                    }
                    Instr::Jz { cond, target } => {
                        f.jz(cond, labels[target as usize]);
                    }
                    Instr::Const { dst, imm } => {
                        f.constu(dst, imm);
                    }
                    Instr::Mov { dst, src } => {
                        f.mov(dst, src);
                    }
                    Instr::Bin { op, dst, a, b } => {
                        f.bin(op, dst, a, b);
                    }
                    Instr::Un { op, dst, a } => {
                        f.un(op, dst, a);
                    }
                    Instr::Load {
                        dst,
                        addr,
                        offset,
                        width,
                    } => {
                        f.load(dst, addr, offset, width);
                    }
                    Instr::Store {
                        src,
                        addr,
                        offset,
                        width,
                    } => {
                        f.store(src, addr, offset, width);
                    }
                    Instr::Cas {
                        dst,
                        addr,
                        expected,
                        new,
                    } => {
                        f.cas(dst, addr, expected, new);
                    }
                    Instr::FetchAdd { dst, addr, val } => {
                        f.fetch_add(dst, addr, val);
                    }
                    Instr::Syscall { num } => {
                        f.syscall(num);
                    }
                    Instr::Ret => {
                        f.ret();
                    }
                    Instr::Nop => {
                        f.nop();
                    }
                    _ => unreachable!(),
                }
            }
            f.bind(labels[code.len()]);
            f.nop(); // landing pad for end-of-function jump targets
            f.finish();
            let original = pb.finish("main");

            let text = program_to_asm(&original);
            let reparsed =
                assemble(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
            let a = &original.functions()[0].code;
            let b = &reparsed.functions()[0].code;
            // The dump may add a trailing landing-pad nop; compare the
            // common prefix plus require only nops beyond it.
            let n = a.len().min(b.len());
            assert_eq!(&a[..n], &b[..n], "\n---\n{}", text);
            for extra in b.iter().skip(n).chain(a.iter().skip(n)) {
                assert_eq!(extra, &Instr::Nop);
            }
        });
    }
}
