//! Property-based tests for the VM substrate: memory model equivalence,
//! copy-on-write isolation, and the determinism contract that the whole
//! DoublePlay stack relies on.

use dp_vm::builder::ProgramBuilder;
use dp_vm::memory::Memory;
use dp_vm::observer::NullObserver;
use dp_vm::{BinOp, Machine, Reg, SliceLimits, Src, Tid, Width};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// A write operation for the memory model test.
#[derive(Debug, Clone)]
struct WriteOp {
    addr: u64,
    value: u64,
    width: Width,
}

fn width_strategy() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::W1),
        Just(Width::W2),
        Just(Width::W4),
        Just(Width::W8),
    ]
}

fn write_op() -> impl Strategy<Value = WriteOp> {
    // Cluster addresses near page boundaries to exercise straddling.
    (0u64..4, 0u64..32, any::<u64>(), width_strategy()).prop_map(|(page, off, value, width)| {
        WriteOp {
            addr: page * 4096 + if off < 16 { off } else { 4096 - 8 + (off - 16) % 8 },
            value,
            width,
        }
    })
}

proptest! {
    /// Memory behaves like a flat byte array initialized to zero.
    #[test]
    fn memory_matches_byte_model(ops in proptest::collection::vec(write_op(), 1..64)) {
        let mut mem = Memory::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in &ops {
            mem.write(op.addr, op.value, op.width);
            for i in 0..op.width.bytes() {
                model.insert(op.addr.wrapping_add(i), (op.value >> (8 * i)) as u8);
            }
        }
        // Every byte the model knows about must match; and reads of each
        // written word must reassemble little-endian.
        for (&addr, &byte) in &model {
            prop_assert_eq!(mem.read_u8(addr), byte);
        }
        for op in &ops {
            let read = mem.read(op.addr, op.width);
            let mut expect = 0u64;
            for i in 0..op.width.bytes() {
                expect |= (*model.get(&op.addr.wrapping_add(i)).unwrap() as u64) << (8 * i);
            }
            prop_assert_eq!(read, expect);
        }
    }

    /// Snapshots are immune to later writes, and writes to a snapshot do not
    /// leak back — the checkpoint property.
    #[test]
    fn cow_snapshots_are_isolated(
        before in proptest::collection::vec(write_op(), 1..32),
        after in proptest::collection::vec(write_op(), 1..32),
    ) {
        let mut mem = Memory::new();
        for op in &before {
            mem.write(op.addr, op.value, op.width);
        }
        let snap = mem.clone();
        let baseline: Vec<u64> = before.iter().map(|op| snap.read(op.addr, op.width)).collect();
        let mut snap2 = mem.clone();
        for op in &after {
            mem.write(op.addr, op.value.wrapping_add(1), op.width);
            snap2.write(op.addr, op.value.wrapping_sub(1), op.width);
        }
        for (op, expect) in before.iter().zip(baseline) {
            prop_assert_eq!(snap.read(op.addr, op.width), expect);
        }
        prop_assert_eq!(snap.first_difference(&snap.clone()), None);
    }

    /// Executing the same straight-line program with arbitrary slice
    /// boundaries produces identical final state hashes.
    #[test]
    fn slicing_does_not_change_semantics(
        seeds in proptest::collection::vec(any::<u64>(), 4..16),
        slice_len in 1u64..7,
    ) {
        let mut pb = ProgramBuilder::new();
        let scratch = pb.global("scratch", 64);
        let mut f = pb.function("main");
        f.consti(Reg(10), scratch as i64);
        for (i, &s) in seeds.iter().enumerate() {
            f.constu(Reg(1), s);
            f.bin(BinOp::Xor, Reg(2), Reg(2), Src::Reg(Reg(1)));
            f.bin(BinOp::Add, Reg(3), Reg(3), Src::Reg(Reg(2)));
            f.bin(BinOp::Mul, Reg(4), Reg(3), Src::Imm(31));
            f.store(Reg(4), Reg(10), (i as i64 % 8) * 8, Width::W8);
        }
        f.mov(Reg(0), Reg(4));
        f.ret();
        f.finish();
        let program = Arc::new(pb.finish("main"));

        let mut whole = Machine::new(program.clone(), &[]);
        whole
            .run_slice(Tid(0), SliceLimits::budget(1_000_000), &mut NullObserver)
            .unwrap();

        let mut sliced = Machine::new(program, &[]);
        while !sliced.thread(Tid(0)).is_exited() {
            sliced
                .run_slice(Tid(0), SliceLimits::budget(slice_len), &mut NullObserver)
                .unwrap();
        }
        prop_assert_eq!(whole.state_hash(), sliced.state_hash());
        prop_assert_eq!(
            whole.thread(Tid(0)).exit_value,
            sliced.thread(Tid(0)).exit_value
        );
    }

    /// state_hash distinguishes states that differ in a single memory byte.
    #[test]
    fn state_hash_detects_byte_flips(addr in 0x1000u64..0x9000, val in 1u8..=255) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.ret();
        f.finish();
        let p = Arc::new(pb.finish("main"));
        let a = Machine::new(p.clone(), &[]);
        let mut b = Machine::new(p, &[]);
        b.mem_mut().write_u8(addr, val);
        prop_assert_ne!(a.state_hash(), b.state_hash());
    }
}

mod asm_props {
    use dp_vm::asm::{assemble, program_to_asm};
    use dp_vm::{BinOp, Instr, Reg, Src, UnOp, Width};
    use proptest::prelude::*;

    fn reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(Reg)
    }

    fn src() -> impl Strategy<Value = Src> {
        prop_oneof![
            reg().prop_map(Src::Reg),
            any::<i32>().prop_map(|v| Src::Imm(v as i64)),
        ]
    }

    fn width() -> impl Strategy<Value = Width> {
        prop_oneof![
            Just(Width::W1),
            Just(Width::W2),
            Just(Width::W4),
            Just(Width::W8)
        ]
    }

    fn binop() -> impl Strategy<Value = BinOp> {
        prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Xor),
            Just(BinOp::Shl),
            Just(BinOp::Ltu),
            Just(BinOp::Les),
            Just(BinOp::Minu),
        ]
    }

    /// Straight-line instructions only (jumps are added separately with
    /// valid targets).
    fn instr() -> impl Strategy<Value = Instr> {
        prop_oneof![
            (reg(), any::<u64>()).prop_map(|(dst, imm)| Instr::Const { dst, imm }),
            (reg(), src()).prop_map(|(dst, src)| Instr::Mov { dst, src }),
            (binop(), reg(), reg(), src())
                .prop_map(|(op, dst, a, b)| Instr::Bin { op, dst, a, b }),
            (reg(), reg()).prop_map(|(dst, a)| Instr::Un {
                op: UnOp::Not,
                dst,
                a
            }),
            (reg(), reg(), -64i64..64, width()).prop_map(|(dst, addr, offset, width)| {
                Instr::Load {
                    dst,
                    addr,
                    offset,
                    width,
                }
            }),
            (reg(), reg(), -64i64..64, width()).prop_map(|(src, addr, offset, width)| {
                Instr::Store {
                    src,
                    addr,
                    offset,
                    width,
                }
            }),
            (reg(), reg(), reg(), reg()).prop_map(|(dst, addr, expected, new)| Instr::Cas {
                dst,
                addr,
                expected,
                new
            }),
            (reg(), reg(), src()).prop_map(|(dst, addr, val)| Instr::FetchAdd { dst, addr, val }),
            (0u32..28).prop_map(|num| Instr::Syscall { num }),
            Just(Instr::Nop),
        ]
    }

    proptest! {
        /// Any program of random instructions (plus valid jumps and a final
        /// ret) survives a dump/parse roundtrip instruction-for-instruction.
        #[test]
        fn asm_roundtrip_random_programs(
            body in proptest::collection::vec(instr(), 1..40),
            jump_points in proptest::collection::vec((any::<proptest::sample::Index>(), any::<proptest::sample::Index>(), 0u8..3), 0..6),
        ) {
            use dp_vm::builder::ProgramBuilder;
            // Interleave jumps with valid in-range targets.
            let mut code = body;
            for (at, to, kind) in jump_points {
                let at = at.index(code.len());
                let target = to.index(code.len() + 1) as u32;
                let j = match kind {
                    0 => Instr::Jmp { target },
                    1 => Instr::Jnz { cond: Reg(1), target },
                    _ => Instr::Jz { cond: Reg(2), target },
                };
                code.insert(at, j);
            }
            // Fix up targets that insertion may have shifted out of range.
            let len = code.len() as u32 + 1;
            for i in &mut code {
                if let Instr::Jmp { target } | Instr::Jnz { target, .. } | Instr::Jz { target, .. } = i {
                    *target %= len;
                }
            }
            code.push(Instr::Ret);

            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("main");
            // Install raw instructions via the builder's label machinery:
            // bind a label per index so jumps resolve identically.
            let labels: Vec<_> = (0..=code.len()).map(|_| f.label()).collect();
            for (i, instr) in code.iter().enumerate() {
                f.bind(labels[i]);
                match *instr {
                    Instr::Jmp { target } => {
                        f.jmp(labels[target as usize]);
                    }
                    Instr::Jnz { cond, target } => {
                        f.jnz(cond, labels[target as usize]);
                    }
                    Instr::Jz { cond, target } => {
                        f.jz(cond, labels[target as usize]);
                    }
                    Instr::Const { dst, imm } => {
                        f.constu(dst, imm);
                    }
                    Instr::Mov { dst, src } => {
                        f.mov(dst, src);
                    }
                    Instr::Bin { op, dst, a, b } => {
                        f.bin(op, dst, a, b);
                    }
                    Instr::Un { op, dst, a } => {
                        f.un(op, dst, a);
                    }
                    Instr::Load { dst, addr, offset, width } => {
                        f.load(dst, addr, offset, width);
                    }
                    Instr::Store { src, addr, offset, width } => {
                        f.store(src, addr, offset, width);
                    }
                    Instr::Cas { dst, addr, expected, new } => {
                        f.cas(dst, addr, expected, new);
                    }
                    Instr::FetchAdd { dst, addr, val } => {
                        f.fetch_add(dst, addr, val);
                    }
                    Instr::Syscall { num } => {
                        f.syscall(num);
                    }
                    Instr::Ret => {
                        f.ret();
                    }
                    Instr::Nop => {
                        f.nop();
                    }
                    _ => unreachable!(),
                }
            }
            f.bind(labels[code.len()]);
            f.nop(); // landing pad for end-of-function jump targets
            f.finish();
            let original = pb.finish("main");

            let text = program_to_asm(&original);
            let reparsed = assemble(&text)
                .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
            let a = &original.functions()[0].code;
            let b = &reparsed.functions()[0].code;
            // The dump may add a trailing landing-pad nop; compare the
            // common prefix plus require only nops beyond it.
            let n = a.len().min(b.len());
            prop_assert_eq!(&a[..n], &b[..n], "\n---\n{}", text);
            for extra in b.iter().skip(n).chain(a.iter().skip(n)) {
                prop_assert_eq!(extra, &Instr::Nop);
            }
        }
    }
}
