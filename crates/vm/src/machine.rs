//! The machine: program + memory + threads, with a step/slice interpreter.
//!
//! A `Machine` is deliberately *passive*: it has no scheduler and no kernel.
//! Host drivers (the DoublePlay recorders, the baselines, replay engines)
//! decide which thread runs, for how many instructions, and what every
//! syscall returns. All nondeterminism therefore lives in the driver, which
//! is exactly the separation deterministic record/replay needs:
//!
//! * **schedule** — drivers call [`Machine::run_slice`] with explicit budgets;
//! * **syscalls** — the `Syscall` instruction traps; the driver's kernel
//!   services it and resumes the thread with [`Machine::complete_syscall`].
//!
//! Given the same program, the same slice sequence and the same syscall
//! results, execution is bit-for-bit identical — the foundational property
//! the whole repository's tests keep re-verifying.
//!
//! `Machine` is `Clone`: cloning is a copy-on-write checkpoint (page tables
//! are shared `Arc`s). It is also `Send`, so checkpointed epochs can replay
//! on real OS threads in parallel.

use crate::error::Fault;
use crate::instr::Instr;
use crate::memory::Memory;
use crate::observer::{Access, AccessKind, MemObserver};
use crate::program::{initial_sp, FuncId, Program};
use crate::thread::{Pc, SyscallRequest, ThreadState, ThreadStatus};
use crate::value::{Src, Tid, Width, Word};
use std::sync::Arc;

/// Default call-stack depth limit.
pub const DEFAULT_MAX_CALL_DEPTH: usize = 1024;

/// Result of a single [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// An ordinary instruction executed.
    Ran,
    /// An atomic read-modify-write executed. `wrote` is false for a
    /// compare-and-swap that failed (it only read the location).
    RanAtomic {
        /// Address the atomic operated on.
        addr: Word,
        /// Whether the location was written.
        wrote: bool,
    },
    /// The thread trapped into the kernel and is now `Waiting`.
    Syscall(SyscallRequest),
    /// The thread returned from its bottom frame and exited.
    Exited,
}

/// Why [`Machine::run_slice`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The instruction budget was exhausted.
    Budget,
    /// The thread reached the requested instruction-count target.
    IcountTarget,
    /// The thread trapped into the kernel.
    Syscall(SyscallRequest),
    /// The thread exited.
    Exited,
    /// An atomic read-modify-write instruction executed and
    /// [`SliceLimits::stop_at_atomics`] was set. The atomic has completed;
    /// the slice ends just after it. Carries the accessed address and
    /// whether it wrote, so recorders can track per-address ownership.
    Atomic {
        /// Address the atomic operated on.
        addr: Word,
        /// Whether the location was written (false for a failed CAS).
        wrote: bool,
    },
}

/// Outcome of [`Machine::run_slice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceRun {
    /// Instructions actually executed in this slice.
    pub executed: u64,
    /// Why the slice ended.
    pub stop: StopReason,
}

/// Limits for [`Machine::run_slice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceLimits {
    /// Maximum instructions to execute in this slice.
    pub max_instrs: u64,
    /// Absolute per-thread icount at which to stop (epoch-boundary target).
    pub icount_target: Option<u64>,
    /// End the slice just after each atomic read-modify-write instruction.
    /// Recorders use this to make synchronization operations visible
    /// scheduling points (the simulated analogue of DoublePlay's
    /// sync-operation hints).
    pub stop_at_atomics: bool,
}

impl SliceLimits {
    /// A budget-only limit.
    pub fn budget(max_instrs: u64) -> Self {
        SliceLimits {
            max_instrs,
            icount_target: None,
            stop_at_atomics: false,
        }
    }

    /// Returns the limits with atomic-stop enabled.
    pub fn stopping_at_atomics(mut self) -> Self {
        self.stop_at_atomics = true;
        self
    }
}

/// A multithreaded guest machine executing one [`Program`].
#[derive(Debug, Clone)]
pub struct Machine {
    program: Arc<Program>,
    mem: Memory,
    threads: Vec<ThreadState>,
    live: usize,
    halted: Option<Word>,
    fault: Option<Fault>,
    max_call_depth: usize,
}

/// A serializable snapshot of everything in a [`Machine`] except the
/// (immutable, shared) program. Recordings persist these as checkpoints;
/// [`Machine::from_image`] reattaches the program.
#[derive(Debug, Clone)]
pub struct MachineImage {
    /// Guest memory contents.
    pub mem: Memory,
    /// All thread states.
    pub threads: Vec<ThreadState>,
    /// Halt status.
    pub halted: Option<Word>,
    /// Latched fault, if any.
    pub fault: Option<Fault>,
}

dp_support::impl_wire_struct!(MachineImage {
    mem,
    threads,
    halted,
    fault
});

impl Machine {
    /// Boots a machine: loads data segments and spawns thread 0 running the
    /// program's entry function with `args`.
    pub fn new(program: Arc<Program>, args: &[Word]) -> Self {
        let mut mem = Memory::new();
        for seg in program.data() {
            mem.write_bytes(seg.addr, &seg.bytes);
        }
        // Loading the static image does not count as epoch-0 dirtying.
        mem.take_dirty();
        let entry = program.entry();
        let mut m = Machine {
            program,
            mem,
            threads: Vec::new(),
            live: 0,
            halted: None,
            fault: None,
            max_call_depth: DEFAULT_MAX_CALL_DEPTH,
        };
        m.spawn_thread(entry, args);
        m
    }

    /// The program this machine executes.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Shared view of guest memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable view of guest memory (used by the kernel to copy syscall
    /// buffers in and out).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// All threads ever created, by id. Exited threads remain (ids are never
    /// reused).
    pub fn threads(&self) -> &[ThreadState] {
        &self.threads
    }

    /// One thread's state.
    ///
    /// # Panics
    ///
    /// Panics if `tid` was never created.
    pub fn thread(&self, tid: Tid) -> &ThreadState {
        &self.threads[tid.index()]
    }

    /// Mutable thread state (kernel use: e.g. signal delivery).
    pub fn thread_mut(&mut self, tid: Tid) -> &mut ThreadState {
        &mut self.threads[tid.index()]
    }

    /// Ids of threads currently able to execute.
    pub fn ready_tids(&self) -> Vec<Tid> {
        self.threads
            .iter()
            .filter(|t| t.is_ready())
            .map(|t| t.tid)
            .collect()
    }

    /// Number of threads not yet exited.
    pub fn live_threads(&self) -> usize {
        self.live
    }

    /// Exit code if the whole machine has halted (via the kernel).
    pub fn halted(&self) -> Option<Word> {
        self.halted
    }

    /// The first fault raised, if any.
    pub fn fault(&self) -> Option<&Fault> {
        self.fault.as_ref()
    }

    /// Creates a new thread running `func(args...)`. Returns its id.
    /// Thread ids are allocated densely and deterministically.
    pub fn spawn_thread(&mut self, func: FuncId, args: &[Word]) -> Tid {
        let tid = Tid(self.threads.len() as u32);
        let sp = initial_sp(tid.index());
        self.threads.push(ThreadState::new(tid, func, args, sp));
        self.live += 1;
        tid
    }

    /// Marks a thread exited (kernel `THREAD_EXIT` path).
    pub fn exit_thread(&mut self, tid: Tid, exit_value: Word) {
        let t = &mut self.threads[tid.index()];
        if !t.is_exited() {
            t.status = ThreadStatus::Exited;
            t.exit_value = exit_value;
            t.pending = None;
            self.live -= 1;
        }
    }

    /// Halts the whole machine with an exit code (kernel `EXIT` path).
    pub fn halt(&mut self, code: Word) {
        self.halted = Some(code);
        for t in &mut self.threads {
            if !t.is_exited() {
                t.status = ThreadStatus::Exited;
                t.pending = None;
                self.live -= 1;
            }
        }
    }

    /// Completes a pending syscall: writes `ret` to the thread's `r0` and
    /// makes it runnable again.
    ///
    /// # Panics
    ///
    /// Panics if the thread has no pending syscall (driver bug).
    pub fn complete_syscall(&mut self, tid: Tid, ret: Word) {
        let t = &mut self.threads[tid.index()];
        assert!(
            t.pending.is_some() && t.status == ThreadStatus::Waiting,
            "complete_syscall on {tid} with no pending syscall"
        );
        t.pending = None;
        t.regs[0] = ret;
        t.status = ThreadStatus::Ready;
    }

    /// Delivers a signal: pushes a transparent handler frame on `tid`.
    /// The thread must be `Ready` (drivers deliver at slice boundaries).
    pub fn push_signal_frame(&mut self, tid: Tid, handler: FuncId, args: &[Word]) {
        let t = &mut self.threads[tid.index()];
        assert!(t.is_ready(), "signal delivery to non-ready thread {tid}");
        t.enter_signal_call(handler, args);
    }

    /// Digest of the complete machine state: memory, every thread, and halt
    /// status. Two machines with equal hashes will behave identically given
    /// identical future schedules and syscall results.
    ///
    /// The memory contribution is incremental ([`Memory::state_digest`]):
    /// after the first call only pages written since the previous call are
    /// re-hashed, so epoch-boundary hashing costs O(pages dirtied this
    /// epoch), not O(resident footprint).
    pub fn state_hash(&self) -> u64 {
        self.hash_with_mem(self.mem.state_digest())
    }

    /// [`Machine::state_hash`] with the memory digest recomputed from
    /// scratch, bypassing the incremental cache. Always equal to
    /// `state_hash` — the correctness oracle and benchmark baseline.
    pub fn state_hash_scratch(&self) -> u64 {
        self.hash_with_mem(self.mem.state_digest_scratch())
    }

    fn hash_with_mem(&self, mem_digest: u64) -> u64 {
        let mut h = crate::hash::Fnv1a::new();
        h.write_u64(mem_digest);
        h.write_u64(self.threads.len() as u64);
        for t in &self.threads {
            t.hash_into(&mut h);
        }
        match self.halted {
            None => h.write_u32(0),
            Some(code) => {
                h.write_u32(1);
                h.write_u64(code);
            }
        }
        h.finish()
    }

    /// Captures a serializable image of the machine state.
    pub fn image(&self) -> MachineImage {
        MachineImage {
            mem: self.mem.clone(),
            threads: self.threads.clone(),
            halted: self.halted,
            fault: self.fault.clone(),
        }
    }

    /// Reconstructs a machine from an image and the program it was running.
    pub fn from_image(program: Arc<Program>, image: MachineImage) -> Self {
        let live = image.threads.iter().filter(|t| !t.is_exited()).count();
        Machine {
            program,
            mem: image.mem,
            threads: image.threads,
            live,
            halted: image.halted,
            fault: image.fault,
            max_call_depth: DEFAULT_MAX_CALL_DEPTH,
        }
    }

    /// Executes exactly one instruction on `tid`.
    ///
    /// # Errors
    ///
    /// Returns the fault if the instruction faults, the thread is not
    /// runnable, or the machine has halted. The fault is also latched into
    /// [`Machine::fault`] and the thread is exited, so a faulted machine
    /// remains safe to inspect.
    pub fn step(&mut self, tid: Tid, obs: &mut dyn MemObserver) -> Result<Step, Fault> {
        if self.halted.is_some() || !self.threads[tid.index()].is_ready() {
            return Err(Fault::NotRunnable { tid });
        }
        match self.exec_one(tid, obs) {
            Ok(step) => Ok(step),
            Err(fault) => {
                self.fault.get_or_insert(fault.clone());
                self.exit_thread(tid, u64::MAX);
                Err(fault)
            }
        }
    }

    /// Runs `tid` until a limit is hit, it traps, or it exits.
    ///
    /// Stops *before* executing an instruction that would exceed
    /// `limits.icount_target`; stops *after* a syscall instruction with the
    /// trap as the stop reason (the syscall is pending, not yet serviced).
    ///
    /// # Errors
    ///
    /// Returns the fault if the thread faults or is not runnable.
    pub fn run_slice(
        &mut self,
        tid: Tid,
        limits: SliceLimits,
        obs: &mut dyn MemObserver,
    ) -> Result<SliceRun, Fault> {
        let mut executed = 0u64;
        loop {
            if let Some(target) = limits.icount_target {
                let ic = self.threads[tid.index()].icount;
                debug_assert!(ic <= target, "thread {tid} overshot icount target");
                if ic >= target {
                    return Ok(SliceRun {
                        executed,
                        stop: StopReason::IcountTarget,
                    });
                }
            }
            if executed >= limits.max_instrs {
                return Ok(SliceRun {
                    executed,
                    stop: StopReason::Budget,
                });
            }
            match self.step(tid, obs)? {
                Step::Ran => executed += 1,
                Step::RanAtomic { addr, wrote } => {
                    executed += 1;
                    if limits.stop_at_atomics {
                        return Ok(SliceRun {
                            executed,
                            stop: StopReason::Atomic { addr, wrote },
                        });
                    }
                }
                Step::Syscall(req) => {
                    return Ok(SliceRun {
                        executed: executed + 1,
                        stop: StopReason::Syscall(req),
                    })
                }
                Step::Exited => {
                    return Ok(SliceRun {
                        executed: executed + 1,
                        stop: StopReason::Exited,
                    })
                }
            }
        }
    }

    fn reg(&self, tid: Tid, r: crate::value::Reg) -> Word {
        self.threads[tid.index()].regs[r.index()]
    }

    fn src(&self, tid: Tid, s: Src) -> Word {
        match s {
            Src::Reg(r) => self.reg(tid, r),
            Src::Imm(v) => v as u64,
        }
    }

    fn exec_one(&mut self, tid: Tid, obs: &mut dyn MemObserver) -> Result<Step, Fault> {
        let pc = self.threads[tid.index()].pc;
        let func = self.program.function(pc.func).ok_or(Fault::BadFunction {
            tid,
            pc,
            func: pc.func,
        })?;
        let instr = match func.code.get(pc.idx as usize) {
            Some(i) => *i,
            None => return Err(Fault::FellOffFunction { tid, func: pc.func }),
        };

        // Advance pc and icount first; control flow overwrites pc below.
        {
            let t = &mut self.threads[tid.index()];
            t.pc.idx += 1;
            t.icount += 1;
        }
        let icount = self.threads[tid.index()].icount;

        macro_rules! set_reg {
            ($r:expr, $v:expr) => {{
                let v = $v;
                self.threads[tid.index()].regs[$r.index()] = v;
            }};
        }

        match instr {
            Instr::Nop => {}
            Instr::Const { dst, imm } => set_reg!(dst, imm),
            Instr::Mov { dst, src } => set_reg!(dst, self.src(tid, src)),
            Instr::Bin { op, dst, a, b } => {
                let va = self.reg(tid, a);
                let vb = self.src(tid, b);
                let v = op.eval(va, vb).ok_or(Fault::DivideByZero { tid, pc })?;
                set_reg!(dst, v);
            }
            Instr::Un { op, dst, a } => {
                let v = op.eval(self.reg(tid, a));
                set_reg!(dst, v);
            }
            Instr::Load {
                dst,
                addr,
                offset,
                width,
            } => {
                let a = self.reg(tid, addr).wrapping_add(offset as u64);
                let v = obs
                    .intercept_load(tid, a, width)
                    .unwrap_or_else(|| self.mem.read(a, width));
                set_reg!(dst, v);
                obs.on_access(Access {
                    tid,
                    icount,
                    addr: a,
                    width,
                    kind: AccessKind::Read,
                    value: v,
                });
            }
            Instr::Store {
                src,
                addr,
                offset,
                width,
            } => {
                let a = self.reg(tid, addr).wrapping_add(offset as u64);
                let v = width.truncate(self.reg(tid, src));
                self.mem.write(a, v, width);
                obs.on_access(Access {
                    tid,
                    icount,
                    addr: a,
                    width,
                    kind: AccessKind::Write,
                    value: v,
                });
            }
            Instr::Cas {
                dst,
                addr,
                expected,
                new,
            } => {
                let a = self.reg(tid, addr);
                if let Some(old) = obs.intercept_atomic(tid, a) {
                    set_reg!(dst, old);
                    return Ok(Step::RanAtomic {
                        addr: a,
                        wrote: false,
                    });
                }
                let old = self.mem.read(a, Width::W8);
                let wrote = old == self.reg(tid, expected);
                if wrote {
                    let nv = self.reg(tid, new);
                    self.mem.write(a, nv, Width::W8);
                }
                set_reg!(dst, old);
                obs.on_access(Access {
                    tid,
                    icount,
                    addr: a,
                    width: Width::W8,
                    kind: AccessKind::Atomic,
                    value: old,
                });
                return Ok(Step::RanAtomic { addr: a, wrote });
            }
            Instr::FetchAdd { dst, addr, val } => {
                let a = self.reg(tid, addr);
                if let Some(old) = obs.intercept_atomic(tid, a) {
                    set_reg!(dst, old);
                    return Ok(Step::RanAtomic {
                        addr: a,
                        wrote: false,
                    });
                }
                let old = self.mem.read(a, Width::W8);
                let add = self.src(tid, val);
                self.mem.write(a, old.wrapping_add(add), Width::W8);
                set_reg!(dst, old);
                obs.on_access(Access {
                    tid,
                    icount,
                    addr: a,
                    width: Width::W8,
                    kind: AccessKind::Atomic,
                    value: old,
                });
                return Ok(Step::RanAtomic {
                    addr: a,
                    wrote: true,
                });
            }
            Instr::Swap { dst, addr, val } => {
                let a = self.reg(tid, addr);
                if let Some(old) = obs.intercept_atomic(tid, a) {
                    set_reg!(dst, old);
                    return Ok(Step::RanAtomic {
                        addr: a,
                        wrote: false,
                    });
                }
                let old = self.mem.read(a, Width::W8);
                let nv = self.reg(tid, val);
                self.mem.write(a, nv, Width::W8);
                set_reg!(dst, old);
                obs.on_access(Access {
                    tid,
                    icount,
                    addr: a,
                    width: Width::W8,
                    kind: AccessKind::Atomic,
                    value: old,
                });
                return Ok(Step::RanAtomic {
                    addr: a,
                    wrote: true,
                });
            }
            Instr::Jmp { target } => {
                self.threads[tid.index()].pc.idx = target;
            }
            Instr::Jnz { cond, target } => {
                if self.reg(tid, cond) != 0 {
                    self.threads[tid.index()].pc.idx = target;
                }
            }
            Instr::Jz { cond, target } => {
                if self.reg(tid, cond) == 0 {
                    self.threads[tid.index()].pc.idx = target;
                }
            }
            Instr::Call { func } => return self.do_call(tid, func, pc),
            Instr::CallIndirect { func } => {
                let id = FuncId(self.reg(tid, func) as u32);
                return self.do_call(tid, id, pc);
            }
            Instr::Ret => {
                let t = &mut self.threads[tid.index()];
                if !t.leave_call() {
                    self.live -= 1;
                    return Ok(Step::Exited);
                }
            }
            Instr::Syscall { num } => {
                let t = &mut self.threads[tid.index()];
                let mut args = [0u64; 6];
                args.copy_from_slice(&t.regs[..6]);
                let req = SyscallRequest { tid, num, args };
                t.pending = Some(req);
                t.status = ThreadStatus::Waiting;
                return Ok(Step::Syscall(req));
            }
        }
        Ok(Step::Ran)
    }

    fn do_call(&mut self, tid: Tid, func: FuncId, pc: Pc) -> Result<Step, Fault> {
        if self.program.function(func).is_none() {
            return Err(Fault::BadFunction { tid, pc, func });
        }
        let t = &mut self.threads[tid.index()];
        if t.frames.len() >= self.max_call_depth {
            return Err(Fault::StackOverflow { tid, pc });
        }
        let ret_pc = t.pc; // already advanced past the call
        t.enter_call(func, ret_pc);
        Ok(Step::Ran)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::BinOp;
    use crate::observer::{CollectingObserver, NullObserver};
    use crate::value::Reg;

    /// A program whose main computes 6*7 into a global and returns it.
    fn mul_program() -> Arc<Program> {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("answer", 8);
        let mut f = pb.function("main");
        f.consti(Reg(1), 6);
        f.consti(Reg(2), 7);
        f.bin(BinOp::Mul, Reg(0), Reg(1), Src::Reg(Reg(2)));
        f.consti(Reg(3), g as i64);
        f.store(Reg(0), Reg(3), 0, Width::W8);
        f.ret();
        f.finish();
        Arc::new(pb.finish("main"))
    }

    fn run_to_exit(m: &mut Machine, tid: Tid) -> SliceRun {
        m.run_slice(tid, SliceLimits::budget(1_000_000), &mut NullObserver)
            .unwrap()
    }

    #[test]
    fn straight_line_execution() {
        let mut m = Machine::new(mul_program(), &[]);
        let run = run_to_exit(&mut m, Tid(0));
        assert_eq!(run.stop, StopReason::Exited);
        assert_eq!(run.executed, 6);
        let g = m.program().symbol("answer").unwrap();
        assert_eq!(m.mem().read(g, Width::W8), 42);
        assert_eq!(m.thread(Tid(0)).exit_value, 42);
        assert_eq!(m.live_threads(), 0);
    }

    #[test]
    fn budget_stops_mid_run() {
        let mut m = Machine::new(mul_program(), &[]);
        let run = m
            .run_slice(Tid(0), SliceLimits::budget(3), &mut NullObserver)
            .unwrap();
        assert_eq!(run.stop, StopReason::Budget);
        assert_eq!(run.executed, 3);
        assert_eq!(m.thread(Tid(0)).icount, 3);
        // Resuming finishes the program identically.
        let run = run_to_exit(&mut m, Tid(0));
        assert_eq!(run.stop, StopReason::Exited);
        assert_eq!(m.thread(Tid(0)).exit_value, 42);
    }

    #[test]
    fn icount_target_is_exact() {
        let mut m = Machine::new(mul_program(), &[]);
        let run = m
            .run_slice(
                Tid(0),
                SliceLimits {
                    max_instrs: 1000,
                    icount_target: Some(4),
                    stop_at_atomics: false,
                },
                &mut NullObserver,
            )
            .unwrap();
        assert_eq!(run.stop, StopReason::IcountTarget);
        assert_eq!(m.thread(Tid(0)).icount, 4);
    }

    #[test]
    fn determinism_same_slices_same_hash() {
        let p = mul_program();
        let mut a = Machine::new(p.clone(), &[]);
        let mut b = Machine::new(p, &[]);
        // Different slice boundaries, same final state.
        run_to_exit(&mut a, Tid(0));
        for _ in 0..6 {
            let _ = b.run_slice(Tid(0), SliceLimits::budget(1), &mut NullObserver);
        }
        assert_eq!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn observer_sees_the_store() {
        let mut m = Machine::new(mul_program(), &[]);
        let mut obs = CollectingObserver::default();
        m.run_slice(Tid(0), SliceLimits::budget(100), &mut obs)
            .unwrap();
        assert_eq!(obs.accesses.len(), 1);
        let a = obs.accesses[0];
        assert_eq!(a.kind, AccessKind::Write);
        assert_eq!(a.value, 42);
        assert_eq!(a.addr, m.program().symbol("answer").unwrap());
    }

    #[test]
    fn syscall_traps_and_resumes() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.consti(Reg(0), 123);
        f.syscall(9); // arbitrary number; kernel is the test below
        f.bin(BinOp::Add, Reg(0), Reg(0), Src::Imm(1));
        f.ret();
        f.finish();
        let p = Arc::new(pb.finish("main"));
        let mut m = Machine::new(p, &[]);
        let run = m
            .run_slice(Tid(0), SliceLimits::budget(100), &mut NullObserver)
            .unwrap();
        let req = match run.stop {
            StopReason::Syscall(r) => r,
            other => panic!("expected syscall, got {other:?}"),
        };
        assert_eq!(req.num, 9);
        assert_eq!(req.args[0], 123);
        assert_eq!(m.thread(Tid(0)).status, ThreadStatus::Waiting);
        // Thread cannot run while waiting.
        assert!(m.step(Tid(0), &mut NullObserver).is_err());
        m.complete_syscall(Tid(0), 1000);
        let run = run_to_exit(&mut m, Tid(0));
        assert_eq!(run.stop, StopReason::Exited);
        assert_eq!(m.thread(Tid(0)).exit_value, 1001);
    }

    #[test]
    fn fault_poisons_thread_not_machine() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.consti(Reg(1), 1);
        f.consti(Reg(2), 0);
        f.bin(BinOp::Divu, Reg(0), Reg(1), Src::Reg(Reg(2)));
        f.ret();
        f.finish();
        let p = Arc::new(pb.finish("main"));
        let mut m = Machine::new(p, &[]);
        let err = m
            .run_slice(Tid(0), SliceLimits::budget(100), &mut NullObserver)
            .unwrap_err();
        assert!(matches!(err, Fault::DivideByZero { .. }));
        assert!(m.fault().is_some());
        assert!(m.thread(Tid(0)).is_exited());
    }

    #[test]
    fn spawn_threads_get_distinct_stacks() {
        let p = mul_program();
        let mut m = Machine::new(p.clone(), &[]);
        let entry = p.entry();
        let t1 = m.spawn_thread(entry, &[5]);
        let t2 = m.spawn_thread(entry, &[6]);
        assert_eq!(t1, Tid(1));
        assert_eq!(t2, Tid(2));
        assert_ne!(m.thread(t1).regs[31], m.thread(t2).regs[31]);
        assert_eq!(m.thread(t1).regs[0], 5);
        assert_eq!(m.live_threads(), 3);
    }

    #[test]
    fn halt_exits_everything() {
        let p = mul_program();
        let mut m = Machine::new(p.clone(), &[]);
        m.spawn_thread(p.entry(), &[]);
        m.halt(3);
        assert_eq!(m.halted(), Some(3));
        assert_eq!(m.live_threads(), 0);
        assert!(m.step(Tid(0), &mut NullObserver).is_err());
    }

    #[test]
    fn clone_is_a_checkpoint() {
        let mut m = Machine::new(mul_program(), &[]);
        m.run_slice(Tid(0), SliceLimits::budget(2), &mut NullObserver)
            .unwrap();
        let snap = m.clone();
        run_to_exit(&mut m, Tid(0));
        assert_ne!(snap.state_hash(), m.state_hash());
        // Resume the snapshot: identical end state.
        let mut resumed = snap;
        run_to_exit(&mut resumed, Tid(0));
        assert_eq!(resumed.state_hash(), m.state_hash());
    }

    #[test]
    fn state_hash_covers_halt_flag() {
        let m1 = Machine::new(mul_program(), &[]);
        let mut m2 = Machine::new(mul_program(), &[]);
        m2.halt(0);
        assert_ne!(m1.state_hash(), m2.state_hash());
    }

    #[test]
    fn image_roundtrip_preserves_state() {
        let p = mul_program();
        let mut m = Machine::new(p.clone(), &[]);
        m.run_slice(Tid(0), SliceLimits::budget(3), &mut NullObserver)
            .unwrap();
        let image = m.image();
        let restored = Machine::from_image(p, image);
        assert_eq!(restored.state_hash(), m.state_hash());
        assert_eq!(restored.live_threads(), m.live_threads());
        // And the restored machine continues identically.
        let mut a = m;
        let mut b = restored;
        run_to_exit(&mut a, Tid(0));
        run_to_exit(&mut b, Tid(0));
        assert_eq!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn stack_overflow_faults() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let self_id = f.id();
        f.call(self_id);
        f.ret();
        f.finish();
        let p = Arc::new(pb.finish("main"));
        let mut m = Machine::new(p, &[]);
        let err = m
            .run_slice(Tid(0), SliceLimits::budget(1_000_000), &mut NullObserver)
            .unwrap_err();
        assert!(matches!(err, Fault::StackOverflow { .. }));
    }
}
