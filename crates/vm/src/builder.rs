//! Ergonomic construction of [`Program`]s: forward-declared functions,
//! symbolic jump labels, and named globals.
//!
//! Guest workloads (the `dp-workloads` crate) are written directly against
//! this API. A minimal example:
//!
//! ```
//! use dp_vm::builder::ProgramBuilder;
//! use dp_vm::{BinOp, Reg, Src};
//!
//! let mut pb = ProgramBuilder::new();
//! let counter = pb.global("counter", 8);
//! let mut f = pb.function("main");
//! let top = f.label();
//! f.consti(Reg(1), 10); // loop bound
//! f.consti(Reg(2), 0); // i
//! f.bind(top);
//! f.bin(BinOp::Add, Reg(2), Reg(2), Src::Imm(1));
//! f.bin(BinOp::Ltu, Reg(3), Reg(2), Src::Reg(Reg(1)));
//! f.jnz(Reg(3), top);
//! f.consti(Reg(4), counter as i64);
//! f.store(Reg(2), Reg(4), 0, dp_vm::Width::W8);
//! f.ret();
//! f.finish();
//! let program = pb.finish("main");
//! assert!(program.function_by_name("main").is_some());
//! ```

use crate::instr::{BinOp, Instr, UnOp};
use crate::program::{DataSegment, FuncId, Function, Program, GLOBAL_BASE};
use crate::value::{Reg, Src, Width, Word};
use std::collections::BTreeMap;

/// A forward-referenceable jump target within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(u32);

/// Builds a [`Program`] incrementally.
#[derive(Debug)]
pub struct ProgramBuilder {
    functions: Vec<Option<Function>>,
    names: Vec<String>,
    data: Vec<DataSegment>,
    symbols: BTreeMap<String, Word>,
    next_global: Word,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder {
            functions: Vec::new(),
            names: Vec::new(),
            data: Vec::new(),
            symbols: BTreeMap::new(),
            next_global: GLOBAL_BASE,
        }
    }

    /// Reserves `size` bytes of zeroed global storage under `name`,
    /// returning its address (8-byte aligned).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already defined.
    pub fn global(&mut self, name: &str, size: Word) -> Word {
        let addr = self.next_global;
        assert!(
            self.symbols.insert(name.to_string(), addr).is_none(),
            "global `{name}` defined twice"
        );
        self.next_global += size.max(1);
        self.next_global = (self.next_global + 7) & !7;
        addr
    }

    /// Defines a global initialized with `bytes`, returning its address.
    pub fn global_data(&mut self, name: &str, bytes: &[u8]) -> Word {
        let addr = self.global(name, bytes.len() as Word);
        self.data.push(DataSegment {
            addr,
            bytes: bytes.to_vec(),
        });
        addr
    }

    /// Installs a data segment at an explicit address without allocating a
    /// named global (used by the assembler to reproduce exact layouts).
    pub fn data_at(&mut self, addr: Word, bytes: &[u8]) {
        self.data.push(DataSegment {
            addr,
            bytes: bytes.to_vec(),
        });
    }

    /// Forward-declares (or looks up) a function by name, returning its id.
    /// The body can be provided later via [`ProgramBuilder::function`].
    pub fn declare(&mut self, name: &str) -> FuncId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return FuncId(i as u32);
        }
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(None);
        self.names.push(name.to_string());
        id
    }

    /// Starts building the body of `name` (declaring it if necessary).
    ///
    /// # Panics
    ///
    /// Panics if the function already has a body.
    pub fn function(&mut self, name: &str) -> FunctionBuilder<'_> {
        let id = self.declare(name);
        assert!(
            self.functions[id.index()].is_none(),
            "function `{name}` defined twice"
        );
        FunctionBuilder {
            pb: self,
            id,
            code: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
        }
    }

    /// Finalizes the program with `entry_name` as the entry function.
    ///
    /// # Panics
    ///
    /// Panics if any declared function lacks a body or the entry is unknown.
    pub fn finish(self, entry_name: &str) -> Program {
        let entry = self
            .names
            .iter()
            .position(|n| n == entry_name)
            .map(|i| FuncId(i as u32))
            .unwrap_or_else(|| panic!("entry function `{entry_name}` not defined"));
        let functions: Vec<Function> = self
            .functions
            .into_iter()
            .zip(&self.names)
            .map(|(f, name)| {
                f.unwrap_or_else(|| panic!("function `{name}` declared but never defined"))
            })
            .collect();
        Program::new(functions, entry, self.data, self.symbols)
    }
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds one function body. Obtained from [`ProgramBuilder::function`];
/// call [`FunctionBuilder::finish`] to install the body.
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    id: FuncId,
    code: Vec<Instr>,
    labels: Vec<Option<u32>>,
    patches: Vec<(usize, Label)>,
}

impl<'a> FunctionBuilder<'a> {
    /// The id of the function being built (useful for recursion).
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// Index of the next instruction to be emitted.
    pub fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Creates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let here = self.here();
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(here);
    }

    /// Forward-declares (or looks up) another function by name.
    pub fn declare(&mut self, name: &str) -> FuncId {
        self.pb.declare(name)
    }

    fn emit(&mut self, instr: Instr) -> &mut Self {
        self.code.push(instr);
        self
    }

    /// `dst = imm` (signed immediate convenience).
    pub fn consti(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::Const {
            dst,
            imm: imm as u64,
        })
    }

    /// `dst = imm` (raw 64-bit constant).
    pub fn constu(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.emit(Instr::Const { dst, imm })
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Src>) -> &mut Self {
        self.emit(Instr::Mov {
            dst,
            src: src.into(),
        })
    }

    /// `dst = a <op> b`.
    pub fn bin(&mut self, op: BinOp, dst: Reg, a: Reg, b: impl Into<Src>) -> &mut Self {
        self.emit(Instr::Bin {
            op,
            dst,
            a,
            b: b.into(),
        })
    }

    /// `dst = a + b` shorthand.
    pub fn add(&mut self, dst: Reg, a: Reg, b: impl Into<Src>) -> &mut Self {
        self.bin(BinOp::Add, dst, a, b)
    }

    /// `dst = a - b` shorthand.
    pub fn sub(&mut self, dst: Reg, a: Reg, b: impl Into<Src>) -> &mut Self {
        self.bin(BinOp::Sub, dst, a, b)
    }

    /// `dst = a * b` shorthand.
    pub fn mul(&mut self, dst: Reg, a: Reg, b: impl Into<Src>) -> &mut Self {
        self.bin(BinOp::Mul, dst, a, b)
    }

    /// `dst = <op> a`.
    pub fn un(&mut self, op: UnOp, dst: Reg, a: Reg) -> &mut Self {
        self.emit(Instr::Un { op, dst, a })
    }

    /// `dst = mem[addr + offset]`.
    pub fn load(&mut self, dst: Reg, addr: Reg, offset: i64, width: Width) -> &mut Self {
        self.emit(Instr::Load {
            dst,
            addr,
            offset,
            width,
        })
    }

    /// `mem[addr + offset] = src`.
    pub fn store(&mut self, src: Reg, addr: Reg, offset: i64, width: Width) -> &mut Self {
        self.emit(Instr::Store {
            src,
            addr,
            offset,
            width,
        })
    }

    /// Atomic compare-and-swap (64-bit).
    pub fn cas(&mut self, dst: Reg, addr: Reg, expected: Reg, new: Reg) -> &mut Self {
        self.emit(Instr::Cas {
            dst,
            addr,
            expected,
            new,
        })
    }

    /// Atomic fetch-and-add (64-bit).
    pub fn fetch_add(&mut self, dst: Reg, addr: Reg, val: impl Into<Src>) -> &mut Self {
        self.emit(Instr::FetchAdd {
            dst,
            addr,
            val: val.into(),
        })
    }

    /// Atomic exchange (64-bit).
    pub fn swap(&mut self, dst: Reg, addr: Reg, val: Reg) -> &mut Self {
        self.emit(Instr::Swap { dst, addr, val })
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.patches.push((self.code.len(), label));
        self.emit(Instr::Jmp { target: u32::MAX })
    }

    /// Jump to `label` if `cond != 0`.
    pub fn jnz(&mut self, cond: Reg, label: Label) -> &mut Self {
        self.patches.push((self.code.len(), label));
        self.emit(Instr::Jnz {
            cond,
            target: u32::MAX,
        })
    }

    /// Jump to `label` if `cond == 0`.
    pub fn jz(&mut self, cond: Reg, label: Label) -> &mut Self {
        self.patches.push((self.code.len(), label));
        self.emit(Instr::Jz {
            cond,
            target: u32::MAX,
        })
    }

    /// Call a function by id.
    pub fn call(&mut self, func: FuncId) -> &mut Self {
        self.emit(Instr::Call { func })
    }

    /// Call a function by name (declaring it if needed).
    pub fn call_named(&mut self, name: &str) -> &mut Self {
        let func = self.pb.declare(name);
        self.call(func)
    }

    /// Indirect call through a register holding a function id.
    pub fn call_indirect(&mut self, func: Reg) -> &mut Self {
        self.emit(Instr::CallIndirect { func })
    }

    /// Return from the function.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Instr::Ret)
    }

    /// Trap into the kernel with syscall number `num`.
    pub fn syscall(&mut self, num: u32) -> &mut Self {
        self.emit(Instr::Syscall { num })
    }

    /// Emit a no-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }

    /// Resolves labels and installs the body into the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(self) {
        let FunctionBuilder {
            pb,
            id,
            mut code,
            labels,
            patches,
        } = self;
        for (idx, label) in patches {
            let target = labels[label.0 as usize].unwrap_or_else(|| {
                panic!("label used but never bound in `{}`", pb.names[id.index()])
            });
            match &mut code[idx] {
                Instr::Jmp { target: t }
                | Instr::Jnz { target: t, .. }
                | Instr::Jz { target: t, .. } => *t = target,
                other => unreachable!("patch on non-jump {other:?}"),
            }
        }
        let name = pb.names[id.index()].clone();
        pb.functions[id.index()] = Some(Function { name, code });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, SliceLimits};
    use crate::observer::NullObserver;
    use crate::value::Tid;
    use std::sync::Arc;

    #[test]
    fn loop_with_backward_label() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let top = f.label();
        f.consti(Reg(1), 0);
        f.bind(top);
        f.add(Reg(1), Reg(1), 1i64);
        f.bin(BinOp::Ltu, Reg(2), Reg(1), 5i64);
        f.jnz(Reg(2), top);
        f.mov(Reg(0), Reg(1));
        f.ret();
        f.finish();
        let p = Arc::new(pb.finish("main"));
        let mut m = Machine::new(p, &[]);
        m.run_slice(Tid(0), SliceLimits::budget(1000), &mut NullObserver)
            .unwrap();
        assert_eq!(m.thread(Tid(0)).exit_value, 5);
    }

    #[test]
    fn forward_label_and_else_branch() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let done = f.label();
        f.consti(Reg(0), 1);
        f.jnz(Reg(0), done);
        f.consti(Reg(0), 99); // skipped
        f.bind(done);
        f.ret();
        f.finish();
        let p = Arc::new(pb.finish("main"));
        let mut m = Machine::new(p, &[]);
        m.run_slice(Tid(0), SliceLimits::budget(100), &mut NullObserver)
            .unwrap();
        assert_eq!(m.thread(Tid(0)).exit_value, 1);
    }

    #[test]
    fn cross_function_calls_by_name() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.consti(Reg(0), 20);
        f.call_named("double");
        f.add(Reg(0), Reg(0), 2i64);
        f.ret();
        f.finish();
        let mut g = pb.function("double");
        g.add(Reg(0), Reg(0), Reg(0));
        g.ret();
        g.finish();
        let p = Arc::new(pb.finish("main"));
        let mut m = Machine::new(p, &[]);
        m.run_slice(Tid(0), SliceLimits::budget(100), &mut NullObserver)
            .unwrap();
        assert_eq!(m.thread(Tid(0)).exit_value, 42);
    }

    #[test]
    fn globals_are_aligned_and_distinct() {
        let mut pb = ProgramBuilder::new();
        let a = pb.global("a", 1);
        let b = pb.global("b", 13);
        let c = pb.global("c", 8);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert_eq!(c % 8, 0);
        assert!(b > a);
        assert!(c >= b + 13);
    }

    #[test]
    fn global_data_loads_into_memory() {
        let mut pb = ProgramBuilder::new();
        let msg = pb.global_data("msg", b"hi");
        let mut f = pb.function("main");
        f.ret();
        f.finish();
        let p = Arc::new(pb.finish("main"));
        let m = Machine::new(p, &[]);
        assert_eq!(m.mem().read_bytes(msg, 2), b"hi");
    }

    #[test]
    #[should_panic(expected = "declared but never defined")]
    fn missing_body_panics() {
        let mut pb = ProgramBuilder::new();
        pb.declare("ghost");
        let mut f = pb.function("main");
        f.ret();
        f.finish();
        pb.finish("main");
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let l = f.label();
        f.jmp(l);
        f.finish();
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_function_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.ret();
        f.finish();
        pb.function("main");
    }
}
