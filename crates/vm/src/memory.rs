//! Paged guest memory with copy-on-write snapshots and dirty-page tracking.
//!
//! Memory is a sparse map of 4 KiB pages shared via `Arc`. Cloning a
//! `Memory` (the checkpoint operation at the heart of DoublePlay) only clones
//! the page table; pages are copied lazily on the next write — the same
//! asymptotics as the paper's `fork()`-based checkpoints. Reads of unmapped
//! addresses return zero (anonymous-mapping semantics), which keeps guest
//! programs simple and makes the zero page irrelevant to state digests.
//!
//! Dirty-page tracking serves two masters: the checkpoint cost model (cost is
//! proportional to pages dirtied per epoch) and fast divergence diagnostics
//! (only dirty pages need diffing).

use crate::hash::Fnv1a;
use crate::value::{Width, Word};
use dp_support::wire::{put_varint, Reader, Wire, WireError};
use std::collections::{BTreeSet, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// A fast, deterministic hasher for page numbers (FxHash-style multiply).
/// Page tables are in the interpreter's hottest path; SipHash would cost
/// more than the interpretation itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageHasher {
    state: u64,
}

impl Hasher for PageHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state =
                (self.state.rotate_left(5) ^ b as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

type PageMap = HashMap<u64, Arc<Page>, BuildHasherDefault<PageHasher>>;

/// Bytes per page.
pub const PAGE_SIZE: u64 = 4096;
const PAGE_SHIFT: u32 = 12;

/// Page number containing `addr`.
#[inline]
pub fn page_of(addr: Word) -> u64 {
    addr >> PAGE_SHIFT
}

type Page = [u8; PAGE_SIZE as usize];

/// The process-wide shared zero page. Every caller gets the same `Arc`, so
/// "is this page all zeros?" can often be answered by pointer identity
/// before falling back to a byte scan.
fn zero_page() -> Arc<Page> {
    static ZERO: OnceLock<Arc<Page>> = OnceLock::new();
    ZERO.get_or_init(|| Arc::new([0u8; PAGE_SIZE as usize]))
        .clone()
}

/// Forces [`Memory::state_digest`] to recompute from scratch on every call,
/// bypassing the incremental cache. The digest *value* is identical either
/// way (property-tested); this knob exists so benchmarks can measure the
/// full-rehash baseline through the unmodified recorder path.
pub fn set_full_rehash(enabled: bool) {
    FULL_REHASH.store(enabled, Ordering::Relaxed);
}

static FULL_REHASH: AtomicBool = AtomicBool::new(false);

/// Mixes one `(page_no, page_digest)` pair into a 64-bit contribution
/// (splitmix64 finalizer). Contributions combine by wrapping addition, so
/// the memory digest is order-independent and can be updated per page
/// without re-folding the whole page table.
fn mix(pno: u64, digest: u64) -> u64 {
    let mut x = pno
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(digest)
        .wrapping_add(0x243f_6a88_85a3_08d3);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Digest of one page's bytes, or `None` for an all-zero page. A shared
/// zero-page `Arc` short-circuits by pointer identity; otherwise the byte
/// scan bails at the first nonzero byte and the page is FNV-hashed.
/// `hashed` counts pages whose bytes were actually examined.
fn page_digest(page: &Arc<Page>, hashed: &mut u64) -> Option<u64> {
    if Arc::ptr_eq(page, &zero_page()) {
        return None;
    }
    *hashed += 1;
    if page.iter().all(|&b| b == 0) {
        return None;
    }
    let mut h = Fnv1a::new();
    h.write_bytes(page.as_slice());
    Some(h.finish())
}

/// Cumulative counters of the incremental digest cache: how many pages'
/// bytes refreshes actually hashed vs. how many cached digests were reused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashStats {
    /// Pages whose bytes a digest refresh scanned (cache misses).
    pub hashed_pages: u64,
    /// Resident pages whose cached digest a [`Memory::state_digest`] call
    /// reused without touching their bytes (cache hits).
    pub skipped_pages: u64,
}

/// Incremental digest state for one `Memory`.
///
/// Lives behind a `Mutex` because [`Memory::state_digest`] refreshes
/// through `&self` (state hashing happens on shared references in the
/// verify hot path); the write paths go through `Mutex::get_mut`, which
/// never locks. The staleness set is deliberately *separate* from the
/// recorder's dirty set: `take_dirty` must not clear digest staleness, and
/// a digest refresh must not clear recorder dirt.
#[derive(Debug, Clone)]
struct DigestCache {
    /// Per-page digests. A page absent here contributes nothing — all-zero
    /// and unmapped pages are both "absent", so zero-fill semantics cannot
    /// cause false divergence.
    digests: HashMap<u64, u64, BuildHasherDefault<PageHasher>>,
    /// Wrapping sum of [`mix`]`(pno, digest)` over every entry of
    /// `digests`: the commutative memory digest.
    acc: u64,
    /// Pages whose cached digest may be out of date.
    stale: BTreeSet<u64>,
    /// Fast path: the page most recently marked stale (writes cluster).
    /// Reset whenever a refresh drains `stale`, so a write after a refresh
    /// to the same page re-marks it.
    last_stale: u64,
    /// Cumulative refresh counters.
    stats: HashStats,
}

impl DigestCache {
    /// A cache where every resident page is stale: the first refresh
    /// recomputes everything (the cold full rehash).
    fn cold(pages: &PageMap) -> Self {
        DigestCache {
            digests: HashMap::default(),
            acc: 0,
            stale: pages.keys().copied().collect(),
            last_stale: u64::MAX,
            stats: HashStats::default(),
        }
    }
}

/// Sparse, copy-on-write paged memory.
#[derive(Debug)]
pub struct Memory {
    pages: PageMap,
    /// Pages written since the last [`Memory::take_dirty`].
    dirty: BTreeSet<u64>,
    /// Fast path: the page most recently marked dirty (writes cluster).
    last_dirty: u64,
    /// Incremental digest cache; see [`DigestCache`].
    cache: Mutex<DigestCache>,
}

/// Cloning copies the digest cache, so a checkpoint inherits every cached
/// page digest for free — the clone's next [`Memory::state_digest`] pays
/// only for pages written since the source's last refresh.
impl Clone for Memory {
    fn clone(&self) -> Self {
        Memory {
            pages: self.pages.clone(),
            dirty: self.dirty.clone(),
            last_dirty: self.last_dirty,
            cache: Mutex::new(self.lock_cache().clone()),
        }
    }
}

impl Memory {
    /// Creates empty (all-zero) memory.
    pub fn new() -> Self {
        Memory {
            pages: PageMap::default(),
            dirty: BTreeSet::new(),
            last_dirty: u64::MAX,
            cache: Mutex::new(DigestCache::cold(&PageMap::default())),
        }
    }

    /// Poison-tolerant cache lock: a panicking verify worker (injected
    /// faults are caught with `catch_unwind`) must not wedge digests.
    fn lock_cache(&self) -> MutexGuard<'_, DigestCache> {
        self.cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: Word) -> u8 {
        match self.pages.get(&page_of(addr)) {
            Some(p) => p[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating or copying the page as needed.
    #[inline]
    pub fn write_u8(&mut self, addr: Word, value: u8) {
        let pno = page_of(addr);
        let page = self.pages.entry(pno).or_insert_with(zero_page);
        Arc::make_mut(page)[(addr % PAGE_SIZE) as usize] = value;
        self.mark_dirty(pno);
    }

    #[inline]
    fn mark_dirty(&mut self, pno: u64) {
        if self.last_dirty != pno {
            self.last_dirty = pno;
            self.dirty.insert(pno);
        }
        // `&mut self` makes the lock free; the stale fast path is tracked
        // separately from `last_dirty` because a digest refresh clears
        // staleness without clearing recorder dirt.
        let cache = match self.cache.get_mut() {
            Ok(c) => c,
            Err(poisoned) => poisoned.into_inner(),
        };
        if cache.last_stale != pno {
            cache.last_stale = pno;
            cache.stale.insert(pno);
        }
    }

    /// Reads `width` bytes little-endian, zero-extended to a word.
    /// Accesses may be unaligned and may straddle pages.
    pub fn read(&self, addr: Word, width: Width) -> Word {
        let n = width.bytes();
        // Fast path: access within one page.
        let off = (addr % PAGE_SIZE) as usize;
        if off as u64 + n <= PAGE_SIZE {
            if let Some(p) = self.pages.get(&page_of(addr)) {
                let mut buf = [0u8; 8];
                buf[..n as usize].copy_from_slice(&p[off..off + n as usize]);
                return u64::from_le_bytes(buf);
            }
            return 0;
        }
        let mut v: Word = 0;
        for i in 0..n {
            v |= (self.read_u8(addr.wrapping_add(i)) as Word) << (8 * i);
        }
        v
    }

    /// Writes the low `width` bytes of `value` little-endian.
    pub fn write(&mut self, addr: Word, value: Word, width: Width) {
        let n = width.bytes();
        let off = (addr % PAGE_SIZE) as usize;
        if off as u64 + n <= PAGE_SIZE {
            let pno = page_of(addr);
            let page = self.pages.entry(pno).or_insert_with(zero_page);
            let bytes = value.to_le_bytes();
            Arc::make_mut(page)[off..off + n as usize].copy_from_slice(&bytes[..n as usize]);
            self.mark_dirty(pno);
            return;
        }
        for i in 0..n {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Copies `out.len()` bytes out of guest memory into a caller-provided
    /// buffer, page by page. Unmapped ranges read as zero. This is the
    /// allocation-free variant for hot paths (syscall-payload hashing runs
    /// once per logged syscall per verify attempt); [`Memory::read_bytes`]
    /// is the convenience wrapper.
    pub fn read_into(&self, addr: Word, out: &mut [u8]) {
        let mut done = 0usize;
        while done < out.len() {
            let a = addr.wrapping_add(done as u64);
            let off = (a % PAGE_SIZE) as usize;
            let n = (PAGE_SIZE as usize - off).min(out.len() - done);
            match self.pages.get(&page_of(a)) {
                Some(p) => out[done..done + n].copy_from_slice(&p[off..off + n]),
                None => out[done..done + n].fill(0),
            }
            done += n;
        }
    }

    /// Copies `len` bytes out of guest memory.
    pub fn read_bytes(&self, addr: Word, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.read_into(addr, &mut out);
        out
    }

    /// Copies bytes into guest memory.
    pub fn write_bytes(&mut self, addr: Word, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Number of resident (allocated) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Returns and clears the set of pages written since the last call.
    /// Used by the recorder to charge checkpoint cost per epoch.
    pub fn take_dirty(&mut self) -> BTreeSet<u64> {
        self.last_dirty = u64::MAX;
        std::mem::take(&mut self.dirty)
    }

    /// Pages written since the last [`Memory::take_dirty`], without clearing.
    pub fn dirty(&self) -> &BTreeSet<u64> {
        &self.dirty
    }

    /// Digest of memory contents, computed incrementally: only pages
    /// written since the last call are re-hashed; everything else reuses
    /// its cached per-page digest. All-zero pages digest identically to
    /// unmapped pages, so zero-fill semantics cannot cause false
    /// divergence. Equal to [`Memory::state_digest_scratch`] always.
    pub fn state_digest(&self) -> u64 {
        if FULL_REHASH.load(Ordering::Relaxed) {
            return self.state_digest_scratch();
        }
        let mut cache = self.lock_cache();
        self.refresh(&mut cache);
        cache.acc
    }

    /// Re-digests every stale page, adjusting the commutative accumulator
    /// by the old and new per-page contributions.
    fn refresh(&self, cache: &mut DigestCache) {
        cache.last_stale = u64::MAX;
        let stale = std::mem::take(&mut cache.stale);
        let mut examined = 0u64;
        for pno in stale {
            examined += 1;
            let fresh = self
                .pages
                .get(&pno)
                .and_then(|p| page_digest(p, &mut cache.stats.hashed_pages));
            let old = match fresh {
                Some(d) => cache.digests.insert(pno, d),
                None => cache.digests.remove(&pno),
            };
            if let Some(d) = old {
                cache.acc = cache.acc.wrapping_sub(mix(pno, d));
            }
            if let Some(d) = fresh {
                cache.acc = cache.acc.wrapping_add(mix(pno, d));
            }
        }
        cache.stats.skipped_pages += (self.pages.len() as u64).saturating_sub(examined);
    }

    /// Digest of memory contents recomputed from scratch, ignoring (and
    /// not touching) the incremental cache. The correctness oracle for
    /// [`Memory::state_digest`] and the benchmark baseline.
    pub fn state_digest_scratch(&self) -> u64 {
        let mut hashed = 0u64;
        let mut acc = 0u64;
        for (&pno, page) in &self.pages {
            if let Some(d) = page_digest(page, &mut hashed) {
                acc = acc.wrapping_add(mix(pno, d));
            }
        }
        acc
    }

    /// Cumulative digest-cache counters: pages hashed vs. cache hits.
    pub fn hash_stats(&self) -> HashStats {
        self.lock_cache().stats
    }

    /// Finds the first byte address at which `self` and `other` differ, if
    /// any — the divergence-diagnostics path.
    pub fn first_difference(&self, other: &Memory) -> Option<Word> {
        let pnos: BTreeSet<u64> = self
            .pages
            .keys()
            .chain(other.pages.keys())
            .copied()
            .collect();
        let zero = zero_page();
        for pno in pnos {
            let a = self.pages.get(&pno).unwrap_or(&zero);
            let b = other.pages.get(&pno).unwrap_or(&zero);
            if Arc::ptr_eq(a, b) {
                continue;
            }
            for i in 0..PAGE_SIZE as usize {
                if a[i] != b[i] {
                    return Some(pno * PAGE_SIZE + i as u64);
                }
            }
        }
        None
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

/// Wire encoding: pages as sorted `(page_no, raw 4096 bytes)` pairs (so the
/// `Arc` sharing is transparent to the format), then the dirty set. The
/// `last_dirty` fast path and the digest cache are reset on decode — a
/// decoded memory pays one cold full rehash on its first digest.
impl Wire for Memory {
    fn put(&self, out: &mut Vec<u8>) {
        let mut pnos: Vec<u64> = self.pages.keys().copied().collect();
        pnos.sort_unstable();
        put_varint(out, pnos.len() as u64);
        for pno in pnos {
            pno.put(out);
            out.extend_from_slice(&self.pages[&pno][..]);
        }
        self.dirty.put(out);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let count = usize::get(r)?;
        let mut pages = PageMap::default();
        for _ in 0..count {
            let pno = u64::get(r)?;
            let raw = r.take(PAGE_SIZE as usize, "memory page")?;
            if raw.iter().all(|&b| b == 0) {
                // Intern resident zero pages to the shared zero `Arc`:
                // re-encoding is byte-identical, and digests skip them by
                // pointer identity instead of a byte scan.
                pages.insert(pno, zero_page());
                continue;
            }
            let mut page = [0u8; PAGE_SIZE as usize];
            page.copy_from_slice(raw);
            pages.insert(pno, Arc::new(page));
        }
        let dirty = <BTreeSet<u64> as Wire>::get(r)?;
        let cache = Mutex::new(DigestCache::cold(&pages));
        Ok(Memory {
            pages,
            dirty,
            last_dirty: u64::MAX,
            cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that either flip the process-wide
    /// [`set_full_rehash`] knob or assert exact cache-counter values (a
    /// concurrently enabled knob would bypass the cache and skew counts).
    static KNOB: Mutex<()> = Mutex::new(());

    #[test]
    fn zero_fill_reads() {
        let m = Memory::new();
        assert_eq!(m.read(0xdead_beef, Width::W8), 0);
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_write_roundtrip_all_widths() {
        let mut m = Memory::new();
        for (w, v) in [
            (Width::W1, 0xabu64),
            (Width::W2, 0xabcd),
            (Width::W4, 0xdead_beef),
            (Width::W8, 0x0123_4567_89ab_cdef),
        ] {
            m.write(0x2000, v, w);
            assert_eq!(m.read(0x2000, w), v);
        }
    }

    #[test]
    fn truncation_on_narrow_write() {
        let mut m = Memory::new();
        m.write(0x100, u64::MAX, Width::W8);
        m.write(0x100, 0, Width::W1);
        assert_eq!(m.read(0x100, Width::W8), !0xff);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 3; // straddles page 0 and 1
        m.write(addr, 0x1122_3344_5566_7788, Width::W8);
        assert_eq!(m.read(addr, Width::W8), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn cow_snapshot_isolation() {
        let mut a = Memory::new();
        a.write(0x1000, 7, Width::W8);
        let snap = a.clone();
        a.write(0x1000, 9, Width::W8);
        assert_eq!(snap.read(0x1000, Width::W8), 7);
        assert_eq!(a.read(0x1000, Width::W8), 9);
    }

    #[test]
    fn dirty_tracking() {
        let mut m = Memory::new();
        m.write(0x1000, 1, Width::W8);
        m.write(0x1008, 2, Width::W8);
        m.write(PAGE_SIZE * 5, 3, Width::W1);
        let dirty = m.take_dirty();
        assert_eq!(dirty.len(), 2);
        assert!(m.take_dirty().is_empty());
        m.write(0x1000, 4, Width::W8);
        assert_eq!(m.take_dirty().len(), 1);
    }

    #[test]
    fn hash_ignores_zero_pages() {
        let mut a = Memory::new();
        let b = Memory::new();
        a.write(0x5000, 1, Width::W8);
        a.write(0x5000, 0, Width::W8); // page now all-zero again
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.state_digest_scratch(), b.state_digest_scratch());
    }

    #[test]
    fn incremental_digest_matches_scratch() {
        let mut m = Memory::new();
        assert_eq!(m.state_digest(), m.state_digest_scratch());
        m.write(0x1000, 7, Width::W8);
        m.write(PAGE_SIZE * 9, 0xff, Width::W1);
        assert_eq!(m.state_digest(), m.state_digest_scratch());
        // Mutating after a refresh must re-stale the page even though the
        // dirty fast path still points at it.
        m.write(0x1000, 8, Width::W8);
        assert_eq!(m.state_digest(), m.state_digest_scratch());
        // take_dirty must not clear digest staleness.
        m.write(0x2000, 3, Width::W4);
        m.take_dirty();
        assert_eq!(m.state_digest(), m.state_digest_scratch());
    }

    #[test]
    fn clones_inherit_the_digest_cache() {
        let _serial = KNOB.lock().unwrap_or_else(|p| p.into_inner());
        let mut m = Memory::new();
        m.write_bytes(0x4000, b"checkpointed");
        m.state_digest(); // warm
        let hashed_before = m.hash_stats().hashed_pages;
        let snap = m.clone();
        // The clone's digest is served entirely from the inherited cache.
        assert_eq!(snap.state_digest(), m.state_digest_scratch());
        assert_eq!(snap.hash_stats().hashed_pages, hashed_before);
        // Writes diverge the two digests independently and correctly.
        let mut snap = snap;
        snap.write(0x4000, 0xaa, Width::W1);
        m.write(0x8000, 0xbb, Width::W1);
        assert_eq!(snap.state_digest(), snap.state_digest_scratch());
        assert_eq!(m.state_digest(), m.state_digest_scratch());
        assert_ne!(m.state_digest(), snap.state_digest());
    }

    #[test]
    fn digest_refresh_is_proportional_to_writes() {
        let _serial = KNOB.lock().unwrap_or_else(|p| p.into_inner());
        let mut m = Memory::new();
        for p in 0..64u64 {
            m.write(p * PAGE_SIZE, p + 1, Width::W8);
        }
        m.state_digest(); // cold rehash: 64 pages
        assert_eq!(m.hash_stats().hashed_pages, 64);
        m.write(5 * PAGE_SIZE, 99, Width::W8);
        m.state_digest();
        let stats = m.hash_stats();
        assert_eq!(stats.hashed_pages, 65, "only the written page re-hashed");
        assert_eq!(stats.skipped_pages, 63, "the other 63 served from cache");
    }

    #[test]
    fn full_rehash_knob_preserves_the_digest_value() {
        let _serial = KNOB.lock().unwrap_or_else(|p| p.into_inner());
        let mut m = Memory::new();
        m.write_bytes(0x7000, &[1, 2, 3]);
        let incremental = m.state_digest();
        set_full_rehash(true);
        let forced = m.state_digest();
        set_full_rehash(false);
        assert_eq!(incremental, forced);
    }

    #[test]
    fn decoded_memory_digests_identically() {
        let mut m = Memory::new();
        m.write_bytes(0x3000, b"roundtrip");
        m.write(0x6000, 1, Width::W8);
        m.write(0x6000, 0, Width::W8); // resident all-zero page
        let warm = m.state_digest();
        let bytes = dp_support::wire::to_bytes(&m);
        let back: Memory = dp_support::wire::from_bytes(&bytes).unwrap();
        assert_eq!(back.state_digest(), warm);
        // Re-encoding after the zero-page interning is byte-identical.
        assert_eq!(dp_support::wire::to_bytes(&back), bytes);
    }

    #[test]
    fn first_difference_finds_exact_byte() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.write_bytes(0x3000, b"hello world");
        b.write_bytes(0x3000, b"hello_world");
        assert_eq!(a.first_difference(&b), Some(0x3005));
        assert_eq!(a.first_difference(&a.clone()), None);
    }

    #[test]
    fn first_difference_vs_unmapped() {
        let mut a = Memory::new();
        a.write(0x9000, 0xff, Width::W1);
        let b = Memory::new();
        assert_eq!(a.first_difference(&b), Some(0x9000));
        assert_eq!(b.first_difference(&a), Some(0x9000));
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(PAGE_SIZE - 100, &data);
        assert_eq!(m.read_bytes(PAGE_SIZE - 100, 256), data);
    }

    #[test]
    fn read_into_spans_pages_and_holes() {
        let mut m = Memory::new();
        // Map pages 0 and 2, leave page 1 unmapped: the read must splice
        // mapped bytes around an all-zero hole.
        m.write_bytes(PAGE_SIZE - 4, &[1, 2, 3, 4]);
        m.write_bytes(2 * PAGE_SIZE, &[5, 6]);
        let len = (2 * PAGE_SIZE + 2 - (PAGE_SIZE - 4)) as usize;
        let mut buf = vec![0xaa; len];
        m.read_into(PAGE_SIZE - 4, &mut buf);
        assert_eq!(&buf[..4], &[1, 2, 3, 4]);
        assert!(buf[4..len - 2].iter().all(|&b| b == 0));
        assert_eq!(&buf[len - 2..], &[5, 6]);
        assert_eq!(m.read_bytes(PAGE_SIZE - 4, len), buf);
    }
}
