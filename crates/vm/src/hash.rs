//! FNV-1a hashing used for state digests.
//!
//! DoublePlay detects divergence between the epoch-parallel execution and the
//! thread-parallel execution by comparing digests of entire machine states at
//! epoch boundaries, so the hash must be deterministic across platforms and
//! cheap to compute over page-sized buffers. FNV-1a over explicit field
//! encodings satisfies both; it is *not* cryptographic (an adversarial guest
//! is out of scope, as in the paper).

/// A 64-bit FNV-1a hasher with helpers for the field types state digests use.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// Creates a hasher in the standard initial state.
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s ^= b as u64;
            s = s.wrapping_mul(FNV_PRIME);
        }
        self.state = s;
    }

    /// Absorbs a `u64` in little-endian byte order.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u32` in little-endian byte order.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Returns the digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience: hash a byte slice in one call.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(hash_bytes(b""), 0xcbf29ce484222325);
        assert_eq!(hash_bytes(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(hash_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_encoding_is_order_sensitive() {
        let mut a = Fnv1a::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn u64_equals_bytes() {
        let mut a = Fnv1a::new();
        a.write_u64(0x0123_4567_89ab_cdef);
        let mut b = Fnv1a::new();
        b.write_bytes(&[0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01]);
        assert_eq!(a.finish(), b.finish());
    }
}
