//! Programs: collections of functions plus static data, the immutable "text
//! segment" shared by every execution of a workload.

use crate::instr::Instr;
use crate::value::Word;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Returns the id as a `usize` for indexing the function table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

dp_support::impl_wire_newtype!(FuncId);

/// Start of the static data / globals region.
pub const GLOBAL_BASE: Word = 0x0000_1000;
/// Start of the heap region managed by the kernel's `SBRK`.
pub const HEAP_BASE: Word = 0x1000_0000;
/// Base of the per-thread stack area.
pub const STACK_BASE: Word = 0x7000_0000;
/// Size reserved for each thread's stack.
pub const STACK_SIZE: Word = 64 * 1024;

/// Returns the initial stack pointer for a thread (stacks grow downward; the
/// top is inset by 16 bytes of red zone).
pub fn initial_sp(tid_index: usize) -> Word {
    STACK_BASE + (tid_index as Word + 1) * STACK_SIZE - 16
}

/// A function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Human-readable name (used by the disassembler and error messages).
    pub name: String,
    /// Instruction sequence. Execution falling off the end faults, so every
    /// path must end in `Ret`, a jump, or an exit syscall.
    pub code: Vec<Instr>,
}

/// A chunk of static data copied into memory before execution starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// Destination address.
    pub addr: Word,
    /// Bytes to copy.
    pub bytes: Vec<u8>,
}

/// A complete program: the unit loaded into a [`crate::Machine`].
///
/// Programs are immutable once built and shared via `Arc` between the many
/// executions DoublePlay runs (thread-parallel, epoch-parallel, replay).
/// Build one with [`crate::builder::ProgramBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    functions: Vec<Function>,
    entry: FuncId,
    data: Vec<DataSegment>,
    symbols: BTreeMap<String, Word>,
}

impl Program {
    /// Creates a program from parts. Prefer [`crate::builder::ProgramBuilder`].
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range.
    pub fn new(
        functions: Vec<Function>,
        entry: FuncId,
        data: Vec<DataSegment>,
        symbols: BTreeMap<String, Word>,
    ) -> Self {
        assert!(
            entry.index() < functions.len(),
            "entry {entry} out of range ({} functions)",
            functions.len()
        );
        Program {
            functions,
            entry,
            data,
            symbols,
        }
    }

    /// The function executed by thread 0.
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// Looks up a function body.
    pub fn function(&self, id: FuncId) -> Option<&Function> {
        self.functions.get(id.index())
    }

    /// All functions, in id order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Finds a function id by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Static data segments.
    pub fn data(&self) -> &[DataSegment] {
        &self.data
    }

    /// The address of a named global, if defined.
    pub fn symbol(&self, name: &str) -> Option<Word> {
        self.symbols.get(name).copied()
    }

    /// All named globals.
    pub fn symbols(&self) -> &BTreeMap<String, Word> {
        &self.symbols
    }

    /// Total number of instructions across all functions.
    pub fn instruction_count(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }

    /// A stable content hash of the program, used to pair recordings with
    /// the program they recorded.
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::hash::Fnv1a::new();
        for f in &self.functions {
            h.write_bytes(f.name.as_bytes());
            for instr in &f.code {
                // Debug formatting is stable for our own enum and avoids a
                // bespoke binary encoding just for hashing.
                h.write_bytes(format!("{instr:?}").as_bytes());
            }
        }
        for d in &self.data {
            h.write_u64(d.addr);
            h.write_bytes(&d.bytes);
        }
        h.write_u64(self.entry.0 as u64);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    fn tiny() -> Program {
        Program::new(
            vec![Function {
                name: "main".into(),
                code: vec![Instr::Ret],
            }],
            FuncId(0),
            vec![DataSegment {
                addr: GLOBAL_BASE,
                bytes: vec![1, 2, 3],
            }],
            BTreeMap::from([("g".to_string(), GLOBAL_BASE)]),
        )
    }

    #[test]
    fn lookup_by_name_and_id() {
        let p = tiny();
        assert_eq!(p.function_by_name("main"), Some(FuncId(0)));
        assert_eq!(p.function_by_name("nope"), None);
        assert!(p.function(FuncId(0)).is_some());
        assert!(p.function(FuncId(1)).is_none());
        assert_eq!(p.symbol("g"), Some(GLOBAL_BASE));
        assert_eq!(p.symbol("h"), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_entry_panics() {
        Program::new(vec![], FuncId(0), vec![], BTreeMap::new());
    }

    #[test]
    fn content_hash_changes_with_code() {
        let a = tiny();
        let mut b = tiny();
        assert_eq!(a.content_hash(), b.content_hash());
        b = Program::new(
            vec![Function {
                name: "main".into(),
                code: vec![Instr::Nop, Instr::Ret],
            }],
            FuncId(0),
            b.data().to_vec(),
            b.symbols().clone(),
        );
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn stacks_do_not_overlap() {
        let top0 = initial_sp(0);
        let top1 = initial_sp(1);
        assert!(top1 - top0 == STACK_SIZE);
        assert!(top0 > STACK_BASE);
        assert_eq!(tiny().instruction_count(), 1);
    }
}
