//! Fundamental value types shared across the VM: machine words, register
//! names, thread identifiers, and operand widths.

use std::fmt;

/// A machine word. The VM is a 64-bit machine: registers, addresses and
/// immediate values are all `Word`s.
pub type Word = u64;

/// Number of general-purpose registers per frame.
pub const NUM_REGS: usize = 32;

/// Registers carrying call arguments (`r0..r7`).
pub const ARG_REGS: usize = 8;

/// Registers carrying return values back to the caller (`r0..r1`).
pub const RET_REGS: usize = 2;

/// First of the "thread registers" (`r28..r31`) which are propagated both
/// into a callee frame and back to the caller on return. By convention `r31`
/// is the stack pointer.
pub const THREAD_REG_BASE: usize = 28;

/// Conventional stack-pointer register (`r31`).
pub const SP: Reg = Reg(31);

/// A register name (`r0` .. `r31`).
///
/// Registers are per-frame: every `Call` gives the callee a fresh register
/// file (see the ABI description on [`crate::Machine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Returns the register index as a `usize`, for indexing register files.
    ///
    /// # Panics
    ///
    /// Panics if the register number is out of range (>= [`NUM_REGS`]).
    #[inline]
    pub fn index(self) -> usize {
        let i = self.0 as usize;
        assert!(i < NUM_REGS, "register r{} out of range", self.0);
        i
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u8> for Reg {
    fn from(v: u8) -> Self {
        Reg(v)
    }
}

/// An instruction operand: either a register or a sign-extended immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// Read the operand from a register.
    Reg(Reg),
    /// Use the immediate value (sign-extended to 64 bits).
    Imm(i64),
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(v) => write!(f, "{v}"),
        }
    }
}

impl From<Reg> for Src {
    fn from(r: Reg) -> Self {
        Src::Reg(r)
    }
}

impl From<i64> for Src {
    fn from(v: i64) -> Self {
        Src::Imm(v)
    }
}

impl From<u32> for Src {
    fn from(v: u32) -> Self {
        Src::Imm(v as i64)
    }
}

/// Width of a memory access in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    W1,
    /// 2 bytes.
    W2,
    /// 4 bytes.
    W4,
    /// 8 bytes (a full word).
    W8,
}

impl Width {
    /// Number of bytes covered by this width.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            Width::W1 => 1,
            Width::W2 => 2,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }

    /// Truncates `value` to this width (zero-extending back to a `Word`).
    #[inline]
    pub fn truncate(self, value: Word) -> Word {
        match self {
            Width::W1 => value & 0xff,
            Width::W2 => value & 0xffff,
            Width::W4 => value & 0xffff_ffff,
            Width::W8 => value,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bytes())
    }
}

/// A thread identifier within one [`crate::Machine`].
///
/// Thread ids are dense, deterministic, and never reused: the first thread is
/// `Tid(0)` and each spawn allocates the next integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tid(pub u32);

impl Tid {
    /// Returns the id as a `usize` for indexing thread tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u32> for Tid {
    fn from(v: u32) -> Self {
        Tid(v)
    }
}

dp_support::impl_wire_newtype!(Reg);
dp_support::impl_wire_newtype!(Tid);
dp_support::impl_wire_enum!(Width { 1 => W1, 2 => W2, 4 => W4, 8 => W8 });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_truncation() {
        assert_eq!(Width::W1.truncate(0x1ff), 0xff);
        assert_eq!(Width::W2.truncate(0x1_ffff), 0xffff);
        assert_eq!(Width::W4.truncate(0x1_ffff_ffff), 0xffff_ffff);
        assert_eq!(Width::W8.truncate(u64::MAX), u64::MAX);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::W1.bytes(), 1);
        assert_eq!(Width::W2.bytes(), 2);
        assert_eq!(Width::W4.bytes(), 4);
        assert_eq!(Width::W8.bytes(), 8);
    }

    #[test]
    fn reg_display_and_index() {
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(Reg(31).index(), 31);
        assert_eq!(SP, Reg(31));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_index_out_of_range_panics() {
        Reg(32).index();
    }

    #[test]
    fn src_conversions() {
        assert_eq!(Src::from(Reg(3)), Src::Reg(Reg(3)));
        assert_eq!(Src::from(-5i64), Src::Imm(-5));
        assert_eq!(Src::Imm(42).to_string(), "42");
        assert_eq!(Src::Reg(Reg(2)).to_string(), "r2");
    }

    #[test]
    fn tid_ordering_is_dense() {
        assert!(Tid(0) < Tid(1));
        assert_eq!(Tid(4).index(), 4);
        assert_eq!(Tid(9).to_string(), "t9");
    }
}
