//! The VM instruction set.
//!
//! The ISA is a compact register machine: arithmetic and comparisons over
//! 64-bit registers, little-endian loads/stores of 1/2/4/8 bytes, atomic
//! read-modify-write operations, structured control flow within a function,
//! calls between functions, and a `Syscall` trap into the host kernel.
//!
//! Every instruction executes atomically with respect to other threads: the
//! interpreter interleaves threads only *between* instructions, which is what
//! lets a single-processor schedule log fully determine an execution.

use crate::program::FuncId;
use crate::value::{Reg, Src, Width};

/// Binary operations for [`Instr::Bin`].
///
/// Comparison operators produce `1` for true and `0` for false. Shift counts
/// are taken modulo 64. Signed variants interpret their operands as `i64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division. Division by zero faults.
    Divu,
    /// Unsigned remainder. Division by zero faults.
    Remu,
    /// Signed division. Division by zero faults; `i64::MIN / -1` wraps.
    Divs,
    /// Signed remainder. Division by zero faults; `i64::MIN % -1` is `0`.
    Rems,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left (count mod 64).
    Shl,
    /// Logical shift right (count mod 64).
    Shr,
    /// Arithmetic shift right (count mod 64).
    Sar,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned less-or-equal.
    Leu,
    /// Signed less-than.
    Lts,
    /// Signed less-or-equal.
    Les,
    /// Unsigned minimum.
    Minu,
    /// Unsigned maximum.
    Maxu,
}

impl BinOp {
    /// Evaluates the operation on two words.
    ///
    /// Returns `None` for division or remainder by zero (the interpreter
    /// turns this into a [`crate::Fault::DivideByZero`]).
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> Option<u64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Divu => {
                if b == 0 {
                    return None;
                }
                a / b
            }
            BinOp::Remu => {
                if b == 0 {
                    return None;
                }
                a % b
            }
            BinOp::Divs => {
                if b == 0 {
                    return None;
                }
                (a as i64).wrapping_div(b as i64) as u64
            }
            BinOp::Rems => {
                if b == 0 {
                    return None;
                }
                (a as i64).wrapping_rem(b as i64) as u64
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32),
            BinOp::Shr => a.wrapping_shr(b as u32),
            BinOp::Sar => ((a as i64).wrapping_shr(b as u32)) as u64,
            BinOp::Eq => (a == b) as u64,
            BinOp::Ne => (a != b) as u64,
            BinOp::Ltu => (a < b) as u64,
            BinOp::Leu => (a <= b) as u64,
            BinOp::Lts => ((a as i64) < (b as i64)) as u64,
            BinOp::Les => ((a as i64) <= (b as i64)) as u64,
            BinOp::Minu => a.min(b),
            BinOp::Maxu => a.max(b),
        })
    }

    /// Mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Divu => "divu",
            BinOp::Remu => "remu",
            BinOp::Divs => "divs",
            BinOp::Rems => "rems",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Sar => "sar",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Ltu => "ltu",
            BinOp::Leu => "leu",
            BinOp::Lts => "lts",
            BinOp::Les => "les",
            BinOp::Minu => "minu",
            BinOp::Maxu => "maxu",
        }
    }
}

/// Unary operations for [`Instr::Un`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
}

impl UnOp {
    /// Evaluates the operation.
    #[inline]
    pub fn eval(self, a: u64) -> u64 {
        match self {
            UnOp::Not => !a,
            UnOp::Neg => a.wrapping_neg(),
        }
    }

    /// Mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Not => "not",
            UnOp::Neg => "neg",
        }
    }
}

/// A single VM instruction.
///
/// Control-flow targets (`Jmp`, `Jz`, `Jnz`) are indices into the containing
/// function's instruction vector; the [`crate::builder::FunctionBuilder`]
/// resolves symbolic labels to these indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operand fields are described in each variant's doc
pub enum Instr {
    /// `dst = imm` — load a 64-bit constant.
    Const { dst: Reg, imm: u64 },
    /// `dst = src` — register or immediate move.
    Mov { dst: Reg, src: Src },
    /// `dst = a <op> b`.
    Bin { op: BinOp, dst: Reg, a: Reg, b: Src },
    /// `dst = <op> a`.
    Un { op: UnOp, dst: Reg, a: Reg },
    /// `dst = mem[addr + offset]` (zero-extended, little-endian).
    Load {
        dst: Reg,
        addr: Reg,
        offset: i64,
        width: Width,
    },
    /// `mem[addr + offset] = src` (truncated to `width`).
    Store {
        src: Reg,
        addr: Reg,
        offset: i64,
        width: Width,
    },
    /// Atomic compare-and-swap on a 64-bit word:
    /// `dst = mem[addr]; if dst == expected { mem[addr] = new }`.
    Cas {
        dst: Reg,
        addr: Reg,
        expected: Reg,
        new: Reg,
    },
    /// Atomic fetch-and-add on a 64-bit word: `dst = mem[addr]; mem[addr] += val`.
    FetchAdd { dst: Reg, addr: Reg, val: Src },
    /// Atomic exchange on a 64-bit word: `dst = mem[addr]; mem[addr] = val`.
    Swap { dst: Reg, addr: Reg, val: Reg },
    /// Unconditional jump within the current function.
    Jmp { target: u32 },
    /// Jump if `cond != 0`.
    Jnz { cond: Reg, target: u32 },
    /// Jump if `cond == 0`.
    Jz { cond: Reg, target: u32 },
    /// Call a function. The callee receives a fresh register file with
    /// `r0..r7` copied from the caller and the thread registers (`r28..r31`)
    /// inherited.
    Call { func: FuncId },
    /// Call the function whose id is in a register (for function tables).
    CallIndirect { func: Reg },
    /// Return to the caller, copying `r0..r1` and `r28..r31` back. Returning
    /// from a thread's bottom frame exits the thread with `r0` as its exit
    /// value.
    Ret,
    /// Trap into the host kernel. Arguments are taken from `r0..r5`; the
    /// kernel's result is written to `r0` when the call completes.
    Syscall { num: u32 },
    /// Do nothing (placeholder / alignment).
    Nop,
}

impl Instr {
    /// True for instructions that read or write memory (used by access
    /// observers and the CREW baseline to know which instructions can fault).
    pub fn touches_memory(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::Cas { .. }
                | Instr::FetchAdd { .. }
                | Instr::Swap { .. }
        )
    }

    /// True for atomic read-modify-write instructions.
    pub fn is_atomic(&self) -> bool {
        matches!(
            self,
            Instr::Cas { .. } | Instr::FetchAdd { .. } | Instr::Swap { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(BinOp::Add.eval(u64::MAX, 1), Some(0));
        assert_eq!(BinOp::Sub.eval(0, 1), Some(u64::MAX));
        assert_eq!(BinOp::Mul.eval(u64::MAX, 2), Some(u64::MAX - 1));
    }

    #[test]
    fn division_by_zero_is_none() {
        assert_eq!(BinOp::Divu.eval(5, 0), None);
        assert_eq!(BinOp::Remu.eval(5, 0), None);
        assert_eq!(BinOp::Divs.eval(5, 0), None);
        assert_eq!(BinOp::Rems.eval(5, 0), None);
    }

    #[test]
    fn signed_division_edge_cases() {
        let min = i64::MIN as u64;
        assert_eq!(BinOp::Divs.eval(min, u64::MAX), Some(min)); // MIN / -1 wraps
        assert_eq!(BinOp::Rems.eval(min, u64::MAX), Some(0));
        assert_eq!(BinOp::Divs.eval((-7i64) as u64, 2), Some((-3i64) as u64));
    }

    #[test]
    fn comparisons_are_boolean() {
        assert_eq!(BinOp::Ltu.eval(1, 2), Some(1));
        assert_eq!(BinOp::Ltu.eval(2, 1), Some(0));
        assert_eq!(BinOp::Lts.eval((-1i64) as u64, 0), Some(1));
        assert_eq!(BinOp::Ltu.eval((-1i64) as u64, 0), Some(0));
        assert_eq!(BinOp::Eq.eval(3, 3), Some(1));
        assert_eq!(BinOp::Ne.eval(3, 3), Some(0));
    }

    #[test]
    fn shifts_mask_count() {
        assert_eq!(BinOp::Shl.eval(1, 64), Some(1)); // count mod 64
        assert_eq!(BinOp::Shr.eval(0x80, 4), Some(8));
        assert_eq!(BinOp::Sar.eval((-8i64) as u64, 1), Some((-4i64) as u64));
    }

    #[test]
    fn unary_ops() {
        assert_eq!(UnOp::Not.eval(0), u64::MAX);
        assert_eq!(UnOp::Neg.eval(1), u64::MAX);
        assert_eq!(UnOp::Neg.eval(0), 0);
    }

    #[test]
    fn memory_classification() {
        let load = Instr::Load {
            dst: Reg(0),
            addr: Reg(1),
            offset: 0,
            width: Width::W8,
        };
        assert!(load.touches_memory());
        assert!(!load.is_atomic());
        let cas = Instr::Cas {
            dst: Reg(0),
            addr: Reg(1),
            expected: Reg(2),
            new: Reg(3),
        };
        assert!(cas.touches_memory());
        assert!(cas.is_atomic());
        assert!(!Instr::Nop.touches_memory());
    }

    #[test]
    fn min_max() {
        assert_eq!(BinOp::Minu.eval(3, 9), Some(3));
        assert_eq!(BinOp::Maxu.eval(3, 9), Some(9));
    }
}
