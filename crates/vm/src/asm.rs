//! A textual assembly format for VM programs: parse `.tasm` text into a
//! [`Program`], and dump any program back to parseable text.
//!
//! The format mirrors the disassembler's mnemonics:
//!
//! ```text
//! ; tiny guest
//! .global counter 8
//! .data banner "hi\n"
//!
//! func main {
//!     const r9, counter
//!     const r1, 0
//! loop:
//!     add r1, r1, 1
//!     ltu r2, r1, 10
//!     jnz r2, loop
//!     store8 [r9+0], r1
//!     call helper
//!     syscall 0
//! }
//!
//! func helper {
//!     ret
//! }
//! ```
//!
//! Numeric literals are decimal or `0x` hex; named globals are usable as
//! immediates anywhere a number is. Jump targets are `label:` definitions
//! within the function. [`program_to_asm`] emits text that reparses into a
//! structurally identical program (the roundtrip property the test suite
//! checks).

use crate::builder::{FunctionBuilder, Label, ProgramBuilder};
use crate::instr::{BinOp, Instr, UnOp};
use crate::program::Program;
use crate::value::{Reg, Src, Width};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parse failure, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// Line the error was found on.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "asm error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn binop_of(m: &str) -> Option<BinOp> {
    Some(match m {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "divu" => BinOp::Divu,
        "remu" => BinOp::Remu,
        "divs" => BinOp::Divs,
        "rems" => BinOp::Rems,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "sar" => BinOp::Sar,
        "eq" => BinOp::Eq,
        "ne" => BinOp::Ne,
        "ltu" => BinOp::Ltu,
        "leu" => BinOp::Leu,
        "lts" => BinOp::Lts,
        "les" => BinOp::Les,
        "minu" => BinOp::Minu,
        "maxu" => BinOp::Maxu,
        _ => return None,
    })
}

fn width_of(suffix: &str) -> Option<Width> {
    Some(match suffix {
        "1" => Width::W1,
        "2" => Width::W2,
        "4" => Width::W4,
        "8" => Width::W8,
        _ => return None,
    })
}

struct Ctx<'a> {
    line: usize,
    symbols: &'a BTreeMap<String, u64>,
}

impl Ctx<'_> {
    fn reg(&self, tok: &str) -> Result<Reg, AsmError> {
        let n = tok
            .strip_prefix('r')
            .and_then(|s| s.parse::<u8>().ok())
            .filter(|&n| n < 32)
            .ok_or_else(|| err(self.line, format!("expected register, got `{tok}`")))?;
        Ok(Reg(n))
    }

    fn imm(&self, tok: &str) -> Result<i64, AsmError> {
        if let Some(&addr) = self.symbols.get(tok) {
            return Ok(addr as i64);
        }
        let (neg, body) = match tok.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, tok),
        };
        let v = if let Some(hex) = body.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
                .map_err(|_| err(self.line, format!("bad number `{tok}`")))?
        } else {
            body.parse::<u64>()
                .map_err(|_| err(self.line, format!("bad number `{tok}`")))?
        };
        Ok(if neg { -(v as i64) } else { v as i64 })
    }

    fn src(&self, tok: &str) -> Result<Src, AsmError> {
        if tok.starts_with('r') && tok[1..].chars().all(|c| c.is_ascii_digit()) {
            Ok(Src::Reg(self.reg(tok)?))
        } else {
            Ok(Src::Imm(self.imm(tok)?))
        }
    }

    /// Parses `[rN+OFF]` / `[rN-OFF]` / `[rN]` into (reg, offset).
    fn mem(&self, tok: &str) -> Result<(Reg, i64), AsmError> {
        let inner = tok
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| err(self.line, format!("expected [reg+off], got `{tok}`")))?;
        if let Some(plus) = inner.find('+') {
            Ok((self.reg(&inner[..plus])?, self.imm(&inner[plus + 1..])?))
        } else if let Some(minus) = inner[1..].find('-') {
            let minus = minus + 1;
            Ok((self.reg(&inner[..minus])?, -self.imm(&inner[minus + 1..])?))
        } else {
            Ok((self.reg(inner)?, 0))
        }
    }
}

/// Unescapes a `"..."` string literal (supports `\n`, `\t`, `\\`, `\"`,
/// `\xNN`).
fn unescape(line: usize, lit: &str) -> Result<Vec<u8>, AsmError> {
    let inner = lit
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| err(line, "expected string literal"))?;
    let mut out = Vec::new();
    let bytes = inner.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' {
            i += 1;
            match bytes.get(i) {
                Some(b'n') => out.push(b'\n'),
                Some(b't') => out.push(b'\t'),
                Some(b'\\') => out.push(b'\\'),
                Some(b'"') => out.push(b'"'),
                Some(b'x') => {
                    let hex = inner
                        .get(i + 1..i + 3)
                        .ok_or_else(|| err(line, "truncated \\x escape"))?;
                    out.push(u8::from_str_radix(hex, 16).map_err(|_| err(line, "bad \\x escape"))?);
                    i += 2;
                }
                _ => return Err(err(line, "unknown escape")),
            }
        } else {
            out.push(bytes[i]);
        }
        i += 1;
    }
    Ok(out)
}

fn escape(bytes: &[u8]) -> String {
    let mut out = String::from("\"");
    for &b in bytes {
        match b {
            b'\n' => out.push_str("\\n"),
            b'\t' => out.push_str("\\t"),
            b'\\' => out.push_str("\\\\"),
            b'"' => out.push_str("\\\""),
            0x20..=0x7e => out.push(b as char),
            _ => {
                let _ = write!(out, "\\x{b:02x}");
            }
        }
    }
    out.push('"');
    out
}

/// Assembles `.tasm` source into a [`Program`] whose entry is `main`.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut pb = ProgramBuilder::new();
    let mut symbols: BTreeMap<String, u64> = BTreeMap::new();

    // First, collect function names and directives so forward references
    // and symbol immediates resolve.
    #[derive(Debug)]
    enum Piece<'a> {
        Func {
            name: &'a str,
            body: Vec<(usize, &'a str)>,
        },
    }
    let mut pieces: Vec<Piece<'_>> = Vec::new();
    let mut current: Option<(&str, Vec<(usize, &str)>)> = None;
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".global") {
            let mut parts = rest.split_whitespace();
            let (name, size) = (parts.next(), parts.next());
            let (Some(name), Some(size)) = (name, size) else {
                return Err(err(line_no, ".global needs a name and a size"));
            };
            let size: u64 = size.parse().map_err(|_| err(line_no, "bad .global size"))?;
            let addr = pb.global(name, size);
            symbols.insert(name.to_string(), addr);
            continue;
        }
        if let Some(rest) = line.strip_prefix(".dataat") {
            let rest = rest.trim_start();
            let (addr, lit) = rest
                .split_once(' ')
                .ok_or_else(|| err(line_no, ".dataat needs an address and a string"))?;
            let addr = if let Some(hex) = addr.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).map_err(|_| err(line_no, "bad .dataat address"))?
            } else {
                addr.parse()
                    .map_err(|_| err(line_no, "bad .dataat address"))?
            };
            let bytes = unescape(line_no, lit.trim())?;
            pb.data_at(addr, &bytes);
            continue;
        }
        if let Some(rest) = line.strip_prefix(".data") {
            let rest = rest.trim_start();
            let (name, lit) = rest
                .split_once(' ')
                .ok_or_else(|| err(line_no, ".data needs a name and a string"))?;
            let bytes = unescape(line_no, lit.trim())?;
            let addr = pb.global_data(name, &bytes);
            symbols.insert(name.to_string(), addr);
            continue;
        }
        if let Some(rest) = line.strip_prefix("func") {
            if current.is_some() {
                return Err(err(line_no, "nested func"));
            }
            let name = rest.trim().trim_end_matches('{').trim();
            if name.is_empty() {
                return Err(err(line_no, "func needs a name"));
            }
            current = Some((name, Vec::new()));
            continue;
        }
        if line == "}" {
            let (name, body) = current
                .take()
                .ok_or_else(|| err(line_no, "`}` without func"))?;
            pieces.push(Piece::Func { name, body });
            continue;
        }
        match &mut current {
            Some((_, body)) => body.push((line_no, line)),
            None => return Err(err(line_no, format!("statement outside func: `{line}`"))),
        }
    }
    if current.is_some() {
        return Err(err(source.lines().count(), "unterminated func"));
    }

    // Declare all functions first (forward calls), then emit bodies.
    for piece in &pieces {
        let Piece::Func { name, .. } = piece;
        pb.declare(name);
    }
    for piece in &pieces {
        let Piece::Func { name, body } = piece;
        let mut f = pb.function(name);
        let mut labels: BTreeMap<&str, Label> = BTreeMap::new();
        // Pre-create labels for every `x:` definition.
        for (_, line) in body {
            if let Some(label) = line.strip_suffix(':') {
                if !label.contains(' ') {
                    let l = f.label();
                    labels.insert(label, l);
                }
            }
        }
        for &(line_no, line) in body {
            emit_line(&mut f, &labels, &symbols, line_no, line)?;
        }
        f.finish();
    }
    if pb.declare("main").index() >= pieces.len() {
        return Err(err(1, "no `func main` defined"));
    }
    Ok(pb.finish("main"))
}

fn emit_line(
    f: &mut FunctionBuilder<'_>,
    labels: &BTreeMap<&str, Label>,
    symbols: &BTreeMap<String, u64>,
    line_no: usize,
    line: &str,
) -> Result<(), AsmError> {
    if let Some(label) = line.strip_suffix(':') {
        if !label.contains(' ') {
            f.bind(labels[label]);
            return Ok(());
        }
    }
    let ctx = Ctx {
        line: line_no,
        symbols,
    };
    let (mn, rest) = line
        .split_once(char::is_whitespace)
        .map(|(a, b)| (a, b.trim()))
        .unwrap_or((line, ""));
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line_no,
                format!("`{mn}` takes {n} operands, got {}", ops.len()),
            ))
        }
    };
    let label_of = |tok: &str| -> Result<Label, AsmError> {
        labels
            .get(tok)
            .copied()
            .ok_or_else(|| err(line_no, format!("unknown label `{tok}`")))
    };

    if let Some(op) = binop_of(mn) {
        want(3)?;
        f.bin(op, ctx.reg(ops[0])?, ctx.reg(ops[1])?, ctx.src(ops[2])?);
        return Ok(());
    }
    if let Some(w) = mn.strip_prefix("load").and_then(width_of) {
        want(2)?;
        let (addr, off) = ctx.mem(ops[1])?;
        f.load(ctx.reg(ops[0])?, addr, off, w);
        return Ok(());
    }
    if let Some(w) = mn.strip_prefix("store").and_then(width_of) {
        want(2)?;
        let (addr, off) = ctx.mem(ops[0])?;
        f.store(ctx.reg(ops[1])?, addr, off, w);
        return Ok(());
    }
    match mn {
        "const" => {
            want(2)?;
            f.constu(ctx.reg(ops[0])?, ctx.imm(ops[1])? as u64);
        }
        "mov" => {
            want(2)?;
            f.mov(ctx.reg(ops[0])?, ctx.src(ops[1])?);
        }
        "not" => {
            want(2)?;
            f.un(UnOp::Not, ctx.reg(ops[0])?, ctx.reg(ops[1])?);
        }
        "neg" => {
            want(2)?;
            f.un(UnOp::Neg, ctx.reg(ops[0])?, ctx.reg(ops[1])?);
        }
        "cas" => {
            want(4)?;
            let (addr, off) = ctx.mem(ops[1])?;
            if off != 0 {
                return Err(err(line_no, "cas takes no offset"));
            }
            f.cas(ctx.reg(ops[0])?, addr, ctx.reg(ops[2])?, ctx.reg(ops[3])?);
        }
        "faa" => {
            want(3)?;
            let (addr, off) = ctx.mem(ops[1])?;
            if off != 0 {
                return Err(err(line_no, "faa takes no offset"));
            }
            f.fetch_add(ctx.reg(ops[0])?, addr, ctx.src(ops[2])?);
        }
        "xchg" => {
            want(3)?;
            let (addr, off) = ctx.mem(ops[1])?;
            if off != 0 {
                return Err(err(line_no, "xchg takes no offset"));
            }
            f.swap(ctx.reg(ops[0])?, addr, ctx.reg(ops[2])?);
        }
        "jmp" => {
            want(1)?;
            f.jmp(label_of(ops[0])?);
        }
        "jnz" => {
            want(2)?;
            f.jnz(ctx.reg(ops[0])?, label_of(ops[1])?);
        }
        "jz" => {
            want(2)?;
            f.jz(ctx.reg(ops[0])?, label_of(ops[1])?);
        }
        "call" => {
            want(1)?;
            f.call_named(ops[0]);
        }
        "calli" => {
            want(1)?;
            f.call_indirect(ctx.reg(ops[0])?);
        }
        "ret" => {
            want(0)?;
            f.ret();
        }
        "syscall" => {
            want(1)?;
            f.syscall(ctx.imm(ops[0])? as u32);
        }
        "nop" => {
            want(0)?;
            f.nop();
        }
        _ => return Err(err(line_no, format!("unknown mnemonic `{mn}`"))),
    }
    Ok(())
}

/// Dumps a program as assembly text that [`assemble`] reparses into a
/// structurally identical program. Jump targets become `Ln:` labels;
/// globals are not reconstructed (they appear as raw addresses), so the
/// dump uses `.data` only to reproduce the data segments.
pub fn program_to_asm(program: &Program) -> String {
    let mut out = String::new();
    for seg in program.data() {
        let _ = writeln!(out, ".dataat {:#x} {}", seg.addr, escape(&seg.bytes));
    }
    if !program.data().is_empty() {
        out.push('\n');
    }
    // Order functions so `main` parses as the entry.
    let mut order: Vec<usize> = (0..program.functions().len()).collect();
    order.sort_by_key(|&i| program.functions()[i].name != "main");
    for &fi in &order {
        let func = &program.functions()[fi];
        let _ = writeln!(out, "func {} {{", func.name);
        // Collect jump targets.
        let mut targets: BTreeMap<u32, String> = BTreeMap::new();
        for instr in &func.code {
            if let Instr::Jmp { target } | Instr::Jnz { target, .. } | Instr::Jz { target, .. } =
                instr
            {
                let n = targets.len();
                targets.entry(*target).or_insert_with(|| format!("L{n}"));
            }
        }
        for (idx, instr) in func.code.iter().enumerate() {
            if let Some(label) = targets.get(&(idx as u32)) {
                let _ = writeln!(out, "{label}:");
            }
            let text = match instr {
                Instr::Jmp { target } => format!("jmp {}", targets[target]),
                Instr::Jnz { cond, target } => format!("jnz {cond}, {}", targets[target]),
                Instr::Jz { cond, target } => format!("jz {cond}, {}", targets[target]),
                Instr::Call { func } => format!(
                    "call {}",
                    program
                        .function(*func)
                        .map(|f| f.name.as_str())
                        .unwrap_or("?")
                ),
                other => crate::disasm::format_instr(other),
            };
            let _ = writeln!(out, "    {text}");
        }
        // A label bound at the end of the function.
        if let Some(label) = targets.get(&(func.code.len() as u32)) {
            let _ = writeln!(out, "{label}:");
            let _ = writeln!(out, "    nop");
        }
        let _ = writeln!(out, "}}");
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, SliceLimits};
    use crate::observer::NullObserver;
    use crate::value::Tid;
    use std::sync::Arc;

    const DEMO: &str = r#"
; compute 10 factorial-ish and store it
.global result 8
.data banner "ok\n"

func main {
    const r1, 1
    const r2, 1
loop:
    mul r1, r1, r2
    add r2, r2, 1
    leu r3, r2, 10
    jnz r3, loop
    const r9, result
    store8 [r9+0], r1
    mov r8, r1          ; r1 is a return register; stash across the call
    call finish
    mov r0, r8
    ret
}

func finish {
    load8 r1, [r9+0]
    nop
    ret
}
"#;

    #[test]
    fn assembles_and_runs() {
        let program = Arc::new(assemble(DEMO).expect("parse failed"));
        let result = program.symbol("result").unwrap();
        let mut m = Machine::new(program, &[]);
        m.run_slice(Tid(0), SliceLimits::budget(10_000), &mut NullObserver)
            .unwrap();
        let ten_fact: u64 = (1..=10).product();
        assert_eq!(m.mem().read(result, Width::W8), ten_fact);
        assert_eq!(m.thread(Tid(0)).exit_value, ten_fact);
    }

    #[test]
    fn roundtrip_is_structurally_identical() {
        let original = assemble(DEMO).unwrap();
        let text = program_to_asm(&original);
        let back = assemble(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(original.functions().len(), back.functions().len());
        for (a, b) in original.functions().iter().zip(back.functions()) {
            assert_eq!(a.code, b.code, "function {} differs", a.name);
        }
        assert_eq!(original.data(), back.data());
    }

    #[test]
    fn error_reporting_names_the_line() {
        let bad = "func main {\n    frobnicate r1\n}\n";
        let e = assemble(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn rejects_structural_mistakes() {
        assert!(assemble("const r0, 1\n").is_err()); // outside func
        assert!(assemble("func main {\n").is_err()); // unterminated
        assert!(assemble("func main {\n jmp nowhere\n}\n").is_err());
        assert!(assemble("func main {\n add r0, r1\n}\n").is_err()); // arity
        assert!(assemble("func main {\n mov r99, 1\n}\n").is_err()); // bad reg
        assert!(assemble("func helper {\n ret\n}\n").is_err()); // no main
    }

    #[test]
    fn numeric_formats_and_memory_syntax() {
        let src = "func main {\n const r1, 0xff\n const r2, -5\n load1 r3, [r1-8]\n store2 [r1+0x10], r3\n ret\n}\n";
        let p = assemble(src).unwrap();
        let code = &p.functions()[0].code;
        assert_eq!(
            code[0],
            Instr::Const {
                dst: Reg(1),
                imm: 0xff
            }
        );
        assert_eq!(
            code[1],
            Instr::Const {
                dst: Reg(2),
                imm: (-5i64) as u64
            }
        );
        assert_eq!(
            code[2],
            Instr::Load {
                dst: Reg(3),
                addr: Reg(1),
                offset: -8,
                width: Width::W1
            }
        );
        assert_eq!(
            code[3],
            Instr::Store {
                src: Reg(3),
                addr: Reg(1),
                offset: 0x10,
                width: Width::W2
            }
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        let bytes = unescape(1, "\"a\\n\\t\\\\\\\"\\x7f\"").unwrap();
        assert_eq!(bytes, b"a\n\t\\\"\x7f");
        let lit = escape(&bytes);
        assert_eq!(unescape(1, &lit).unwrap(), bytes);
    }
}
