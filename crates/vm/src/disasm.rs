//! Human-readable program listings, for debugging guests and for error
//! reports that quote the faulting instruction.

use crate::instr::Instr;
use crate::program::{FuncId, Program};
use std::fmt::Write as _;

/// Formats one instruction as assembly-like text.
pub fn format_instr(instr: &Instr) -> String {
    match instr {
        Instr::Const { dst, imm } => format!("const {dst}, {imm:#x}"),
        Instr::Mov { dst, src } => format!("mov {dst}, {src}"),
        Instr::Bin { op, dst, a, b } => format!("{} {dst}, {a}, {b}", op.mnemonic()),
        Instr::Un { op, dst, a } => format!("{} {dst}, {a}", op.mnemonic()),
        Instr::Load {
            dst,
            addr,
            offset,
            width,
        } => format!("load{width} {dst}, [{addr}{offset:+}]"),
        Instr::Store {
            src,
            addr,
            offset,
            width,
        } => format!("store{width} [{addr}{offset:+}], {src}"),
        Instr::Cas {
            dst,
            addr,
            expected,
            new,
        } => format!("cas {dst}, [{addr}], {expected}, {new}"),
        Instr::FetchAdd { dst, addr, val } => format!("faa {dst}, [{addr}], {val}"),
        Instr::Swap { dst, addr, val } => format!("xchg {dst}, [{addr}], {val}"),
        Instr::Jmp { target } => format!("jmp @{target}"),
        Instr::Jnz { cond, target } => format!("jnz {cond}, @{target}"),
        Instr::Jz { cond, target } => format!("jz {cond}, @{target}"),
        Instr::Call { func } => format!("call {func}"),
        Instr::CallIndirect { func } => format!("calli {func}"),
        Instr::Ret => "ret".to_string(),
        Instr::Syscall { num } => format!("syscall {num}"),
        Instr::Nop => "nop".to_string(),
    }
}

/// Formats one function as a labelled listing.
pub fn format_function(program: &Program, id: FuncId) -> String {
    let mut out = String::new();
    let Some(f) = program.function(id) else {
        return format!("<unknown function {id}>\n");
    };
    let _ = writeln!(out, "{id} <{}>:", f.name);
    for (i, instr) in f.code.iter().enumerate() {
        let _ = writeln!(out, "  {i:4}: {}", format_instr(instr));
    }
    out
}

/// Formats the whole program.
pub fn format_program(program: &Program) -> String {
    let mut out = String::new();
    for i in 0..program.functions().len() {
        out.push_str(&format_function(program, FuncId(i as u32)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::value::{Reg, Width};

    #[test]
    fn listing_contains_every_instruction() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let l = f.label();
        f.bind(l);
        f.consti(Reg(0), 1);
        f.load(Reg(1), Reg(0), 8, Width::W4);
        f.store(Reg(1), Reg(0), -8, Width::W1);
        f.jmp(l);
        f.finish();
        let p = pb.finish("main");
        let text = format_program(&p);
        assert!(text.contains("<main>"));
        assert!(text.contains("const r0, 0x1"));
        assert!(text.contains("load4 r1, [r0+8]"));
        assert!(text.contains("store1 [r0-8], r1"));
        assert!(text.contains("jmp @0"));
    }

    #[test]
    fn unknown_function_is_reported() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.ret();
        f.finish();
        let p = pb.finish("main");
        assert!(format_function(&p, FuncId(9)).contains("unknown"));
    }
}
