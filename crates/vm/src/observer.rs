//! Memory-access observation hooks.
//!
//! The DoublePlay recorder itself never needs these — that is the paper's
//! central claim — but the baseline recorders it is compared against do:
//! value logging records every shared read, and CREW page-ownership logging
//! must see every access to drive its page state machine. The interpreter
//! reports each data access to an observer so those baselines can be built
//! without touching the interpreter.

use crate::value::{Tid, Width, Word};

/// Kind of data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A plain load.
    Read,
    /// A plain store.
    Write,
    /// An atomic read-modify-write (counts as both a read and a write).
    Atomic,
}

impl AccessKind {
    /// Whether the access reads memory.
    pub fn reads(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::Atomic)
    }

    /// Whether the access writes memory.
    pub fn writes(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Atomic)
    }
}

/// One observed data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Thread performing the access.
    pub tid: Tid,
    /// The accessing thread's instruction count *after* the instruction.
    pub icount: u64,
    /// Byte address.
    pub addr: Word,
    /// Access width.
    pub width: Width,
    /// Kind of access.
    pub kind: AccessKind,
    /// Value read (for reads/atomics) or written (for writes).
    pub value: Word,
}

/// Receives every data access the interpreter performs.
///
/// Implementations must be cheap: the interpreter calls this on the hot path.
pub trait MemObserver {
    /// Called after each data memory access.
    fn on_access(&mut self, access: Access);

    /// Called *before* a plain load; returning `Some(v)` makes the load
    /// yield `v` instead of reading memory. Value-logging replay uses this
    /// to feed a thread the shared-memory values it saw during recording.
    /// The default never intercepts.
    fn intercept_load(&mut self, tid: Tid, addr: Word, width: Width) -> Option<Word> {
        let _ = (tid, addr, width);
        None
    }

    /// Called *before* an atomic read-modify-write; returning `Some(old)`
    /// makes the atomic observe `old` and suppresses its memory write
    /// (value-logging replay runs each thread in isolation, so its view of
    /// shared atomics comes entirely from the log). The default never
    /// intercepts.
    fn intercept_atomic(&mut self, tid: Tid, addr: Word) -> Option<Word> {
        let _ = (tid, addr);
        None
    }
}

/// An observer that ignores everything; used by the DoublePlay recorder and
/// anywhere access tracking is not needed.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl MemObserver for NullObserver {
    #[inline]
    fn on_access(&mut self, _access: Access) {}
}

/// Test helper: collects all accesses into a vector.
#[derive(Debug, Default)]
pub struct CollectingObserver {
    /// Accesses in program order.
    pub accesses: Vec<Access>,
}

impl MemObserver for CollectingObserver {
    fn on_access(&mut self, access: Access) {
        self.accesses.push(access);
    }
}

/// Classifies addresses by how they are used: which addresses are ever
/// accessed atomically (synchronization candidates — mutex words, barrier
/// counters) and which are touched by more than one thread (sharing
/// candidates). Race detection uses a first pass with this observer to
/// restrict its expensive vector-clock tracking to addresses that are
/// shared but not themselves synchronization words.
///
/// Addresses are keyed by their start byte; the guest ABI accesses each
/// location with a consistent width, so start-byte identity is sufficient.
#[derive(Debug, Default)]
pub struct SharingTracker {
    /// Addresses ever accessed with [`AccessKind::Atomic`].
    pub atomic_addrs: std::collections::BTreeSet<Word>,
    /// Addresses accessed by at least two distinct threads.
    pub shared_addrs: std::collections::BTreeSet<Word>,
    first_owner: std::collections::BTreeMap<Word, Tid>,
}

impl SharingTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MemObserver for SharingTracker {
    fn on_access(&mut self, access: Access) {
        if access.kind == AccessKind::Atomic {
            self.atomic_addrs.insert(access.addr);
        }
        match self.first_owner.get(&access.addr) {
            None => {
                self.first_owner.insert(access.addr, access.tid);
            }
            Some(owner) if *owner != access.tid => {
                self.shared_addrs.insert(access.addr);
            }
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert!(AccessKind::Read.reads());
        assert!(!AccessKind::Read.writes());
        assert!(!AccessKind::Write.reads());
        assert!(AccessKind::Write.writes());
        assert!(AccessKind::Atomic.reads());
        assert!(AccessKind::Atomic.writes());
    }

    #[test]
    fn sharing_tracker_classifies_addresses() {
        let mut t = SharingTracker::new();
        let mk = |tid: u32, addr: Word, kind: AccessKind| Access {
            tid: Tid(tid),
            icount: 0,
            addr,
            width: Width::W8,
            kind,
            value: 0,
        };
        t.on_access(mk(0, 0x10, AccessKind::Write)); // private to tid 0
        t.on_access(mk(0, 0x20, AccessKind::Write)); // shared below
        t.on_access(mk(1, 0x20, AccessKind::Read));
        t.on_access(mk(0, 0x30, AccessKind::Atomic)); // sync word, shared
        t.on_access(mk(1, 0x30, AccessKind::Atomic));
        assert!(!t.shared_addrs.contains(&0x10));
        assert!(t.shared_addrs.contains(&0x20));
        assert!(t.shared_addrs.contains(&0x30));
        assert_eq!(t.atomic_addrs.iter().copied().collect::<Vec<_>>(), [0x30]);
    }

    #[test]
    fn collecting_observer_collects() {
        let mut obs = CollectingObserver::default();
        let a = Access {
            tid: Tid(0),
            icount: 1,
            addr: 0x1000,
            width: Width::W8,
            kind: AccessKind::Read,
            value: 5,
        };
        obs.on_access(a);
        assert_eq!(obs.accesses, vec![a]);
    }
}
