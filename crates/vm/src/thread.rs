//! Per-thread execution state: register file, program counter, call stack,
//! instruction count, and syscall trap status.

use crate::program::FuncId;
use crate::value::{Tid, Word, ARG_REGS, NUM_REGS, RET_REGS, THREAD_REG_BASE};

/// A program counter: function and instruction index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pc {
    /// Current function.
    pub func: FuncId,
    /// Index of the *next* instruction to execute.
    pub idx: u32,
}

/// A saved caller frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Where to resume in the caller.
    pub ret_pc: Pc,
    /// The caller's full register file, restored on return (with `r0..r1`
    /// and the thread registers overwritten by the callee's).
    pub regs: [Word; NUM_REGS],
    /// When true, *all* caller registers are restored on return, with no
    /// copy-back of results. Used for asynchronous signal-handler frames,
    /// which must be transparent to the interrupted code.
    pub full_restore: bool,
}

/// Lifecycle status of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadStatus {
    /// Can execute instructions.
    Ready,
    /// Trapped into the kernel; waiting for the pending syscall to complete.
    Waiting,
    /// Finished (returned from the bottom frame, exited via syscall, or the
    /// machine halted).
    Exited,
}

/// A syscall trap captured by the interpreter, to be serviced by the host
/// kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallRequest {
    /// Thread that trapped.
    pub tid: Tid,
    /// Syscall number (from the instruction immediate).
    pub num: u32,
    /// Snapshot of `r0..r5` at the trap.
    pub args: [Word; 6],
}

/// Execution state of one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadState {
    /// This thread's id.
    pub tid: Tid,
    /// Program counter (next instruction).
    pub pc: Pc,
    /// Current register file.
    pub regs: [Word; NUM_REGS],
    /// Saved caller frames (bottom frame is index 0).
    pub frames: Vec<Frame>,
    /// Lifecycle status.
    pub status: ThreadStatus,
    /// Total instructions executed by this thread since it started. This is
    /// the coordinate system for epoch boundaries and schedule-log entries.
    pub icount: u64,
    /// The syscall currently being serviced, if any.
    pub pending: Option<SyscallRequest>,
    /// Exit value (`r0` at exit), once exited.
    pub exit_value: Word,
}

impl ThreadState {
    /// Creates a thread poised to run `func` with the given arguments in
    /// `r0..` and the stack pointer preset by the machine.
    pub fn new(tid: Tid, func: FuncId, args: &[Word], sp: Word) -> Self {
        assert!(
            args.len() <= ARG_REGS,
            "at most {ARG_REGS} thread arguments supported, got {}",
            args.len()
        );
        let mut regs = [0u64; NUM_REGS];
        regs[..args.len()].copy_from_slice(args);
        regs[NUM_REGS - 1] = sp; // r31 = SP
        ThreadState {
            tid,
            pc: Pc { func, idx: 0 },
            regs,
            frames: Vec::new(),
            status: ThreadStatus::Ready,
            icount: 0,
            pending: None,
            exit_value: 0,
        }
    }

    /// True while the thread can be stepped.
    pub fn is_ready(&self) -> bool {
        self.status == ThreadStatus::Ready
    }

    /// True once the thread has finished for good.
    pub fn is_exited(&self) -> bool {
        self.status == ThreadStatus::Exited
    }

    /// Pushes a call frame and enters `func`, implementing the ABI:
    /// the callee gets a fresh register file with the argument registers and
    /// thread registers copied from the caller.
    pub fn enter_call(&mut self, func: FuncId, ret_pc: Pc) {
        let caller_regs = self.regs;
        self.frames.push(Frame {
            ret_pc,
            regs: caller_regs,
            full_restore: false,
        });
        let mut callee = [0u64; NUM_REGS];
        callee[..ARG_REGS].copy_from_slice(&caller_regs[..ARG_REGS]);
        callee[THREAD_REG_BASE..].copy_from_slice(&caller_regs[THREAD_REG_BASE..]);
        self.regs = callee;
        self.pc = Pc { func, idx: 0 };
    }

    /// Pushes a *signal* frame: like [`ThreadState::enter_call`], but the
    /// interrupted context is restored in full when the handler returns, so
    /// delivery is transparent to the interrupted code. `args` are placed in
    /// the handler's argument registers.
    pub fn enter_signal_call(&mut self, func: FuncId, args: &[Word]) {
        assert!(args.len() <= ARG_REGS);
        let interrupted_regs = self.regs;
        self.frames.push(Frame {
            ret_pc: self.pc,
            regs: interrupted_regs,
            full_restore: true,
        });
        let mut callee = [0u64; NUM_REGS];
        callee[..args.len()].copy_from_slice(args);
        callee[THREAD_REG_BASE..].copy_from_slice(&interrupted_regs[THREAD_REG_BASE..]);
        self.regs = callee;
        self.pc = Pc { func, idx: 0 };
    }

    /// Pops a call frame, copying return and thread registers back to the
    /// caller. Returns `false` when the bottom frame was popped, i.e. the
    /// thread has finished and `exit_value` is set.
    pub fn leave_call(&mut self) -> bool {
        let callee_regs = self.regs;
        match self.frames.pop() {
            Some(frame) => {
                self.regs = frame.regs;
                if !frame.full_restore {
                    self.regs[..RET_REGS].copy_from_slice(&callee_regs[..RET_REGS]);
                    self.regs[THREAD_REG_BASE..].copy_from_slice(&callee_regs[THREAD_REG_BASE..]);
                }
                self.pc = frame.ret_pc;
                true
            }
            None => {
                self.exit_value = callee_regs[0];
                self.status = ThreadStatus::Exited;
                false
            }
        }
    }

    /// Digest of the full thread state (registers, pc, frames, icount,
    /// status, pending trap) for divergence detection.
    pub fn hash_into(&self, h: &mut crate::hash::Fnv1a) {
        h.write_u32(self.tid.0);
        h.write_u32(self.pc.func.0);
        h.write_u32(self.pc.idx);
        for r in &self.regs {
            h.write_u64(*r);
        }
        h.write_u64(self.frames.len() as u64);
        for f in &self.frames {
            h.write_u32(f.ret_pc.func.0);
            h.write_u32(f.ret_pc.idx);
            h.write_u32(f.full_restore as u32);
            for r in &f.regs {
                h.write_u64(*r);
            }
        }
        h.write_u64(self.icount);
        h.write_u32(match self.status {
            ThreadStatus::Ready => 0,
            ThreadStatus::Waiting => 1,
            ThreadStatus::Exited => 2,
        });
        match &self.pending {
            None => h.write_u32(0),
            Some(req) => {
                h.write_u32(1);
                h.write_u32(req.num);
                for a in &req.args {
                    h.write_u64(*a);
                }
            }
        }
        h.write_u64(self.exit_value);
    }
}

dp_support::impl_wire_struct!(Pc { func, idx });
dp_support::impl_wire_struct!(Frame {
    ret_pc,
    regs,
    full_restore
});
dp_support::impl_wire_enum!(ThreadStatus { 0 => Ready, 1 => Waiting, 2 => Exited });
dp_support::impl_wire_struct!(SyscallRequest { tid, num, args });
dp_support::impl_wire_struct!(ThreadState {
    tid,
    pc,
    regs,
    frames,
    status,
    icount,
    pending,
    exit_value,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Fnv1a;

    fn thread() -> ThreadState {
        ThreadState::new(Tid(1), FuncId(0), &[10, 20], 0x7000_0000)
    }

    #[test]
    fn new_thread_register_setup() {
        let t = thread();
        assert_eq!(t.regs[0], 10);
        assert_eq!(t.regs[1], 20);
        assert_eq!(t.regs[2], 0);
        assert_eq!(t.regs[31], 0x7000_0000);
        assert!(t.is_ready());
        assert_eq!(t.icount, 0);
    }

    #[test]
    #[should_panic(expected = "thread arguments")]
    fn too_many_args_panics() {
        ThreadState::new(Tid(0), FuncId(0), &[0; 9], 0);
    }

    #[test]
    fn call_abi_copies_args_and_thread_regs() {
        let mut t = thread();
        t.regs[5] = 55;
        t.regs[10] = 99; // scratch, must not leak to callee
        t.regs[28] = 77; // thread register, must propagate
        let ret = Pc {
            func: FuncId(0),
            idx: 3,
        };
        t.enter_call(FuncId(1), ret);
        assert_eq!(
            t.pc,
            Pc {
                func: FuncId(1),
                idx: 0
            }
        );
        assert_eq!(t.regs[0], 10);
        assert_eq!(t.regs[5], 55);
        assert_eq!(t.regs[10], 0);
        assert_eq!(t.regs[28], 77);
        assert_eq!(t.regs[31], 0x7000_0000);
    }

    #[test]
    fn return_abi_copies_results_back() {
        let mut t = thread();
        t.regs[10] = 42; // caller scratch survives the call
        t.enter_call(
            FuncId(1),
            Pc {
                func: FuncId(0),
                idx: 9,
            },
        );
        t.regs[0] = 111;
        t.regs[1] = 222;
        t.regs[31] = 0x6fff_0000; // callee adjusted SP
        assert!(t.leave_call());
        assert_eq!(t.pc.idx, 9);
        assert_eq!(t.regs[0], 111);
        assert_eq!(t.regs[1], 222);
        assert_eq!(t.regs[10], 42);
        assert_eq!(t.regs[31], 0x6fff_0000);
    }

    #[test]
    fn bottom_frame_return_exits_thread() {
        let mut t = thread();
        t.regs[0] = 7;
        assert!(!t.leave_call());
        assert!(t.is_exited());
        assert_eq!(t.exit_value, 7);
    }

    #[test]
    fn signal_frame_is_transparent() {
        let mut t = thread();
        t.regs[0] = 1;
        t.regs[1] = 2;
        t.regs[10] = 3;
        t.pc = Pc {
            func: FuncId(0),
            idx: 5,
        };
        let before = t.regs;
        t.enter_signal_call(FuncId(2), &[9]);
        assert_eq!(t.regs[0], 9); // signal number in r0
        assert_eq!(t.pc.func, FuncId(2));
        // Handler clobbers everything it can.
        t.regs = [0xdead; NUM_REGS];
        assert!(t.leave_call());
        assert_eq!(t.regs, before);
        assert_eq!(
            t.pc,
            Pc {
                func: FuncId(0),
                idx: 5
            }
        );
    }

    #[test]
    fn hash_sensitive_to_registers_and_pc() {
        let t1 = thread();
        let mut t2 = thread();
        let digest = |t: &ThreadState| {
            let mut h = Fnv1a::new();
            t.hash_into(&mut h);
            h.finish()
        };
        assert_eq!(digest(&t1), digest(&t2));
        t2.regs[3] = 1;
        assert_ne!(digest(&t1), digest(&t2));
        let mut t3 = thread();
        t3.pc.idx = 1;
        assert_ne!(digest(&t1), digest(&t3));
        let mut t4 = thread();
        t4.icount = 5;
        assert_ne!(digest(&t1), digest(&t4));
    }
}
