//! # dp-vm — deterministic multithreaded bytecode VM
//!
//! The execution substrate for the DoublePlay (ASPLOS 2011) reproduction.
//! The original system records real Pthreads binaries on real hardware; this
//! crate provides the laptop-scale equivalent: a 64-bit register machine
//! whose execution is a *pure function* of
//!
//! 1. the [`Program`],
//! 2. the schedule (which thread runs each instruction), and
//! 3. the results the host kernel supplies for each `Syscall` trap.
//!
//! Everything DoublePlay needs from hardware/OS support maps onto an
//! explicit, testable API here:
//!
//! | Paper mechanism | dp-vm equivalent |
//! |---|---|
//! | timeslicing threads on one CPU | [`Machine::run_slice`] with instruction budgets |
//! | HW instruction/branch counters naming preemption points | exact per-thread `icount` ([`ThreadState::icount`]) |
//! | `fork()` copy-on-write checkpoints | `Machine: Clone` with `Arc`-shared pages ([`memory::Memory`]) |
//! | memory-state comparison at epoch ends | [`Machine::state_hash`] / [`memory::Memory::first_difference`] |
//! | instrumentation for baseline recorders | [`observer::MemObserver`] access hooks |
//!
//! ## Quick start
//!
//! ```
//! use dp_vm::builder::ProgramBuilder;
//! use dp_vm::{Machine, Reg, SliceLimits, Tid, observer::NullObserver};
//! use std::sync::Arc;
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main");
//! f.consti(Reg(0), 41);
//! f.add(Reg(0), Reg(0), 1i64);
//! f.ret();
//! f.finish();
//! let program = Arc::new(pb.finish("main"));
//!
//! let mut m = Machine::new(program, &[]);
//! m.run_slice(Tid(0), SliceLimits::budget(100), &mut NullObserver)?;
//! assert_eq!(m.thread(Tid(0)).exit_value, 42);
//! # Ok::<(), dp_vm::Fault>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod builder;
pub mod disasm;
mod error;
pub mod hash;
mod instr;
mod machine;
pub mod memory;
pub mod observer;
mod program;
mod thread;
mod value;

pub use error::Fault;
pub use instr::{BinOp, Instr, UnOp};
pub use machine::{
    Machine, MachineImage, SliceLimits, SliceRun, Step, StopReason, DEFAULT_MAX_CALL_DEPTH,
};
pub use program::{
    initial_sp, DataSegment, FuncId, Function, Program, GLOBAL_BASE, HEAP_BASE, STACK_BASE,
    STACK_SIZE,
};
pub use thread::{Frame, Pc, SyscallRequest, ThreadState, ThreadStatus};
pub use value::{Reg, Src, Tid, Width, Word, ARG_REGS, NUM_REGS, SP};
