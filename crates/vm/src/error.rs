//! Guest faults: the ways a guest program can go wrong.

use crate::program::FuncId;
use crate::thread::Pc;
use crate::value::Tid;
use std::fmt;

/// A fault raised by the interpreter while executing guest code.
///
/// Faults are deterministic properties of the guest program and schedule, so
/// a fault recorded during logging reproduces identically during replay —
/// which is much of the point of deterministic replay.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // fields (tid/pc/...) are self-describing locations
pub enum Fault {
    /// Integer division or remainder by zero.
    DivideByZero { tid: Tid, pc: Pc },
    /// `Call`/`CallIndirect` to a function id that does not exist.
    BadFunction { tid: Tid, pc: Pc, func: FuncId },
    /// Execution ran past the last instruction of a function.
    FellOffFunction { tid: Tid, func: FuncId },
    /// An instruction referenced a register outside `r0..r31`.
    BadRegister { tid: Tid, pc: Pc, reg: u8 },
    /// Call stack exceeded the configured depth limit (runaway recursion).
    StackOverflow { tid: Tid, pc: Pc },
    /// A step was requested for a thread that cannot run (exited or waiting
    /// on a syscall). This is a host-driver bug rather than a guest bug, but
    /// is reported uniformly.
    NotRunnable { tid: Tid },
}

impl Fault {
    /// The thread that faulted.
    pub fn tid(&self) -> Tid {
        match self {
            Fault::DivideByZero { tid, .. }
            | Fault::BadFunction { tid, .. }
            | Fault::FellOffFunction { tid, .. }
            | Fault::BadRegister { tid, .. }
            | Fault::StackOverflow { tid, .. }
            | Fault::NotRunnable { tid } => *tid,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::DivideByZero { tid, pc } => {
                write!(f, "divide by zero in {tid} at {}:{}", pc.func, pc.idx)
            }
            Fault::BadFunction { tid, pc, func } => {
                write!(
                    f,
                    "call to unknown function {func} in {tid} at {}:{}",
                    pc.func, pc.idx
                )
            }
            Fault::FellOffFunction { tid, func } => {
                write!(f, "execution fell off the end of {func} in {tid}")
            }
            Fault::BadRegister { tid, pc, reg } => {
                write!(f, "bad register r{reg} in {tid} at {}:{}", pc.func, pc.idx)
            }
            Fault::StackOverflow { tid, pc } => {
                write!(f, "call-stack overflow in {tid} at {}:{}", pc.func, pc.idx)
            }
            Fault::NotRunnable { tid } => {
                write!(f, "attempt to step non-runnable thread {tid}")
            }
        }
    }
}

impl std::error::Error for Fault {}

dp_support::impl_wire_enum!(Fault {
    0 => DivideByZero { tid, pc },
    1 => BadFunction { tid, pc, func },
    2 => FellOffFunction { tid, func },
    3 => BadRegister { tid, pc, reg },
    4 => StackOverflow { tid, pc },
    5 => NotRunnable { tid },
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let fault = Fault::DivideByZero {
            tid: Tid(2),
            pc: Pc {
                func: FuncId(1),
                idx: 7,
            },
        };
        let msg = fault.to_string();
        assert!(msg.contains("divide by zero"));
        assert!(msg.contains("t2"));
        assert!(msg.contains("f1:7"));
        assert_eq!(fault.tid(), Tid(2));
    }

    #[test]
    fn tid_extraction_covers_all_variants() {
        let pc = Pc {
            func: FuncId(0),
            idx: 0,
        };
        let faults = [
            Fault::DivideByZero { tid: Tid(1), pc },
            Fault::BadFunction {
                tid: Tid(1),
                pc,
                func: FuncId(9),
            },
            Fault::FellOffFunction {
                tid: Tid(1),
                func: FuncId(0),
            },
            Fault::BadRegister {
                tid: Tid(1),
                pc,
                reg: 40,
            },
            Fault::StackOverflow { tid: Tid(1), pc },
            Fault::NotRunnable { tid: Tid(1) },
        ];
        for f in faults {
            assert_eq!(f.tid(), Tid(1));
            assert!(!f.to_string().is_empty());
        }
    }
}
