//! Structural comparison of two recordings of the same program.
//!
//! Two recordings of the same guest under different hidden schedules (or
//! recorder versions) agree on everything deterministic and differ exactly
//! where scheduling differed. The diff localizes the first divergence to
//! an epoch, a schedule-event index, and a byte offset in the encoded log
//! — the starting point for "why did these two runs disagree".

use dp_core::logs::codec;
use dp_core::Recording;
use std::fmt;

/// Where two recordings first diverge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergencePoint {
    /// First epoch whose logs differ.
    pub epoch: u32,
    /// Which field of the epoch differs first.
    pub field: &'static str,
    /// Index of the first differing schedule event, when the schedules
    /// differ.
    pub event_index: Option<usize>,
    /// Byte offset of the first difference within the epoch's encoded
    /// schedule.
    pub byte_offset: Option<usize>,
    /// The same offset counted from the start of all schedule bytes.
    pub cumulative_byte_offset: Option<u64>,
}

impl fmt::Display for DivergencePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "first divergence: epoch {} ({})", self.epoch, self.field)?;
        if let Some(i) = self.event_index {
            write!(f, ", schedule event {i}")?;
        }
        if let (Some(b), Some(c)) = (self.byte_offset, self.cumulative_byte_offset) {
            write!(f, ", byte {b} of epoch schedule (byte {c} overall)")?;
        }
        Ok(())
    }
}

/// Result of diffing two recordings.
#[derive(Debug, Clone, Default)]
pub struct RecordingDiff {
    /// Human-readable differences, most significant first.
    pub differences: Vec<String>,
    /// The first log divergence, when the epoch logs differ.
    pub first_divergence: Option<DivergencePoint>,
}

impl RecordingDiff {
    /// True when the recordings are structurally identical.
    pub fn identical(&self) -> bool {
        self.differences.is_empty() && self.first_divergence.is_none()
    }
}

impl fmt::Display for RecordingDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.identical() {
            return write!(f, "recordings are structurally identical");
        }
        for d in &self.differences {
            writeln!(f, "{d}")?;
        }
        if let Some(p) = &self.first_divergence {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

fn first_differing_byte(a: &[u8], b: &[u8]) -> Option<usize> {
    if a == b {
        return None;
    }
    Some(
        a.iter()
            .zip(b.iter())
            .position(|(x, y)| x != y)
            .unwrap_or(a.len().min(b.len())),
    )
}

/// Structurally compares two recordings.
pub fn diff(a: &Recording, b: &Recording) -> RecordingDiff {
    let mut out = RecordingDiff::default();
    if a.meta.guest_name != b.meta.guest_name {
        out.differences.push(format!(
            "guest name: `{}` vs `{}`",
            a.meta.guest_name, b.meta.guest_name
        ));
    }
    if a.meta.program_hash != b.meta.program_hash {
        out.differences.push(format!(
            "program hash: {:#018x} vs {:#018x} (different programs — log diff below is not meaningful)",
            a.meta.program_hash, b.meta.program_hash
        ));
    }
    if a.meta.initial_machine_hash != b.meta.initial_machine_hash {
        out.differences.push(format!(
            "boot-state hash: {:#018x} vs {:#018x}",
            a.meta.initial_machine_hash, b.meta.initial_machine_hash
        ));
    }
    if a.epochs.len() != b.epochs.len() {
        out.differences.push(format!(
            "epoch count: {} vs {}",
            a.epochs.len(),
            b.epochs.len()
        ));
    }

    let mut cumulative = 0u64;
    for (ea, eb) in a.epochs.iter().zip(b.epochs.iter()) {
        let sched_a = codec::encode_schedule(&ea.schedule);
        let sched_b = codec::encode_schedule(&eb.schedule);
        if ea.schedule != eb.schedule {
            let event_index = ea
                .schedule
                .events()
                .iter()
                .zip(eb.schedule.events())
                .position(|(x, y)| x != y)
                .or(Some(ea.schedule.len().min(eb.schedule.len())));
            let byte_offset = first_differing_byte(&sched_a, &sched_b);
            out.first_divergence = Some(DivergencePoint {
                epoch: ea.index,
                field: "schedule",
                event_index,
                byte_offset,
                cumulative_byte_offset: byte_offset.map(|b| cumulative + b as u64),
            });
            return out;
        }
        if ea.syscalls != eb.syscalls {
            let sys_a = codec::encode_syscalls(&ea.syscalls);
            let sys_b = codec::encode_syscalls(&eb.syscalls);
            let byte_offset = first_differing_byte(&sys_a, &sys_b);
            out.first_divergence = Some(DivergencePoint {
                epoch: ea.index,
                field: "syscall log",
                event_index: ea
                    .syscalls
                    .entries()
                    .iter()
                    .zip(eb.syscalls.entries())
                    .position(|(x, y)| x != y)
                    .or(Some(ea.syscalls.len().min(eb.syscalls.len()))),
                byte_offset,
                cumulative_byte_offset: None,
            });
            return out;
        }
        if ea.end_machine_hash != eb.end_machine_hash {
            out.first_divergence = Some(DivergencePoint {
                epoch: ea.index,
                field: "end-state hash",
                event_index: None,
                byte_offset: None,
                cumulative_byte_offset: None,
            });
            return out;
        }
        cumulative += sched_a.len() as u64;
    }
    out
}
