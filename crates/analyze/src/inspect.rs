//! Per-epoch inspection of a recording: what each epoch's schedule and
//! syscall logs contain, how big they are on the wire, and how the epochs
//! fit together.

use dp_core::logs::codec;
use dp_core::{Recording, ReplayError};
use dp_os::abi;
use dp_vm::Tid;
use std::collections::BTreeMap;
use std::fmt;

/// Summary of one epoch's logs.
#[derive(Debug, Clone)]
pub struct EpochSummary {
    /// Epoch number.
    pub index: u32,
    /// Schedule event counts: time slices, logged wakes, signal
    /// deliveries.
    pub slices: usize,
    /// Logged-wake deliveries.
    pub wakes: usize,
    /// Signal deliveries.
    pub signals: usize,
    /// Per-thread `(tid, slice count, instructions)`.
    pub per_thread: Vec<(Tid, usize, u64)>,
    /// Logged syscalls by name, with counts.
    pub syscalls_by_name: Vec<(&'static str, usize)>,
    /// Encoded schedule-log size.
    pub schedule_bytes: usize,
    /// Encoded syscall-log size.
    pub syscall_bytes: usize,
    /// External output bytes committed with this epoch.
    pub external_bytes: u64,
    /// End-of-epoch state digest.
    pub end_hash: u64,
    /// Whether a start checkpoint is stored.
    pub has_checkpoint: bool,
    /// Thread-parallel wall cycles of the epoch.
    pub tp_cycles: u64,
}

/// Whole-recording inspection report.
#[derive(Debug, Clone)]
pub struct InspectReport {
    /// Recorded guest name.
    pub guest_name: String,
    /// Content hash of the recorded program.
    pub program_hash: u64,
    /// Boot-state digest.
    pub initial_hash: u64,
    /// Per-epoch summaries.
    pub epochs: Vec<EpochSummary>,
}

impl InspectReport {
    /// Total instructions across all epochs' slices.
    pub fn total_instructions(&self) -> u64 {
        self.epochs
            .iter()
            .map(|e| e.per_thread.iter().map(|t| t.2).sum::<u64>())
            .sum()
    }
}

/// Summarizes a recording epoch by epoch. Pure log analysis: no replay is
/// performed.
///
/// # Errors
///
/// Never fails today; the `Result` reserves room for summaries that need
/// log decoding.
pub fn inspect(recording: &Recording) -> Result<InspectReport, ReplayError> {
    let epochs = recording
        .epochs
        .iter()
        .map(|e| {
            let (slices, wakes, signals) = e.schedule.event_counts();
            let mut by_name: BTreeMap<&'static str, usize> = BTreeMap::new();
            for entry in e.syscalls.entries() {
                *by_name.entry(abi::name(entry.num)).or_default() += 1;
            }
            EpochSummary {
                index: e.index,
                slices,
                wakes,
                signals,
                per_thread: e.schedule.per_thread_totals(),
                syscalls_by_name: by_name.into_iter().collect(),
                schedule_bytes: codec::encode_schedule(&e.schedule).len(),
                syscall_bytes: codec::encode_syscalls(&e.syscalls).len(),
                external_bytes: e.external.iter().map(|c| c.bytes.len() as u64).sum(),
                end_hash: e.end_machine_hash,
                has_checkpoint: e.start.is_some(),
                tp_cycles: e.tp_cycles,
            }
        })
        .collect();
    Ok(InspectReport {
        guest_name: recording.meta.guest_name.clone(),
        program_hash: recording.meta.program_hash,
        initial_hash: recording.meta.initial_machine_hash,
        epochs,
    })
}

impl fmt::Display for InspectReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "recording of `{}` (program {:#018x}, boot {:#018x}): {} epochs, {} instructions",
            self.guest_name,
            self.program_hash,
            self.initial_hash,
            self.epochs.len(),
            self.total_instructions()
        )?;
        for e in &self.epochs {
            writeln!(
                f,
                "epoch {:>3}: {:>5} slices {:>3} wakes {:>2} signals | sched {:>6}B sys {:>6}B ext {:>5}B | end {:#018x}{}",
                e.index,
                e.slices,
                e.wakes,
                e.signals,
                e.schedule_bytes,
                e.syscall_bytes,
                e.external_bytes,
                e.end_hash,
                if e.has_checkpoint { " [ckpt]" } else { "" }
            )?;
            for (tid, n, instrs) in &e.per_thread {
                writeln!(
                    f,
                    "    thread {:>2}: {n:>5} slices, {instrs:>9} instrs",
                    tid.0
                )?;
            }
            if !e.syscalls_by_name.is_empty() {
                let list: Vec<String> = e
                    .syscalls_by_name
                    .iter()
                    .map(|(name, n)| format!("{name}×{n}"))
                    .collect();
                writeln!(f, "    logged syscalls: {}", list.join(" "))?;
            }
        }
        Ok(())
    }
}
