//! Vector-clock happens-before data-race detection over a recording.
//!
//! The detector re-runs the recording under the observed-replay hooks
//! ([`dp_core::replay_observed`]) and checks every shared plain access
//! against a FastTrack-style happens-before relation. Crucially, mere
//! time-slice adjacency in the schedule log does *not* order accesses —
//! the epoch-parallel interleaving that produced the log is just one of
//! the interleavings the original thread-parallel run could have taken.
//! Happens-before edges come only from real synchronization:
//!
//! * **program order** within each thread;
//! * **spawn** (parent's clock seeds the child) and **join / thread exit**
//!   (the exiting thread's clock flows to its joiners);
//! * **synchronization words**: any address ever accessed atomically (CAS
//!   mutex words, barrier counters) or ever used as a futex word. The
//!   guest runtime releases locks with a plain store to the mutex word and
//!   spins on barrier generations with plain loads, so every access to a
//!   sync word is treated as an acquire+release on that word, and sync
//!   words themselves are excluded from race candidacy;
//! * **futex wake → wait** delivery, in the replay total order;
//! * **signal send → delivery**.
//!
//! Detection is two-pass, both passes fully verified replays: pass one
//! classifies addresses (shared? ever atomic? futex word?) with the VM's
//! [`SharingTracker`]; pass two runs the vector-clock analysis on the
//! candidate set (shared and not a sync word).

use dp_core::{replay_observed, Recording, ReplayError, ReplayEvent, ReplayObserver, ReplayReport};
use dp_os::abi;
use dp_vm::observer::{Access, AccessKind, MemObserver, SharingTracker};
use dp_vm::{Program, Tid, Width, Word};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A vector clock: component `i` counts synchronization steps of thread
/// `i` known to the clock's owner.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VClock(Vec<u32>);

impl VClock {
    fn get(&self, i: usize) -> u32 {
        self.0.get(i).copied().unwrap_or(0)
    }

    fn tick(&mut self, i: usize) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] += 1;
    }

    fn merge(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            self.0[i] = self.0[i].max(v);
        }
    }
}

/// One side of a racy pair: where an access happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSite {
    /// Thread that performed the access.
    pub tid: Tid,
    /// The thread's instruction count at the access.
    pub icount: u64,
    /// Epoch the access replayed in.
    pub epoch: u32,
    /// Kind of access.
    pub kind: AccessKind,
    /// Access width.
    pub width: Width,
}

impl fmt::Display for AccessSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Atomic => "atomic",
        };
        write!(
            f,
            "{kind} by thread {} at icount {} (epoch {})",
            self.tid.0, self.icount, self.epoch
        )
    }
}

/// A detected data race: two accesses to the same address, at least one a
/// write, with no happens-before order between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Race {
    /// The racy byte address.
    pub addr: Word,
    /// The earlier access (in the replayed total order).
    pub first: AccessSite,
    /// The later, conflicting access.
    pub second: AccessSite,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race at {:#x}: {} vs {}",
            self.addr, self.first, self.second
        )
    }
}

/// Result of a race-detection run.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// One race per racy address (the first conflicting pair found on it),
    /// in detection order.
    pub races: Vec<Race>,
    /// Unordered thread pairs seen racing, as `(addr, tid_a, tid_b)`.
    pub racy_pairs: BTreeSet<(Word, u32, u32)>,
    /// Addresses touched by more than one thread.
    pub shared_addrs: usize,
    /// Addresses classified as synchronization words (excluded from
    /// candidacy).
    pub sync_addrs: usize,
    /// The verified replay the analysis rode on.
    pub replay: ReplayReport,
}

impl RaceReport {
    /// True if at least one race was found.
    pub fn is_racy(&self) -> bool {
        !self.races.is_empty()
    }

    /// The first race in replayed total order, if any.
    pub fn first_race(&self) -> Option<&Race> {
        self.races.first()
    }
}

/// Pass 1: classify addresses. Shared/atomic classification comes from the
/// VM's [`SharingTracker`]; futex words are collected from the syscall
/// traps and wake deliveries.
#[derive(Default)]
struct ClassifyPass {
    tracker: SharingTracker,
    futex_words: BTreeSet<Word>,
}

impl MemObserver for ClassifyPass {
    fn on_access(&mut self, access: Access) {
        self.tracker.on_access(access);
    }
}

impl ReplayObserver for ClassifyPass {
    fn on_replay_event(&mut self, event: &ReplayEvent) {
        match event {
            ReplayEvent::Trap { req, .. } | ReplayEvent::Wake { req, .. }
                if req.num == abi::SYS_FUTEX_WAIT || req.num == abi::SYS_FUTEX_WAKE =>
            {
                self.futex_words.insert(req.args[0]);
            }
            _ => {}
        }
    }
}

/// Per-candidate-address detector state: the last write and the reads
/// since it, each with the clock snapshot of the accessing thread.
#[derive(Default)]
struct AddrState {
    last_write: Option<(AccessSite, VClock)>,
    reads: BTreeMap<u32, (AccessSite, VClock)>,
    racy: bool,
}

/// Pass 2: the vector-clock detector.
struct DetectPass {
    /// Addresses tracked for races (shared, not sync).
    candidates: BTreeSet<Word>,
    /// Sync words: every access is an acquire+release on the word.
    sync_words: BTreeSet<Word>,
    /// Per-thread clocks, indexed by tid.
    clocks: BTreeMap<u32, VClock>,
    /// Per-sync-word clocks.
    word_vc: BTreeMap<Word, VClock>,
    /// Clocks of exited threads (join edges).
    exited_vc: BTreeMap<u32, VClock>,
    /// Pending join edges: joiner tid -> joined tid.
    join_target: BTreeMap<u32, u32>,
    /// Signal-send clocks, keyed by `(target tid, signal)`.
    sig_vc: BTreeMap<(u32, u64), VClock>,
    /// Per-candidate state.
    addrs: BTreeMap<Word, AddrState>,
    /// Accumulated races (one per address).
    races: Vec<Race>,
    racy_pairs: BTreeSet<(Word, u32, u32)>,
    epoch: u32,
}

impl DetectPass {
    fn new(candidates: BTreeSet<Word>, sync_words: BTreeSet<Word>) -> Self {
        Self {
            candidates,
            sync_words,
            clocks: BTreeMap::new(),
            word_vc: BTreeMap::new(),
            exited_vc: BTreeMap::new(),
            join_target: BTreeMap::new(),
            sig_vc: BTreeMap::new(),
            addrs: BTreeMap::new(),
            races: Vec::new(),
            racy_pairs: BTreeSet::new(),
            epoch: 0,
        }
    }

    fn clock(&mut self, tid: Tid) -> &mut VClock {
        self.clocks.entry(tid.0).or_default()
    }

    /// Acquire+release on a synchronization word: the thread learns
    /// everything published at the word, publishes its own history there,
    /// and advances its own component so later local work is not ordered
    /// with the acquirer.
    fn sync_on_word(&mut self, tid: Tid, addr: Word) {
        let c = self.clocks.entry(tid.0).or_default();
        let w = self.word_vc.entry(addr).or_default();
        c.merge(w);
        *w = c.clone();
        c.tick(tid.0 as usize);
    }

    /// Did the access snapshotted as `(site, vc)` happen before the
    /// current access of `tid` with clock `now`? True iff `tid` has seen
    /// the accessor's component at its access point.
    fn ordered(prev: &(AccessSite, VClock), now: &VClock) -> bool {
        let i = prev.0.tid.0 as usize;
        prev.1.get(i) <= now.get(i)
    }

    fn report(&mut self, addr: Word, prev: AccessSite, cur: AccessSite) {
        let pair = (addr, prev.tid.0.min(cur.tid.0), prev.tid.0.max(cur.tid.0));
        self.racy_pairs.insert(pair);
        self.races.push(Race {
            addr,
            first: prev,
            second: cur,
        });
    }
}

impl MemObserver for DetectPass {
    fn on_access(&mut self, access: Access) {
        if self.sync_words.contains(&access.addr) {
            self.sync_on_word(access.tid, access.addr);
            return;
        }
        if !self.candidates.contains(&access.addr) {
            return;
        }
        let now = self.clocks.entry(access.tid.0).or_default().clone();
        let site = AccessSite {
            tid: access.tid,
            icount: access.icount,
            epoch: self.epoch,
            kind: access.kind,
            width: access.width,
        };
        let state = self.addrs.entry(access.addr).or_default();
        if state.racy {
            return; // one race per address is enough
        }
        let mut found: Option<AccessSite> = None;
        if let Some(w) = &state.last_write {
            if w.0.tid != access.tid && !Self::ordered(w, &now) {
                found = Some(w.0);
            }
        }
        if found.is_none() && access.kind.writes() {
            for r in state.reads.values() {
                if r.0.tid != access.tid && !Self::ordered(r, &now) {
                    found = Some(r.0);
                    break;
                }
            }
        }
        if access.kind.writes() {
            state.last_write = Some((site, now));
            state.reads.clear();
        } else {
            state.reads.insert(access.tid.0, (site, now));
        }
        if let Some(prev) = found {
            self.addrs.get_mut(&access.addr).unwrap().racy = true;
            self.report(access.addr, prev, site);
        }
    }
}

impl ReplayObserver for DetectPass {
    fn on_epoch_start(&mut self, index: u32) {
        self.epoch = index;
    }

    fn on_replay_event(&mut self, event: &ReplayEvent) {
        match *event {
            ReplayEvent::Spawned { parent, child } => {
                // Child inherits the parent's pre-spawn history; both then
                // advance so post-spawn work is unordered between them.
                let mut c = self.clocks.entry(parent.0).or_default().clone();
                c.tick(child.0 as usize);
                self.clocks.insert(child.0, c);
                self.clock(parent).tick(parent.0 as usize);
            }
            ReplayEvent::Trap { tid, req, .. } => match req.num {
                // The wait side acquires at the trap (the immediate-return
                // path) and again at its wake delivery below.
                abi::SYS_FUTEX_WAIT | abi::SYS_FUTEX_WAKE => {
                    self.sync_on_word(tid, req.args[0]);
                }
                abi::SYS_JOIN => {
                    let target = req.args[0] as u32;
                    if let Some(vc) = self.exited_vc.get(&target).cloned() {
                        self.clock(tid).merge(&vc);
                    } else {
                        // Blocked join: the edge is applied when the
                        // target exits (strictly before the joiner
                        // resumes in the replayed total order).
                        self.join_target.insert(tid.0, target);
                    }
                }
                abi::SYS_THREAD_EXIT => self.on_exit(tid),
                abi::SYS_KILL => {
                    let key = (req.args[0] as u32, req.args[1]);
                    let mut vc = self.clock(tid).clone();
                    self.clock(tid).tick(tid.0 as usize);
                    vc.tick(tid.0 as usize);
                    self.sig_vc.insert(key, vc);
                }
                _ => {}
            },
            ReplayEvent::Wake { tid, req } => {
                if req.num == abi::SYS_FUTEX_WAIT {
                    self.sync_on_word(tid, req.args[0]);
                }
            }
            ReplayEvent::SignalDelivered { tid, sig } => {
                if let Some(vc) = self.sig_vc.get(&(tid.0, sig)).cloned() {
                    self.clock(tid).merge(&vc);
                }
            }
            ReplayEvent::ThreadExited { tid } => self.on_exit(tid),
        }
    }
}

impl DetectPass {
    fn on_exit(&mut self, tid: Tid) {
        let vc = self.clock(tid).clone();
        self.exited_vc.insert(tid.0, vc.clone());
        // Release to joiners already blocked on this thread.
        let joiners: Vec<u32> = self
            .join_target
            .iter()
            .filter(|&(_, &t)| t == tid.0)
            .map(|(&j, _)| j)
            .collect();
        for j in joiners {
            self.join_target.remove(&j);
            self.clocks.entry(j).or_default().merge(&vc);
        }
    }
}

/// Runs the two-pass vector-clock race detection over a recording.
///
/// Both passes are fully verified sequential replays, so the analysis
/// input is exactly the recorded execution; the result carries the replay
/// report of the detection pass.
///
/// # Errors
///
/// Any [`ReplayError`] if the recording does not replay and verify.
pub fn detect_races(
    recording: &Recording,
    program: &Arc<Program>,
) -> Result<RaceReport, ReplayError> {
    let mut classify = ClassifyPass::default();
    replay_observed(recording, program, &mut classify)?;
    let mut sync_words = classify.tracker.atomic_addrs;
    sync_words.extend(classify.futex_words.iter().copied());
    let candidates: BTreeSet<Word> = classify
        .tracker
        .shared_addrs
        .difference(&sync_words)
        .copied()
        .collect();
    let shared = classify.tracker.shared_addrs.len();
    let mut detect = DetectPass::new(candidates, sync_words);
    let replay = replay_observed(recording, program, &mut detect)?;
    Ok(RaceReport {
        races: detect.races,
        racy_pairs: detect.racy_pairs,
        shared_addrs: shared,
        sync_addrs: detect.sync_words.len(),
        replay,
    })
}

/// Triage of a recording that needed rollbacks: the first racy access pair
/// in the replayed total order, with enough context to start debugging.
#[derive(Debug, Clone)]
pub struct Triage {
    /// The first race.
    pub race: Race,
    /// Total racy addresses in the recording.
    pub racy_addrs: usize,
    /// Epochs in the recording.
    pub epochs: u32,
}

impl fmt::Display for Triage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "first {} (of {} racy address{} across {} epochs)",
            self.race,
            self.racy_addrs,
            if self.racy_addrs == 1 { "" } else { "es" },
            self.epochs
        )?;
        write!(
            f,
            "  likely divergence trigger: epoch {} — replay to this point with `dp replay`",
            self.race.second.epoch
        )
    }
}

/// Localizes the first racy access pair of a recording, or `None` if the
/// recording is race-free.
///
/// # Errors
///
/// Any [`ReplayError`] if the recording does not replay and verify.
pub fn triage(
    recording: &Recording,
    program: &Arc<Program>,
) -> Result<Option<Triage>, ReplayError> {
    let report = detect_races(recording, program)?;
    Ok(report.first_race().map(|race| Triage {
        race: *race,
        racy_addrs: report.races.len(),
        epochs: report.replay.epochs,
    }))
}
