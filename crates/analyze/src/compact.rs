//! Lossless recording compaction.
//!
//! The schedule log dominates a recording's log bytes, and its entropy is
//! low: most events are time slices, most slices belong to a handful of
//! thread ids, and quantum-driven slicing repeats the same instruction
//! count over and over. Compaction (1) re-canonicalizes each epoch's
//! schedule — run-length merging adjacent same-thread slices, the only
//! reordering-free merge replay semantics allow — and (2) re-encodes it
//! with a tighter codec (v2) that packs the event tag, thread id, and a
//! repeated-slice-length flag into a single lead byte. The result is
//! saved as a `DPRZ` container, a sibling of the `DPRC` format with the
//! same CRC-guarded section structure.
//!
//! Compaction is lossless by construction: the decoded recording contains
//! the same events, so it replays to the identical final-state hash. The
//! v2 encoding is also never larger than v1 — every event costs at most
//! the v1 bytes, and every slice costs at least one byte less.
//!
//! ## v2 schedule encoding
//!
//! `varint count`, then per event one lead byte plus payload:
//!
//! ```text
//! lead byte: bits 0..2  event tag (0 = slice, 1 = wake, 2 = signal)
//!            bit  2     repeat flag (slice only: instruction count equals
//!                       the previous slice's — no payload follows)
//!            bits 3..8  thread id 0..30 inline; 31 = escape, varint tid
//!                       follows the lead byte
//! payload:   slice: varint instrs (absent when the repeat flag is set)
//!            wake: none
//!            signal: varint sig
//! ```

use dp_core::logs::codec::{self, get_varint, put_varint, CodecError};
use dp_core::logs::{SchedEvent, ScheduleLog};
use dp_core::{EpochRecord, Recording, RecordingMeta, ReplayError};
use dp_support::crc32::crc32;
use dp_support::wire::{from_bytes, to_bytes};
use dp_vm::Tid;
use std::fmt;
use std::io::{Read, Write};

const TAG_SLICE: u8 = 0;
const TAG_WAKE: u8 = 1;
const TAG_SIGNAL: u8 = 2;
const REPEAT_FLAG: u8 = 1 << 2;
const TID_SHIFT: u32 = 3;
const TID_ESCAPE: u8 = 31;

/// Encodes a schedule log with the compact v2 codec.
pub fn encode_schedule_compact(log: &ScheduleLog) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, log.len() as u64);
    let mut last_instrs: Option<u64> = None;
    for e in log.events() {
        let (tag, tid, payload) = match e {
            SchedEvent::Slice { tid, instrs } => (TAG_SLICE, tid.0, Some(*instrs)),
            SchedEvent::LoggedWake { tid } => (TAG_WAKE, tid.0, None),
            SchedEvent::Signal { tid, sig } => (TAG_SIGNAL, tid.0, Some(*sig)),
        };
        let repeat = tag == TAG_SLICE && payload == last_instrs;
        let tid_bits = if tid < TID_ESCAPE as u32 {
            tid as u8
        } else {
            TID_ESCAPE
        };
        let mut lead = tag | (tid_bits << TID_SHIFT);
        if repeat {
            lead |= REPEAT_FLAG;
        }
        out.push(lead);
        if tid_bits == TID_ESCAPE {
            put_varint(&mut out, tid as u64);
        }
        match (tag, repeat) {
            (TAG_SLICE, false) | (TAG_SIGNAL, _) => put_varint(&mut out, payload.unwrap()),
            _ => {}
        }
        if tag == TAG_SLICE {
            last_instrs = payload;
        }
    }
    out
}

/// Decodes a v2-encoded schedule log.
///
/// # Errors
///
/// Fails on truncated or corrupt input.
pub fn decode_schedule_compact(buf: &[u8]) -> Result<ScheduleLog, CodecError> {
    let mut pos = 0;
    let count = get_varint(buf, &mut pos, "compact schedule count")?;
    let mut events = Vec::new();
    let mut last_instrs: Option<u64> = None;
    for _ in 0..count {
        let lead = *buf.get(pos).ok_or(CodecError {
            offset: pos,
            context: "compact schedule lead byte",
        })?;
        pos += 1;
        let tag = lead & 0x3;
        let repeat = lead & REPEAT_FLAG != 0;
        let tid_bits = lead >> TID_SHIFT;
        let tid = if tid_bits == TID_ESCAPE {
            Tid(get_varint(buf, &mut pos, "compact schedule tid")? as u32)
        } else {
            Tid(tid_bits as u32)
        };
        events.push(match tag {
            TAG_SLICE => {
                let instrs = if repeat {
                    last_instrs.ok_or(CodecError {
                        offset: pos,
                        context: "repeat flag with no previous slice",
                    })?
                } else {
                    get_varint(buf, &mut pos, "compact slice length")?
                };
                last_instrs = Some(instrs);
                SchedEvent::Slice { tid, instrs }
            }
            TAG_WAKE => SchedEvent::LoggedWake { tid },
            TAG_SIGNAL => SchedEvent::Signal {
                tid,
                sig: get_varint(buf, &mut pos, "compact signal number")?,
            },
            _ => {
                return Err(CodecError {
                    offset: pos,
                    context: "unknown compact schedule tag",
                })
            }
        });
    }
    if pos != buf.len() {
        return Err(CodecError {
            offset: pos,
            context: "trailing bytes after compact schedule",
        });
    }
    Ok(events.into_iter().collect())
}

/// What compaction achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Epochs processed.
    pub epochs: usize,
    /// Schedule events before run-length canonicalization.
    pub events_before: u64,
    /// Schedule events after.
    pub events_after: u64,
    /// Total schedule bytes in the v1 wire encoding.
    pub schedule_bytes_before: u64,
    /// Total schedule bytes in the v2 encoding.
    pub schedule_bytes_after: u64,
}

impl CompactionStats {
    /// Compression ratio, as `before / after` (> 1 means smaller).
    pub fn ratio(&self) -> f64 {
        if self.schedule_bytes_after == 0 {
            1.0
        } else {
            self.schedule_bytes_before as f64 / self.schedule_bytes_after as f64
        }
    }
}

impl fmt::Display for CompactionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} epochs: {} -> {} schedule events, {} -> {} schedule bytes ({:.2}x)",
            self.epochs,
            self.events_before,
            self.events_after,
            self.schedule_bytes_before,
            self.schedule_bytes_after,
            self.ratio()
        )
    }
}

/// Compacts a recording in memory: run-length canonicalizes every epoch's
/// schedule (merging adjacent same-thread slices, dropping empty ones) and
/// reports the byte savings of the v2 re-encode. The returned recording is
/// replay-equivalent to the input.
pub fn compact(recording: &Recording) -> (Recording, CompactionStats) {
    let mut out = recording.clone();
    let mut stats = CompactionStats {
        epochs: recording.epochs.len(),
        events_before: 0,
        events_after: 0,
        schedule_bytes_before: 0,
        schedule_bytes_after: 0,
    };
    for epoch in &mut out.epochs {
        stats.events_before += epoch.schedule.len() as u64;
        stats.schedule_bytes_before += codec::encode_schedule(&epoch.schedule).len() as u64;
        // `collect` re-applies the canonical coalescing rules; a schedule
        // straight off the recorder is usually canonical already, but logs
        // decoded from the wire or assembled by tools need not be.
        epoch.schedule = epoch.schedule.events().iter().copied().collect();
        stats.events_after += epoch.schedule.len() as u64;
        stats.schedule_bytes_after += encode_schedule_compact(&epoch.schedule).len() as u64;
    }
    (out, stats)
}

/// Compact-container magic: "DPRZ" (DoublePlay Recording, Zipped).
const MAGIC: [u8; 4] = *b"DPRZ";
/// Compact-container format version.
const FORMAT_VERSION: u32 = 1;

fn corrupt(detail: String) -> ReplayError {
    ReplayError::Corrupt { detail }
}

fn write_section<W: Write>(writer: &mut W, payload: &[u8]) -> std::io::Result<()> {
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.write_all(&crc32(payload).to_le_bytes())
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn get_bytes<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    context: &'static str,
) -> Result<&'a [u8], CodecError> {
    let len = get_varint(buf, pos, context)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or(CodecError {
            offset: *pos,
            context,
        })?;
    let s = &buf[*pos..end];
    *pos = end;
    Ok(s)
}

fn encode_epoch(epoch: &EpochRecord) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, epoch.index as u64);
    put_bytes(&mut out, &encode_schedule_compact(&epoch.schedule));
    put_bytes(&mut out, &codec::encode_syscalls(&epoch.syscalls));
    out.extend_from_slice(&epoch.end_machine_hash.to_le_bytes());
    put_bytes(&mut out, &to_bytes(&epoch.external));
    put_bytes(&mut out, &to_bytes(&epoch.start));
    put_varint(&mut out, epoch.tp_cycles);
    out
}

fn decode_epoch(buf: &[u8]) -> Result<EpochRecord, ReplayError> {
    let bad = |e: CodecError| corrupt(format!("compact epoch: {e}"));
    let mut pos = 0;
    let index = get_varint(buf, &mut pos, "epoch index").map_err(bad)? as u32;
    let sched_bytes = get_bytes(buf, &mut pos, "compact schedule").map_err(bad)?;
    let schedule = decode_schedule_compact(sched_bytes).map_err(bad)?;
    let sys_bytes = get_bytes(buf, &mut pos, "syscall log").map_err(bad)?;
    let syscalls = codec::decode_syscalls(sys_bytes).map_err(bad)?;
    if pos + 8 > buf.len() {
        return Err(corrupt("compact epoch: truncated end hash".into()));
    }
    let end_machine_hash = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
    pos += 8;
    let external = from_bytes(get_bytes(buf, &mut pos, "external chunks").map_err(bad)?)
        .map_err(|e| corrupt(format!("compact epoch external: {e}")))?;
    let start = from_bytes(get_bytes(buf, &mut pos, "start checkpoint").map_err(bad)?)
        .map_err(|e| corrupt(format!("compact epoch checkpoint: {e}")))?;
    let tp_cycles = get_varint(buf, &mut pos, "tp cycles").map_err(bad)?;
    if pos != buf.len() {
        return Err(corrupt("compact epoch: trailing bytes".into()));
    }
    Ok(EpochRecord {
        index,
        schedule,
        syscalls,
        end_machine_hash,
        external,
        start,
        tp_cycles,
    })
}

/// Serializes a recording in the compact `DPRZ` container: magic, version,
/// then CRC32-guarded sections exactly like `DPRC`, with every schedule
/// log in the v2 encoding. The recording is canonicalized with
/// [`compact`] first, so saving is itself the compaction pass.
///
/// # Errors
///
/// I/O failures from the writer, and `InvalidInput` when the epoch count
/// does not fit the container's u32 count field (saving would silently
/// truncate the tail).
pub fn save_compact<W: Write>(recording: &Recording, mut writer: W) -> std::io::Result<()> {
    let (canonical, _) = compact(recording);
    let count = u32::try_from(canonical.epochs.len()).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "{} epochs exceed the container's u32 epoch count",
                canonical.epochs.len()
            ),
        )
    })?;
    writer.write_all(&MAGIC)?;
    writer.write_all(&FORMAT_VERSION.to_le_bytes())?;
    write_section(&mut writer, &to_bytes(&canonical.meta))?;
    write_section(&mut writer, &to_bytes(&canonical.initial))?;
    writer.write_all(&count.to_le_bytes())?;
    for epoch in &canonical.epochs {
        write_section(&mut writer, &encode_epoch(epoch))?;
    }
    Ok(())
}

/// Bounds-checked section reader shared by [`load_compact`].
struct Container<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Container<'a> {
    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], ReplayError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt(format!("truncated at {what} (offset {})", self.pos)))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32_le(&mut self, what: &str) -> Result<u32, ReplayError> {
        let raw = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
    }

    fn section(&mut self, what: &str) -> Result<&'a [u8], ReplayError> {
        let len = self.u32_le(what)? as usize;
        let payload = self.bytes(len, what)?;
        let stored = self.u32_le(what)?;
        let actual = crc32(payload);
        if stored != actual {
            return Err(corrupt(format!(
                "{what} checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        Ok(payload)
    }
}

/// Deserializes a compact `DPRZ` recording, validating magic, version, and
/// every section checksum.
///
/// # Errors
///
/// [`ReplayError::Corrupt`] for any malformed, truncated, or bit-flipped
/// container — never a panic.
pub fn load_compact(buf: &[u8]) -> Result<Recording, ReplayError> {
    let mut c = Container { buf, pos: 0 };
    let magic = c.bytes(4, "magic")?;
    if magic != MAGIC {
        return Err(corrupt(format!("bad magic {magic:02x?}")));
    }
    let version = c.u32_le("format version")?;
    if version != FORMAT_VERSION {
        return Err(corrupt(format!(
            "unsupported compact format version {version} (expected {FORMAT_VERSION})"
        )));
    }
    let meta: RecordingMeta = from_bytes(c.section("meta")?)
        .map_err(|e| corrupt(format!("meta payload undecodable: {e}")))?;
    let initial = from_bytes(c.section("initial checkpoint")?)
        .map_err(|e| corrupt(format!("initial checkpoint undecodable: {e}")))?;
    let count = c.u32_le("epoch count")?;
    // Plausibility: each epoch section costs at least its length prefix
    // and CRC trailer; reject a count that cannot fit before looping.
    let floor = (count as u64).saturating_mul(8);
    let remaining = (c.buf.len() - c.pos) as u64;
    if floor > remaining {
        return Err(corrupt(format!(
            "epoch count {count} implies at least {floor} bytes but only {remaining} remain"
        )));
    }
    let mut epochs = Vec::new();
    for i in 0..count {
        epochs.push(decode_epoch(c.section(&format!("epoch {i}"))?)?);
    }
    if c.pos != c.buf.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after last epoch",
            c.buf.len() - c.pos
        )));
    }
    Ok(Recording {
        meta,
        initial,
        epochs,
    })
}

/// Loads a recording from any container format, dispatching on the magic:
/// `DPRC` (standard), `DPRZ` (compact), or `DPRJ` (streaming journal).
///
/// A journal loads only when it is *clean* — finalized by a run that
/// completed. A journal left behind by a crash is reported as corrupt
/// here so the data loss is never silent; recover its committed prefix
/// explicitly with `dp salvage` ([`dp_core::JournalReader::salvage`]).
///
/// # Errors
///
/// [`ReplayError::Corrupt`] for unrecognized or malformed containers and
/// for unfinalized journals.
pub fn load_any(buf: &[u8]) -> Result<Recording, ReplayError> {
    match buf.get(..4) {
        Some(m) if m == MAGIC => load_compact(buf),
        Some(m) if m == *b"DPRC" => Recording::load(buf),
        Some(m) if m == dp_core::journal::JOURNAL_MAGIC => {
            let salvaged = dp_core::JournalReader::salvage(buf)?;
            if salvaged.clean {
                Ok(salvaged.recording)
            } else {
                Err(corrupt(format!(
                    "journal is not finalized ({}; {} committed epochs, {} bytes dropped) — \
                     recover the committed prefix with `dp salvage`",
                    salvaged.detail,
                    salvaged.committed(),
                    salvaged.dropped_bytes
                )))
            }
        }
        Some(m) => Err(corrupt(format!("unrecognized container magic {m:02x?}"))),
        None => Err(corrupt(format!(
            "file too short to be a recording ({} bytes)",
            buf.len()
        ))),
    }
}

/// [`load_any`] over a reader.
///
/// # Errors
///
/// [`ReplayError::Io`] if the reader fails, otherwise as [`load_any`].
pub fn load_any_reader<R: Read>(mut reader: R) -> Result<Recording, ReplayError> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf).map_err(|e| ReplayError::Io {
        detail: e.to_string(),
    })?;
    load_any(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> ScheduleLog {
        let mut log = ScheduleLog::new();
        log.push_slice(Tid(0), 200);
        log.push_slice(Tid(1), 200); // repeat length
        log.push_wake(Tid(2));
        log.push_slice(Tid(1), 200); // repeat again
        log.push_signal(Tid(0), 9);
        log.push_slice(Tid(40), 7); // escaped tid
        log.push_slice(Tid(0), 1_000_000);
        log
    }

    #[test]
    fn v2_roundtrip() {
        let log = sample_log();
        let buf = encode_schedule_compact(&log);
        assert_eq!(decode_schedule_compact(&buf).unwrap(), log);
    }

    #[test]
    fn v2_never_larger_than_v1() {
        let log = sample_log();
        assert!(encode_schedule_compact(&log).len() < codec::encode_schedule(&log).len());
        // Even a single-event log is no larger.
        let mut one = ScheduleLog::new();
        one.push_slice(Tid(0), 3);
        assert!(encode_schedule_compact(&one).len() <= codec::encode_schedule(&one).len());
    }

    #[test]
    fn v2_truncation_and_bad_repeat_are_errors() {
        let log = sample_log();
        let buf = encode_schedule_compact(&log);
        for cut in 1..buf.len() {
            assert!(
                decode_schedule_compact(&buf[..cut]).is_err(),
                "truncation at {cut} not detected"
            );
        }
        // A repeat flag with no previous slice is corrupt.
        let mut bad = Vec::new();
        put_varint(&mut bad, 1);
        bad.push(TAG_SLICE | REPEAT_FLAG);
        assert!(decode_schedule_compact(&bad).is_err());
    }

    #[test]
    fn load_any_rejects_garbage() {
        assert!(load_any(b"").is_err());
        assert!(load_any(b"WAT?xxxxxxxx").is_err());
        assert!(load_any(b"DPRZ").is_err()); // truncated compact container
    }
}
