//! # dp-analyze — offline analysis of DoublePlay recordings.
//!
//! DoublePlay's recording is cheap *because* analysis is deferred: the
//! paper's stated use cases — debugging and race diagnosis — happen on the
//! log afterwards. This crate is that deferred half. It consumes saved
//! recordings (the `DPRC` artifact) and fully verified observed replays to
//! produce correctness reports:
//!
//! * [`race`] — a vector-clock happens-before **data-race detector** that
//!   re-runs each epoch under the VM's observer hooks, builds
//!   happens-before edges from spawn/join, futex wake→wait, sync-word
//!   accesses, and signal delivery, and names the racy address pairs
//!   (thread ids, instruction counts, epoch) behind what recording saw
//!   only as opaque divergences;
//! * [`race::triage`] — divergence triage: localize the *first* racy
//!   access pair in a recording whose epochs rolled back;
//! * [`inspect`] — per-epoch schedule/syscall summaries of one recording;
//! * [`diff`] — structural comparison of two recordings of the same
//!   program (first diverging epoch, event index, byte offset);
//! * [`compact`] — lossless log compaction (run-length canonicalization of
//!   same-thread slices plus a tighter varint re-encode, saved as the
//!   `DPRZ` container) with a round-trip guarantee: compacted recordings
//!   replay to identical final-state hashes.

#![warn(missing_docs)]

pub mod compact;
pub mod diff;
pub mod inspect;
pub mod race;

pub use compact::{
    compact, load_any, load_any_reader, load_compact, save_compact, CompactionStats,
};
pub use diff::{diff, DivergencePoint, RecordingDiff};
pub use inspect::{inspect, EpochSummary, InspectReport};
pub use race::{detect_races, triage, AccessSite, Race, RaceReport, Triage};
