//! End-to-end and property tests for the analysis subsystem: race
//! detection on real workloads, compaction round-trips, and recording
//! diffs.

use dp_analyze::{compact, detect_races, diff, inspect, load_any, save_compact, triage};
use dp_core::logs::{codec, ScheduleLog};
use dp_core::{record, replay_sequential, DoublePlayConfig, GuestSpec};
use dp_os::guest::Rt;
use dp_os::{abi, kernel::WorldConfig};
use dp_support::check::check;
use dp_vm::builder::ProgramBuilder;
use dp_vm::{Reg, Tid, Width};
use dp_workloads::{racy_suite, suite, Size};
use std::sync::Arc;

/// A fully lock-protected shared counter: `workers` threads, `iters`
/// non-atomic increments each, every increment under a mutex. Race-free
/// by construction.
fn locked_counter_spec(iters: i64, workers: usize) -> GuestSpec {
    let mut pb = ProgramBuilder::new();
    let rt = Rt::install(&mut pb);
    let lock = pb.global("lock", 8);
    let counter = pb.global("counter", 8);

    let mut w = pb.function("worker");
    let top = w.label();
    let done = w.label();
    w.consti(Reg(10), 0);
    w.bind(top);
    w.bin(dp_vm::BinOp::Ltu, Reg(11), Reg(10), iters);
    w.jz(Reg(11), done);
    w.consti(Reg(0), lock as i64);
    w.call(rt.mutex_lock);
    // Deliberately non-atomic increment; the mutex is the only protection.
    w.consti(Reg(12), counter as i64);
    w.load(Reg(13), Reg(12), 0, Width::W8);
    w.add(Reg(13), Reg(13), 1i64);
    w.store(Reg(13), Reg(12), 0, Width::W8);
    w.consti(Reg(0), lock as i64);
    w.call(rt.mutex_unlock);
    w.add(Reg(10), Reg(10), 1i64);
    w.jmp(top);
    w.bind(done);
    w.consti(Reg(0), 0);
    w.syscall(abi::SYS_THREAD_EXIT);
    w.finish();

    let worker_id = pb.declare("worker");
    let mut f = pb.function("main");
    for _ in 0..workers {
        f.consti(Reg(0), worker_id.0 as i64);
        f.consti(Reg(1), 0);
        f.consti(Reg(2), 0);
        f.syscall(abi::SYS_SPAWN);
    }
    for t in 1..=workers as i64 {
        f.consti(Reg(0), t);
        f.syscall(abi::SYS_JOIN);
    }
    f.consti(Reg(9), counter as i64);
    f.load(Reg(0), Reg(9), 0, Width::W8);
    f.syscall(abi::SYS_EXIT);
    f.finish();
    GuestSpec::new(
        "locked-counter",
        Arc::new(pb.finish("main")),
        WorldConfig::default(),
    )
}

fn case_by_name(name: &str, threads: usize) -> dp_workloads::WorkloadCase {
    suite(threads, Size::Small)
        .into_iter()
        .chain(racy_suite(threads, Size::Small))
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("no workload named {name}"))
}

#[test]
fn racey_counter_reports_races_with_full_site_info() {
    let case = case_by_name("racey-counter", 2);
    let config = DoublePlayConfig::new(2).epoch_cycles(50_000);
    let bundle = record(&case.spec, &config).unwrap();
    let report = detect_races(&bundle.recording, &case.spec.program).unwrap();
    assert!(report.is_racy(), "racey-counter must report races");
    let race = report.first_race().unwrap();
    assert_ne!(race.first.tid, race.second.tid, "racing threads differ");
    assert!(race.addr > 0, "race has an address");
    assert!(
        race.first.icount > 0 && race.second.icount > 0,
        "sites carry instruction counts"
    );
    assert!(
        (race.second.epoch as usize) < bundle.recording.epochs.len(),
        "race epoch in range"
    );
    // Triage points at the same first race.
    let t = triage(&bundle.recording, &case.spec.program)
        .unwrap()
        .expect("triage finds the race");
    assert_eq!(t.race.addr, race.addr);
    assert!(t.to_string().contains("race at"));
}

#[test]
fn synchronized_workloads_have_no_false_positives() {
    for name in ["radix", "water"] {
        let case = case_by_name(name, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(100_000);
        let bundle = record(&case.spec, &config).unwrap();
        let report = detect_races(&bundle.recording, &case.spec.program).unwrap();
        assert!(
            report.races.is_empty(),
            "{name} must be race-free, got: {:?}",
            report.races
        );
        assert!(report.sync_addrs > 0, "{name} uses synchronization");
    }
}

#[test]
fn prop_lock_protected_workload_is_race_free() {
    check("lock_protected_race_free", 4, |g| {
        let iters = g.range(100, 400) as i64;
        let workers = g.range(2, 4) as usize;
        let spec = locked_counter_spec(iters, workers);
        let config = DoublePlayConfig {
            tp_quantum: g.range(150, 2_000),
            tp_jitter: g.range(0, 500),
            ..DoublePlayConfig::new(workers)
                .epoch_cycles(g.range(5_000, 40_000))
                .hidden_seed(g.u64())
        };
        let bundle = record(&spec, &config).unwrap();
        let report = detect_races(&bundle.recording, &spec.program).unwrap();
        assert!(
            report.races.is_empty(),
            "false positive on lock-protected counter: {:?}",
            report.races
        );
    });
}

#[test]
fn prop_racey_workload_always_races() {
    check("racey_always_races", 4, |g| {
        let case = case_by_name("racey-counter", 2);
        let config = DoublePlayConfig {
            tp_quantum: g.range(150, 2_000),
            tp_jitter: g.range(0, 500),
            ..DoublePlayConfig::new(2)
                .epoch_cycles(g.range(20_000, 80_000))
                .hidden_seed(g.u64())
        };
        let bundle = record(&case.spec, &config).unwrap();
        let report = detect_races(&bundle.recording, &case.spec.program).unwrap();
        assert!(
            report.is_racy(),
            "racey-counter must race under any schedule"
        );
    });
}

#[test]
fn prop_compaction_roundtrip_preserves_replay() {
    check("compaction_roundtrip", 4, |g| {
        let name = *g.pick(&["racey-counter", "pfscan", "radix"]);
        let case = case_by_name(name, 2);
        let config = DoublePlayConfig::new(2)
            .epoch_cycles(g.range(20_000, 100_000))
            .hidden_seed(g.u64());
        let bundle = record(&case.spec, &config).unwrap();
        let before = replay_sequential(&bundle.recording, &case.spec.program).unwrap();

        let (canonical, stats) = compact(&bundle.recording);
        assert!(
            stats.schedule_bytes_after < stats.schedule_bytes_before,
            "{name}: compaction must shrink schedule bytes ({} -> {})",
            stats.schedule_bytes_before,
            stats.schedule_bytes_after
        );
        let after = replay_sequential(&canonical, &case.spec.program).unwrap();
        assert_eq!(after.final_hash, before.final_hash, "{name}: in-memory");

        // Container round-trip: save compact, load, replay again.
        let mut buf = Vec::new();
        save_compact(&bundle.recording, &mut buf).unwrap();
        let loaded = load_any(&buf).unwrap();
        let replayed = replay_sequential(&loaded, &case.spec.program).unwrap();
        assert_eq!(
            replayed.final_hash, before.final_hash,
            "{name}: container round-trip"
        );
        assert_eq!(replayed.instructions, before.instructions);
    });
}

#[test]
fn prop_v2_codec_roundtrips_random_schedules() {
    check("v2_codec_roundtrip", 64, |g| {
        let mut log = ScheduleLog::new();
        let quantum = g.range(1, 5_000);
        for _ in 0..g.range(0, 200) {
            let tid = Tid(g.below(40) as u32);
            match g.below(10) {
                0 => log.push_wake(tid),
                1 => log.push_signal(tid, g.below(32)),
                // Mostly quantum-sized slices, as the recorder produces.
                _ if g.prob(0.7) => log.push_slice(tid, quantum),
                _ => {
                    let magnitude = g.range(1, 40);
                    log.push_slice(tid, g.range(1, 1 << magnitude));
                }
            }
        }
        let v2 = dp_analyze::compact::encode_schedule_compact(&log);
        let back = dp_analyze::compact::decode_schedule_compact(&v2).unwrap();
        assert_eq!(back, log);
        assert!(
            v2.len() <= codec::encode_schedule(&log).len(),
            "v2 must never be larger than v1"
        );
    });
}

#[test]
fn diff_localizes_first_divergence() {
    // The schedule log is the epoch-parallel run's and is deterministic
    // for a config, so structural divergence comes from changing the
    // epoch length, not the hidden thread-parallel seed.
    let mk = |epoch_cycles: u64| {
        let config = DoublePlayConfig::new(2).epoch_cycles(epoch_cycles);
        record(&case_by_name("racey-counter", 2).spec, &config).unwrap()
    };
    let a = mk(5_000);
    let b = mk(10_000);

    let same = diff(&a.recording, &a.recording);
    assert!(same.identical(), "a recording diffs clean against itself");

    let d = diff(&a.recording, &b.recording);
    assert!(!d.identical(), "different schedules must diff");
    assert!(d.to_string().contains("first divergence"));
    let p = d.first_divergence.expect("schedules diverge somewhere");
    assert_eq!(p.field, "schedule");
    assert!(p.event_index.is_some());
}

#[test]
fn inspect_summarizes_epochs() {
    let case = case_by_name("pfscan", 2);
    let config = DoublePlayConfig::new(2).epoch_cycles(50_000);
    let bundle = record(&case.spec, &config).unwrap();
    let report = inspect(&bundle.recording).unwrap();
    assert_eq!(report.guest_name, "pfscan");
    assert_eq!(report.epochs.len(), bundle.recording.epochs.len());
    assert!(report.total_instructions() > 0);
    let text = report.to_string();
    assert!(text.contains("epoch"));
    assert!(text.contains("thread"));
}
