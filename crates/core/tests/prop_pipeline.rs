//! Byte-identity property suite for the multithreaded recording pipeline.
//!
//! The pipelined recorder's contract is absolute: for any seed, worker
//! count, and fault plan, it must produce a `Recording` whose serialized
//! bytes — and whose streamed journal bytes — are identical to the
//! sequential driver's, along with identical modeled statistics. This
//! suite sweeps seeds × worker counts × fault plans over racy and
//! synchronized guests, covering clean runs, divergences, worker panics,
//! divergence storms (serialized fallback), and injected I/O faults.

use dp_core::{
    record_to, replay_sequential, DoublePlayConfig, FaultPlan, GuestSpec, JournalWriter,
};
use dp_os::abi;
use dp_os::kernel::WorldConfig;
use dp_vm::builder::ProgramBuilder;
use dp_vm::Reg;
use std::sync::Arc;

/// A two-thread shared-counter guest. With `atomic` the increments are
/// `fetch_add` (schedule-independent — never diverges); without, they are
/// racy read-modify-write sequences (divergence-prone under fine-grained
/// interleaving).
fn counter_spec(iters: i64, atomic: bool) -> GuestSpec {
    let mut pb = ProgramBuilder::new();
    let counter = pb.global("counter", 8);
    let mut w = pb.function("worker");
    let top = w.label();
    let done = w.label();
    w.consti(Reg(10), 0);
    w.consti(Reg(9), counter as i64);
    w.bind(top);
    w.bin(dp_vm::BinOp::Ltu, Reg(11), Reg(10), iters);
    w.jz(Reg(11), done);
    if atomic {
        w.fetch_add(Reg(12), Reg(9), 1i64);
    } else {
        w.load(Reg(12), Reg(9), 0, dp_vm::Width::W8);
        w.add(Reg(12), Reg(12), 1i64);
        w.store(Reg(12), Reg(9), 0, dp_vm::Width::W8);
    }
    w.add(Reg(10), Reg(10), 1i64);
    w.jmp(top);
    w.bind(done);
    w.consti(Reg(0), 0);
    w.syscall(abi::SYS_THREAD_EXIT);
    w.finish();
    let worker = pb.declare("worker");
    let mut f = pb.function("main");
    for _ in 0..2 {
        f.consti(Reg(0), worker.0 as i64);
        f.consti(Reg(1), 0);
        f.consti(Reg(2), 0);
        f.syscall(abi::SYS_SPAWN);
    }
    for t in 1..=2i64 {
        f.consti(Reg(0), t);
        f.syscall(abi::SYS_JOIN);
    }
    f.consti(Reg(9), counter as i64);
    f.load(Reg(0), Reg(9), 0, dp_vm::Width::W8);
    f.syscall(abi::SYS_EXIT);
    f.finish();
    let name = if atomic { "atomic" } else { "racy" };
    GuestSpec::new(name, Arc::new(pb.finish("main")), WorldConfig::default())
}

/// Records `spec` sequentially and pipelined (same config modulo the
/// `pipelined` flag, which is excluded from the wire format) and asserts
/// the full identity contract. Returns the sequential bundle's divergence
/// and serialized-epoch counts so sweeps can assert coverage.
fn assert_byte_identical(spec: &GuestSpec, config: &DoublePlayConfig, what: &str) -> (u64, u64) {
    let mut seq_journal = JournalWriter::new(Vec::new()).unwrap();
    let mut pip_journal = JournalWriter::new(Vec::new()).unwrap();
    let seq = record_to(spec, &config.pipelined(false), &mut seq_journal);
    let pip = record_to(spec, &config.pipelined(true), &mut pip_journal);
    let (seq, pip) = match (seq, pip) {
        (Ok(s), Ok(p)) => (s, p),
        (Err(se), Err(pe)) => {
            // A run the recorder legitimately aborts (e.g. a fault plan
            // that exhausts the retry budget) must abort identically:
            // same error, same committed journal prefix.
            assert_eq!(
                format!("{se:?}"),
                format!("{pe:?}"),
                "{what}: errors differ"
            );
            assert_eq!(
                seq_journal.into_inner(),
                pip_journal.into_inner(),
                "{what}: journal prefixes differ on abort"
            );
            return (0, 0);
        }
        (s, p) => panic!("{what}: drivers disagree on success: seq={s:?} pip={p:?}"),
    };

    assert_eq!(seq.stats, pip.stats, "{what}: modeled stats differ");
    assert_eq!(
        seq.recording.epochs.len(),
        pip.recording.epochs.len(),
        "{what}: epoch counts differ"
    );
    let mut seq_bytes = Vec::new();
    let mut pip_bytes = Vec::new();
    seq.recording.save(&mut seq_bytes).unwrap();
    pip.recording.save(&mut pip_bytes).unwrap();
    assert_eq!(seq_bytes, pip_bytes, "{what}: recording bytes differ");
    assert_eq!(
        seq_journal.into_inner(),
        pip_journal.into_inner(),
        "{what}: journal bytes differ"
    );

    // The shared artifact must also actually replay.
    let report = replay_sequential(&pip.recording, &spec.program).unwrap();
    assert_eq!(report.epochs as u64, pip.stats.epochs, "{what}: replay");
    (seq.stats.divergences, seq.stats.serialized_epochs)
}

fn base_config(seed: u64, workers: usize) -> DoublePlayConfig {
    DoublePlayConfig {
        tp_quantum: 200,
        tp_jitter: 300,
        ..DoublePlayConfig::new(2)
            .epoch_cycles(8_000)
            .hidden_seed(seed)
            .spare_workers(workers)
    }
}

#[test]
fn clean_runs_are_byte_identical_across_worker_counts() {
    for workers in [1, 2, 4] {
        for seed in 0..3 {
            let spec = counter_spec(1_200, true);
            let config = base_config(seed, workers);
            let (div, _) =
                assert_byte_identical(&spec, &config, &format!("clean w={workers} s={seed}"));
            assert_eq!(div, 0, "atomic guest must not diverge");
        }
    }
}

#[test]
fn divergent_runs_are_byte_identical_across_worker_counts() {
    let mut total_div = 0;
    for workers in [1, 2, 4] {
        for seed in 0..3 {
            let spec = counter_spec(1_500, false);
            let config = base_config(seed, workers);
            let (div, _) =
                assert_byte_identical(&spec, &config, &format!("racy w={workers} s={seed}"));
            total_div += div;
        }
    }
    assert!(total_div > 0, "no seed diverged; rollback path unexercised");
}

#[test]
fn worker_panic_storms_are_byte_identical() {
    dp_core::faults::silence_injected_panics();
    for workers in [1, 2, 4] {
        for seed in 0..3 {
            let spec = counter_spec(1_200, true);
            let plan = FaultPlan::none().seed(seed).worker_panics_with(0.3);
            let config = base_config(seed, workers).faults(plan);
            assert_byte_identical(&spec, &config, &format!("panics w={workers} s={seed}"));
        }
    }
}

#[test]
fn divergence_storms_and_serialized_fallback_are_byte_identical() {
    // Forced storms: every storm epoch diverges, the sliding window trips,
    // and both drivers must fall back to serialized recording identically.
    let mut serialized = 0;
    for workers in [2, 4] {
        for seed in 0..4 {
            let spec = counter_spec(4_000, false);
            let plan = FaultPlan::none().seed(seed).storms(1.0, 4, 64);
            let config = DoublePlayConfig {
                tp_quantum: 6_000,
                tp_jitter: 2_000,
                ..DoublePlayConfig::new(2)
                    .epoch_cycles(6_000)
                    .ep_quantum(512)
                    .hidden_seed(seed)
                    .spare_workers(workers)
                    .faults(plan)
            };
            let (_, ser) =
                assert_byte_identical(&spec, &config, &format!("storm w={workers} s={seed}"));
            serialized += ser;
        }
    }
    assert!(serialized > 0, "no storm engaged the serialized fallback");
}

#[test]
fn io_faults_are_byte_identical() {
    for workers in [1, 2] {
        for seed in 0..2 {
            let spec = counter_spec(1_200, true);
            let plan = FaultPlan::none().seed(seed).io(0.2, 0.2, 0.1);
            let config = base_config(seed, workers).faults(plan);
            assert_byte_identical(&spec, &config, &format!("io w={workers} s={seed}"));
        }
    }
}

#[test]
fn mixed_fault_soup_is_byte_identical() {
    // Everything at once: panics + storms + I/O faults on a racy guest.
    dp_core::faults::silence_injected_panics();
    for seed in 0..3 {
        let spec = counter_spec(2_000, false);
        let plan = FaultPlan::none()
            .seed(seed)
            .worker_panics_with(0.2)
            .storms(0.4, 3, 32)
            .io(0.1, 0.1, 0.05);
        let config = base_config(seed, 3).faults(plan);
        assert_byte_identical(&spec, &config, &format!("soup s={seed}"));
    }
}
