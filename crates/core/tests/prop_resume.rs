//! Crash-resume identity oracle.
//!
//! The contract under test: kill a recording run at **any byte** of its
//! journal, salvage, truncate the torn tail, re-enact the committed
//! prefix, and continue — the final journal (and its recording) must be
//! **byte-identical** to the run that never crashed. Swept across hidden
//! seeds, shard counts, and crash instants, over guests that exercise
//! all three epoch fates (clean commits, divergences with forward
//! recovery, degraded serialized mode).
//!
//! Tampering and misuse must surface as typed [`ResumeError`]s — never a
//! panic, never a silent wrong continuation.

use dp_core::journal::RecordSink;
use dp_core::{
    record_to, resume_from, DoublePlayConfig, FaultPlan, GuestSpec, JournalReader, JournalWriter,
    Recording, ResumeError, ShardedJournalWriter,
};
use dp_os::abi;
use dp_os::kernel::WorldConfig;
use dp_vm::builder::ProgramBuilder;
use dp_vm::Reg;
use std::sync::Arc;

/// Two-thread counter guest; `racy` picks unsynchronized read-modify-write
/// increments (divergence-prone) over atomic fetch-adds (always clean).
fn counter_spec(name: &str, iters: i64, racy: bool) -> GuestSpec {
    let mut pb = ProgramBuilder::new();
    let counter = pb.global("counter", 8);
    let mut w = pb.function("worker");
    let top = w.label();
    let done = w.label();
    w.consti(Reg(10), 0);
    w.consti(Reg(9), counter as i64);
    w.bind(top);
    w.bin(dp_vm::BinOp::Ltu, Reg(11), Reg(10), iters);
    w.jz(Reg(11), done);
    if racy {
        w.load(Reg(12), Reg(9), 0, dp_vm::Width::W8);
        w.add(Reg(12), Reg(12), 1i64);
        w.store(Reg(12), Reg(9), 0, dp_vm::Width::W8);
    } else {
        w.fetch_add(Reg(12), Reg(9), 1i64);
    }
    w.add(Reg(10), Reg(10), 1i64);
    w.jmp(top);
    w.bind(done);
    w.consti(Reg(0), 0);
    w.syscall(abi::SYS_THREAD_EXIT);
    w.finish();
    let worker = pb.declare("worker");
    let mut f = pb.function("main");
    for _ in 0..2 {
        f.consti(Reg(0), worker.0 as i64);
        f.consti(Reg(1), 0);
        f.consti(Reg(2), 0);
        f.syscall(abi::SYS_SPAWN);
    }
    for t in 1..=2i64 {
        f.consti(Reg(0), t);
        f.syscall(abi::SYS_JOIN);
    }
    f.consti(Reg(9), counter as i64);
    f.load(Reg(0), Reg(9), 0, dp_vm::Width::W8);
    f.syscall(abi::SYS_EXIT);
    f.finish();
    GuestSpec::new(name, Arc::new(pb.finish("main")), WorldConfig::default())
}

/// Records the uninterrupted solo run into a single `DPRJ` stream,
/// returning the journal bytes, the recording, and each epoch's commit
/// offset (the durability point a crash can land on either side of).
fn solo_journal(spec: &GuestSpec, config: &DoublePlayConfig) -> (Vec<u8>, Recording, Vec<usize>) {
    let mut w = JournalWriter::new(Vec::new()).unwrap();
    let bundle = record_to(spec, config, &mut w).unwrap();
    let full = w.into_inner();
    // Re-journal the recording to learn the per-epoch commit offsets; the
    // byte stream must agree with what the live run produced.
    let mut rw = JournalWriter::new(Vec::new()).unwrap();
    rw.begin(&bundle.recording.meta, &bundle.recording.initial)
        .unwrap();
    let mut commits = Vec::new();
    for e in &bundle.recording.epochs {
        rw.epoch(e).unwrap();
        commits.push(rw.bytes_written() as usize);
    }
    rw.finish().unwrap();
    assert_eq!(rw.into_inner(), full, "re-journaled bytes differ from live");
    (full, bundle.recording, commits)
}

/// Crash instants worth sweeping: both sides of every commit durability
/// point, plus a coarse stride over the whole byte range (mid-frame tears).
fn crash_instants(len: usize, commits: &[usize], stride: usize) -> Vec<usize> {
    let mut cuts: Vec<usize> = Vec::new();
    for &c in commits {
        cuts.extend([c.saturating_sub(1), c, (c + 1).min(len)]);
    }
    cuts.extend((0..=len).step_by(stride));
    cuts.push(len.saturating_sub(1));
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// Kills the run at `cut` bytes, salvages, resumes, and checks the final
/// journal is byte-identical to `full`. Returns how many epochs the
/// salvage recovered (so callers can assert sweep coverage).
fn crash_and_resume_at(
    spec: &GuestSpec,
    config: &DoublePlayConfig,
    full: &[u8],
    recording: &Recording,
    cut: usize,
    first_commit: usize,
) -> Option<usize> {
    let torn = &full[..cut];
    let s = match JournalReader::salvage(torn) {
        Ok(s) => s,
        Err(_) => {
            // Only a cut inside the header itself may be unsalvageable.
            assert!(cut < first_commit, "cut {cut} unsalvageable past a commit");
            return None;
        }
    };
    let committed = s.committed();
    let prefix = torn[..s.committed_bytes].to_vec();
    let mut w = JournalWriter::resume_after(prefix, &s);
    let bundle = resume_from(spec, config, s.recording, &mut w)
        .unwrap_or_else(|e| panic!("cut {cut} ({committed} epochs salvaged): resume failed: {e}"));
    assert_eq!(
        w.into_inner(),
        full,
        "cut {cut}: resumed journal differs from the uninterrupted run"
    );
    assert_eq!(
        bundle.recording.epochs.len(),
        recording.epochs.len(),
        "cut {cut}: resumed recording has a different epoch count"
    );
    for (a, b) in bundle.recording.epochs.iter().zip(&recording.epochs) {
        assert_eq!(a.end_machine_hash, b.end_machine_hash, "cut {cut}");
        assert_eq!(a.syscalls, b.syscalls, "cut {cut}");
    }
    Some(committed)
}

/// Clean-path sweep: an atomic guest never diverges, so every prefix epoch
/// re-enacts through the thread-parallel side alone. Swept across hidden
/// seeds and every commit boundary plus mid-frame tears.
#[test]
fn resume_is_byte_identical_across_crash_instants_clean() {
    let spec = counter_spec("resume-clean", 900, false);
    for seed in [0x5eed_0fd0_0b1eu64, 0xabba_1972] {
        let config = DoublePlayConfig::new(2)
            .epoch_cycles(2_000)
            .keep_checkpoints(false)
            .hidden_seed(seed);
        let (full, recording, commits) = solo_journal(&spec, &config);
        assert!(recording.epochs.len() >= 3, "want a multi-epoch run");
        let mut salvaged_counts = Vec::new();
        for cut in crash_instants(full.len(), &commits, 37) {
            if let Some(k) = crash_and_resume_at(&spec, &config, &full, &recording, cut, commits[0])
            {
                salvaged_counts.push(k);
            }
        }
        // The sweep must actually cover resumes from every prefix length,
        // including zero epochs and the full prefix with FINAL lost.
        for k in 0..=recording.epochs.len() {
            assert!(
                salvaged_counts.contains(&k),
                "seed {seed:#x}: no cut salvaged {k} epochs"
            );
        }
    }
}

/// Divergence-path sweep: a racy guest plus injected verify-worker panics
/// drives the recorder through forward recovery and into degraded
/// serialized mode, so the re-enactment's diverged and serialized branches
/// both run, hash-checked, at every crash instant.
#[test]
fn resume_is_byte_identical_across_crash_instants_diverging() {
    dp_core::faults::silence_injected_panics();
    let spec = counter_spec("resume-racy", 700, true);
    let config = DoublePlayConfig::new(2)
        .epoch_cycles(2_000)
        .keep_checkpoints(false)
        .faults(FaultPlan::none().seed(0xfa17).worker_panics_with(0.35));
    let (full, recording, commits) = solo_journal(&spec, &config);
    assert!(recording.epochs.len() >= 3, "want a multi-epoch run");
    for cut in crash_instants(full.len(), &commits, 101) {
        crash_and_resume_at(&spec, &config, &full, &recording, cut, commits[0]);
    }
}

/// Sharded sweep: tear each of N lanes at an independently chosen byte,
/// salvage the merged prefix, truncate every lane to its `shard_keep`
/// point, resume — every lane's final stream must match the uninterrupted
/// sharded run byte for byte.
#[test]
fn resume_is_byte_identical_across_shard_tears() {
    let spec = counter_spec("resume-shards", 900, false);
    let config = DoublePlayConfig::new(2)
        .epoch_cycles(2_000)
        .keep_checkpoints(false);
    for shards in [2usize, 3] {
        let mut w =
            ShardedJournalWriter::new((0..shards).map(|_| Vec::<u8>::new()).collect(), 2).unwrap();
        let bundle = record_to(&spec, &config, &mut w).unwrap();
        let full = w.into_writers().unwrap();
        assert!(bundle.recording.epochs.len() >= 3);
        // Deterministic cut tuples: a multiplicative generator walks each
        // lane's byte range so tears land mid-frame, on frame boundaries,
        // and at wildly unequal depths across lanes.
        let mut x = 0x9e37_79b9u64;
        for _ in 0..10 {
            let torn: Vec<Vec<u8>> = full
                .iter()
                .map(|lane| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let cut = (x >> 16) as usize % (lane.len() + 1);
                    lane[..cut].to_vec()
                })
                .collect();
            let s = match JournalReader::salvage_shards(&torn) {
                Ok(s) => s,
                // A tear inside shard 0's header loses meta: typed, fine.
                Err(_) => continue,
            };
            // A lane torn inside its own header is unusable: resume is
            // forbidden (`shard_keep` reports `None`), only re-recording
            // from the merged prefix remains.
            let Some(keeps) = s.shard_keep.iter().copied().collect::<Option<Vec<usize>>>() else {
                continue;
            };
            let lanes: Vec<Vec<u8>> = torn
                .iter()
                .zip(&keeps)
                .map(|(lane, &keep)| lane[..keep].to_vec())
                .collect();
            let committed = s.committed();
            let mut rw = ShardedJournalWriter::resume(lanes, 2, &s).unwrap();
            resume_from(&spec, &config, s.recording, &mut rw).unwrap_or_else(|e| {
                panic!("{shards} shards, {committed} epochs salvaged: resume failed: {e}")
            });
            assert_eq!(
                rw.into_writers().unwrap(),
                full,
                "{shards} shards, {committed} epochs salvaged: lanes differ after resume"
            );
        }
    }
}

/// A tampered per-epoch identity hash is caught by the prefix re-enactment
/// as a typed `PrefixDiverged` naming the tampered epoch — never a silent
/// continuation on wrong state.
#[test]
fn tampered_hash_surfaces_as_prefix_diverged() {
    let spec = counter_spec("resume-tamper", 900, false);
    let config = DoublePlayConfig::new(2)
        .epoch_cycles(2_000)
        .keep_checkpoints(false);
    let (full, _, commits) = solo_journal(&spec, &config);
    let cut = commits[2];
    for victim in 0..3u32 {
        let mut s = JournalReader::salvage(&full[..cut]).unwrap();
        assert_eq!(s.committed(), 3);
        s.recording.epochs[victim as usize].end_machine_hash ^= 0xdead_beef;
        let expected = s.recording.epochs[victim as usize].end_machine_hash;
        let prefix = full[..s.committed_bytes].to_vec();
        let mut w = JournalWriter::resume_after(prefix, &s);
        match resume_from(&spec, &config, s.recording, &mut w) {
            Err(ResumeError::PrefixDiverged {
                epoch, expected: e, ..
            }) => {
                assert_eq!(epoch, victim);
                assert_eq!(e, expected);
            }
            Err(other) => panic!("tampered epoch {victim}: wrong error {other}"),
            Ok(_) => panic!("tampered epoch {victim}: resume succeeded"),
        }
    }
}

/// Prefixes that cannot belong to the offered guest/config pairing are
/// rejected up front as `BadPrefix` — wrong guest, wrong hidden seed —
/// while the `pipelined` strategy knob (not wire-encoded) is ignored.
#[test]
fn foreign_prefixes_are_rejected_as_bad_prefix() {
    let spec = counter_spec("resume-foreign", 900, false);
    let config = DoublePlayConfig::new(2)
        .epoch_cycles(2_000)
        .keep_checkpoints(false);
    let (full, _, commits) = solo_journal(&spec, &config);
    let salvage = || JournalReader::salvage(&full[..commits[1]]).unwrap();

    let other = counter_spec("someone-else", 900, false);
    let s = salvage();
    let mut sink = JournalWriter::resume_after(full[..s.committed_bytes].to_vec(), &s);
    assert!(matches!(
        resume_from(&other, &config, s.recording, &mut sink),
        Err(ResumeError::BadPrefix { .. })
    ));

    let reseeded = config.hidden_seed(42);
    let s = salvage();
    let mut sink = JournalWriter::resume_after(full[..s.committed_bytes].to_vec(), &s);
    assert!(matches!(
        resume_from(&spec, &reseeded, s.recording, &mut sink),
        Err(ResumeError::BadPrefix { .. })
    ));

    // Toggling `pipelined` alone is NOT a foreign config: the resumed run
    // may pick its own execution strategy and must still land on the same
    // bytes (the strategy is invisible in the journal).
    let piped = config.pipelined(true).spare_workers(1);
    let s = salvage();
    let mut sink = JournalWriter::resume_after(full[..s.committed_bytes].to_vec(), &s);
    let err = resume_from(&spec, &piped, s.recording, &mut sink);
    assert!(
        matches!(err, Err(ResumeError::BadPrefix { .. })),
        "spare_workers changed: still a config mismatch"
    );
    let piped_same = config.pipelined(true);
    let s = salvage();
    let mut sink = JournalWriter::resume_after(full[..s.committed_bytes].to_vec(), &s);
    resume_from(&spec, &piped_same, s.recording, &mut sink).unwrap();
    assert_eq!(
        sink.into_inner(),
        full,
        "pipelined resume diverged in bytes"
    );
}
