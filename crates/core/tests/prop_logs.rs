//! Property tests for the recording logs: codec roundtrips over arbitrary
//! log contents, schedule-log coalescing invariants, cursor semantics, and
//! — the robustness half — clean typed errors (never panics) on truncated
//! or bit-flipped buffers, including the recording container.

use dp_core::logs::{codec, SchedEvent, ScheduleLog, SyscallLog, SyscallLogEntry};
use dp_core::{record, DoublePlayConfig, GuestSpec, Recording, ReplayError};
use dp_os::abi;
use dp_os::kernel::{ExternalChunk, ExternalDest, SyscallEffect, WorldConfig};
use dp_support::check::{check, Gen};
use dp_vm::builder::ProgramBuilder;
use dp_vm::{Reg, Tid};
use std::sync::Arc;

fn sched_event(g: &mut Gen) -> SchedEvent {
    match g.index(3) {
        0 => SchedEvent::Slice {
            tid: Tid(g.below(8) as u32),
            instrs: g.range(1, 1_000_000),
        },
        1 => SchedEvent::LoggedWake {
            tid: Tid(g.below(8) as u32),
        },
        _ => SchedEvent::Signal {
            tid: Tid(g.below(8) as u32),
            sig: g.below(64),
        },
    }
}

fn sched_events(g: &mut Gen, max: usize) -> Vec<SchedEvent> {
    (0..g.index(max + 1)).map(|_| sched_event(g)).collect()
}

fn syscall_entry(g: &mut Gen) -> SyscallLogEntry {
    let writes = (0..g.index(3))
        .map(|_| (g.u64(), g.bytes(64)))
        .collect::<Vec<_>>();
    let external = (0..g.index(2))
        .enumerate()
        .map(|(i, _)| ExternalChunk {
            dest: if i % 2 == 0 {
                ExternalDest::Console
            } else {
                ExternalDest::Socket(1000 + i as u32)
            },
            bytes: g.bytes(64),
        })
        .collect::<Vec<_>>();
    SyscallLogEntry {
        tid: Tid(g.below(8) as u32),
        num: g.below(28) as u32,
        arg_hash: g.u64(),
        ret: g.u64(),
        via_wake: g.bool(),
        effect: SyscallEffect {
            guest_writes: writes,
            external,
        },
    }
}

fn syscall_entries(g: &mut Gen, min: usize, max: usize) -> Vec<SyscallLogEntry> {
    let n = min + g.index(max - min + 1);
    (0..n).map(|_| syscall_entry(g)).collect()
}

/// Any schedule log survives encode/decode bit-for-bit.
#[test]
fn schedule_codec_roundtrips() {
    check("schedule_codec_roundtrips", 64, |g| {
        let log: ScheduleLog = sched_events(g, 200).into_iter().collect();
        let encoded = codec::encode_schedule(&log);
        let decoded = codec::decode_schedule(&encoded).unwrap();
        assert_eq!(decoded, log);
    });
}

/// Any syscall log survives encode/decode, including effects.
#[test]
fn syscall_codec_roundtrips() {
    check("syscall_codec_roundtrips", 64, |g| {
        let log: SyscallLog = syscall_entries(g, 0, 60).into_iter().collect();
        let encoded = codec::encode_syscalls(&log);
        let decoded = codec::decode_syscalls(&encoded).unwrap();
        assert_eq!(decoded, log);
    });
}

/// Truncating an encoded log never panics — it returns `CodecError` (or,
/// if the cut landed exactly after all payload, decodes a prefix).
#[test]
fn truncated_logs_error_cleanly() {
    check("truncated_logs_error_cleanly", 128, |g| {
        let log: SyscallLog = syscall_entries(g, 1, 20).into_iter().collect();
        let encoded = codec::encode_syscalls(&log);
        let n = g.index(encoded.len().max(1));
        if n < encoded.len() {
            let _ = codec::decode_syscalls(&encoded[..n]);
        }
        let sched: ScheduleLog = sched_events(g, 40).into_iter().collect();
        let enc = codec::encode_schedule(&sched);
        if !enc.is_empty() {
            let _ = codec::decode_schedule(&enc[..g.index(enc.len())]);
        }
    });
}

/// Bit-flipping any byte of an encoded log either decodes to *something*
/// or yields a typed `CodecError` — never a panic or a wild allocation.
#[test]
fn bitflipped_logs_never_panic() {
    check("bitflipped_logs_never_panic", 128, |g| {
        let log: SyscallLog = syscall_entries(g, 1, 12).into_iter().collect();
        let mut encoded = codec::encode_syscalls(&log);
        let i = g.index(encoded.len());
        encoded[i] ^= 1 << g.index(8);
        let _ = codec::decode_syscalls(&encoded);

        let sched: ScheduleLog = sched_events(g, 40).into_iter().collect();
        let mut enc = codec::encode_schedule(&sched);
        if !enc.is_empty() {
            let i = g.index(enc.len());
            enc[i] ^= 1 << g.index(8);
            let _ = codec::decode_schedule(&enc);
        }
    });
}

/// `get_varint` on arbitrary byte soup returns a value or a typed error.
#[test]
fn varint_decoding_is_total() {
    check("varint_decoding_is_total", 256, |g| {
        let buf = g.bytes(24);
        let mut pos = g.index(buf.len() + 1);
        match codec::get_varint(&buf, &mut pos, "fuzz") {
            Ok(_) => assert!(pos <= buf.len()),
            Err(e) => assert_eq!(e.context, "fuzz"),
        }
    });
}

/// A small two-thread atomic-counter guest producing a multi-epoch
/// recording to corrupt.
fn recorded() -> Recording {
    let iters = 600i64;
    let mut pb = ProgramBuilder::new();
    let counter = pb.global("counter", 8);
    let mut w = pb.function("worker");
    let top = w.label();
    let done = w.label();
    w.consti(Reg(10), 0);
    w.consti(Reg(9), counter as i64);
    w.bind(top);
    w.bin(dp_vm::BinOp::Ltu, Reg(11), Reg(10), iters);
    w.jz(Reg(11), done);
    w.fetch_add(Reg(12), Reg(9), 1i64);
    w.add(Reg(10), Reg(10), 1i64);
    w.jmp(top);
    w.bind(done);
    w.consti(Reg(0), 0);
    w.syscall(abi::SYS_THREAD_EXIT);
    w.finish();
    let worker = pb.declare("worker");
    let mut f = pb.function("main");
    for _ in 0..2 {
        f.consti(Reg(0), worker.0 as i64);
        f.consti(Reg(1), 0);
        f.consti(Reg(2), 0);
        f.syscall(abi::SYS_SPAWN);
    }
    for t in 1..=2i64 {
        f.consti(Reg(0), t);
        f.syscall(abi::SYS_JOIN);
    }
    f.consti(Reg(9), counter as i64);
    f.load(Reg(0), Reg(9), 0, dp_vm::Width::W8);
    f.syscall(abi::SYS_EXIT);
    f.finish();
    let spec = GuestSpec::new(
        "corrupt-me",
        Arc::new(pb.finish("main")),
        WorldConfig::default(),
    );
    record(&spec, &DoublePlayConfig::new(2).epoch_cycles(4_000))
        .unwrap()
        .recording
}

/// Corrupting any single byte of a saved recording makes `load` fail with
/// a typed `ReplayError` (`Corrupt`) — in 100% of trials, never a panic.
#[test]
fn corrupted_container_is_rejected_with_typed_error() {
    let recording = recorded();
    let mut saved = Vec::new();
    recording.save(&mut saved).unwrap();
    assert!(Recording::load(&saved[..]).is_ok());
    check("corrupted_container_is_rejected", 200, |g| {
        let mut bad = saved.clone();
        let i = g.index(bad.len());
        bad[i] ^= 1 << g.index(8);
        match Recording::load(&bad[..]) {
            Err(ReplayError::Corrupt { .. }) => {}
            Err(other) => panic!("corruption at byte {i} surfaced as {other:?}"),
            // A flip inside a section *payload* is always caught by its
            // CRC32; only flips that happen to cancel out could load — and
            // a single bit flip never cancels in CRC32.
            Ok(_) => panic!("single-bit corruption at byte {i} loaded successfully"),
        }
    });
}

/// Truncating a saved recording at any prefix length is also rejected.
#[test]
fn truncated_container_is_rejected() {
    let recording = recorded();
    let mut saved = Vec::new();
    recording.save(&mut saved).unwrap();
    check("truncated_container_is_rejected", 100, |g| {
        let n = g.index(saved.len());
        assert!(
            matches!(
                Recording::load(&saved[..n]),
                Err(ReplayError::Corrupt { .. })
            ),
            "prefix of {n} bytes did not error"
        );
    });
    // Trailing garbage is rejected too.
    let mut padded = saved.clone();
    padded.extend_from_slice(b"junk");
    assert!(matches!(
        Recording::load(&padded[..]),
        Err(ReplayError::Corrupt { .. })
    ));
}

/// Coalescing preserves per-thread instruction totals and never leaves
/// two adjacent slices of the same thread.
#[test]
fn coalescing_preserves_totals() {
    check("coalescing_preserves_totals", 64, |g| {
        use std::collections::BTreeMap;
        let events = sched_events(g, 300);
        let mut expect: BTreeMap<Tid, u64> = BTreeMap::new();
        for e in &events {
            if let SchedEvent::Slice { tid, instrs } = e {
                *expect.entry(*tid).or_insert(0) += instrs;
            }
        }
        let log: ScheduleLog = events.into_iter().collect();
        let mut got: BTreeMap<Tid, u64> = BTreeMap::new();
        let mut prev: Option<Tid> = None;
        for e in log.events() {
            match e {
                SchedEvent::Slice { tid, instrs } => {
                    assert!(*instrs > 0, "zero-length slice survived");
                    assert_ne!(prev, Some(*tid), "adjacent same-thread slices");
                    *got.entry(*tid).or_insert(0) += instrs;
                    prev = Some(*tid);
                }
                _ => prev = None,
            }
        }
        assert_eq!(log.total_instructions(), expect.values().sum::<u64>());
        assert_eq!(got, expect);
    });
}

/// The per-thread cursor dispenses exactly the per-thread subsequences.
#[test]
fn cursor_is_a_partition() {
    check("cursor_is_a_partition", 64, |g| {
        let entries = syscall_entries(g, 0, 80);
        let log: SyscallLog = entries.clone().into_iter().collect();
        let mut cursor = log.cursor();
        for tid in (0..8).map(Tid) {
            let mine: Vec<&SyscallLogEntry> = entries.iter().filter(|e| e.tid == tid).collect();
            for want in mine {
                let got = cursor.pop(tid).expect("cursor exhausted early");
                assert_eq!(got, want);
            }
            assert!(cursor.pop(tid).is_none());
        }
        assert!(cursor.exhausted());
    });
}
