//! Property tests for the recording logs: codec roundtrips over arbitrary
//! log contents, schedule-log coalescing invariants, and cursor semantics.

use dp_core::logs::{
    codec, SchedEvent, ScheduleLog, SyscallLog, SyscallLogEntry,
};
use dp_os::kernel::{ExternalChunk, ExternalDest, SyscallEffect};
use dp_vm::Tid;
use proptest::prelude::*;

fn sched_event() -> impl Strategy<Value = SchedEvent> {
    prop_oneof![
        (0u32..8, 1u64..1_000_000).prop_map(|(t, n)| SchedEvent::Slice {
            tid: Tid(t),
            instrs: n
        }),
        (0u32..8).prop_map(|t| SchedEvent::LoggedWake { tid: Tid(t) }),
        (0u32..8, 0u64..64).prop_map(|(t, s)| SchedEvent::Signal {
            tid: Tid(t),
            sig: s
        }),
    ]
}

fn syscall_entry() -> impl Strategy<Value = SyscallLogEntry> {
    (
        0u32..8,
        0u32..28,
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        proptest::collection::vec((any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)), 0..3),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..2),
    )
        .prop_map(|(tid, num, arg_hash, ret, via_wake, writes, ext)| SyscallLogEntry {
            tid: Tid(tid),
            num,
            arg_hash,
            ret,
            via_wake,
            effect: SyscallEffect {
                guest_writes: writes,
                external: ext
                    .into_iter()
                    .enumerate()
                    .map(|(i, bytes)| ExternalChunk {
                        dest: if i % 2 == 0 {
                            ExternalDest::Console
                        } else {
                            ExternalDest::Socket(1000 + i as u32)
                        },
                        bytes,
                    })
                    .collect(),
            },
        })
}

proptest! {
    /// Any schedule log survives encode/decode bit-for-bit.
    #[test]
    fn schedule_codec_roundtrips(events in proptest::collection::vec(sched_event(), 0..200)) {
        let log: ScheduleLog = events.into_iter().collect();
        let encoded = codec::encode_schedule(&log);
        let decoded = codec::decode_schedule(&encoded).unwrap();
        prop_assert_eq!(decoded, log);
    }

    /// Any syscall log survives encode/decode, including effects.
    #[test]
    fn syscall_codec_roundtrips(entries in proptest::collection::vec(syscall_entry(), 0..60)) {
        let log: SyscallLog = entries.into_iter().collect();
        let encoded = codec::encode_syscalls(&log);
        let decoded = codec::decode_syscalls(&encoded).unwrap();
        prop_assert_eq!(decoded, log);
    }

    /// Truncating an encoded log never panics — it errors.
    #[test]
    fn truncated_logs_error_cleanly(
        entries in proptest::collection::vec(syscall_entry(), 1..20),
        cut in any::<proptest::sample::Index>(),
    ) {
        let log: SyscallLog = entries.into_iter().collect();
        let encoded = codec::encode_syscalls(&log);
        let n = cut.index(encoded.len().max(1));
        if n < encoded.len() {
            // Either a clean decode error, or (if the cut landed after all
            // payload) a successful prefix decode — never a panic.
            let _ = codec::decode_syscalls(&encoded[..n]);
        }
    }

    /// Coalescing preserves per-thread instruction totals and never leaves
    /// two adjacent slices of the same thread.
    #[test]
    fn coalescing_preserves_totals(events in proptest::collection::vec(sched_event(), 0..300)) {
        use std::collections::BTreeMap;
        let mut expect: BTreeMap<Tid, u64> = BTreeMap::new();
        for e in &events {
            if let SchedEvent::Slice { tid, instrs } = e {
                *expect.entry(*tid).or_insert(0) += instrs;
            }
        }
        let log: ScheduleLog = events.into_iter().collect();
        let mut got: BTreeMap<Tid, u64> = BTreeMap::new();
        let mut prev: Option<Tid> = None;
        for e in log.events() {
            match e {
                SchedEvent::Slice { tid, instrs } => {
                    prop_assert!(*instrs > 0, "zero-length slice survived");
                    prop_assert_ne!(prev, Some(*tid), "adjacent same-thread slices");
                    *got.entry(*tid).or_insert(0) += instrs;
                    prev = Some(*tid);
                }
                _ => prev = None,
            }
        }
        prop_assert_eq!(log.total_instructions(), expect.values().sum::<u64>());
        prop_assert_eq!(got, expect);
    }

    /// The per-thread cursor dispenses exactly the per-thread subsequences.
    #[test]
    fn cursor_is_a_partition(entries in proptest::collection::vec(syscall_entry(), 0..80)) {
        let log: SyscallLog = entries.clone().into_iter().collect();
        let mut cursor = log.cursor();
        for tid in (0..8).map(Tid) {
            let mine: Vec<&SyscallLogEntry> =
                entries.iter().filter(|e| e.tid == tid).collect();
            for want in mine {
                let got = cursor.pop(tid).expect("cursor exhausted early");
                prop_assert_eq!(got, want);
            }
            prop_assert!(cursor.pop(tid).is_none());
        }
        prop_assert!(cursor.exhausted());
    }
}
