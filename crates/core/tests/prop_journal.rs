//! Exhaustive prefix properties for the two durable formats:
//!
//! * `DPRC` container: *every* strict byte prefix of a valid recording is
//!   rejected with a typed `ReplayError::Corrupt` — never a panic, never a
//!   silent partial load;
//! * `DPRJ` journal: *every* byte prefix salvages to exactly the epochs
//!   whose commit markers lie inside the prefix, and each salvaged prefix
//!   replays with the recorded per-epoch hashes.
//!
//! These are the crash-consistency contract: a torn write can cut a file
//! at any byte, so the guarantees must hold at all of them, not at a
//! sample.

use dp_core::journal::RecordSink;
use dp_core::{
    record, replay_sequential, DoublePlayConfig, GuestSpec, JournalReader, JournalWriter,
    Recording, ReplayError,
};
use dp_os::abi;
use dp_os::kernel::WorldConfig;
use dp_vm::builder::ProgramBuilder;
use dp_vm::Reg;
use std::sync::Arc;

/// A small two-thread guest whose recording spans several epochs but stays
/// a few kilobytes (no per-epoch checkpoints), so exhaustive per-byte
/// loops stay fast.
fn small_recording() -> (GuestSpec, Recording) {
    let iters = 900i64;
    let mut pb = ProgramBuilder::new();
    let counter = pb.global("counter", 8);
    let mut w = pb.function("worker");
    let top = w.label();
    let done = w.label();
    w.consti(Reg(10), 0);
    w.consti(Reg(9), counter as i64);
    w.bind(top);
    w.bin(dp_vm::BinOp::Ltu, Reg(11), Reg(10), iters);
    w.jz(Reg(11), done);
    w.fetch_add(Reg(12), Reg(9), 1i64);
    w.add(Reg(10), Reg(10), 1i64);
    w.jmp(top);
    w.bind(done);
    w.consti(Reg(0), 0);
    w.syscall(abi::SYS_THREAD_EXIT);
    w.finish();
    let worker = pb.declare("worker");
    let mut f = pb.function("main");
    for _ in 0..2 {
        f.consti(Reg(0), worker.0 as i64);
        f.consti(Reg(1), 0);
        f.consti(Reg(2), 0);
        f.syscall(abi::SYS_SPAWN);
    }
    for t in 1..=2i64 {
        f.consti(Reg(0), t);
        f.syscall(abi::SYS_JOIN);
    }
    f.consti(Reg(9), counter as i64);
    f.load(Reg(0), Reg(9), 0, dp_vm::Width::W8);
    f.syscall(abi::SYS_EXIT);
    f.finish();
    let spec = GuestSpec::new(
        "prefix-me",
        Arc::new(pb.finish("main")),
        WorldConfig::default(),
    );
    let config = DoublePlayConfig::new(2)
        .epoch_cycles(2_000)
        .keep_checkpoints(false);
    let recording = record(&spec, &config).unwrap().recording;
    assert!(
        recording.epochs.len() >= 3,
        "want a multi-epoch recording, got {} epochs",
        recording.epochs.len()
    );
    (spec, recording)
}

/// Journals `recording` into memory, returning the bytes and the commit
/// offset of each epoch (the journal length right after its commit marker
/// hit the sink — the point at which the epoch is durable).
fn journaled(recording: &Recording) -> (Vec<u8>, Vec<usize>) {
    let mut w = JournalWriter::new(Vec::new()).unwrap();
    w.begin(&recording.meta, &recording.initial).unwrap();
    let mut commits = Vec::new();
    for epoch in &recording.epochs {
        w.epoch(epoch).unwrap();
        commits.push(w.bytes_written() as usize);
    }
    w.finish().unwrap();
    (w.into_inner(), commits)
}

/// Every strict byte prefix of a valid `DPRC` container is rejected with
/// `ReplayError::Corrupt`: no prefix panics, and none loads as a shorter
/// recording (partial data must flow through salvage, never through load).
#[test]
fn every_strict_dprc_prefix_is_rejected() {
    let (_, recording) = small_recording();
    let mut saved = Vec::new();
    recording.save(&mut saved).unwrap();
    assert!(Recording::load(&saved[..]).is_ok());
    for n in 0..saved.len() {
        match Recording::load(&saved[..n]) {
            Err(ReplayError::Corrupt { .. }) => {}
            Err(other) => panic!("prefix of {n} bytes surfaced as {other:?}"),
            Ok(_) => panic!("strict prefix of {n} bytes loaded successfully"),
        }
    }
}

/// Every byte prefix of a `DPRJ` journal salvages to exactly the epochs
/// committed within it: cuts before the header frame are typed errors,
/// and from there each commit marker adds exactly one salvageable epoch.
#[test]
fn every_journal_prefix_salvages_exactly_the_committed_epochs() {
    let (_, recording) = small_recording();
    let (journal, commits) = journaled(&recording);
    for cut in 0..=journal.len() {
        let expect = commits.iter().filter(|&&o| o <= cut).count();
        match JournalReader::salvage(&journal[..cut]) {
            Ok(s) => {
                assert_eq!(
                    s.committed(),
                    expect,
                    "cut at {cut}: salvaged {} epochs, expected {expect}",
                    s.committed()
                );
                assert_eq!(s.clean, cut == journal.len(), "cut at {cut}: clean flag");
                for (a, b) in s.recording.epochs.iter().zip(&recording.epochs) {
                    assert_eq!(a.end_machine_hash, b.end_machine_hash);
                }
            }
            // Only cuts that truncate the header itself may error: without
            // meta and the initial state there is nothing to salvage.
            Err(ReplayError::Corrupt { .. }) => {
                assert_eq!(expect, 0, "cut at {cut} lost committed epochs");
                assert!(
                    cut < commits[0],
                    "cut at {cut} errored after the first commit"
                );
            }
            Err(other) => panic!("cut at {cut}: unexpected error {other:?}"),
        }
    }
}

/// Each salvageable epoch prefix is a *replayable* recording whose verified
/// per-epoch hashes match the original run — the salvage output is not just
/// well-formed, it is the actual execution prefix.
#[test]
fn salvaged_prefixes_replay_with_the_recorded_hashes() {
    let (spec, recording) = small_recording();
    let (journal, commits) = journaled(&recording);
    for (k, &commit) in commits.iter().enumerate() {
        let s = JournalReader::salvage(&journal[..commit]).unwrap();
        assert_eq!(s.committed(), k + 1);
        // replay_sequential verifies every epoch's end hash internally;
        // success means the salvaged prefix reproduces the recorded states.
        let report = replay_sequential(&s.recording, &spec.program).unwrap();
        assert_eq!(report.epochs as usize, k + 1);
        assert_eq!(
            report.final_hash,
            recording.epochs[k].end_machine_hash,
            "prefix of {} epochs replays to a different state",
            k + 1
        );
    }
}
