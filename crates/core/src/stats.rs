//! Recorder statistics: the numbers behind every table and figure.

/// Per-worker busy-time slots tracked in [`WallClockStats`]; workers beyond
/// this fold into the last slot.
pub const MAX_TRACKED_WORKERS: usize = 8;

/// Speculation-depth histogram buckets in [`WallClockStats`]: bucket `d`
/// counts submissions made with `d` epochs already in flight; depths beyond
/// the last bucket fold into it.
pub const DEPTH_BUCKETS: usize = 9;

/// Real (host) wall-clock measurements of one recording run.
///
/// Unlike the rest of [`RecorderStats`] these are *measurements of the
/// host*, not of the modeled machine: they differ run to run with OS
/// scheduling. To keep whole-`RecorderStats` equality meaningful for the
/// deterministic model (`recording_is_deterministic_given_seed` asserts
/// `a.stats == b.stats`), this struct compares equal to every other
/// instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallClockStats {
    /// Wall-clock nanoseconds of the recording loop (boot to final commit;
    /// excludes the separate native-runtime measurement).
    pub wall_ns: u64,
    /// Verify workers the run used (0 = sequential in-line verification).
    pub workers: u64,
    /// Nanoseconds each worker spent executing verify jobs (including jobs
    /// later cancelled); workers beyond [`MAX_TRACKED_WORKERS`] accumulate
    /// into the last slot.
    pub worker_busy_ns: [u64; MAX_TRACKED_WORKERS],
    /// Histogram of speculation depth at submit time: bucket `d` counts
    /// epochs handed to the verify pool while `d` earlier epochs were still
    /// in flight.
    pub depth_histogram: [u64; DEPTH_BUCKETS],
    /// Speculative epochs cancelled by divergences (work discarded beyond
    /// the diverging epoch: both queued jobs and the not-yet-verified
    /// speculation the front-end had already run).
    pub cancelled_epochs: u64,
    /// Whether the run used the real multithreaded pipeline.
    pub pipelined: bool,
}

impl WallClockStats {
    /// Total worker busy nanoseconds.
    pub fn busy_ns(&self) -> u64 {
        self.worker_busy_ns.iter().sum()
    }

    /// Fraction of worker·wall capacity spent busy (0.0 when sequential).
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 || self.wall_ns == 0 {
            return 0.0;
        }
        self.busy_ns() as f64 / (self.wall_ns as f64 * self.workers as f64)
    }
}

/// Wall-clock readings are nondeterministic host measurements; two runs of
/// the same seed must still satisfy `a.stats == b.stats`.
impl PartialEq for WallClockStats {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// Measurements accumulated while recording one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecorderStats {
    /// Epochs recorded (committed + recovered).
    pub epochs: u64,
    /// Epochs that verified cleanly on the first try.
    pub committed: u64,
    /// Divergences detected (each triggers a live re-execution).
    pub divergences: u64,
    /// Guest instructions executed by the thread-parallel run.
    pub tp_instructions: u64,
    /// Pure thread-parallel execution cycles (no recording costs): the
    /// timeline the thread-parallel side would take if recording were free.
    pub tp_exec_cycles: u64,
    /// Cycles charged for checkpoints (COW page copies).
    pub checkpoint_cycles: u64,
    /// Cycles charged for log writes.
    pub log_write_cycles: u64,
    /// Single-CPU cycles consumed by all epoch-parallel runs (worker
    /// occupancy).
    pub ep_cycles: u64,
    /// Cycles spent re-executing divergent epochs live.
    pub recovery_cycles: u64,
    /// Thread-parallel work discarded by divergences (speculation beyond
    /// the divergent epoch).
    pub wasted_tp_cycles: u64,
    /// Schedule-log bytes (encoded).
    pub schedule_bytes: u64,
    /// Syscall-log bytes (encoded).
    pub syscall_bytes: u64,
    /// Pages dirtied across all epochs (checkpoint COW traffic).
    pub dirty_pages: u64,
    /// Pages the incremental state digest actually re-hashed across all
    /// retiring epochs (the epoch's dirty pages). Modeled at the in-order
    /// retire points, so the count is deterministic and identical across
    /// sequential/pipelined/sharded runs — unlike the live cache counters
    /// (`dp_vm::memory::HashStats`), which vary with clone topology.
    pub hashed_pages: u64,
    /// Resident pages the incremental digest did *not* have to re-hash at
    /// retire time (resident minus dirty, per epoch) — the work a full
    /// rehash would have done. Modeled; deterministic like `hashed_pages`.
    pub hash_skipped_pages: u64,
    /// End-to-end recorded runtime in simulated cycles (the uniparallel
    /// pipeline's completion time).
    pub recorded_cycles: u64,
    /// Native runtime in simulated cycles (same thread-parallel execution,
    /// no recording work) — measured by a separate clean run.
    pub native_cycles: u64,
    /// Epochs recorded in degraded serialized (uniprocessor-style) mode
    /// after the divergence rate exceeded the coordinator's threshold.
    pub serialized_epochs: u64,
    /// Epoch-parallel worker executions retried after a (caught) panic.
    pub worker_retries: u64,
    /// Injected I/O faults delivered to the guest on the committed
    /// timeline (syscall failures, short reads, connection resets).
    pub io_faults: u64,
    /// Real wall-clock measurements (host time; excluded from equality).
    pub wall: WallClockStats,
}

impl RecorderStats {
    /// Total log bytes.
    pub fn log_bytes(&self) -> u64 {
        self.schedule_bytes + self.syscall_bytes
    }

    /// Recording overhead relative to native: `recorded/native - 1`.
    /// The paper's headline metric ("15% with two worker threads").
    pub fn overhead(&self) -> f64 {
        if self.native_cycles == 0 {
            return 0.0;
        }
        self.recorded_cycles as f64 / self.native_cycles as f64 - 1.0
    }

    /// Log production rate in bytes per million native cycles (the
    /// analogue of the paper's log-size-per-second table).
    pub fn log_bytes_per_mcycle(&self) -> f64 {
        if self.native_cycles == 0 {
            return 0.0;
        }
        self.log_bytes() as f64 * 1e6 / self.native_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math() {
        let s = RecorderStats {
            recorded_cycles: 115,
            native_cycles: 100,
            ..Default::default()
        };
        assert!((s.overhead() - 0.15).abs() < 1e-9);
        let zero = RecorderStats::default();
        assert_eq!(zero.overhead(), 0.0);
        assert_eq!(zero.log_bytes_per_mcycle(), 0.0);
    }

    #[test]
    fn wall_clock_stats_are_excluded_from_equality() {
        let a = RecorderStats {
            wall: WallClockStats {
                wall_ns: 123,
                workers: 4,
                ..Default::default()
            },
            ..Default::default()
        };
        let b = RecorderStats::default();
        assert_eq!(a, b, "wall measurements must not break model equality");
    }

    #[test]
    fn utilization_math() {
        let mut w = WallClockStats {
            wall_ns: 1_000,
            workers: 2,
            ..Default::default()
        };
        w.worker_busy_ns[0] = 600;
        w.worker_busy_ns[1] = 400;
        assert!((w.utilization() - 0.5).abs() < 1e-9);
        assert_eq!(WallClockStats::default().utilization(), 0.0);
    }

    #[test]
    fn log_byte_accounting() {
        let s = RecorderStats {
            schedule_bytes: 10,
            syscall_bytes: 32,
            native_cycles: 1_000_000,
            ..Default::default()
        };
        assert_eq!(s.log_bytes(), 42);
        assert!((s.log_bytes_per_mcycle() - 42.0).abs() < 1e-9);
    }
}
