//! Recorder statistics: the numbers behind every table and figure.

/// Measurements accumulated while recording one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecorderStats {
    /// Epochs recorded (committed + recovered).
    pub epochs: u64,
    /// Epochs that verified cleanly on the first try.
    pub committed: u64,
    /// Divergences detected (each triggers a live re-execution).
    pub divergences: u64,
    /// Guest instructions executed by the thread-parallel run.
    pub tp_instructions: u64,
    /// Pure thread-parallel execution cycles (no recording costs): the
    /// timeline the thread-parallel side would take if recording were free.
    pub tp_exec_cycles: u64,
    /// Cycles charged for checkpoints (COW page copies).
    pub checkpoint_cycles: u64,
    /// Cycles charged for log writes.
    pub log_write_cycles: u64,
    /// Single-CPU cycles consumed by all epoch-parallel runs (worker
    /// occupancy).
    pub ep_cycles: u64,
    /// Cycles spent re-executing divergent epochs live.
    pub recovery_cycles: u64,
    /// Thread-parallel work discarded by divergences (speculation beyond
    /// the divergent epoch).
    pub wasted_tp_cycles: u64,
    /// Schedule-log bytes (encoded).
    pub schedule_bytes: u64,
    /// Syscall-log bytes (encoded).
    pub syscall_bytes: u64,
    /// Pages dirtied across all epochs (checkpoint COW traffic).
    pub dirty_pages: u64,
    /// End-to-end recorded runtime in simulated cycles (the uniparallel
    /// pipeline's completion time).
    pub recorded_cycles: u64,
    /// Native runtime in simulated cycles (same thread-parallel execution,
    /// no recording work) — measured by a separate clean run.
    pub native_cycles: u64,
    /// Epochs recorded in degraded serialized (uniprocessor-style) mode
    /// after the divergence rate exceeded the coordinator's threshold.
    pub serialized_epochs: u64,
    /// Epoch-parallel worker executions retried after a (caught) panic.
    pub worker_retries: u64,
    /// Injected I/O faults delivered to the guest on the committed
    /// timeline (syscall failures, short reads, connection resets).
    pub io_faults: u64,
}

impl RecorderStats {
    /// Total log bytes.
    pub fn log_bytes(&self) -> u64 {
        self.schedule_bytes + self.syscall_bytes
    }

    /// Recording overhead relative to native: `recorded/native - 1`.
    /// The paper's headline metric ("15% with two worker threads").
    pub fn overhead(&self) -> f64 {
        if self.native_cycles == 0 {
            return 0.0;
        }
        self.recorded_cycles as f64 / self.native_cycles as f64 - 1.0
    }

    /// Log production rate in bytes per million native cycles (the
    /// analogue of the paper's log-size-per-second table).
    pub fn log_bytes_per_mcycle(&self) -> f64 {
        if self.native_cycles == 0 {
            return 0.0;
        }
        self.log_bytes() as f64 * 1e6 / self.native_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math() {
        let s = RecorderStats {
            recorded_cycles: 115,
            native_cycles: 100,
            ..Default::default()
        };
        assert!((s.overhead() - 0.15).abs() < 1e-9);
        let zero = RecorderStats::default();
        assert_eq!(zero.overhead(), 0.0);
        assert_eq!(zero.log_bytes_per_mcycle(), 0.0);
    }

    #[test]
    fn log_byte_accounting() {
        let s = RecorderStats {
            schedule_bytes: 10,
            syscall_bytes: 32,
            native_cycles: 1_000_000,
            ..Default::default()
        };
        assert_eq!(s.log_bytes(), 42);
        assert!((s.log_bytes_per_mcycle() - 42.0).abs() < 1e-9);
    }
}
