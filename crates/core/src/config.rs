//! Recorder configuration.

use crate::faults::FaultPlan;
use std::fmt;

/// Hard ceiling on spare verify workers: each one is a real OS thread in
/// the pipelined driver, so an absurd count is a typo, not a request.
pub const MAX_SPARE_WORKERS: usize = 512;

/// A structurally invalid recorder configuration, caught before any guest
/// boots. The CLI and the `dpd` service surface these as typed errors
/// instead of letting the coordinator silently reinterpret (or panic on)
/// degenerate worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `cpus == 0`: there is no thread-parallel execution to record.
    NoCpus,
    /// `pipelined` was requested with zero spare workers. The pipelined
    /// driver *is* the spare-worker pool; without workers the request is
    /// contradictory (the library would silently fall back to the
    /// sequential driver, which is almost never what the caller meant).
    PipelinedWithoutWorkers,
    /// More spare workers than [`MAX_SPARE_WORKERS`]: each is a real OS
    /// thread under the pipelined driver.
    TooManyWorkers {
        /// The requested worker count.
        workers: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoCpus => write!(f, "at least one CPU is required"),
            ConfigError::PipelinedWithoutWorkers => write!(
                f,
                "pipelined recording requires at least one spare worker (got --workers 0)"
            ),
            ConfigError::TooManyWorkers { workers } => write!(
                f,
                "{workers} spare workers exceed the maximum of {MAX_SPARE_WORKERS}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validates a `(cpus, spare_workers, pipelined)` triple *before* a
/// [`DoublePlayConfig`] is constructed (construction itself asserts on
/// zero CPUs, so callers handling untrusted input check here first).
///
/// # Errors
///
/// The violated [`ConfigError`] rule, most fundamental first.
pub fn validate_worker_counts(
    cpus: usize,
    spare_workers: usize,
    pipelined: bool,
) -> Result<(), ConfigError> {
    if cpus == 0 {
        return Err(ConfigError::NoCpus);
    }
    if spare_workers > MAX_SPARE_WORKERS {
        return Err(ConfigError::TooManyWorkers {
            workers: spare_workers,
        });
    }
    if pipelined && spare_workers == 0 {
        return Err(ConfigError::PipelinedWithoutWorkers);
    }
    Ok(())
}

/// Configuration for a DoublePlay recording run.
///
/// Construct with [`DoublePlayConfig::new`] (worker-thread count) and adjust
/// with the builder-style setters:
///
/// ```
/// use dp_core::DoublePlayConfig;
/// let config = DoublePlayConfig::new(4)
///     .epoch_cycles(500_000)
///     .spare_workers(4)
///     .adaptive_epochs(true);
/// assert_eq!(config.cpus, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoublePlayConfig {
    /// CPUs used by the thread-parallel execution (the application's worker
    /// parallelism, "2 worker threads" / "4 worker threads" in the paper).
    pub cpus: usize,
    /// Extra cores available for epoch-parallel execution. The paper's
    /// headline numbers use "spare cores" (`spare_workers == cpus`); setting
    /// `0` models the no-spare-cores configuration where both executions
    /// compete for the same CPUs.
    pub spare_workers: usize,
    /// Epoch length in thread-parallel cycles.
    pub epoch_cycles: u64,
    /// Scheduling quantum (instructions) of the epoch-parallel timeslicer.
    /// This bounds schedule-log density: one log entry per slice.
    pub ep_quantum: u64,
    /// Base scheduling quantum (instructions) of the thread-parallel run.
    pub tp_quantum: u64,
    /// Max random jitter added to thread-parallel quanta. This models
    /// scheduler/timing nondeterminism: it is drawn from the *hidden* seed,
    /// which the recorder must not rely on.
    pub tp_jitter: u64,
    /// Seed of the hidden nondeterminism source.
    pub hidden_seed: u64,
    /// Adapt epoch length to divergence rate (shrink on rollback, grow after
    /// sustained clean commits), as the paper's epoch-sizing discussion
    /// describes.
    pub adaptive: bool,
    /// Use forward recovery on divergence (adopt the epoch-parallel state
    /// and restart only the thread-parallel side). When disabled, a
    /// divergence additionally pays for re-running the thread-parallel
    /// epoch, modelling full rollback of both executions.
    pub forward_recovery: bool,
    /// Store a full checkpoint with every epoch record (enables parallel
    /// replay and replay-to-point; costs memory).
    pub keep_checkpoints: bool,
    /// Hard bound on guest instructions per recording.
    pub max_instructions: u64,
    /// Deterministic fault-injection plan (default: no faults).
    pub faults: FaultPlan,
    /// Run the recorder as a real multithreaded pipeline: the
    /// thread-parallel front-end speculates up to `spare_workers` epochs
    /// ahead while OS-thread verify workers check epochs out of order and
    /// a commit stage retires them strictly in order. Produces a recording
    /// byte-identical to the sequential coordinator — this knob changes
    /// wall-clock execution strategy only, so it is deliberately **not**
    /// part of the wire encoding (see the hand-written [`Wire`] impl
    /// below).
    ///
    /// [`Wire`]: dp_support::wire::Wire
    pub pipelined: bool,
}

impl DoublePlayConfig {
    /// A configuration for `cpus` worker threads with paper-like defaults
    /// and `cpus` spare worker cores (the "spare cores" setup).
    pub fn new(cpus: usize) -> Self {
        assert!(cpus >= 1, "at least one CPU required");
        DoublePlayConfig {
            cpus,
            spare_workers: cpus,
            epoch_cycles: 400_000,
            ep_quantum: 20_000,
            tp_quantum: 10_000,
            tp_jitter: 7_000,
            hidden_seed: 0x5eed_0fd0_0b1e,
            adaptive: false,
            forward_recovery: true,
            keep_checkpoints: true,
            max_instructions: 2_000_000_000,
            faults: FaultPlan::none(),
            pipelined: false,
        }
    }

    /// Sets the epoch length in cycles.
    pub fn epoch_cycles(mut self, cycles: u64) -> Self {
        assert!(cycles > 0);
        self.epoch_cycles = cycles;
        self
    }

    /// Sets the number of spare worker cores (0 = share cores).
    pub fn spare_workers(mut self, workers: usize) -> Self {
        self.spare_workers = workers;
        self
    }

    /// Sets the epoch-parallel scheduling quantum.
    pub fn ep_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0);
        self.ep_quantum = quantum;
        self
    }

    /// Sets the hidden nondeterminism seed.
    pub fn hidden_seed(mut self, seed: u64) -> Self {
        self.hidden_seed = seed;
        self
    }

    /// Enables or disables adaptive epoch sizing.
    pub fn adaptive_epochs(mut self, on: bool) -> Self {
        self.adaptive = on;
        self
    }

    /// Enables or disables forward recovery.
    pub fn forward_recovery(mut self, on: bool) -> Self {
        self.forward_recovery = on;
        self
    }

    /// Enables or disables per-epoch checkpoints in the recording.
    pub fn keep_checkpoints(mut self, on: bool) -> Self {
        self.keep_checkpoints = on;
        self
    }

    /// Sets the instruction budget.
    pub fn max_instructions(mut self, max: u64) -> Self {
        self.max_instructions = max;
        self
    }

    /// Sets the fault-injection plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Enables or disables the real multithreaded recording pipeline.
    pub fn pipelined(mut self, on: bool) -> Self {
        self.pipelined = on;
        self
    }

    /// Checks the configuration for degenerate worker counts
    /// ([`validate_worker_counts`]). Call this on any configuration built
    /// from untrusted input (CLI flags, service requests).
    ///
    /// # Errors
    ///
    /// The violated [`ConfigError`] rule.
    pub fn validate(&self) -> Result<(), ConfigError> {
        validate_worker_counts(self.cpus, self.spare_workers, self.pipelined)
    }
}

// Hand-written (not `impl_wire_struct!`) because `pipelined` must stay out
// of the encoding: `RecordingMeta` embeds the config, and a pipelined run
// must produce a recording byte-identical to a sequential one. Decoding
// always yields `pipelined: false`; replay never pipelines.
impl dp_support::wire::Wire for DoublePlayConfig {
    fn put(&self, out: &mut Vec<u8>) {
        self.cpus.put(out);
        self.spare_workers.put(out);
        self.epoch_cycles.put(out);
        self.ep_quantum.put(out);
        self.tp_quantum.put(out);
        self.tp_jitter.put(out);
        self.hidden_seed.put(out);
        self.adaptive.put(out);
        self.forward_recovery.put(out);
        self.keep_checkpoints.put(out);
        self.max_instructions.put(out);
        self.faults.put(out);
    }

    fn get(r: &mut dp_support::wire::Reader<'_>) -> Result<Self, dp_support::wire::WireError> {
        Ok(DoublePlayConfig {
            cpus: dp_support::wire::Wire::get(r)?,
            spare_workers: dp_support::wire::Wire::get(r)?,
            epoch_cycles: dp_support::wire::Wire::get(r)?,
            ep_quantum: dp_support::wire::Wire::get(r)?,
            tp_quantum: dp_support::wire::Wire::get(r)?,
            tp_jitter: dp_support::wire::Wire::get(r)?,
            hidden_seed: dp_support::wire::Wire::get(r)?,
            adaptive: dp_support::wire::Wire::get(r)?,
            forward_recovery: dp_support::wire::Wire::get(r)?,
            keep_checkpoints: dp_support::wire::Wire::get(r)?,
            max_instructions: dp_support::wire::Wire::get(r)?,
            faults: dp_support::wire::Wire::get(r)?,
            pipelined: false,
        })
    }
}

impl Default for DoublePlayConfig {
    fn default() -> Self {
        Self::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = DoublePlayConfig::new(4)
            .epoch_cycles(123)
            .spare_workers(2)
            .ep_quantum(9)
            .hidden_seed(7)
            .adaptive_epochs(true)
            .forward_recovery(false)
            .keep_checkpoints(false)
            .max_instructions(10);
        assert_eq!(c.cpus, 4);
        assert_eq!(c.epoch_cycles, 123);
        assert_eq!(c.spare_workers, 2);
        assert_eq!(c.ep_quantum, 9);
        assert_eq!(c.hidden_seed, 7);
        assert!(c.adaptive);
        assert!(!c.forward_recovery);
        assert!(!c.keep_checkpoints);
        assert_eq!(c.max_instructions, 10);
    }

    #[test]
    fn defaults_have_spare_cores() {
        let c = DoublePlayConfig::new(4);
        assert_eq!(c.spare_workers, 4);
        assert!(c.forward_recovery);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_panics() {
        DoublePlayConfig::new(0);
    }

    #[test]
    fn degenerate_worker_counts_are_typed_errors() {
        assert_eq!(
            validate_worker_counts(0, 2, false),
            Err(ConfigError::NoCpus)
        );
        assert_eq!(
            validate_worker_counts(2, 0, true),
            Err(ConfigError::PipelinedWithoutWorkers)
        );
        assert_eq!(
            validate_worker_counts(2, MAX_SPARE_WORKERS + 1, false),
            Err(ConfigError::TooManyWorkers {
                workers: MAX_SPARE_WORKERS + 1
            })
        );
        assert_eq!(validate_worker_counts(2, 0, false), Ok(()));
        assert!(DoublePlayConfig::new(2).validate().is_ok());
        assert_eq!(
            DoublePlayConfig::new(2)
                .spare_workers(0)
                .pipelined(true)
                .validate(),
            Err(ConfigError::PipelinedWithoutWorkers)
        );
        let msg = ConfigError::PipelinedWithoutWorkers.to_string();
        assert!(msg.contains("spare worker"));
    }

    #[test]
    fn pipelined_is_not_part_of_the_wire_encoding() {
        let seq = DoublePlayConfig::new(2).epoch_cycles(1234).hidden_seed(9);
        let pip = seq.pipelined(true);
        let a = dp_support::wire::to_bytes(&seq);
        let b = dp_support::wire::to_bytes(&pip);
        assert_eq!(a, b, "pipelined must not change the encoding");
        let decoded: DoublePlayConfig = dp_support::wire::from_bytes(&b).unwrap();
        assert!(!decoded.pipelined, "decode always yields sequential");
        assert_eq!(decoded, seq);
    }
}
