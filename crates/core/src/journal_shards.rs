//! N-way sharded journaling (`DPRS`): parallel log streams with a
//! deterministic merge.
//!
//! The single-stream [`crate::JournalWriter`] flushes once per epoch —
//! the commit marker reaching the device *is* the durability point — so
//! every committed epoch pays one synchronous flush on the commit stage,
//! the largest remaining serial section of the pipelined recorder. The
//! sharded writer splits the journal into `N` independent shard streams
//! (Taurus-style parallel log streams): epoch `i` is appended to shard
//! `i mod N`, stamped with its epoch index and an **epoch-dependency
//! vector**, and each shard *group-commits* — it flushes once per `batch`
//! epochs instead of once per epoch. In threaded mode each shard stream
//! is appended by its own lane thread, so the commit stage only
//! serializes the frame and hands it off; the flush leaves the hot path
//! entirely.
//!
//! ## Shard stream format
//!
//! Each shard is a self-delimiting framed stream like `DPRJ` (same
//! `tag | len | payload | crc32` frames, same commit rule) under its own
//! magic:
//!
//! ```text
//! shard  := magic "DPRS" | version u32 le | frame*
//!
//! tag 1 SHARD   payload = shard index u32 le ++ shard count u32 le
//!                         ++ program hash u64 le ++ initial hash u64 le
//!                         ++ full u8 ++ (full == 1: wire(meta) ++ wire(initial))
//! tag 2 EPOCH   payload = epoch index u32 le
//!                         ++ dep vector (shard count × u32 le)
//!                         ++ wire(EpochRecord)
//! tag 3 COMMIT  payload = epoch index u32 le ++ crc32(epoch payload) u32 le
//! tag 4 FINAL   payload = total epoch count u32 le    (every shard, on finish)
//! ```
//!
//! Only shard 0 carries the full header (`full == 1`: meta plus the
//! initial checkpoint); every shard carries the identity hashes, so a
//! stray shard file can be paired with — or rejected from — its siblings.
//!
//! ## Dependency vectors and the consistent cross-shard prefix
//!
//! Entry `t` of epoch `i`'s dependency vector is the number of epochs
//! with index `< i` assigned to shard `t` — everything `i` depends on,
//! expressed as per-shard durable-prefix lengths. After a crash an epoch
//! is salvageable iff its own commit frame is durable in its shard *and*
//! every dependency-vector entry is covered by that shard's durable
//! committed epochs; [`JournalReader::salvage_shards`] recomposes the
//! longest dependency-closed epoch prefix, which loads **byte-identical**
//! to the recording the sequential driver (and single-stream journal)
//! would have produced.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use crate::checkpoint::CheckpointImage;
use crate::error::ReplayError;
use crate::journal::{frame_crc, read_frame, JournalReader, RecordSink, FRAME_HEAD, FRAME_TAIL};
use crate::recording::{EncodedLogs, EpochRecord, Recording, RecordingMeta};
use dp_support::crc32::crc32;
use dp_support::wire::{Reader, Wire};

/// Shard stream magic: "DPRS" (DoublePlay Recording Shard).
pub const SHARD_MAGIC: [u8; 4] = *b"DPRS";
/// Shard stream format version; bumped on any layout change. Version 2
/// switched the schedule/syscall log wire form to length-prefixed compact
/// codec payloads (the encode-once commit path).
const SHARD_VERSION: u32 = 2;

const TAG_SHARD: u8 = 1;
const TAG_EPOCH: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_FINAL: u8 = 4;

/// Default group-commit size: epochs per shard between flushes.
pub const DEFAULT_SHARD_BATCH: u32 = 8;

/// Epoch `index`'s dependency vector over `shards` streams: entry `t` is
/// the number of epochs with index `< index` assigned (round-robin) to
/// shard `t`. Recorded with every epoch frame so salvage can check
/// dependency closure without assuming the assignment policy.
fn dep_vector(index: u32, shards: u32) -> Vec<u32> {
    (0..shards)
        .map(|t| {
            if index > t {
                (index - 1 - t) / shards + 1
            } else {
                0
            }
        })
        .collect()
}

/// Builds one framed record (`tag | len | payload | crc32`) as bytes.
fn frame_bytes(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut head = [0u8; FRAME_HEAD];
    head[0] = tag;
    head[1..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = frame_crc(&head, payload);
    let mut out = Vec::with_capacity(FRAME_HEAD + payload.len() + FRAME_TAIL);
    out.extend_from_slice(&head);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// What a lane carries per hand-off: bytes to append, how many epoch
/// commits they contain (group-commit ticks), and whether to flush
/// unconditionally (header and final frames — durability points).
struct LaneMsg {
    bytes: Vec<u8>,
    ticks: u32,
    force_flush: bool,
}

/// One shard stream's writer: either written inline by the caller of
/// [`RecordSink::epoch`] (sync mode) or by a dedicated lane thread
/// (threaded mode — the commit stage only serializes and sends).
enum Lane<W: Write + Send> {
    Sync {
        w: W,
        /// Epoch commits appended since the last flush.
        pending: u32,
    },
    Threaded {
        tx: mpsc::Sender<LaneMsg>,
        handle: JoinHandle<W>,
    },
}

/// Streams a recording into `N` shard streams with per-shard group
/// commit. Implements [`RecordSink`], so both recording drivers accept it
/// wherever a [`crate::JournalWriter`] goes.
///
/// Byte determinism: every shard's byte stream is a pure function of the
/// epoch sequence (frames are serialized by the committing caller, in
/// commit order, before any hand-off), so threading changes *when* bytes
/// become durable, never *which* bytes the streams contain.
pub struct ShardedJournalWriter<W: Write + Send> {
    lanes: Vec<Lane<W>>,
    batch: u32,
    epochs: u32,
    written: u64,
    /// Flushes issued across all lanes (the E15 amortization metric).
    flushes: Arc<AtomicU64>,
    /// First error observed by a lane thread, surfaced on the next call.
    lane_err: Arc<Mutex<Option<String>>>,
}

impl<W: Write + Send> ShardedJournalWriter<W> {
    /// Wraps one writer per shard (sync mode: appends and flushes happen
    /// inline on the committing thread) and writes each stream's
    /// preamble. `batch` is the group-commit size; 0 is treated as 1
    /// (flush per epoch, the single-stream behaviour per shard).
    ///
    /// # Errors
    ///
    /// `InvalidInput` when `writers` is empty; I/O failures from the
    /// preamble writes.
    pub fn new(writers: Vec<W>, batch: u32) -> io::Result<Self> {
        if writers.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "sharded journal needs at least one shard",
            ));
        }
        let mut this = ShardedJournalWriter {
            lanes: writers
                .into_iter()
                .map(|w| Lane::Sync { w, pending: 0 })
                .collect(),
            batch: batch.max(1),
            epochs: 0,
            written: 0,
            flushes: Arc::new(AtomicU64::new(0)),
            lane_err: Arc::new(Mutex::new(None)),
        };
        this.preamble()?;
        Ok(this)
    }

    /// Wraps shard writers already holding exactly the merged prefix of
    /// `salvaged` — the caller has truncated stream `t` to
    /// `salvaged.shard_keep[t]` — and positions the writer to append
    /// epoch `salvaged.committed()` onward. No preamble or header frame
    /// is rewritten; every stream continues byte-for-byte where its
    /// durable prefix ended.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the writer count disagrees with the salvage's
    /// shard count or any shard stream was missing from the salvage
    /// (resume needs all of them).
    pub fn resume(writers: Vec<W>, batch: u32, salvaged: &ShardSalvaged) -> io::Result<Self> {
        let keeps = Self::check_resume(writers.len(), salvaged)?;
        Ok(ShardedJournalWriter {
            lanes: writers
                .into_iter()
                .map(|w| Lane::Sync { w, pending: 0 })
                .collect(),
            batch: batch.max(1),
            epochs: salvaged.committed() as u32,
            written: keeps,
            flushes: Arc::new(AtomicU64::new(0)),
            lane_err: Arc::new(Mutex::new(None)),
        })
    }

    /// Validates a resume request and returns the prefix byte total.
    fn check_resume(writers: usize, salvaged: &ShardSalvaged) -> io::Result<u64> {
        if writers != salvaged.shard_count as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "{writers} writers for a {}-shard journal",
                    salvaged.shard_count
                ),
            ));
        }
        let mut total = 0u64;
        for (t, keep) in salvaged.shard_keep.iter().enumerate() {
            match keep {
                Some(k) => total += *k as u64,
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("shard {t} stream is missing; cannot resume"),
                    ))
                }
            }
        }
        Ok(total)
    }

    fn preamble(&mut self) -> io::Result<()> {
        let mut pre = Vec::with_capacity(8);
        pre.extend_from_slice(&SHARD_MAGIC);
        pre.extend_from_slice(&SHARD_VERSION.to_le_bytes());
        for shard in 0..self.lanes.len() {
            self.lane_write(shard, pre.clone(), 0, false)?;
        }
        Ok(())
    }

    /// Shard count.
    pub fn shard_count(&self) -> u32 {
        self.lanes.len() as u32
    }

    /// Epochs committed so far.
    pub fn epochs_committed(&self) -> u32 {
        self.epochs
    }

    /// Total bytes handed to shard streams (the write-overhead metric).
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Flushes issued across all shards so far. In threaded mode lane
    /// flushes race this read; the count is exact once the writer is
    /// consumed by [`into_writers`](ShardedJournalWriter::into_writers).
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::SeqCst)
    }

    /// Appends `bytes` to `shard`, advancing the group-commit state by
    /// `ticks` epoch commits; `force_flush` flushes unconditionally.
    fn lane_write(
        &mut self,
        shard: usize,
        bytes: Vec<u8>,
        ticks: u32,
        force_flush: bool,
    ) -> io::Result<()> {
        self.written += bytes.len() as u64;
        match &mut self.lanes[shard] {
            Lane::Sync { w, pending } => {
                w.write_all(&bytes)?;
                *pending += ticks;
                if force_flush || *pending >= self.batch {
                    w.flush()?;
                    *pending = 0;
                    self.flushes.fetch_add(1, Ordering::SeqCst);
                }
                Ok(())
            }
            Lane::Threaded { tx, .. } => tx
                .send(LaneMsg {
                    bytes,
                    ticks,
                    force_flush,
                })
                .map_err(|_| io::Error::other("shard lane thread exited early")),
        }
    }

    /// The first asynchronous lane error, as an `io::Error`.
    /// Appends one epoch from its serialized record bytes: in-order check,
    /// shard assignment, dependency vector, EPOCH + COMMIT frames handed to
    /// the lane atomically. Shared by both [`RecordSink`] entry points so
    /// the commit rule is stated once.
    fn epoch_record_bytes(&mut self, index: u32, record: &[u8]) -> io::Result<()> {
        self.check_lanes()?;
        // Same in-order contract as the single-stream writer: the shard
        // assignment (and every dependency vector) is a function of the
        // commit order, so an out-of-order epoch is a commit-stage bug.
        if index != self.epochs {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "out-of-order epoch {index} (sharded journal expects {})",
                    self.epochs
                ),
            ));
        }
        let shards = self.shard_count();
        let shard = (index % shards) as usize;
        let mut payload = Vec::new();
        payload.extend_from_slice(&index.to_le_bytes());
        for dep in dep_vector(index, shards) {
            payload.extend_from_slice(&dep.to_le_bytes());
        }
        payload.extend_from_slice(record);
        let payload_crc = crc32(&payload);
        let mut buf = frame_bytes(TAG_EPOCH, &payload);
        let mut commit = [0u8; 8];
        commit[..4].copy_from_slice(&index.to_le_bytes());
        commit[4..].copy_from_slice(&payload_crc.to_le_bytes());
        buf.extend_from_slice(&frame_bytes(TAG_COMMIT, &commit));
        // One hand-off per epoch: frame and commit marker appended
        // atomically, flushed at the shard's group-commit boundary.
        self.lane_write(shard, buf, 1, false)?;
        self.epochs += 1;
        Ok(())
    }

    fn check_lanes(&self) -> io::Result<()> {
        match self
            .lane_err
            .lock()
            .expect("lane error slot poisoned")
            .as_ref()
        {
            Some(msg) => Err(io::Error::other(format!("shard lane failed: {msg}"))),
            None => Ok(()),
        }
    }

    /// Consumes the writer and returns the shard writers, joining lane
    /// threads (threaded mode) so all buffered bytes are flushed first.
    ///
    /// # Errors
    ///
    /// The first lane error, if any shard stream failed.
    pub fn into_writers(self) -> io::Result<Vec<W>> {
        let mut out = Vec::with_capacity(self.lanes.len());
        for lane in self.lanes {
            match lane {
                Lane::Sync { w, .. } => out.push(w),
                Lane::Threaded { tx, handle } => {
                    drop(tx);
                    out.push(
                        handle
                            .join()
                            .map_err(|_| io::Error::other("shard lane thread panicked"))?,
                    );
                }
            }
        }
        match self
            .lane_err
            .lock()
            .expect("lane error slot poisoned")
            .take()
        {
            Some(msg) => Err(io::Error::other(format!("shard lane failed: {msg}"))),
            None => Ok(out),
        }
    }
}

impl<W: Write + Send + 'static> ShardedJournalWriter<W> {
    /// Like [`new`](ShardedJournalWriter::new), but each shard stream is
    /// appended by its own lane thread: [`RecordSink::epoch`] only
    /// serializes the frames and hands them off, so neither the append
    /// nor the group-commit flush ever stalls the commit stage. Lane
    /// errors surface on the next sink call (or at
    /// [`into_writers`](ShardedJournalWriter::into_writers)).
    ///
    /// # Errors
    ///
    /// `InvalidInput` when `writers` is empty.
    pub fn threaded(writers: Vec<W>, batch: u32) -> io::Result<Self> {
        if writers.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "sharded journal needs at least one shard",
            ));
        }
        let batch = batch.max(1);
        let flushes = Arc::new(AtomicU64::new(0));
        let lane_err = Arc::new(Mutex::new(None));
        let lanes = writers
            .into_iter()
            .enumerate()
            .map(|(shard, w)| {
                let (tx, rx) = mpsc::channel::<LaneMsg>();
                let flushes = Arc::clone(&flushes);
                let lane_err = Arc::clone(&lane_err);
                let handle = std::thread::Builder::new()
                    .name(format!("dprs-lane-{shard}"))
                    .spawn(move || lane_loop(w, &rx, batch, &flushes, &lane_err))
                    .expect("spawn shard lane thread");
                Lane::Threaded { tx, handle }
            })
            .collect();
        let mut this = ShardedJournalWriter {
            lanes,
            batch,
            epochs: 0,
            written: 0,
            flushes,
            lane_err,
        };
        this.preamble()?;
        Ok(this)
    }

    /// Like [`resume`](ShardedJournalWriter::resume), but with one lane
    /// thread per shard stream (the threaded-mode counterpart).
    ///
    /// # Errors
    ///
    /// Same validation as [`resume`](ShardedJournalWriter::resume).
    pub fn resume_threaded(
        writers: Vec<W>,
        batch: u32,
        salvaged: &ShardSalvaged,
    ) -> io::Result<Self> {
        let keeps = Self::check_resume(writers.len(), salvaged)?;
        let batch = batch.max(1);
        let flushes = Arc::new(AtomicU64::new(0));
        let lane_err = Arc::new(Mutex::new(None));
        let lanes = writers
            .into_iter()
            .enumerate()
            .map(|(shard, w)| {
                let (tx, rx) = mpsc::channel::<LaneMsg>();
                let flushes = Arc::clone(&flushes);
                let lane_err = Arc::clone(&lane_err);
                let handle = std::thread::Builder::new()
                    .name(format!("dprs-lane-{shard}"))
                    .spawn(move || lane_loop(w, &rx, batch, &flushes, &lane_err))
                    .expect("spawn shard lane thread");
                Lane::Threaded { tx, handle }
            })
            .collect();
        Ok(ShardedJournalWriter {
            lanes,
            batch,
            epochs: salvaged.committed() as u32,
            written: keeps,
            flushes,
            lane_err,
        })
    }
}

/// Lane-thread body: append, count commits, group-commit flush. On error
/// the lane parks the message in the shared slot and keeps draining (the
/// writer surfaces it on its next call); the writer is always returned so
/// callers can inspect whatever bytes it holds.
fn lane_loop<W: Write + Send>(
    mut w: W,
    rx: &mpsc::Receiver<LaneMsg>,
    batch: u32,
    flushes: &AtomicU64,
    lane_err: &Mutex<Option<String>>,
) -> W {
    let mut pending = 0u32;
    let mut dead = false;
    while let Ok(msg) = rx.recv() {
        if dead {
            continue;
        }
        let r = (|| -> io::Result<()> {
            w.write_all(&msg.bytes)?;
            pending += msg.ticks;
            if msg.force_flush || pending >= batch {
                w.flush()?;
                pending = 0;
                flushes.fetch_add(1, Ordering::SeqCst);
            }
            Ok(())
        })();
        if let Err(e) = r {
            let mut slot = lane_err.lock().expect("lane error slot poisoned");
            slot.get_or_insert_with(|| e.to_string());
            dead = true;
        }
    }
    w
}

impl<W: Write + Send> RecordSink for ShardedJournalWriter<W> {
    fn begin(&mut self, meta: &RecordingMeta, initial: &CheckpointImage) -> io::Result<()> {
        self.check_lanes()?;
        let shards = self.shard_count();
        for shard in 0..shards {
            let full = shard == 0;
            let mut payload = Vec::new();
            payload.extend_from_slice(&shard.to_le_bytes());
            payload.extend_from_slice(&shards.to_le_bytes());
            payload.extend_from_slice(&meta.program_hash.to_le_bytes());
            payload.extend_from_slice(&meta.initial_machine_hash.to_le_bytes());
            payload.push(u8::from(full));
            if full {
                meta.put(&mut payload);
                initial.put(&mut payload);
            }
            // The shard header is a durability point: a stream whose
            // header never reached the device contributes nothing.
            self.lane_write(shard as usize, frame_bytes(TAG_SHARD, &payload), 0, true)?;
        }
        Ok(())
    }

    fn epoch(&mut self, epoch: &EpochRecord) -> io::Result<()> {
        let mut record = Vec::new();
        epoch.put(&mut record);
        self.epoch_record_bytes(epoch.index, &record)
    }

    fn epoch_encoded(&mut self, epoch: &EpochRecord, logs: &EncodedLogs) -> io::Result<()> {
        let mut record = Vec::new();
        epoch.put_with(logs, &mut record);
        self.epoch_record_bytes(epoch.index, &record)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.check_lanes()?;
        let final_frame = frame_bytes(TAG_FINAL, &self.epochs.to_le_bytes());
        for shard in 0..self.lanes.len() {
            // Force-flush: finish drains every shard's group-commit
            // buffer, so a clean run is fully durable.
            self.lane_write(shard, final_frame.clone(), 0, true)?;
        }
        Ok(())
    }
}

/// What one shard stream's salvage scan recovered.
struct ShardScan {
    shard: u32,
    shards: u32,
    program_hash: u64,
    initial_hash: u64,
    header: Option<(RecordingMeta, CheckpointImage)>,
    /// Committed epochs in stream order: (global index, dep vector, record).
    epochs: Vec<(u32, Vec<u32>, EpochRecord)>,
    /// Per committed epoch, the stream offset just past its COMMIT frame
    /// (parallel to `epochs`) — the candidate truncation points for
    /// append-reopen.
    commit_ends: Vec<usize>,
    /// Stream offset just past the shard header frame.
    header_end: usize,
    final_count: Option<u32>,
    salvaged_bytes: usize,
    dropped_bytes: usize,
}

/// Scans one shard stream, applying the per-shard commit rule. Errors are
/// `ReplayError::UnsupportedVersion` for a foreign format version and
/// `ReplayError::Corrupt` only when the stream is unusable outright (bad
/// magic, torn shard header) — a torn tail just ends the scan.
fn scan_shard(buf: &[u8]) -> Result<ShardScan, ReplayError> {
    let corrupt = |detail: String| ReplayError::Corrupt { detail };
    if buf.len() < 8 {
        return Err(corrupt(format!(
            "shard too short to be a journal ({} bytes)",
            buf.len()
        )));
    }
    if buf[..4] != SHARD_MAGIC {
        return Err(corrupt(format!("bad shard magic {:02x?}", &buf[..4])));
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if version != SHARD_VERSION {
        return Err(ReplayError::UnsupportedVersion {
            container: "journal shard",
            found: version,
            expected: SHARD_VERSION,
        });
    }
    let head = read_frame(buf, 8)
        .filter(|f| f.tag == TAG_SHARD && f.payload.len() >= 25)
        .ok_or_else(|| corrupt("shard header frame missing or torn".into()))?;
    let shard = u32::from_le_bytes(head.payload[0..4].try_into().unwrap());
    let shards = u32::from_le_bytes(head.payload[4..8].try_into().unwrap());
    let program_hash = u64::from_le_bytes(head.payload[8..16].try_into().unwrap());
    let initial_hash = u64::from_le_bytes(head.payload[16..24].try_into().unwrap());
    if shards == 0 || shard >= shards {
        return Err(corrupt(format!(
            "shard header names shard {shard} of {shards}"
        )));
    }
    let full = head.payload[24] == 1;
    let header = if full {
        let mut r = Reader::new(&head.payload[25..]);
        let meta = RecordingMeta::get(&mut r)
            .map_err(|e| corrupt(format!("shard header meta undecodable: {e}")))?;
        let initial = CheckpointImage::get(&mut r)
            .map_err(|e| corrupt(format!("shard header checkpoint undecodable: {e}")))?;
        if !r.is_empty() {
            return Err(corrupt(format!(
                "{} trailing bytes inside shard header frame",
                r.remaining()
            )));
        }
        Some((meta, initial))
    } else {
        None
    };

    let dep_len = 4usize * shards as usize;
    let mut epochs: Vec<(u32, Vec<u32>, EpochRecord)> = Vec::new();
    let mut commit_ends: Vec<usize> = Vec::new();
    let mut final_count = None;
    let header_end = head.end;
    let mut pos = head.end;
    while let Some(frame) = read_frame(buf, pos) {
        match frame.tag {
            TAG_EPOCH => {
                if frame.payload.len() < 4 + dep_len {
                    break; // shorter than its own dependency vector: torn
                }
                let index = u32::from_le_bytes(frame.payload[0..4].try_into().unwrap());
                let deps: Vec<u32> = (0..shards as usize)
                    .map(|t| {
                        u32::from_le_bytes(frame.payload[4 + 4 * t..8 + 4 * t].try_into().unwrap())
                    })
                    .collect();
                let Ok(epoch) =
                    dp_support::wire::from_bytes::<EpochRecord>(&frame.payload[4 + dep_len..])
                else {
                    break;
                };
                // Stamp, payload, and stream order must agree: the stamp
                // names this shard's stream, the record names itself, and
                // epochs are appended in global commit order.
                if epoch.index != index
                    || index % shards != shard
                    || epochs.last().is_some_and(|(last, _, _)| index <= *last)
                {
                    break;
                }
                let payload_crc = crc32(frame.payload);
                let Some(commit) = read_frame(buf, frame.end).filter(|c| {
                    c.tag == TAG_COMMIT
                        && c.payload.len() == 8
                        && c.payload[..4] == index.to_le_bytes()
                        && c.payload[4..] == payload_crc.to_le_bytes()
                }) else {
                    break;
                };
                epochs.push((index, deps, epoch));
                commit_ends.push(commit.end);
                pos = commit.end;
            }
            TAG_FINAL => {
                if frame.payload.len() == 4 {
                    final_count = Some(u32::from_le_bytes(frame.payload.try_into().unwrap()));
                }
                pos = frame.end;
                break;
            }
            _ => break,
        }
    }
    Ok(ShardScan {
        shard,
        shards,
        program_hash,
        initial_hash,
        header,
        epochs,
        commit_ends,
        header_end,
        final_count,
        salvaged_bytes: pos,
        dropped_bytes: buf.len() - pos,
    })
}

/// What a cross-shard salvage recovered.
#[derive(Debug)]
pub struct ShardSalvaged {
    /// The merged recording: header plus the longest dependency-closed
    /// committed epoch prefix, byte-identical (when saved) to the
    /// sequential driver's output over the same prefix.
    pub recording: Recording,
    /// True when every shard is present, finalized with the same epoch
    /// count, and the whole run merged — nothing was lost.
    pub clean: bool,
    /// Shard count the streams declare.
    pub shard_count: u32,
    /// Bytes consumed as valid frames, summed over shards.
    pub salvaged_bytes: usize,
    /// Trailing bytes dropped, summed over shards.
    pub dropped_bytes: usize,
    /// Epochs durable in some shard but outside the consistent prefix
    /// (their dependencies died in a sibling shard).
    pub dropped_epochs: usize,
    /// Per shard, the byte offset to truncate that stream to for
    /// append-reopen resume: just past the COMMIT frame of the shard's
    /// last epoch *inside the merged prefix* (the shard header's end when
    /// the prefix assigned it no epochs). `None` for a shard whose stream
    /// was missing or unusable — resume needs every stream, so any `None`
    /// forbids it.
    pub shard_keep: Vec<Option<usize>>,
    /// Why the merge stopped, for operator-facing reporting.
    pub detail: String,
}

impl ShardSalvaged {
    /// Epochs recovered into the consistent prefix.
    pub fn committed(&self) -> usize {
        self.recording.epochs.len()
    }
}

impl JournalReader {
    /// Merges a set of `DPRS` shard streams back into a [`Recording`]:
    /// salvages each shard independently (commit rule per stream), then
    /// takes the longest epoch prefix in which every epoch is durable in
    /// its shard *and* its dependency vector is covered by its siblings'
    /// durable commits — the longest consistent cross-shard prefix.
    ///
    /// `bufs` may arrive in any order (streams carry their own shard
    /// index); a missing or individually unsalvageable shard simply
    /// bounds the prefix at its first assigned epoch.
    ///
    /// # Errors
    ///
    /// [`ReplayError::Corrupt`] only when nothing is reconstructible: no
    /// usable stream, conflicting shard sets, or the full-header shard
    /// (index 0) lost — without meta and the initial checkpoint there is
    /// no valid `Recording` to build. Never panics, whatever the input.
    pub fn salvage_shards(bufs: &[Vec<u8>]) -> Result<ShardSalvaged, ReplayError> {
        let corrupt = |detail: String| ReplayError::Corrupt { detail };
        let mut scans: Vec<ShardScan> = Vec::new();
        let mut scan_failures: Vec<String> = Vec::new();
        for (i, buf) in bufs.iter().enumerate() {
            match scan_shard(buf) {
                Ok(s) => scans.push(s),
                Err(e) => scan_failures.push(format!("stream {i}: {e}")),
            }
        }
        let Some(first) = scans.first() else {
            return Err(corrupt(format!(
                "no usable shard stream ({})",
                scan_failures.join("; ")
            )));
        };
        let shards = first.shards;
        for s in &scans {
            if s.shards != shards {
                return Err(corrupt(format!(
                    "conflicting shard counts ({} vs {shards})",
                    s.shards
                )));
            }
            if s.program_hash != first.program_hash || s.initial_hash != first.initial_hash {
                return Err(corrupt(format!(
                    "shard {} belongs to a different recording",
                    s.shard
                )));
            }
        }
        // Place scans by their declared index; duplicates are conflicts.
        let mut by_shard: Vec<Option<ShardScan>> = (0..shards).map(|_| None).collect();
        for s in scans {
            let slot = &mut by_shard[s.shard as usize];
            if slot.is_some() {
                return Err(corrupt(format!("two streams claim shard {}", s.shard)));
            }
            *slot = Some(s);
        }
        let (meta, initial) = by_shard[0]
            .as_mut()
            .and_then(|s| s.header.take())
            .ok_or_else(|| {
                corrupt("shard 0 (the full-header stream) is missing or headerless".into())
            })?;

        let salvaged_bytes: usize = by_shard.iter().flatten().map(|s| s.salvaged_bytes).sum();
        let dropped_bytes: usize = by_shard.iter().flatten().map(|s| s.dropped_bytes).sum();
        let durable: Vec<usize> = by_shard
            .iter()
            .map(|s| s.as_ref().map_or(0, |s| s.epochs.len()))
            .collect();
        let total_durable: usize = durable.iter().sum();

        // The merge walk: epoch i must be the next durable epoch of shard
        // i mod N (streams are in commit order) with a satisfied
        // dependency vector.
        let mut epochs: Vec<EpochRecord> = Vec::new();
        let mut taken: Vec<usize> = vec![0; shards as usize];
        let detail = loop {
            let i = epochs.len() as u32;
            let t = (i % shards) as usize;
            let Some(scan) = by_shard[t].as_ref() else {
                break format!("epoch {i}: shard {t} stream is missing");
            };
            let Some((index, deps, _)) = scan.epochs.get(taken[t]) else {
                break format!("epoch {i} not durable in shard {t}");
            };
            if *index != i {
                break format!(
                    "epoch {i} not durable in shard {t} (next durable there is {index})"
                );
            }
            if let Some(short) = (0..shards as usize).find(|&u| deps[u] as usize > durable[u]) {
                break format!(
                    "epoch {i} depends on {} epoch(s) of shard {short}, only {} durable",
                    deps[short], durable[short]
                );
            }
            let (_, _, record) =
                by_shard[t].as_mut().expect("checked above").epochs[taken[t]].clone();
            taken[t] += 1;
            epochs.push(record);
            if epochs.len() == u32::MAX as usize {
                break "epoch index space exhausted".to_string();
            }
        };

        let merged = epochs.len();
        // Truncation points: each present shard keeps exactly the commits
        // the merged prefix consumed from it; epochs durable beyond the
        // prefix are tail (their siblings lost the dependencies).
        let shard_keep: Vec<Option<usize>> = by_shard
            .iter()
            .enumerate()
            .map(|(t, s)| {
                s.as_ref().map(|s| {
                    if taken[t] == 0 {
                        s.header_end
                    } else {
                        s.commit_ends[taken[t] - 1]
                    }
                })
            })
            .collect();
        let finals: Vec<Option<u32>> = by_shard
            .iter()
            .map(|s| s.as_ref().and_then(|s| s.final_count))
            .collect();
        let clean = scan_failures.is_empty()
            && by_shard.iter().all(Option::is_some)
            && finals.iter().all(|f| *f == Some(merged as u32))
            && total_durable == merged;
        let detail = if clean {
            "clean completion".to_string()
        } else {
            detail
        };
        Ok(ShardSalvaged {
            recording: Recording {
                meta,
                initial,
                epochs,
            },
            clean,
            shard_count: shards,
            salvaged_bytes,
            dropped_bytes,
            dropped_epochs: total_durable - merged,
            shard_keep,
            detail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DoublePlayConfig;
    use crate::journal::JournalWriter;
    use crate::record::coordinator::record_to;
    use crate::record::testutil::{atomic_counter_spec, racy_counter_spec};

    #[test]
    fn dep_vectors_count_round_robin_predecessors() {
        assert_eq!(dep_vector(0, 3), vec![0, 0, 0]);
        assert_eq!(dep_vector(1, 3), vec![1, 0, 0]);
        assert_eq!(dep_vector(5, 3), vec![2, 2, 1]);
        assert_eq!(dep_vector(6, 3), vec![2, 2, 2]);
        assert_eq!(dep_vector(7, 1), vec![7]);
        // Entry t counts exactly the epochs < i assigned to shard t.
        for shards in 1..6u32 {
            for i in 0..40u32 {
                let v = dep_vector(i, shards);
                for t in 0..shards {
                    let expect = (0..i).filter(|j| j % shards == t).count() as u32;
                    assert_eq!(v[t as usize], expect, "i={i} shards={shards} t={t}");
                }
            }
        }
    }

    /// Records `spec` through a sync sharded writer and returns the shard
    /// streams plus, per epoch, its shard and that shard's stream length
    /// right after the epoch's hand-off (the per-shard commit offsets —
    /// group commit makes no difference to a byte-granular store).
    fn sharded_solo(
        spec: &crate::world::GuestSpec,
        config: &DoublePlayConfig,
        shards: u32,
        batch: u32,
    ) -> (Vec<Vec<u8>>, Vec<(usize, u64)>) {
        struct Tap {
            w: ShardedJournalWriter<Vec<u8>>,
            offsets: Vec<(usize, u64)>,
        }
        impl RecordSink for Tap {
            fn begin(&mut self, meta: &RecordingMeta, initial: &CheckpointImage) -> io::Result<()> {
                self.w.begin(meta, initial)
            }
            fn epoch(&mut self, e: &EpochRecord) -> io::Result<()> {
                let shard = (e.index % self.w.shard_count()) as usize;
                self.w.epoch(e)?;
                let len = match &self.w.lanes[shard] {
                    Lane::Sync { w, .. } => w.len() as u64,
                    Lane::Threaded { .. } => unreachable!("sync tap"),
                };
                self.offsets.push((shard, len));
                Ok(())
            }
            fn finish(&mut self) -> io::Result<()> {
                self.w.finish()
            }
        }
        let writers = (0..shards).map(|_| Vec::new()).collect();
        let mut tap = Tap {
            w: ShardedJournalWriter::new(writers, batch).unwrap(),
            offsets: Vec::new(),
        };
        record_to(spec, config, &mut tap).unwrap();
        (tap.w.into_writers().unwrap(), tap.offsets)
    }

    /// The byte-identity acceptance sweep: for seeds × workers × shard
    /// counts × fault plans, the sharded journal merges to a `Recording`
    /// whose saved bytes equal the sequential driver's.
    #[test]
    fn sharded_merge_is_byte_identical_to_sequential_across_sweep() {
        crate::faults::silence_injected_panics();
        for seed in 0..3u64 {
            for &workers in &[1usize, 2] {
                for &shards in &[2u32, 3, 5] {
                    for &faulty in &[false, true] {
                        // Two regimes: a racy guest tuned to diverge (the
                        // forward-recovery path), and an atomic guest with
                        // injected worker panics over many short epochs.
                        let (spec, config) = if faulty {
                            (
                                atomic_counter_spec(1_500, 2),
                                DoublePlayConfig::new(2)
                                    .epoch_cycles(4_000)
                                    .hidden_seed(seed)
                                    // Plan seed is fixed: the panic draw
                                    // is a pure function of (plan seed,
                                    // epoch, attempt), and this seed is
                                    // known to stay within the retry
                                    // budget for this guest.
                                    .faults(
                                        crate::faults::FaultPlan::none()
                                            .seed(5)
                                            .worker_panics_with(0.3),
                                    ),
                            )
                        } else {
                            (
                                racy_counter_spec(3_000),
                                DoublePlayConfig {
                                    tp_quantum: 200,
                                    tp_jitter: 300,
                                    ..DoublePlayConfig::new(2)
                                        .epoch_cycles(20_000)
                                        .hidden_seed(seed)
                                },
                            )
                        };
                        let config = config.spare_workers(workers).pipelined(workers > 0);
                        // Sequential single-stream reference.
                        let mut seq_journal = JournalWriter::new(Vec::new()).unwrap();
                        let seq =
                            record_to(&spec, &config.pipelined(false), &mut seq_journal).unwrap();
                        // Sharded pipelined run.
                        let (streams, _) = sharded_solo(&spec, &config, shards, 4);
                        let merged = JournalReader::salvage_shards(&streams).unwrap();
                        assert!(merged.clean, "detail: {}", merged.detail);
                        assert_eq!(merged.dropped_epochs, 0);
                        assert_eq!(merged.shard_count, shards);
                        let mut seq_bytes = Vec::new();
                        let mut sharded_bytes = Vec::new();
                        seq.recording.save(&mut seq_bytes).unwrap();
                        merged.recording.save(&mut sharded_bytes).unwrap();
                        assert_eq!(
                            seq_bytes, sharded_bytes,
                            "merge diverged (seed={seed} workers={workers} \
                             shards={shards} faulty={faulty})"
                        );
                    }
                }
            }
        }
    }

    /// Crash sweep: cutting every shard-0 prefix (with siblings intact or
    /// also cut) always yields exactly the dependency-closed prefix.
    #[test]
    fn every_shard_prefix_merges_to_the_dependency_closed_prefix() {
        let spec = atomic_counter_spec(4_000, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(1_500);
        let shards = 3u32;
        let (streams, offsets) = sharded_solo(&spec, &config, shards, 2);
        let epochs = offsets.len();
        assert!(epochs >= 6, "need several epochs per shard");
        // Cut shard `cut_shard` after `keep` of its epochs; siblings stay
        // complete. The consistent prefix must stop at the first epoch
        // assigned to the cut shard beyond `keep`.
        for cut_shard in 0..shards as usize {
            let ends: Vec<u64> = offsets
                .iter()
                .filter(|(s, _)| *s == cut_shard)
                .map(|(_, o)| *o)
                .collect();
            for (keep, &end) in ends.iter().enumerate() {
                let mut bufs = streams.clone();
                bufs[cut_shard].truncate(end as usize - 1);
                let merged = JournalReader::salvage_shards(&bufs).unwrap();
                // `keep` commits survive in the cut shard (the (keep+1)-th
                // is torn), so the prefix ends at that shard's epoch
                // number `keep`: global index cut_shard + keep*N.
                let expect = (cut_shard + keep * shards as usize).min(epochs);
                assert_eq!(
                    merged.committed(),
                    expect,
                    "cut shard {cut_shard} after {keep} commits"
                );
                assert!(!merged.clean);
                assert_eq!(
                    merged.dropped_epochs,
                    epochs - (epochs - expect).div_ceil(shards as usize) - expect,
                    "cut shard {cut_shard} keep {keep}: durable-but-dropped count"
                );
            }
        }
    }

    #[test]
    fn resume_continues_shard_streams_byte_identically() {
        let spec = atomic_counter_spec(4_000, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(1_500);
        let shards = 3u32;
        let (full_streams, offsets) = sharded_solo(&spec, &config, shards, 2);
        let full = JournalReader::salvage_shards(&full_streams).unwrap();
        assert!(full.clean);
        // Crash: tear shard 1 after one commit; siblings stay intact. The
        // merged prefix stops at shard 1's next assigned epoch, so intact
        // siblings carry durable-but-unusable commits past it.
        let cut_shard = 1usize;
        let ends: Vec<u64> = offsets
            .iter()
            .filter(|(s, _)| *s == cut_shard)
            .map(|(_, o)| *o)
            .collect();
        let mut torn = full_streams.clone();
        torn[cut_shard].truncate(ends[1] as usize - 1);
        let salvaged = JournalReader::salvage_shards(&torn).unwrap();
        assert!(!salvaged.clean);
        let committed = salvaged.committed();
        assert!(committed < full.committed());
        assert!(salvaged.dropped_epochs > 0);
        let truncate_to_keep = |salv: &ShardSalvaged| -> Vec<Vec<u8>> {
            torn.iter()
                .enumerate()
                .map(|(t, s)| s[..salv.shard_keep[t].unwrap()].to_vec())
                .collect()
        };
        // Sync resume: truncate each stream to its keep point, append the
        // missing tail, finish — byte-identical to the uninterrupted run.
        let mut w =
            ShardedJournalWriter::resume(truncate_to_keep(&salvaged), 2, &salvaged).unwrap();
        assert_eq!(w.epochs_committed() as usize, committed);
        for e in &full.recording.epochs[committed..] {
            w.epoch(e).unwrap();
        }
        w.finish().unwrap();
        assert_eq!(w.into_writers().unwrap(), full_streams);
        // Threaded resume produces the same bytes.
        let mut w =
            ShardedJournalWriter::resume_threaded(truncate_to_keep(&salvaged), 4, &salvaged)
                .unwrap();
        for e in &full.recording.epochs[committed..] {
            w.epoch(e).unwrap();
        }
        w.finish().unwrap();
        assert_eq!(w.into_writers().unwrap(), full_streams);
        // A missing sibling stream forbids resume outright.
        let headerless = JournalReader::salvage_shards(&[torn[0].clone()]).unwrap();
        assert!(headerless.shard_keep.iter().any(Option::is_none));
        match ShardedJournalWriter::resume(vec![Vec::<u8>::new(); shards as usize], 2, &headerless)
        {
            Ok(_) => panic!("resume with a missing stream must fail"),
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidInput),
        }
        // So does a writer-count mismatch.
        match ShardedJournalWriter::resume(vec![Vec::<u8>::new()], 2, &salvaged) {
            Ok(_) => panic!("resume with a writer-count mismatch must fail"),
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidInput),
        }
    }

    #[test]
    fn threaded_lanes_produce_identical_streams() {
        let spec = atomic_counter_spec(1_200, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(2_500);
        let (sync_streams, _) = sharded_solo(&spec, &config, 4, 8);
        let writers = (0..4).map(|_| Vec::new()).collect();
        let mut w = ShardedJournalWriter::threaded(writers, 8).unwrap();
        record_to(&spec, &config, &mut w).unwrap();
        assert!(w.flushes() >= 4, "headers alone flush once per shard");
        let threaded_streams = w.into_writers().unwrap();
        assert_eq!(sync_streams, threaded_streams);
    }

    #[test]
    fn group_commit_amortizes_flushes() {
        use std::sync::atomic::AtomicU64;

        struct CountingSink(Vec<u8>, Arc<AtomicU64>);
        impl Write for CountingSink {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                self.1.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        }
        let spec = atomic_counter_spec(2_000, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(1_500);
        // Single-stream: one flush per epoch plus header and final.
        let single_flushes = Arc::new(AtomicU64::new(0));
        let mut single =
            JournalWriter::new(CountingSink(Vec::new(), Arc::clone(&single_flushes))).unwrap();
        let bundle = record_to(&spec, &config, &mut single).unwrap();
        let epochs = bundle.stats.committed;
        assert!(epochs >= 8, "need enough epochs to amortize");
        assert_eq!(single_flushes.load(Ordering::SeqCst), epochs + 2);
        // Sharded, batch 8: headers + finals + ~epochs/8 group commits.
        let shard_flushes = Arc::new(AtomicU64::new(0));
        let writers = (0..2)
            .map(|_| CountingSink(Vec::new(), Arc::clone(&shard_flushes)))
            .collect();
        let mut sharded = ShardedJournalWriter::new(writers, 8).unwrap();
        record_to(&spec, &config, &mut sharded).unwrap();
        let sharded_count = shard_flushes.load(Ordering::SeqCst);
        assert_eq!(sharded.epochs_committed() as u64, epochs);
        assert!(
            sharded_count < single_flushes.load(Ordering::SeqCst),
            "sharded {sharded_count} flushes vs single {} — no amortization",
            single_flushes.load(Ordering::SeqCst)
        );
        assert_eq!(sharded.flushes(), sharded_count);
    }

    #[test]
    fn out_of_order_epochs_are_rejected() {
        let spec = atomic_counter_spec(800, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(2_000);
        let (streams, _) = sharded_solo(&spec, &config, 2, 4);
        let merged = JournalReader::salvage_shards(&streams).unwrap();
        let mut w = ShardedJournalWriter::new(vec![Vec::<u8>::new(), Vec::new()], 4).unwrap();
        w.begin(&merged.recording.meta, &merged.recording.initial)
            .unwrap();
        let err = w.epoch(&merged.recording.epochs[1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn foreign_mixed_and_duplicate_shards_are_typed_errors() {
        let spec = atomic_counter_spec(800, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(2_000);
        let (streams, _) = sharded_solo(&spec, &config, 2, 4);
        // Empty set, garbage, and single-stream DPRJ bytes are all typed.
        assert!(matches!(
            JournalReader::salvage_shards(&[]),
            Err(ReplayError::Corrupt { .. })
        ));
        assert!(matches!(
            JournalReader::salvage_shards(&[b"garbage".to_vec()]),
            Err(ReplayError::Corrupt { .. })
        ));
        // Duplicate shard index.
        assert!(matches!(
            JournalReader::salvage_shards(&[streams[0].clone(), streams[0].clone()]),
            Err(ReplayError::Corrupt { .. })
        ));
        // A shard of a different recording (different seed → different
        // identity hashes) must be rejected, not merged.
        let other_cfg = config.hidden_seed(1234);
        let (other, _) = sharded_solo(&spec, &other_cfg, 2, 4);
        let r = JournalReader::salvage_shards(&[streams[0].clone(), other[1].clone()]);
        if let Ok(ok) = &r {
            // Same program and boot state can legitimately pair; then the
            // merge must still be internally consistent.
            assert!(ok.committed() <= streams.len() * ok.recording.epochs.len().max(1));
        }
        // Missing shard 0 (the full header) is unrecoverable.
        assert!(matches!(
            JournalReader::salvage_shards(&[streams[1].clone()]),
            Err(ReplayError::Corrupt { .. })
        ));
        // Missing a sibling bounds the prefix at its first epoch.
        let merged = JournalReader::salvage_shards(&[streams[0].clone()]).unwrap();
        assert_eq!(merged.committed(), 1.min(merged.recording.epochs.len()));
        assert!(!merged.clean);
    }

    #[test]
    fn bitflips_never_gain_epochs_or_panic() {
        let spec = atomic_counter_spec(800, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(2_000);
        let (streams, _) = sharded_solo(&spec, &config, 2, 4);
        let full = JournalReader::salvage_shards(&streams).unwrap().committed();
        for shard in 0..streams.len() {
            for i in (0..streams[shard].len()).step_by(7) {
                let mut bad = streams.clone();
                bad[shard][i] ^= 0x40;
                match JournalReader::salvage_shards(&bad) {
                    Ok(s) => assert!(s.committed() <= full),
                    Err(ReplayError::Corrupt { .. }) => {}
                    Err(e) => panic!("flip at {shard}:{i}: unexpected error {e:?}"),
                }
            }
        }
    }
}
