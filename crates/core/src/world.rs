//! Guest specifications: a program plus the world it runs in.

use dp_os::kernel::{Kernel, WorldConfig};
use dp_vm::{Machine, Program, Word};
use std::sync::Arc;

/// Everything needed to boot (and re-boot, for replay) a guest execution:
/// the program, the world script (files, network peers, entropy seed, cost
/// model), and the entry arguments.
///
/// Recording and replay must start from *identical* worlds, so workloads
/// hand around a `GuestSpec` rather than live machines.
#[derive(Debug, Clone)]
pub struct GuestSpec {
    /// Display name (used in reports).
    pub name: String,
    /// The guest program.
    pub program: Arc<Program>,
    /// The world script.
    pub world: WorldConfig,
    /// Arguments passed to the entry function.
    pub args: Vec<Word>,
}

impl GuestSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, program: Arc<Program>, world: WorldConfig) -> Self {
        GuestSpec {
            name: name.into(),
            program,
            world,
            args: Vec::new(),
        }
    }

    /// Sets entry arguments.
    pub fn with_args(mut self, args: Vec<Word>) -> Self {
        self.args = args;
        self
    }

    /// Boots a fresh machine/kernel pair for this spec.
    pub fn boot(&self) -> (Machine, Kernel) {
        (
            Machine::new(self.program.clone(), &self.args),
            Kernel::new(self.world.clone()),
        )
    }

    /// Stable identity of the guest (program content hash), used to pair
    /// recordings with the right program.
    pub fn program_hash(&self) -> u64 {
        self.program.content_hash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_vm::builder::ProgramBuilder;

    fn spec() -> GuestSpec {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.ret();
        f.finish();
        GuestSpec::new("tiny", Arc::new(pb.finish("main")), WorldConfig::default())
            .with_args(vec![5])
    }

    #[test]
    fn boot_is_reproducible() {
        let s = spec();
        let (m1, k1) = s.boot();
        let (m2, k2) = s.boot();
        assert_eq!(m1.state_hash(), m2.state_hash());
        assert_eq!(k1, k2);
        assert_eq!(m1.thread(dp_vm::Tid(0)).regs[0], 5);
    }

    #[test]
    fn program_hash_is_stable() {
        let s = spec();
        assert_eq!(s.program_hash(), spec().program_hash());
    }
}
