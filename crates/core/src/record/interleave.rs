//! The hidden nondeterminism source driving the thread-parallel execution.
//!
//! On real hardware, thread interleaving is decided by cache misses,
//! interrupts and the OS scheduler — none of it visible to the recorder.
//! Here an explicitly *hidden* PRNG stands in: it jitters quantum lengths
//! and picks among runnable threads, so data races genuinely resolve
//! differently run-to-run (different seeds) and differently from the
//! epoch-parallel execution's deterministic round-robin — which is what
//! gives the divergence-detection machinery real work to do.
//!
//! The recorder never reads this state; only the thread-parallel driver
//! does. A recording must replay correctly *without* knowing the seed.

/// SplitMix64: small, fast, good enough for schedule jitter.
#[derive(Debug, Clone)]
pub struct HiddenRng {
    state: u64,
}

impl HiddenRng {
    /// Creates the generator from the configured hidden seed.
    pub fn new(seed: u64) -> Self {
        HiddenRng {
            state: seed ^ 0x6a09_e667_f3bc_c908,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; returns 0 for bound 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = HiddenRng::new(1);
        let mut b = HiddenRng::new(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = HiddenRng::new(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = HiddenRng::new(7);
        for _ in 0..100 {
            assert!(r.below(13) < 13);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn reasonably_spread() {
        let mut r = HiddenRng::new(42);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[r.below(4) as usize] += 1;
        }
        for c in counts {
            assert!(c > 800, "bucket too empty: {counts:?}");
        }
    }
}
