//! The thread-parallel execution driver.
//!
//! This is the "first" execution of uniparallelism: the application's
//! threads run concurrently across `cpus` simulated CPUs at full speed. It
//! exists to (a) generate the checkpoints that let epochs run in parallel,
//! (b) produce the syscall log, and (c) emit the **schedule hint** the
//! epoch-parallel execution follows. It is *not* the execution of record —
//! its results are speculative and its external output is discarded.
//!
//! # Concurrency model and the hint
//!
//! True parallelism is simulated with an event loop over per-CPU clocks:
//! each iteration runs one atomic *micro-slice* (a few hundred
//! instructions, hidden-seed jittered) on the least-advanced CPU, so racy
//! guests interleave nondeterministically at micro-slice granularity.
//!
//! The hint must let a single-CPU execution reproduce every outcome that is
//! *not* a data race — that is, it must preserve the global order of
//! synchronization: atomic instructions and syscalls. Micro-slices
//! therefore stop at every atomic ([`dp_vm::SliceLimits::stop_at_atomics`])
//! and at every trap, and the hint records one slice per thread per
//! inter-sync run, in global sync order. The interleaving of *plain*
//! instructions between sync points is deliberately **not** recorded — the
//! epoch-parallel run serializes those chunks atomically. For data-race-free
//! programs this reproduces the thread-parallel state exactly (conflicting
//! accesses are ordered through recorded sync); for racy programs the
//! serializations can disagree, which is precisely the divergence the
//! paper's rollback machinery exists to catch. This mirrors the original
//! system, whose epoch-parallel run replays logged synchronization order
//! from a modified glibc but cannot reproduce untracked races.

use dp_os::abi;
use dp_os::kernel::{Disposition, Kernel, Wake};
use dp_vm::observer::NullObserver;
use dp_vm::{Machine, SliceLimits, StopReason, Tid};
use std::collections::BTreeMap;

use crate::config::DoublePlayConfig;
use crate::error::RecordError;
use crate::logs::{request_hash, request_hash_args, ScheduleLog, SyscallLog, SyscallLogEntry};
use crate::record::interleave::HiddenRng;

/// What one thread-parallel epoch produced.
#[derive(Debug)]
pub struct TpEpochOutcome {
    /// Logged-class syscall completions, in completion order.
    pub syscalls: SyscallLog,
    /// The schedule hint: sync-ordered slices for the epoch-parallel run.
    pub hint: ScheduleLog,
    /// Wall cycles the epoch took across the CPUs (max CPU clock advance).
    pub cycles: u64,
    /// Guest instructions executed.
    pub instructions: u64,
    /// Whether the machine halted (or all threads exited) inside the epoch.
    pub finished: bool,
}

/// Drives one epoch of thread-parallel execution.
pub struct TpRunner<'a> {
    config: &'a DoublePlayConfig,
    rng: HiddenRng,
    /// Last thread to perform a *writing* atomic on each address. Persists
    /// across epochs: a lock can be held across an epoch boundary, and its
    /// owner's identity is what pins contended accesses in the hint.
    owners: BTreeMap<dp_vm::Word, Tid>,
    /// How many epochs this runner has driven; indexes the fault plan's
    /// divergence-storm windows.
    epoch: u32,
}

/// Everything a [`TpRunner`] carries across epochs. The pipelined
/// coordinator snapshots this before each speculative epoch: rolling the
/// runner back to a snapshot and re-running produces the exact schedule
/// stream the sequential coordinator would have produced after a divergence
/// at that epoch (the hidden RNG, atomic owners, and storm-window index are
/// the runner's whole state).
#[derive(Debug, Clone)]
pub struct TpSnapshot {
    rng: HiddenRng,
    owners: BTreeMap<dp_vm::Word, Tid>,
    epoch: u32,
}

/// Mutable per-epoch logging state threaded through the helpers.
struct EpochLogs {
    syscalls: SyscallLog,
    hint: ScheduleLog,
    /// Instructions executed per thread since its last hint emission.
    acc: BTreeMap<Tid, u64>,
}

impl EpochLogs {
    fn emit(&mut self, tid: Tid) {
        if let Some(n) = self.acc.remove(&tid) {
            self.hint.push_slice(tid, n);
        }
    }

    fn accumulate(&mut self, tid: Tid, instrs: u64) {
        if instrs > 0 {
            *self.acc.entry(tid).or_insert(0) += instrs;
        }
    }
}

impl<'a> TpRunner<'a> {
    /// Creates a runner; the hidden RNG persists across epochs so the whole
    /// run sees one nondeterministic schedule stream.
    pub fn new(config: &'a DoublePlayConfig) -> Self {
        TpRunner {
            config,
            rng: HiddenRng::new(config.hidden_seed),
            owners: BTreeMap::new(),
            epoch: 0,
        }
    }

    /// Captures the runner's cross-epoch state for later [`TpRunner::restore`].
    pub fn snapshot(&self) -> TpSnapshot {
        TpSnapshot {
            rng: self.rng.clone(),
            owners: self.owners.clone(),
            epoch: self.epoch,
        }
    }

    /// Rewinds the runner to a previously captured snapshot.
    pub fn restore(&mut self, snap: TpSnapshot) {
        self.rng = snap.rng;
        self.owners = snap.owners;
        self.epoch = snap.epoch;
    }

    /// Runs one epoch of at most `epoch_cycles` (per-CPU) on the live
    /// state, logging nondeterministic syscall results and the schedule
    /// hint.
    ///
    /// # Errors
    ///
    /// Returns guest faults and true deadlocks.
    pub fn run_epoch(
        &mut self,
        machine: &mut Machine,
        kernel: &mut Kernel,
        epoch_start: u64,
        epoch_cycles: u64,
    ) -> Result<TpEpochOutcome, RecordError> {
        let cpus = self.config.cpus;
        let end = epoch_start + epoch_cycles;
        let switch = kernel.cost_model().context_switch;
        let mut clocks = vec![epoch_start; cpus];
        let mut last_thread: Vec<Option<Tid>> = vec![None; cpus];
        let mut available_at: BTreeMap<Tid, u64> = BTreeMap::new();
        let mut logs = EpochLogs {
            syscalls: SyscallLog::new(),
            hint: ScheduleLog::new(),
            acc: BTreeMap::new(),
        };
        let mut instructions = 0u64;
        // During an injected divergence storm the micro-slices shrink,
        // amplifying the effective scheduling jitter and with it the
        // race-divergence rate. One RNG draw per micro-slice either way,
        // so the hidden stream stays aligned across fault plans.
        let (tp_quantum, tp_jitter) = self.config.faults.storm_slice(
            self.epoch,
            self.config.tp_quantum,
            self.config.tp_jitter,
        );
        self.epoch += 1;

        loop {
            if machine.halted().is_some() || machine.live_threads() == 0 {
                break;
            }
            // Least-advanced CPU that still has time in this epoch.
            let cpu = match (0..cpus)
                .filter(|&c| clocks[c] < end)
                .min_by_key(|&c| (clocks[c], c))
            {
                Some(c) => c,
                None => break, // epoch complete
            };
            let now = clocks[cpu];

            // Expire timers and retry blocked I/O as of this CPU's time.
            let wakes = kernel.advance_time(machine, now);
            self.log_wakes(&mut logs, &wakes);

            // Threads runnable on this CPU right now.
            let eligible: Vec<Tid> = machine
                .threads()
                .iter()
                .filter(|t| t.is_ready())
                .map(|t| t.tid)
                .filter(|t| available_at.get(t).copied().unwrap_or(0) <= now)
                .collect();

            let Some(&tid) = eligible.get(self.rng.below(eligible.len() as u64) as usize) else {
                // Nothing to run here now: hop this CPU's clock forward to
                // the next point at which work could exist.
                let next_avail = machine
                    .threads()
                    .iter()
                    .filter(|t| t.is_ready())
                    .filter_map(|t| available_at.get(&t.tid).copied())
                    .filter(|&at| at > now)
                    .min();
                let next_event = kernel.next_event_time(now);
                match [next_avail, next_event].into_iter().flatten().min() {
                    Some(t) => clocks[cpu] = t.clamp(now + 1, end),
                    None => {
                        let any_ready = machine.threads().iter().any(|t| t.is_ready());
                        if any_ready {
                            clocks[cpu] = end;
                        } else if machine.live_threads() > 0 {
                            return Err(RecordError::Deadlock {
                                blocked: machine.live_threads(),
                            });
                        }
                    }
                }
                continue;
            };

            // Signal delivery happens at micro-slice boundaries; the hint
            // records the exact position in the thread's stream.
            if let Some((sig, handler)) = kernel.take_pending_signal(tid) {
                logs.emit(tid);
                logs.hint.push_signal(tid, sig);
                machine.push_signal_frame(tid, handler, &[sig]);
            }

            // Jittered micro-slice, capped to the epoch.
            let quantum = tp_quantum + self.rng.below(tp_jitter + 1);
            let budget = quantum.min(end - now).max(1);
            let run = machine.run_slice(
                tid,
                SliceLimits::budget(budget).stopping_at_atomics(),
                &mut NullObserver,
            )?;
            instructions += run.executed;
            logs.accumulate(tid, run.executed);
            let mut slice_cycles = run.executed;
            if last_thread[cpu] != Some(tid) {
                slice_cycles += switch;
                last_thread[cpu] = Some(tid);
            }

            match run.stop {
                StopReason::Budget | StopReason::IcountTarget => {
                    // Plain chunk continues accumulating: the interleaving
                    // at this boundary is hidden from the hint.
                }
                StopReason::Atomic { addr, wrote } => {
                    // Sync point. A cross-thread atomic access is ordered
                    // both ways: it observes the owner's last write (and,
                    // for locks, its plain release store), so the owner's
                    // accumulated chunk must precede this thread's — and it
                    // must itself precede whatever the owner does next
                    // (e.g. a failed lock CAS precedes the holder's
                    // release), so this thread's own chunk is pinned here
                    // too. Same-thread re-accesses impose no cross-thread
                    // ordering and keep coalescing, which is what keeps the
                    // schedule log small for low-contention programs. Only
                    // *writing* atomics take ownership — a failed CAS
                    // merely read.
                    if let Some(&prev) = self.owners.get(&addr) {
                        if prev != tid {
                            logs.emit(prev);
                            logs.emit(tid);
                        }
                    }
                    if wrote {
                        self.owners.insert(addr, tid);
                    }
                }
                StopReason::Exited => {
                    logs.emit(tid);
                    let wakes = kernel.on_thread_exited(machine, tid);
                    self.log_wakes(&mut logs, &wakes);
                }
                StopReason::Syscall(req) => {
                    logs.emit(tid);
                    let arg_hash = request_hash(machine, &req);
                    let out = kernel.handle(machine, req, now + slice_cycles);
                    slice_cycles += out.cost;
                    if abi::is_logged(req.num) {
                        match out.disposition {
                            Disposition::Done { ret } => logs.syscalls.push(SyscallLogEntry {
                                tid,
                                num: req.num,
                                arg_hash,
                                ret,
                                effect: out.effect,
                                via_wake: false,
                            }),
                            Disposition::Blocked => {
                                // Digested at wake time from the stored
                                // request (`Wake::req`).
                            }
                            Disposition::ThreadExited | Disposition::Halted { .. } => {}
                        }
                    }
                    self.log_wakes(&mut logs, &out.wakes);
                }
            }
            clocks[cpu] = now + slice_cycles;
            available_at.insert(tid, clocks[cpu]);
        }

        // Trailing plain chunks, canonically in thread order.
        let trailing: Vec<Tid> = logs.acc.keys().copied().collect();
        for tid in trailing {
            logs.emit(tid);
        }

        let max_clock = clocks.iter().copied().max().unwrap_or(epoch_start);
        let finished = machine.halted().is_some() || machine.live_threads() == 0;
        Ok(TpEpochOutcome {
            syscalls: logs.syscalls,
            hint: logs.hint,
            cycles: max_clock.saturating_sub(epoch_start).max(1),
            instructions,
            finished,
        })
    }

    fn log_wakes(&mut self, logs: &mut EpochLogs, wakes: &[Wake]) {
        for w in wakes {
            if abi::is_logged(w.num) {
                logs.hint.push_wake(w.tid);
                logs.syscalls.push(SyscallLogEntry {
                    tid: w.tid,
                    num: w.num,
                    arg_hash: request_hash_args(&w.req),
                    ret: w.ret,
                    effect: w.effect.clone(),
                    via_wake: true,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::GuestSpec;
    use dp_os::kernel::WorldConfig;
    use dp_vm::builder::ProgramBuilder;
    use dp_vm::Reg;
    use std::sync::Arc;

    fn racy_spec() -> GuestSpec {
        crate::record::testutil::racy_counter_spec(5000)
    }

    fn run_to_halt(spec: &GuestSpec, config: &DoublePlayConfig) -> (Machine, u64) {
        let (mut machine, mut kernel) = spec.boot();
        let mut tp = TpRunner::new(config);
        let mut t = 0u64;
        for _ in 0..10_000 {
            let out = tp
                .run_epoch(&mut machine, &mut kernel, t, config.epoch_cycles)
                .unwrap();
            t += out.cycles;
            if out.finished {
                return (machine, t);
            }
        }
        panic!("did not halt");
    }

    #[test]
    fn same_seed_reproduces_same_interleaving() {
        let spec = racy_spec();
        let config = DoublePlayConfig::new(2).epoch_cycles(3_000);
        let (m1, t1) = run_to_halt(&spec, &config);
        let (m2, t2) = run_to_halt(&spec, &config);
        assert_eq!(m1.state_hash(), m2.state_hash());
        assert_eq!(t1, t2);
    }

    #[test]
    fn racy_program_loses_updates_under_some_seed() {
        // With unsynchronized increments interleaved at micro-slice
        // granularity, at least one of several seeds must lose updates.
        let spec = racy_spec();
        let mut saw_loss = false;
        let mut results = Vec::new();
        for seed in 0..8 {
            let config = DoublePlayConfig {
                tp_quantum: 300,
                tp_jitter: 400,
                ..DoublePlayConfig::new(2)
                    .epoch_cycles(2_500)
                    .hidden_seed(seed)
            };
            let (m, _) = run_to_halt(&spec, &config);
            let count = m.halted().unwrap();
            results.push(count);
            assert!(count <= 10_000);
            if count < 10_000 {
                saw_loss = true;
            }
        }
        assert!(
            saw_loss,
            "no seed lost updates; interleaving too coarse: {results:?}"
        );
    }

    #[test]
    fn snapshot_restore_replays_the_identical_epoch() {
        let spec = racy_spec();
        let config = DoublePlayConfig::new(2).epoch_cycles(3_000);
        let (mut machine, mut kernel) = spec.boot();
        let mut tp = TpRunner::new(&config);
        let first = tp
            .run_epoch(&mut machine, &mut kernel, 0, config.epoch_cycles)
            .unwrap();
        let snap = tp.snapshot();
        let (mut m2, mut k2) = (machine.clone(), kernel.clone());
        let a = tp
            .run_epoch(&mut machine, &mut kernel, first.cycles, config.epoch_cycles)
            .unwrap();
        tp.restore(snap);
        let b = tp
            .run_epoch(&mut m2, &mut k2, first.cycles, config.epoch_cycles)
            .unwrap();
        assert_eq!(a.hint, b.hint);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(machine.state_hash(), m2.state_hash());
    }

    #[test]
    fn logged_syscalls_are_captured() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.syscall(abi::SYS_CLOCK);
        f.syscall(abi::SYS_RANDOM);
        f.syscall(abi::SYS_GETTID); // det class: not logged
        f.consti(Reg(0), 0);
        f.syscall(abi::SYS_EXIT);
        f.finish();
        let spec = GuestSpec::new(
            "syscalls",
            Arc::new(pb.finish("main")),
            WorldConfig::default(),
        );
        let config = DoublePlayConfig::new(2);
        let (mut machine, mut kernel) = spec.boot();
        let mut tp = TpRunner::new(&config);
        let out = tp
            .run_epoch(&mut machine, &mut kernel, 0, config.epoch_cycles)
            .unwrap();
        assert!(out.finished);
        let nums: Vec<u32> = out.syscalls.entries().iter().map(|e| e.num).collect();
        assert_eq!(nums, vec![abi::SYS_CLOCK, abi::SYS_RANDOM]);
        assert!(out.syscalls.entries().iter().all(|e| !e.via_wake));
    }

    #[test]
    fn sleep_completion_is_logged_with_pending_hash_and_wake_event() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.consti(Reg(0), 5_000);
        f.syscall(abi::SYS_SLEEP);
        f.consti(Reg(0), 0);
        f.syscall(abi::SYS_EXIT);
        f.finish();
        let spec = GuestSpec::new(
            "sleeper",
            Arc::new(pb.finish("main")),
            WorldConfig::default(),
        );
        let config = DoublePlayConfig::new(1).epoch_cycles(1_000_000);
        let (mut machine, mut kernel) = spec.boot();
        let mut tp = TpRunner::new(&config);
        let out = tp
            .run_epoch(&mut machine, &mut kernel, 0, config.epoch_cycles)
            .unwrap();
        assert!(out.finished);
        assert_eq!(out.syscalls.len(), 1);
        let e = &out.syscalls.entries()[0];
        assert_eq!(e.num, abi::SYS_SLEEP);
        assert!(e.via_wake);
        assert_ne!(e.arg_hash, 0, "pending hash must be attached at wake");
        // The hint contains the wake delivery point.
        assert!(out
            .hint
            .events()
            .iter()
            .any(|ev| matches!(ev, crate::logs::SchedEvent::LoggedWake { .. })));
    }

    #[test]
    fn hint_slices_cover_all_instructions() {
        let spec = racy_spec();
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000);
        let (mut machine, mut kernel) = spec.boot();
        let mut tp = TpRunner::new(&config);
        let out = tp
            .run_epoch(&mut machine, &mut kernel, 0, config.epoch_cycles)
            .unwrap();
        assert_eq!(out.hint.total_instructions(), out.instructions);
        // Per-thread hint totals equal per-thread icounts.
        let mut per_tid: BTreeMap<Tid, u64> = BTreeMap::new();
        for ev in out.hint.events() {
            if let crate::logs::SchedEvent::Slice { tid, instrs } = ev {
                *per_tid.entry(*tid).or_insert(0) += instrs;
            }
        }
        for t in machine.threads() {
            assert_eq!(
                per_tid.get(&t.tid).copied().unwrap_or(0),
                t.icount,
                "hint does not cover {}'s instructions",
                t.tid
            );
        }
    }

    #[test]
    fn epoch_boundaries_partition_execution() {
        let spec = racy_spec();
        let config = DoublePlayConfig::new(2).epoch_cycles(2_000);
        let (mut machine, mut kernel) = spec.boot();
        let mut tp = TpRunner::new(&config);
        let mut epochs = 0;
        let mut t = 0;
        loop {
            let out = tp
                .run_epoch(&mut machine, &mut kernel, t, config.epoch_cycles)
                .unwrap();
            t += out.cycles;
            epochs += 1;
            if out.finished {
                break;
            }
            assert!(out.cycles <= config.epoch_cycles + config.tp_quantum * 4);
        }
        assert!(epochs > 3, "expected multiple epochs, got {epochs}");
    }
}
