//! The uniparallel coordinator: ties the thread-parallel and epoch-parallel
//! executions into one recording run.
//!
//! For each epoch the coordinator:
//!
//! 1. runs the thread-parallel execution one epoch forward (producing the
//!    next checkpoint and the epoch's syscall log);
//! 2. runs the epoch-parallel execution of that epoch in verify mode from
//!    the previous checkpoint;
//! 3. **commits** if the epoch-parallel end state matches the next
//!    checkpoint, releasing the epoch's external output; otherwise a
//!    **divergence** occurred (a data race resolved differently): the epoch
//!    is re-executed live on one CPU, its end state *becomes* the truth
//!    (forward recovery), and the thread-parallel side restarts from it.
//!
//! Two drivers share this machinery:
//!
//! * the **sequential** driver below executes epochs in lockstep on one
//!   OS thread and accounts for pipelining with the simulated-time
//!   [`crate::record::pipeline::WorkerPool`] model only;
//! * the **pipelined** driver ([`crate::record::pipelined`]) runs the same
//!   stages on real OS threads: the thread-parallel front-end speculates
//!   ahead while verify workers check epochs out of order and a commit
//!   stage retires them strictly in order.
//!
//! Both produce byte-identical recordings: every piece of state that ends
//! up in the recording or in the modeled statistics is mutated only by the
//! shared stage functions in this module ([`charge_tp_side`],
//! [`commit_clean`], [`retire_diverged`], [`record_serialized_epoch`]),
//! applied in strict epoch order. The recorded end-to-end runtime is the
//! later of the two modeled timelines; native runtime is measured by a
//! separate thread-parallel run with recording work disabled (same hidden
//! seed).

use crate::checkpoint::{Checkpoint, EpochTargets, ThreadTarget};
use crate::config::DoublePlayConfig;
use crate::error::RecordError;
use crate::faults::{FaultPlan, INJECTED_PANIC_TAG};
use crate::journal::{NullSink, RecordSink};
use crate::logs::codec;
use crate::record::epoch_parallel::{
    run_live, run_verify_cancellable, CancelToken, EpOutcome, VerifyInputs,
};
use crate::record::pipeline::WorkerPool;
use crate::record::thread_parallel::TpRunner;
use crate::recording::{EncodedLogs, EpochRecord, Recording, RecordingMeta};
use crate::stats::{RecorderStats, WallClockStats};
use crate::world::GuestSpec;
use dp_os::kernel::Kernel;
use dp_os::CostModel;
use dp_vm::Machine;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// A finished recording plus its measurements.
#[derive(Debug)]
pub struct RecordingBundle {
    /// The replayable artifact.
    pub recording: Recording,
    /// Overhead/log/divergence measurements.
    pub stats: RecorderStats,
}

/// Hard cap on recorded epochs (runaway-guest backstop).
pub(crate) const MAX_EPOCHS: u32 = 1_000_000;

/// How many times a panicked epoch worker is re-executed before the epoch
/// is declared unconvergeable ([`RecordError::DivergenceLoop`]).
const WORKER_RETRY_BUDGET: u32 = 3;

/// Sliding window (epochs) over which the divergence rate is observed.
const DEGRADE_WINDOW: usize = 8;
/// Divergences within the window that trigger serialized fallback.
const DEGRADE_THRESHOLD: usize = 4;
/// Epochs recorded serialized (single execution, no speculation) before
/// the coordinator attempts uniparallel recording again.
const SERIALIZED_EPOCHS: u32 = 8;

/// Records one execution of `spec` under `config`.
///
/// # Errors
///
/// Guest faults, true deadlocks, or budget exhaustion.
pub fn record(spec: &GuestSpec, config: &DoublePlayConfig) -> Result<RecordingBundle, RecordError> {
    record_to(spec, config, &mut NullSink)
}

/// Maps a durable-sink failure into the typed recorder error.
pub(crate) fn sink_err(e: std::io::Error) -> RecordError {
    RecordError::Sink {
        detail: e.to_string(),
    }
}

/// Records one execution of `spec` under `config`, streaming the recording
/// into `sink` as it is produced: the header (meta + boot state) before the
/// first epoch, then every epoch the moment it commits, then a completion
/// marker. With a [`crate::JournalWriter`] sink this makes the recording
/// crash-consistent — a run that dies mid-way leaves a journal from which
/// [`crate::JournalReader::salvage`] recovers every committed epoch.
///
/// With [`DoublePlayConfig::pipelined`] set (and at least one spare
/// worker), recording runs on real OS threads — same bytes, same modeled
/// stats, less wall-clock time; see [`crate::record::pipelined`].
///
/// # Errors
///
/// Everything [`record`] raises, plus [`RecordError::Sink`] when the sink
/// fails (torn write, full disk, failed flush). Sink faults never perturb
/// the guest: the epoch prefix committed before the failure is bit-exact
/// with the same run against a healthy sink.
pub fn record_to(
    spec: &GuestSpec,
    config: &DoublePlayConfig,
    sink: &mut dyn RecordSink,
) -> Result<RecordingBundle, RecordError> {
    if config.pipelined && config.spare_workers > 0 {
        crate::record::pipelined::record_pipelined(spec, config, sink)
    } else {
        record_sequential(spec, config, sink)
    }
}

/// Committed state of a recording run: everything the strictly-in-order
/// retire stage reads and writes. Mutated only by the shared stage
/// functions, so the sequential and pipelined drivers cannot disagree.
pub(crate) struct CommitState {
    pub stats: RecorderStats,
    pub epochs: Vec<EpochRecord>,
    pub pool: WorkerPool,
    /// Thread-parallel timeline (with recording costs), simulated cycles.
    pub tp_time: u64,
    /// Epoch-commit timeline, simulated cycles.
    pub commit_time: u64,
    /// Start checkpoint of the next epoch to retire. Authoritative: its
    /// digest is always the true machine hash.
    pub prev: Checkpoint,
}

/// Adaptive-epoch and degradation control: epoch sizing and the sliding
/// divergence window. The sequential driver mutates it in lockstep; the
/// pipelined front-end speculates it forward (assuming clean commits) and
/// restores a snapshot on rollback.
#[derive(Debug, Clone)]
pub(crate) struct ControlState {
    pub epoch_len: u64,
    pub clean_streak: u32,
    /// Recent divergence outcomes (true = diverged).
    pub window: VecDeque<bool>,
    /// Remaining epochs to record in degraded serialized mode.
    pub serialized_left: u32,
}

impl ControlState {
    pub fn new(config: &DoublePlayConfig) -> Self {
        ControlState {
            epoch_len: config.epoch_cycles,
            clean_streak: 0,
            window: VecDeque::new(),
            serialized_left: 0,
        }
    }

    /// Adaptive growth after a sustained clean streak.
    pub fn on_clean(&mut self, config: &DoublePlayConfig) {
        self.clean_streak += 1;
        if config.adaptive && self.clean_streak >= 8 {
            self.epoch_len = (self.epoch_len + self.epoch_len / 4).min(config.epoch_cycles * 8);
            self.clean_streak = 0;
        }
    }

    /// Adaptive shrink on a divergence.
    pub fn on_diverged(&mut self, config: &DoublePlayConfig) {
        self.clean_streak = 0;
        if config.adaptive {
            self.epoch_len = (self.epoch_len / 2)
                .max(config.epoch_cycles / 16)
                .max(1_000);
        }
    }

    /// Slides the divergence window; a saturated window switches the
    /// coordinator to serialized recording for a while, making the
    /// DivergenceLoop abort a genuine last resort. Only a divergence can
    /// trip the threshold, so the pipelined front-end — which speculates
    /// clean outcomes — can never speculate *into* serialized mode.
    pub fn note_outcome(&mut self, diverged: bool) {
        self.window.push_back(diverged);
        if self.window.len() > DEGRADE_WINDOW {
            self.window.pop_front();
        }
        if self.window.iter().filter(|&&d| d).count() >= DEGRADE_THRESHOLD {
            self.serialized_left = SERIALIZED_EPOCHS;
            self.window.clear();
        }
    }
}

/// A recording run's shared context: the commit state plus the immutable
/// header produced at boot.
pub(crate) struct Session {
    pub commit: CommitState,
    pub cost: CostModel,
    pub meta: RecordingMeta,
    pub initial_image: crate::checkpoint::CheckpointImage,
}

/// Boots the guest, captures the initial checkpoint, and writes the sink
/// header. Returns the session plus the live (mutable) world.
pub(crate) fn begin_session(
    spec: &GuestSpec,
    config: &DoublePlayConfig,
    sink: &mut dyn RecordSink,
) -> Result<(Session, Machine, Kernel), RecordError> {
    let (mut machine, mut kernel) = spec.boot();
    if config.faults.is_active() {
        // Install before the initial checkpoint so the plan rides inside
        // every checkpoint and replay re-injects the same faults.
        kernel.set_io_faults(config.faults.io_faults());
    }
    machine.mem_mut().take_dirty();
    let cost = *kernel.cost_model();
    let initial = Checkpoint::capture(&machine, &kernel);
    let meta = RecordingMeta {
        guest_name: spec.name.clone(),
        program_hash: spec.program_hash(),
        initial_machine_hash: initial.machine_hash,
        config: *config,
    };
    let initial_image = initial.to_image();
    sink.begin(&meta, &initial_image).map_err(sink_err)?;
    let commit = CommitState {
        stats: RecorderStats::default(),
        epochs: Vec::new(),
        pool: WorkerPool::new(config.spare_workers.max(1)),
        tp_time: 0,
        commit_time: 0,
        prev: initial,
    };
    Ok((
        Session {
            commit,
            cost,
            meta,
            initial_image,
        },
        machine,
        kernel,
    ))
}

/// Seals the run: completion marker, end-to-end timelines, native-runtime
/// measurement. `kernel` is the final committed kernel (its fault counters
/// are part of the stats).
pub(crate) fn finish_session(
    mut s: Session,
    spec: &GuestSpec,
    config: &DoublePlayConfig,
    sink: &mut dyn RecordSink,
    kernel: &Kernel,
    wall: WallClockStats,
) -> Result<RecordingBundle, RecordError> {
    sink.finish().map_err(sink_err)?;
    s.commit.stats.recorded_cycles = s.commit.tp_time.max(s.commit.commit_time);
    s.commit.stats.io_faults = kernel.stats.injected_faults;
    s.commit.stats.wall = wall;
    s.commit.stats.native_cycles = measure_native(spec, config)?;
    Ok(RecordingBundle {
        recording: Recording {
            meta: s.meta,
            initial: s.initial_image,
            epochs: s.commit.epochs,
        },
        stats: s.commit.stats,
    })
}

/// Everything one thread-parallel epoch produced, carried from the submit
/// stage to the in-order retire stage.
pub(crate) struct EpochWork {
    pub index: u32,
    /// Guest clock at the epoch's start.
    pub epoch_start: u64,
    pub tp_cycles: u64,
    pub tp_instructions: u64,
    /// Pages dirtied by the epoch (checkpoint COW traffic).
    pub dirty: u64,
    pub syscalls: crate::logs::SyscallLog,
    pub hint: crate::logs::ScheduleLog,
    /// The world right after the epoch's thread-parallel run. Its digest is
    /// *deferred*: the verify stage computes it ([`execute_verify`]), and
    /// the retire stage attaches it when this state becomes the
    /// authoritative checkpoint.
    pub next_machine: Machine,
    pub next_kernel: Kernel,
}

/// Runs one thread-parallel epoch on the live world and packages the
/// result for the verify and retire stages.
pub(crate) fn run_tp_epoch(
    tp: &mut TpRunner<'_>,
    machine: &mut Machine,
    kernel: &mut Kernel,
    index: u32,
    epoch_start: u64,
    epoch_len: u64,
) -> Result<EpochWork, RecordError> {
    let tp_out = tp.run_epoch(machine, kernel, epoch_start, epoch_len)?;
    let dirty = machine.mem_mut().take_dirty().len() as u64;
    kernel.take_external(); // thread-parallel output is speculative only
                            // Refresh the live machine's per-page digest cache before cloning it:
                            // both clones below (the verify job's end-state machine and the
                            // commit-stage checkpoint) inherit warm digests, so the verify stage's
                            // state_hash re-hashes only the pages this epoch dirtied.
    machine.mem().state_digest();
    Ok(EpochWork {
        index,
        epoch_start,
        tp_cycles: tp_out.cycles,
        tp_instructions: tp_out.instructions,
        dirty,
        syscalls: tp_out.syscalls,
        hint: tp_out.hint,
        next_machine: machine.clone(),
        next_kernel: kernel.clone(),
    })
}

/// Borrowed inputs of one verify job: the sequential driver points these at
/// its live state; the pipelined worker points them into the owned job it
/// received over the channel.
pub(crate) struct VerifyJobRef<'a> {
    pub index: u32,
    /// Start-of-epoch world. Only machine/kernel are read — the digest may
    /// be deferred (0).
    pub start: &'a Checkpoint,
    pub hint: &'a crate::logs::ScheduleLog,
    pub syscalls: &'a crate::logs::SyscallLog,
    pub targets: &'a EpochTargets,
    pub next_machine: &'a Machine,
}

/// How a verify attempt ended.
pub(crate) enum VerifyVerdict {
    /// The run completed; a divergence, if any, is inside the outcome.
    Done(Box<EpOutcome>),
    /// The worker panicked (injected or real); handled as a divergence.
    Panicked,
    /// A host-level error surfaced from the verify run.
    Failed(RecordError),
    /// A generation bump cancelled the job mid-run (pipelined only).
    Cancelled,
}

/// Executes one verify job: computes the deferred end-state digest, then
/// runs the panic-isolated verify. This is the single verify entry point
/// for both drivers, so injected worker panics (keyed `(epoch, attempt 0)`
/// — a pure hash, deterministic under any thread interleaving) and digest
/// values can never differ between them.
pub(crate) fn execute_verify(
    job: VerifyJobRef<'_>,
    plan: &FaultPlan,
    cancel: Option<(&CancelToken, u64)>,
) -> (u64, VerifyVerdict) {
    let expected_hash = job.next_machine.state_hash();
    let index = job.index;
    let run = catch_unwind(AssertUnwindSafe(|| {
        if plan.worker_panics(index, 0) {
            panic!("{INJECTED_PANIC_TAG} (epoch {index}, verify)");
        }
        run_verify_cancellable(
            job.start,
            VerifyInputs {
                hint: job.hint,
                targets: job.targets,
                log: job.syscalls,
                expected_hash,
                expected_machine: Some(job.next_machine),
            },
            cancel,
        )
    }));
    let verdict = match run {
        Ok(Ok(Some(ep))) => VerifyVerdict::Done(Box::new(ep)),
        Ok(Ok(None)) => VerifyVerdict::Cancelled,
        Ok(Err(e)) => VerifyVerdict::Failed(e),
        Err(_) => VerifyVerdict::Panicked,
    };
    (expected_hash, verdict)
}

/// Epoch-boundary targets of a machine's thread table (as
/// [`Checkpoint::targets`], without needing a digest-bearing checkpoint).
pub(crate) fn targets_of(machine: &Machine) -> EpochTargets {
    machine
        .threads()
        .iter()
        .map(|t| {
            (
                t.tid,
                ThreadTarget {
                    icount: t.icount,
                    exited: t.is_exited(),
                },
            )
        })
        .collect()
}

/// Thread-parallel-side accounting for one epoch, applied at the in-order
/// retire point. Returns the epoch's encoded syscall log — its length feeds
/// the cost model here, and [`commit_clean`] hands the same bytes to the
/// sink so the log is never encoded twice.
pub(crate) fn charge_tp_side(c: &mut CommitState, cost: &CostModel, work: &EpochWork) -> Vec<u8> {
    let sys_enc = codec::encode_syscalls(&work.syscalls);
    let ckpt_cost = cost.checkpoint(work.dirty);
    let tp_log_cost = cost.log_write(sys_enc.len() as u64);
    c.stats.tp_exec_cycles += work.tp_cycles;
    c.stats.tp_instructions += work.tp_instructions;
    c.stats.dirty_pages += work.dirty;
    c.stats.checkpoint_cycles += ckpt_cost;
    c.stats.log_write_cycles += tp_log_cost;
    c.tp_time += work.tp_cycles + ckpt_cost + tp_log_cost;
    sys_enc
}

/// Hash-side accounting for one retiring epoch's end machine: charges the
/// incremental digest (proportional to the pages the epoch dirtied, not the
/// resident footprint) and records the modeled hashed/skipped page split.
/// Both drivers retire through this, so the counts are deterministic and
/// mode-independent — the real cache counters ([`dp_vm::memory::HashStats`])
/// vary with clone topology and belong to bench introspection only.
fn charge_state_hash(c: &mut CommitState, cost: &CostModel, machine: &Machine) -> u64 {
    let dirty = machine.mem().dirty().len() as u64;
    let resident = machine.mem().resident_pages() as u64;
    c.stats.hashed_pages += dirty;
    c.stats.hash_skipped_pages += resident.saturating_sub(dirty);
    cost.state_hash(dirty)
}

/// Commits a cleanly verified epoch: cost-model accounting, epoch record,
/// sink write, authoritative-checkpoint advance. `expected_hash` is the
/// digest of `work.next_machine` computed by the verify stage; `sys_enc` is
/// the encoded syscall log [`charge_tp_side`] produced, reused here for the
/// sink write.
#[allow(clippy::too_many_arguments)]
pub(crate) fn commit_clean(
    c: &mut CommitState,
    config: &DoublePlayConfig,
    cost: &CostModel,
    sink: &mut dyn RecordSink,
    work: EpochWork,
    ep: EpOutcome,
    expected_hash: u64,
    sys_enc: Vec<u8>,
) -> Result<(), RecordError> {
    let hash_cost = charge_state_hash(c, cost, &ep.machine);
    let sched_enc = codec::encode_schedule(&ep.schedule);
    let sched_bytes = sched_enc.len() as u64;
    let ep_task = ep.cycles + hash_cost + cost.log_write(sched_bytes);
    c.stats.ep_cycles += ep_task;
    c.stats.log_write_cycles += cost.log_write(sched_bytes);
    c.stats.schedule_bytes += sched_bytes;
    c.stats.syscall_bytes += sys_enc.len() as u64;
    let ready = c.tp_time;
    c.commit_time =
        finish_epoch_task(config, &mut c.tp_time, &mut c.pool, ep_task, ready).max(c.commit_time);
    c.epochs.push(EpochRecord {
        index: work.index,
        schedule: ep.schedule,
        syscalls: work.syscalls,
        end_machine_hash: expected_hash,
        external: ep.external,
        start: config.keep_checkpoints.then(|| c.prev.to_image()),
        tp_cycles: work.tp_cycles,
    });
    let logs = EncodedLogs {
        schedule: sched_enc,
        syscalls: sys_enc,
    };
    sink.epoch_encoded(c.epochs.last().expect("epoch just pushed"), &logs)
        .map_err(sink_err)?;
    c.prev = Checkpoint {
        machine: work.next_machine,
        kernel: work.next_kernel,
        machine_hash: expected_hash,
    };
    c.stats.committed += 1;
    c.stats.epochs += 1;
    Ok(())
}

/// The state a divergence retire adopts: the live re-execution's end world.
pub(crate) struct Adopted {
    pub machine: Machine,
    pub kernel: Kernel,
    /// Single-CPU cycles the live run consumed (advances the guest clock
    /// from the epoch's start).
    pub cycles: u64,
}

/// Retires a diverged (or worker-panicked) epoch: accounts for the wasted
/// verify, re-executes the epoch live from the authoritative checkpoint,
/// records the live outcome, and returns the adopted world (forward
/// recovery). `verified` is the diverged outcome, `None` for a panic.
pub(crate) fn retire_diverged(
    c: &mut CommitState,
    config: &DoublePlayConfig,
    cost: &CostModel,
    sink: &mut dyn RecordSink,
    work: EpochWork,
    verified: Option<EpOutcome>,
) -> Result<Adopted, RecordError> {
    c.stats.divergences += 1;
    let verify_task = match &verified {
        Some(ep) => ep.cycles + charge_state_hash(c, cost, &ep.machine),
        // A panicked worker's progress is unknowable; charge one epoch's
        // worth of wasted work.
        None => {
            c.stats.worker_retries += 1;
            work.tp_cycles
        }
    };
    let ready = c.tp_time;
    let detect = finish_epoch_task(config, &mut c.tp_time, &mut c.pool, verify_task, ready)
        .max(c.commit_time);
    c.stats.wasted_tp_cycles += detect.saturating_sub(c.tp_time);

    let live_duration = work.tp_cycles.saturating_mul(config.cpus as u64).max(1);
    let live = run_live_guarded(
        &config.faults,
        &mut c.stats,
        work.index,
        &c.prev,
        live_duration,
        config.ep_quantum,
        work.epoch_start,
    )?;
    let live_logs = EncodedLogs {
        schedule: codec::encode_schedule(&live.schedule),
        syscalls: codec::encode_syscalls(&live.generated),
    };
    let live_sched_bytes = live_logs.schedule.len() as u64;
    let live_sys_bytes = live_logs.syscalls.len() as u64;
    let live_hash_cost = charge_state_hash(c, cost, &live.machine);
    let live_task =
        live.cycles + live_hash_cost + cost.log_write(live_sched_bytes + live_sys_bytes);
    c.stats.recovery_cycles += live_task;
    c.stats.ep_cycles += live_task;
    c.stats.schedule_bytes += live_sched_bytes;
    c.stats.syscall_bytes += live_sys_bytes;

    let mut resume = detect + live_task;
    if !config.forward_recovery {
        // Full rollback also re-runs the thread-parallel epoch.
        resume += work.tp_cycles;
        c.stats.wasted_tp_cycles += work.tp_cycles;
    }
    c.commit_time = resume;
    c.tp_time = resume;

    // Adopt the live world by moving it out of the outcome — no full-world
    // clones on the recovery path.
    let EpOutcome {
        schedule,
        generated,
        machine,
        kernel,
        end_hash,
        external,
        cycles,
        ..
    } = live;
    c.epochs.push(EpochRecord {
        index: work.index,
        schedule,
        syscalls: generated,
        end_machine_hash: end_hash,
        external,
        start: config.keep_checkpoints.then(|| c.prev.to_image()),
        tp_cycles: work.tp_cycles,
    });
    sink.epoch_encoded(c.epochs.last().expect("epoch just pushed"), &live_logs)
        .map_err(sink_err)?;
    c.prev = Checkpoint::capture(&machine, &kernel);
    c.stats.epochs += 1;
    Ok(Adopted {
        machine,
        kernel,
        cycles,
    })
}

/// Records one serialized (degraded-mode) epoch: a single uniprocessor-style
/// execution — nothing speculative, nothing to diverge. Slower (no
/// thread-parallelism) but guaranteed forward progress under a divergence
/// storm. Returns the adopted world.
pub(crate) fn record_serialized_epoch(
    c: &mut CommitState,
    config: &DoublePlayConfig,
    cost: &CostModel,
    sink: &mut dyn RecordSink,
    index: u32,
    epoch_start: u64,
    epoch_len: u64,
) -> Result<Adopted, RecordError> {
    let duration = epoch_len.saturating_mul(config.cpus as u64).max(1);
    let live = run_live_guarded(
        &config.faults,
        &mut c.stats,
        index,
        &c.prev,
        duration,
        config.ep_quantum,
        epoch_start,
    )?;
    let logs = EncodedLogs {
        schedule: codec::encode_schedule(&live.schedule),
        syscalls: codec::encode_syscalls(&live.generated),
    };
    let sched_bytes = logs.schedule.len() as u64;
    let sys_bytes = logs.syscalls.len() as u64;
    let hash_cost = charge_state_hash(c, cost, &live.machine);
    let task = live.cycles + hash_cost + cost.log_write(sched_bytes + sys_bytes);
    c.stats.ep_cycles += task;
    c.stats.log_write_cycles += cost.log_write(sched_bytes + sys_bytes);
    c.stats.schedule_bytes += sched_bytes;
    c.stats.syscall_bytes += sys_bytes;
    c.stats.tp_instructions += live.instructions;
    c.tp_time += task;
    c.commit_time = c.commit_time.max(c.tp_time);

    let EpOutcome {
        schedule,
        generated,
        machine,
        kernel,
        end_hash,
        external,
        cycles,
        ..
    } = live;
    c.epochs.push(EpochRecord {
        index,
        schedule,
        syscalls: generated,
        end_machine_hash: end_hash,
        external,
        start: config.keep_checkpoints.then(|| c.prev.to_image()),
        tp_cycles: cycles,
    });
    sink.epoch_encoded(c.epochs.last().expect("epoch just pushed"), &logs)
        .map_err(sink_err)?;
    c.prev = Checkpoint::capture(&machine, &kernel);
    c.stats.committed += 1;
    c.stats.serialized_epochs += 1;
    c.stats.epochs += 1;
    Ok(Adopted {
        machine,
        kernel,
        cycles,
    })
}

/// The lockstep driver: submit, verify (inline), retire — one epoch at a
/// time on the calling thread.
fn record_sequential(
    spec: &GuestSpec,
    config: &DoublePlayConfig,
    sink: &mut dyn RecordSink,
) -> Result<RecordingBundle, RecordError> {
    let wall_start = Instant::now();
    let (s, machine, kernel) = begin_session(spec, config, sink)?;
    let tp = TpRunner::new(config);
    let control = ControlState::new(config);
    drive_sequential(
        s, spec, config, sink, machine, kernel, tp, control, 0, 0, wall_start,
    )
}

/// The lockstep driver's epoch loop, entered either fresh (epoch 0, boot
/// state) or mid-run by [`crate::record::resume::resume_from`] with the
/// state a re-enacted salvaged prefix left behind. Everything a run
/// carries across epochs arrives as a parameter, so resuming at epoch `k`
/// continues exactly as an uninterrupted run would.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_sequential<'a>(
    mut s: Session,
    spec: &GuestSpec,
    config: &'a DoublePlayConfig,
    sink: &mut dyn RecordSink,
    mut machine: Machine,
    mut kernel: Kernel,
    mut tp: TpRunner<'a>,
    mut control: ControlState,
    mut guest_clock: u64,
    mut index: u32,
    wall_start: Instant,
) -> Result<RecordingBundle, RecordError> {
    loop {
        if s.commit.stats.tp_instructions > config.max_instructions || index >= MAX_EPOCHS {
            return Err(RecordError::BudgetExhausted);
        }
        let epoch_start = guest_clock;

        if control.serialized_left > 0 {
            control.serialized_left -= 1;
            let adopted = record_serialized_epoch(
                &mut s.commit,
                config,
                &s.cost,
                sink,
                index,
                epoch_start,
                control.epoch_len,
            )?;
            machine = adopted.machine;
            kernel = adopted.kernel;
            guest_clock = epoch_start + adopted.cycles;
            index += 1;
            if machine.halted().is_some() || machine.live_threads() == 0 {
                break;
            }
            continue;
        }

        let work = run_tp_epoch(
            &mut tp,
            &mut machine,
            &mut kernel,
            index,
            epoch_start,
            control.epoch_len,
        )?;
        guest_clock += work.tp_cycles;
        let sys_enc = charge_tp_side(&mut s.commit, &s.cost, &work);

        let targets = targets_of(&work.next_machine);
        let (expected_hash, verdict) = execute_verify(
            VerifyJobRef {
                index,
                start: &s.commit.prev,
                hint: &work.hint,
                syscalls: &work.syscalls,
                targets: &targets,
                next_machine: &work.next_machine,
            },
            &config.faults,
            None,
        );

        match verdict {
            VerifyVerdict::Done(ep) if ep.divergence.is_none() => {
                commit_clean(
                    &mut s.commit,
                    config,
                    &s.cost,
                    sink,
                    work,
                    *ep,
                    expected_hash,
                    sys_enc,
                )?;
                control.on_clean(config);
                control.note_outcome(false);
            }
            VerifyVerdict::Failed(e) => return Err(e),
            VerifyVerdict::Cancelled => unreachable!("inline verify has no cancel token"),
            diverged => {
                let verified = match diverged {
                    VerifyVerdict::Done(ep) => Some(*ep),
                    _ => None,
                };
                control.on_diverged(config);
                let adopted =
                    retire_diverged(&mut s.commit, config, &s.cost, sink, work, verified)?;
                machine = adopted.machine;
                kernel = adopted.kernel;
                guest_clock = epoch_start + adopted.cycles;
                control.note_outcome(true);
            }
        }

        index += 1;
        if machine.halted().is_some() || machine.live_threads() == 0 {
            break;
        }
    }

    let wall = WallClockStats {
        wall_ns: wall_start.elapsed().as_nanos() as u64,
        ..Default::default()
    };
    finish_session(s, spec, config, sink, &kernel, wall)
}

/// Runs the live (single-CPU) re-execution with panic isolation: a worker
/// that panics — injected by a [`FaultPlan`] or real — is retried with a
/// fresh attempt number up to [`WORKER_RETRY_BUDGET`] times before the
/// epoch is declared unconvergeable.
pub(crate) fn run_live_guarded(
    plan: &FaultPlan,
    stats: &mut RecorderStats,
    index: u32,
    start: &Checkpoint,
    duration: u64,
    quantum: u64,
    base_now: u64,
) -> Result<EpOutcome, RecordError> {
    // Attempt 0 belongs to the verify pass of the same epoch, so injected
    // decisions there and here never alias.
    let mut attempt = 1u32;
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            if plan.worker_panics(index, attempt) {
                panic!("{INJECTED_PANIC_TAG} (epoch {index}, attempt {attempt})");
            }
            run_live(start, duration, quantum, base_now)
        }));
        match run {
            Ok(result) => return result,
            Err(_) => {
                stats.worker_retries += 1;
                attempt += 1;
                if attempt > WORKER_RETRY_BUDGET {
                    return Err(RecordError::DivergenceLoop { epoch: index });
                }
            }
        }
    }
}

/// Accounts for one epoch-parallel task and returns its completion time.
/// With spare workers it runs on the pool; without, it steals time from the
/// thread-parallel cores (approximated as perfectly divisible work).
fn finish_epoch_task(
    config: &DoublePlayConfig,
    a: &mut u64,
    b: &mut WorkerPool,
    task: u64,
    ready: u64,
) -> u64 {
    let (tp_time, pool) = (a, b);
    if config.spare_workers > 0 {
        pool.schedule(ready, task)
    } else {
        *tp_time += task / config.cpus as u64 + 1;
        *tp_time
    }
}

/// Measures the native (unrecorded) runtime of `spec`: the same
/// thread-parallel execution with the same hidden seed and epoch-aligned
/// scheduling, but no checkpoint, log, or verification work.
///
/// # Errors
///
/// Guest faults, deadlocks, or budget exhaustion.
pub fn measure_native(spec: &GuestSpec, config: &DoublePlayConfig) -> Result<u64, RecordError> {
    let (mut machine, mut kernel) = spec.boot();
    if config.faults.is_active() {
        kernel.set_io_faults(config.faults.io_faults());
    }
    let mut tp = TpRunner::new(config);
    let mut t = 0u64;
    let mut instructions = 0u64;
    for _ in 0..MAX_EPOCHS {
        let out = tp.run_epoch(&mut machine, &mut kernel, t, config.epoch_cycles)?;
        t += out.cycles;
        instructions += out.instructions;
        if out.finished {
            return Ok(t);
        }
        if instructions > config.max_instructions {
            return Err(RecordError::BudgetExhausted);
        }
    }
    Err(RecordError::BudgetExhausted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{JournalReader, JournalWriter};
    use crate::record::testutil::{atomic_counter_spec, compute_counter_spec, racy_counter_spec};
    use dp_os::FaultedSink;

    #[test]
    fn records_a_synchronized_program_without_divergence() {
        let spec = compute_counter_spec(3_000, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(25_000);
        let bundle = record(&spec, &config).unwrap();
        assert_eq!(bundle.stats.divergences, 0);
        assert!(bundle.stats.epochs >= 2);
        assert_eq!(bundle.stats.committed, bundle.stats.epochs);
        assert!(bundle.recording.has_checkpoints());
        assert!(bundle.stats.native_cycles > 0);
        assert!(bundle.stats.recorded_cycles >= bundle.stats.native_cycles);
        // Overhead should be bounded for a clean run with spare cores
        // (the run is still short, so the pipeline tail is a large
        // fraction; benchmark-sized runs land in the tens of percent).
        assert!(
            bundle.stats.overhead() < 2.0,
            "overhead {} too large",
            bundle.stats.overhead()
        );
        // The sequential driver measures wall time but uses no workers.
        assert!(bundle.stats.wall.wall_ns > 0);
        assert_eq!(bundle.stats.wall.workers, 0);
        assert!(!bundle.stats.wall.pipelined);
    }

    #[test]
    fn racy_program_records_with_divergences() {
        // With fine-grained interleaving some seed must diverge; recording
        // must still complete and stay internally consistent.
        let mut total_div = 0;
        for seed in 0..6 {
            let spec = racy_counter_spec(3000);
            let config = DoublePlayConfig {
                tp_quantum: 200,
                tp_jitter: 300,
                ..DoublePlayConfig::new(2)
                    .epoch_cycles(20_000)
                    .hidden_seed(seed)
            };
            let bundle = record(&spec, &config).unwrap();
            total_div += bundle.stats.divergences;
            assert_eq!(
                bundle.stats.committed + bundle.stats.divergences,
                bundle.stats.epochs
            );
        }
        assert!(total_div > 0, "no divergences across seeds");
    }

    #[test]
    fn recording_is_deterministic_given_seed() {
        let spec = atomic_counter_spec(1000, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000);
        let a = record(&spec, &config).unwrap();
        let b = record(&spec, &config).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.recording.epochs.len(), b.recording.epochs.len());
        for (ea, eb) in a.recording.epochs.iter().zip(&b.recording.epochs) {
            assert_eq!(ea.end_machine_hash, eb.end_machine_hash);
            assert_eq!(ea.schedule, eb.schedule);
        }
    }

    #[test]
    fn no_spare_cores_costs_more() {
        let spec = compute_counter_spec(5_000, 2);
        let spare = DoublePlayConfig::new(2).epoch_cycles(30_000);
        let shared = spare.spare_workers(0);
        let with_spare = record(&spec, &spare).unwrap();
        let without = record(&spec, &shared).unwrap();
        assert!(
            without.stats.recorded_cycles > with_spare.stats.recorded_cycles,
            "shared cores should be slower: {} vs {}",
            without.stats.recorded_cycles,
            with_spare.stats.recorded_cycles
        );
    }

    #[test]
    fn native_measurement_is_reproducible() {
        let spec = atomic_counter_spec(1500, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(6_000);
        assert_eq!(
            measure_native(&spec, &config).unwrap(),
            measure_native(&spec, &config).unwrap()
        );
    }

    #[test]
    fn budget_is_enforced() {
        let spec = atomic_counter_spec(100_000, 2);
        let config = DoublePlayConfig::new(2).max_instructions(10_000);
        assert!(matches!(
            record(&spec, &config),
            Err(RecordError::BudgetExhausted)
        ));
    }

    #[test]
    fn injected_worker_panics_are_retried_and_recording_survives() {
        crate::faults::silence_injected_panics();
        let spec = atomic_counter_spec(1500, 2);
        let plan = crate::faults::FaultPlan::none()
            .seed(5)
            .worker_panics_with(0.3);
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000).faults(plan);
        let bundle = record(&spec, &config).unwrap();
        assert!(
            bundle.stats.worker_retries > 0,
            "p=0.3 over {} epochs injected nothing",
            bundle.stats.epochs
        );
        assert_eq!(
            bundle.stats.committed + bundle.stats.divergences,
            bundle.stats.epochs
        );
        // The surviving recording replays bit-exactly and preserves the
        // guest's observable result.
        let report = crate::replay::replay_sequential(&bundle.recording, &spec.program).unwrap();
        assert_eq!(report.epochs as u64, bundle.stats.epochs);
        assert_eq!(report.exit_code, Some(3000));
    }

    #[test]
    fn certain_worker_panics_exhaust_the_retry_budget() {
        crate::faults::silence_injected_panics();
        let spec = atomic_counter_spec(1000, 2);
        let plan = crate::faults::FaultPlan::none().worker_panics_with(1.0);
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000).faults(plan);
        // Every verify and every live attempt panics: the bounded retry
        // budget must surface DivergenceLoop instead of looping forever.
        assert!(matches!(
            record(&spec, &config),
            Err(RecordError::DivergenceLoop { epoch: 0 })
        ));
    }

    #[test]
    fn journaled_recording_salvages_identical_to_the_in_memory_one() {
        let spec = atomic_counter_spec(1500, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000);
        let mut journal = JournalWriter::new(Vec::new()).unwrap();
        let bundle = record_to(&spec, &config, &mut journal).unwrap();
        assert_eq!(
            u64::from(journal.epochs_committed()),
            bundle.stats.epochs,
            "every epoch must hit the journal"
        );
        let bytes = journal.into_inner();
        let salvaged = JournalReader::salvage(&bytes).unwrap();
        assert!(salvaged.clean);
        assert_eq!(salvaged.dropped_bytes, 0);
        assert_eq!(salvaged.committed(), bundle.recording.epochs.len());
        for (a, b) in salvaged
            .recording
            .epochs
            .iter()
            .zip(&bundle.recording.epochs)
        {
            assert_eq!(a.end_machine_hash, b.end_machine_hash);
            assert_eq!(a.schedule, b.schedule);
        }
        let report = crate::replay::replay_sequential(&salvaged.recording, &spec.program).unwrap();
        assert_eq!(report.epochs as u64, bundle.stats.epochs);
    }

    #[test]
    fn torn_sink_aborts_the_run_but_leaves_a_salvageable_prefix() {
        let spec = atomic_counter_spec(1500, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000);
        // Reference run against a healthy sink: sink faults must not
        // perturb the guest, so the crash run's prefix must bit-match it.
        let mut healthy = JournalWriter::new(Vec::new()).unwrap();
        let reference = record_to(&spec, &config, &mut healthy).unwrap();
        let healthy_len = healthy.bytes_written();

        let torn_at = healthy_len * 2 / 3;
        let mut sink = JournalWriter::new(FaultedSink::new(
            Vec::new(),
            crate::faults::FaultPlan::none()
                .sink_torn_at(torn_at)
                .sink_faults(),
        ))
        .unwrap();
        match record_to(&spec, &config, &mut sink) {
            Err(RecordError::Sink { detail }) => assert!(detail.contains("torn")),
            other => panic!("expected Sink error, got {other:?}"),
        }
        let faulted = sink.into_inner();
        assert_eq!(faulted.durable_bytes(), torn_at);
        let salvaged = JournalReader::salvage(faulted.get_ref()).unwrap();
        assert!(!salvaged.clean);
        assert!(
            salvaged.committed() < reference.recording.epochs.len(),
            "torn at 2/3 must lose the tail"
        );
        for (a, b) in salvaged
            .recording
            .epochs
            .iter()
            .zip(&reference.recording.epochs)
        {
            assert_eq!(a.end_machine_hash, b.end_machine_hash);
        }
        crate::replay::replay_sequential(&salvaged.recording, &spec.program).unwrap();
    }

    /// A storm-test config: the base micro-slice covers a whole per-CPU
    /// epoch, so the thread-parallel interleaving degenerates to the same
    /// thread-ordered serialization the hint encodes — zero baseline
    /// divergence. A storm shrinks the slices 64x, making every storm epoch
    /// race-divergent. The small `ep_quantum` keeps recovery round-robin
    /// fair so no thread sprints to completion and ends the contention.
    fn storm_config(seed: u64) -> DoublePlayConfig {
        let plan = crate::faults::FaultPlan::none()
            .seed(seed)
            .storms(1.0, 4, 64);
        DoublePlayConfig {
            tp_quantum: 6_000,
            tp_jitter: 2_000,
            ..DoublePlayConfig::new(2)
                .epoch_cycles(6_000)
                .ep_quantum(512)
                .hidden_seed(seed)
                .faults(plan)
        }
    }

    #[test]
    fn divergence_storm_degrades_to_serialized_recording() {
        let spec = racy_counter_spec(8_000);
        // Storm: every epoch diverges until the sliding window trips and
        // the coordinator records serialized epochs instead of aborting.
        let bundle = record(&spec, &storm_config(3)).unwrap();
        assert_eq!(
            bundle.stats.committed + bundle.stats.divergences,
            bundle.stats.epochs
        );
        assert!(
            bundle.stats.divergences > 0,
            "storm produced no divergences"
        );
        assert!(
            bundle.stats.serialized_epochs > 0,
            "storm never engaged the serialized fallback: {} divergences over {} epochs",
            bundle.stats.divergences,
            bundle.stats.epochs
        );
        // Degraded or not, the recording must still replay exactly.
        let report = crate::replay::replay_sequential(&bundle.recording, &spec.program).unwrap();
        assert_eq!(report.epochs as u64, bundle.stats.epochs);
    }

    #[test]
    fn serialized_fallback_engages_under_some_seed() {
        // Across a few seeds the forced storm must trip the sliding-window
        // threshold at least once, proving the degradation path runs.
        let mut engaged = 0u64;
        for seed in 0..6 {
            let spec = racy_counter_spec(8_000);
            let bundle = record(&spec, &storm_config(seed)).unwrap();
            engaged += bundle.stats.serialized_epochs;
            let report =
                crate::replay::replay_sequential(&bundle.recording, &spec.program).unwrap();
            assert_eq!(report.epochs as u64, bundle.stats.epochs);
        }
        assert!(engaged > 0, "no seed engaged serialized fallback");
    }

    #[test]
    fn full_rollback_records_and_replays_like_forward_recovery() {
        // forward_recovery(false) models the paper's rollback alternative:
        // the thread-parallel epoch is re-run too. It must cost at least as
        // much, diverge identically, and still produce an exact recording.
        let mut saw_divergence = false;
        for seed in 0..6 {
            let spec = racy_counter_spec(3_000);
            let base = DoublePlayConfig {
                tp_quantum: 200,
                tp_jitter: 300,
                ..DoublePlayConfig::new(2)
                    .epoch_cycles(20_000)
                    .hidden_seed(seed)
            };
            let rollback = base.forward_recovery(false);
            let fwd = record(&spec, &base).unwrap();
            let back = record(&spec, &rollback).unwrap();
            assert_eq!(fwd.stats.divergences, back.stats.divergences);
            if back.stats.divergences > 0 {
                saw_divergence = true;
                assert!(
                    back.stats.recorded_cycles >= fwd.stats.recorded_cycles,
                    "rollback cheaper than forward recovery: {} < {}",
                    back.stats.recorded_cycles,
                    fwd.stats.recorded_cycles
                );
                assert!(back.stats.wasted_tp_cycles >= fwd.stats.wasted_tp_cycles);
            }
            let r1 = crate::replay::replay_sequential(&back.recording, &spec.program).unwrap();
            let r2 = crate::replay::replay_sequential(&fwd.recording, &spec.program).unwrap();
            assert_eq!(r1.final_hash, r2.final_hash, "recovery modes disagree");
        }
        assert!(saw_divergence, "no seed diverged; rollback path untested");
    }
}
