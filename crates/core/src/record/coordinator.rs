//! The uniparallel coordinator: ties the thread-parallel and epoch-parallel
//! executions into one recording run.
//!
//! For each epoch the coordinator:
//!
//! 1. runs the thread-parallel execution one epoch forward (producing the
//!    next checkpoint and the epoch's syscall log);
//! 2. runs the epoch-parallel execution of that epoch in verify mode from
//!    the previous checkpoint;
//! 3. **commits** if the epoch-parallel end state matches the next
//!    checkpoint, releasing the epoch's external output; otherwise a
//!    **divergence** occurred (a data race resolved differently): the epoch
//!    is re-executed live on one CPU, its end state *becomes* the truth
//!    (forward recovery), and the thread-parallel side restarts from it.
//!
//! The coordinator executes epochs in lockstep but accounts for time as the
//! real system would pipeline them: the thread-parallel side runs ahead on
//! `cpus` cores while committed epochs' single-CPU re-executions occupy the
//! spare worker cores ([`crate::record::pipeline::WorkerPool`]). The
//! recorded end-to-end runtime is the later of the two timelines; native
//! runtime is measured by a separate thread-parallel run with recording
//! work disabled (same hidden seed).

use crate::checkpoint::Checkpoint;
use crate::config::DoublePlayConfig;
use crate::error::RecordError;
use crate::faults::{FaultPlan, INJECTED_PANIC_TAG};
use crate::journal::{NullSink, RecordSink};
use crate::logs::codec;
use crate::record::epoch_parallel::{run_live, run_verify, EpOutcome, VerifyInputs};
use crate::record::pipeline::WorkerPool;
use crate::record::thread_parallel::TpRunner;
use crate::recording::{EpochRecord, Recording, RecordingMeta};
use crate::stats::RecorderStats;
use crate::world::GuestSpec;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A finished recording plus its measurements.
#[derive(Debug)]
pub struct RecordingBundle {
    /// The replayable artifact.
    pub recording: Recording,
    /// Overhead/log/divergence measurements.
    pub stats: RecorderStats,
}

/// Hard cap on recorded epochs (runaway-guest backstop).
const MAX_EPOCHS: u32 = 1_000_000;

/// How many times a panicked epoch worker is re-executed before the epoch
/// is declared unconvergeable ([`RecordError::DivergenceLoop`]).
const WORKER_RETRY_BUDGET: u32 = 3;

/// Sliding window (epochs) over which the divergence rate is observed.
const DEGRADE_WINDOW: usize = 8;
/// Divergences within the window that trigger serialized fallback.
const DEGRADE_THRESHOLD: usize = 4;
/// Epochs recorded serialized (single execution, no speculation) before
/// the coordinator attempts uniparallel recording again.
const SERIALIZED_EPOCHS: u32 = 8;

/// Records one execution of `spec` under `config`.
///
/// # Errors
///
/// Guest faults, true deadlocks, or budget exhaustion.
pub fn record(spec: &GuestSpec, config: &DoublePlayConfig) -> Result<RecordingBundle, RecordError> {
    record_to(spec, config, &mut NullSink)
}

/// Maps a durable-sink failure into the typed recorder error.
fn sink_err(e: std::io::Error) -> RecordError {
    RecordError::Sink {
        detail: e.to_string(),
    }
}

/// Records one execution of `spec` under `config`, streaming the recording
/// into `sink` as it is produced: the header (meta + boot state) before the
/// first epoch, then every epoch the moment it commits, then a completion
/// marker. With a [`crate::JournalWriter`] sink this makes the recording
/// crash-consistent — a run that dies mid-way leaves a journal from which
/// [`crate::JournalReader::salvage`] recovers every committed epoch.
///
/// # Errors
///
/// Everything [`record`] raises, plus [`RecordError::Sink`] when the sink
/// fails (torn write, full disk, failed flush). Sink faults never perturb
/// the guest: the epoch prefix committed before the failure is bit-exact
/// with the same run against a healthy sink.
pub fn record_to(
    spec: &GuestSpec,
    config: &DoublePlayConfig,
    sink: &mut dyn RecordSink,
) -> Result<RecordingBundle, RecordError> {
    let (mut machine, mut kernel) = spec.boot();
    if config.faults.is_active() {
        // Install before the initial checkpoint so the plan rides inside
        // every checkpoint and replay re-injects the same faults.
        kernel.set_io_faults(config.faults.io_faults());
    }
    machine.mem_mut().take_dirty();
    let cost = *kernel.cost_model();
    let initial = Checkpoint::capture(&machine, &kernel);
    let meta = RecordingMeta {
        guest_name: spec.name.clone(),
        program_hash: spec.program_hash(),
        initial_machine_hash: initial.machine_hash,
        config: *config,
    };
    let initial_image = initial.to_image();
    sink.begin(&meta, &initial_image).map_err(sink_err)?;
    let mut tp = TpRunner::new(config);
    let mut pool = WorkerPool::new(config.spare_workers.max(1));
    let mut stats = RecorderStats::default();
    let mut epochs: Vec<EpochRecord> = Vec::new();

    let mut prev = initial.clone();
    let mut tp_time = 0u64; // thread-parallel timeline (with recording costs)
    let mut commit_time = 0u64; // epoch-commit timeline
    let mut epoch_len = config.epoch_cycles;
    let mut clean_streak = 0u32;
    let mut guest_clock = 0u64; // virtual time base for the guest
    let mut index = 0u32;
    // Graceful degradation: recent divergence outcomes (true = diverged).
    // When the window fills with divergences the coordinator stops
    // speculating and records serialized epochs for a while.
    let mut window: VecDeque<bool> = VecDeque::new();
    let mut serialized_left = 0u32;

    loop {
        if stats.tp_instructions > config.max_instructions || index >= MAX_EPOCHS {
            return Err(RecordError::BudgetExhausted);
        }
        let epoch_start = guest_clock;

        if serialized_left > 0 {
            // Degraded mode: one uniprocessor-style execution per epoch —
            // nothing speculative, nothing to diverge. Slower (no
            // thread-parallelism) but guaranteed forward progress under a
            // divergence storm.
            serialized_left -= 1;
            let duration = epoch_len.saturating_mul(config.cpus as u64).max(1);
            let live = run_live_guarded(
                &config.faults,
                &mut stats,
                index,
                &prev,
                duration,
                config.ep_quantum,
                epoch_start,
            )?;
            let sched_bytes = codec::encode_schedule(&live.schedule).len() as u64;
            let sys_bytes = codec::encode_syscalls(&live.generated).len() as u64;
            let hash_cost = cost.state_hash(live.machine.mem().resident_pages() as u64);
            let task = live.cycles + hash_cost + cost.log_write(sched_bytes + sys_bytes);
            stats.ep_cycles += task;
            stats.log_write_cycles += cost.log_write(sched_bytes + sys_bytes);
            stats.schedule_bytes += sched_bytes;
            stats.syscall_bytes += sys_bytes;
            stats.tp_instructions += live.instructions;
            tp_time += task;
            commit_time = commit_time.max(tp_time);

            machine = live.machine;
            kernel = live.kernel;
            guest_clock = epoch_start + live.cycles;
            epochs.push(EpochRecord {
                index,
                schedule: live.schedule,
                syscalls: live.generated,
                end_machine_hash: live.end_hash,
                external: live.external,
                start: config.keep_checkpoints.then(|| prev.to_image()),
                tp_cycles: live.cycles,
            });
            sink.epoch(epochs.last().expect("epoch just pushed"))
                .map_err(sink_err)?;
            prev = Checkpoint::capture(&machine, &kernel);
            stats.committed += 1;
            stats.serialized_epochs += 1;

            index += 1;
            stats.epochs += 1;
            if machine.halted().is_some() || machine.live_threads() == 0 {
                break;
            }
            continue;
        }

        let tp_out = tp.run_epoch(&mut machine, &mut kernel, epoch_start, epoch_len)?;
        guest_clock += tp_out.cycles;
        let dirty = machine.mem_mut().take_dirty().len() as u64;
        kernel.take_external(); // thread-parallel output is speculative only
        let ckpt_next = Checkpoint::capture(&machine, &kernel);

        let sys_bytes = codec::encode_syscalls(&tp_out.syscalls).len() as u64;
        let ckpt_cost = cost.checkpoint(dirty);
        let tp_log_cost = cost.log_write(sys_bytes);
        stats.tp_exec_cycles += tp_out.cycles;
        stats.tp_instructions += tp_out.instructions;
        stats.dirty_pages += dirty;
        stats.checkpoint_cycles += ckpt_cost;
        stats.log_write_cycles += tp_log_cost;
        tp_time += tp_out.cycles + ckpt_cost + tp_log_cost;

        let targets = ckpt_next.targets();
        // The verify worker is panic-isolated: an injected (or real) panic
        // is contained by `catch_unwind` and handled like a divergence —
        // the epoch is simply re-executed live.
        let verified: Option<EpOutcome> = match catch_unwind(AssertUnwindSafe(|| {
            if config.faults.worker_panics(index, 0) {
                panic!("{INJECTED_PANIC_TAG} (epoch {index}, verify)");
            }
            run_verify(
                &prev,
                VerifyInputs {
                    hint: &tp_out.hint,
                    targets: &targets,
                    log: &tp_out.syscalls,
                    expected_hash: ckpt_next.machine_hash,
                    expected_machine: Some(&ckpt_next.machine),
                },
            )
        })) {
            Ok(result) => Some(result?),
            Err(_) => {
                stats.worker_retries += 1;
                None
            }
        };

        let diverged = !matches!(&verified, Some(ep) if ep.divergence.is_none());
        if !diverged {
            // Commit.
            let ep = verified.expect("clean verify has an outcome");
            let hash_cost = cost.state_hash(ep.machine.mem().resident_pages() as u64);
            let sched_bytes = codec::encode_schedule(&ep.schedule).len() as u64;
            let ep_task = ep.cycles + hash_cost + cost.log_write(sched_bytes);
            stats.ep_cycles += ep_task;
            stats.log_write_cycles += cost.log_write(sched_bytes);
            stats.schedule_bytes += sched_bytes;
            stats.syscall_bytes += sys_bytes;
            let ready = tp_time;
            commit_time =
                finish_epoch_task(config, &mut tp_time, &mut pool, ep_task, ready).max(commit_time);
            epochs.push(EpochRecord {
                index,
                schedule: ep.schedule,
                syscalls: tp_out.syscalls,
                end_machine_hash: ckpt_next.machine_hash,
                external: ep.external,
                start: config.keep_checkpoints.then(|| prev.to_image()),
                tp_cycles: tp_out.cycles,
            });
            sink.epoch(epochs.last().expect("epoch just pushed"))
                .map_err(sink_err)?;
            prev = ckpt_next;
            stats.committed += 1;
            clean_streak += 1;
            if config.adaptive && clean_streak >= 8 {
                epoch_len = (epoch_len + epoch_len / 4).min(config.epoch_cycles * 8);
                clean_streak = 0;
            }
        } else {
            // Divergence (or a panicked verify worker, handled the same
            // way): the verify attempt is wasted; re-execute the epoch live
            // from the previous checkpoint. Its end state is adopted as the
            // new truth (forward recovery).
            stats.divergences += 1;
            clean_streak = 0;
            if config.adaptive {
                epoch_len = (epoch_len / 2).max(config.epoch_cycles / 16).max(1_000);
            }
            let verify_task = match &verified {
                Some(ep) => ep.cycles + cost.state_hash(ep.machine.mem().resident_pages() as u64),
                // A panicked worker's progress is unknowable; charge one
                // epoch's worth of wasted work.
                None => tp_out.cycles,
            };
            let ready = tp_time;
            let detect = finish_epoch_task(config, &mut tp_time, &mut pool, verify_task, ready)
                .max(commit_time);
            stats.wasted_tp_cycles += detect.saturating_sub(tp_time);

            let live_duration = tp_out.cycles.saturating_mul(config.cpus as u64).max(1);
            let live = run_live_guarded(
                &config.faults,
                &mut stats,
                index,
                &prev,
                live_duration,
                config.ep_quantum,
                epoch_start,
            )?;
            let live_sched_bytes = codec::encode_schedule(&live.schedule).len() as u64;
            let live_sys_bytes = codec::encode_syscalls(&live.generated).len() as u64;
            let live_hash_cost = cost.state_hash(live.machine.mem().resident_pages() as u64);
            let live_task =
                live.cycles + live_hash_cost + cost.log_write(live_sched_bytes + live_sys_bytes);
            stats.recovery_cycles += live_task;
            stats.ep_cycles += live_task;
            stats.schedule_bytes += live_sched_bytes;
            stats.syscall_bytes += live_sys_bytes;

            let mut resume = detect + live_task;
            if !config.forward_recovery {
                // Full rollback also re-runs the thread-parallel epoch.
                resume += tp_out.cycles;
                stats.wasted_tp_cycles += tp_out.cycles;
            }
            commit_time = resume;
            tp_time = resume;

            machine = live.machine.clone();
            kernel = live.kernel.clone();
            guest_clock = epoch_start + live.cycles;
            epochs.push(EpochRecord {
                index,
                schedule: live.schedule,
                syscalls: live.generated,
                end_machine_hash: live.end_hash,
                external: live.external,
                start: config.keep_checkpoints.then(|| prev.to_image()),
                tp_cycles: tp_out.cycles,
            });
            sink.epoch(epochs.last().expect("epoch just pushed"))
                .map_err(sink_err)?;
            prev = Checkpoint::capture(&machine, &kernel);
        }

        // Update the divergence window; a saturated window switches the
        // coordinator to serialized recording for a while, making the
        // DivergenceLoop abort a genuine last resort.
        window.push_back(diverged);
        if window.len() > DEGRADE_WINDOW {
            window.pop_front();
        }
        if window.iter().filter(|&&d| d).count() >= DEGRADE_THRESHOLD {
            serialized_left = SERIALIZED_EPOCHS;
            window.clear();
        }

        index += 1;
        stats.epochs += 1;
        if machine.halted().is_some() || machine.live_threads() == 0 {
            break;
        }
    }

    sink.finish().map_err(sink_err)?;
    stats.recorded_cycles = tp_time.max(commit_time);
    stats.io_faults = kernel.stats.injected_faults;
    stats.native_cycles = measure_native(spec, config)?;
    Ok(RecordingBundle {
        recording: Recording {
            meta,
            initial: initial_image,
            epochs,
        },
        stats,
    })
}

/// Runs the live (single-CPU) re-execution with panic isolation: a worker
/// that panics — injected by a [`FaultPlan`] or real — is retried with a
/// fresh attempt number up to [`WORKER_RETRY_BUDGET`] times before the
/// epoch is declared unconvergeable.
fn run_live_guarded(
    plan: &FaultPlan,
    stats: &mut RecorderStats,
    index: u32,
    start: &Checkpoint,
    duration: u64,
    quantum: u64,
    base_now: u64,
) -> Result<EpOutcome, RecordError> {
    // Attempt 0 belongs to the verify pass of the same epoch, so injected
    // decisions there and here never alias.
    let mut attempt = 1u32;
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            if plan.worker_panics(index, attempt) {
                panic!("{INJECTED_PANIC_TAG} (epoch {index}, attempt {attempt})");
            }
            run_live(start, duration, quantum, base_now)
        }));
        match run {
            Ok(result) => return result,
            Err(_) => {
                stats.worker_retries += 1;
                attempt += 1;
                if attempt > WORKER_RETRY_BUDGET {
                    return Err(RecordError::DivergenceLoop { epoch: index });
                }
            }
        }
    }
}

/// Accounts for one epoch-parallel task and returns its completion time.
/// With spare workers it runs on the pool; without, it steals time from the
/// thread-parallel cores (approximated as perfectly divisible work).
fn finish_epoch_task(
    config: &DoublePlayConfig,
    a: &mut u64,
    b: &mut WorkerPool,
    task: u64,
    ready: u64,
) -> u64 {
    let (tp_time, pool) = (a, b);
    if config.spare_workers > 0 {
        pool.schedule(ready, task)
    } else {
        *tp_time += task / config.cpus as u64 + 1;
        *tp_time
    }
}

/// Measures the native (unrecorded) runtime of `spec`: the same
/// thread-parallel execution with the same hidden seed and epoch-aligned
/// scheduling, but no checkpoint, log, or verification work.
///
/// # Errors
///
/// Guest faults, deadlocks, or budget exhaustion.
pub fn measure_native(spec: &GuestSpec, config: &DoublePlayConfig) -> Result<u64, RecordError> {
    let (mut machine, mut kernel) = spec.boot();
    if config.faults.is_active() {
        kernel.set_io_faults(config.faults.io_faults());
    }
    let mut tp = TpRunner::new(config);
    let mut t = 0u64;
    let mut instructions = 0u64;
    for _ in 0..MAX_EPOCHS {
        let out = tp.run_epoch(&mut machine, &mut kernel, t, config.epoch_cycles)?;
        t += out.cycles;
        instructions += out.instructions;
        if out.finished {
            return Ok(t);
        }
        if instructions > config.max_instructions {
            return Err(RecordError::BudgetExhausted);
        }
    }
    Err(RecordError::BudgetExhausted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{JournalReader, JournalWriter};
    use crate::record::testutil::{atomic_counter_spec, compute_counter_spec, racy_counter_spec};
    use dp_os::FaultedSink;

    #[test]
    fn records_a_synchronized_program_without_divergence() {
        let spec = compute_counter_spec(3_000, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(25_000);
        let bundle = record(&spec, &config).unwrap();
        assert_eq!(bundle.stats.divergences, 0);
        assert!(bundle.stats.epochs >= 2);
        assert_eq!(bundle.stats.committed, bundle.stats.epochs);
        assert!(bundle.recording.has_checkpoints());
        assert!(bundle.stats.native_cycles > 0);
        assert!(bundle.stats.recorded_cycles >= bundle.stats.native_cycles);
        // Overhead should be bounded for a clean run with spare cores
        // (the run is still short, so the pipeline tail is a large
        // fraction; benchmark-sized runs land in the tens of percent).
        assert!(
            bundle.stats.overhead() < 2.0,
            "overhead {} too large",
            bundle.stats.overhead()
        );
    }

    #[test]
    fn racy_program_records_with_divergences() {
        // With fine-grained interleaving some seed must diverge; recording
        // must still complete and stay internally consistent.
        let mut total_div = 0;
        for seed in 0..6 {
            let spec = racy_counter_spec(3000);
            let config = DoublePlayConfig {
                tp_quantum: 200,
                tp_jitter: 300,
                ..DoublePlayConfig::new(2)
                    .epoch_cycles(20_000)
                    .hidden_seed(seed)
            };
            let bundle = record(&spec, &config).unwrap();
            total_div += bundle.stats.divergences;
            assert_eq!(
                bundle.stats.committed + bundle.stats.divergences,
                bundle.stats.epochs
            );
        }
        assert!(total_div > 0, "no divergences across seeds");
    }

    #[test]
    fn recording_is_deterministic_given_seed() {
        let spec = atomic_counter_spec(1000, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000);
        let a = record(&spec, &config).unwrap();
        let b = record(&spec, &config).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.recording.epochs.len(), b.recording.epochs.len());
        for (ea, eb) in a.recording.epochs.iter().zip(&b.recording.epochs) {
            assert_eq!(ea.end_machine_hash, eb.end_machine_hash);
            assert_eq!(ea.schedule, eb.schedule);
        }
    }

    #[test]
    fn no_spare_cores_costs_more() {
        let spec = compute_counter_spec(5_000, 2);
        let spare = DoublePlayConfig::new(2).epoch_cycles(30_000);
        let shared = spare.spare_workers(0);
        let with_spare = record(&spec, &spare).unwrap();
        let without = record(&spec, &shared).unwrap();
        assert!(
            without.stats.recorded_cycles > with_spare.stats.recorded_cycles,
            "shared cores should be slower: {} vs {}",
            without.stats.recorded_cycles,
            with_spare.stats.recorded_cycles
        );
    }

    #[test]
    fn native_measurement_is_reproducible() {
        let spec = atomic_counter_spec(1500, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(6_000);
        assert_eq!(
            measure_native(&spec, &config).unwrap(),
            measure_native(&spec, &config).unwrap()
        );
    }

    #[test]
    fn budget_is_enforced() {
        let spec = atomic_counter_spec(100_000, 2);
        let config = DoublePlayConfig::new(2).max_instructions(10_000);
        assert!(matches!(
            record(&spec, &config),
            Err(RecordError::BudgetExhausted)
        ));
    }

    #[test]
    fn injected_worker_panics_are_retried_and_recording_survives() {
        crate::faults::silence_injected_panics();
        let spec = atomic_counter_spec(1500, 2);
        let plan = crate::faults::FaultPlan::none()
            .seed(5)
            .worker_panics_with(0.3);
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000).faults(plan);
        let bundle = record(&spec, &config).unwrap();
        assert!(
            bundle.stats.worker_retries > 0,
            "p=0.3 over {} epochs injected nothing",
            bundle.stats.epochs
        );
        assert_eq!(
            bundle.stats.committed + bundle.stats.divergences,
            bundle.stats.epochs
        );
        // The surviving recording replays bit-exactly and preserves the
        // guest's observable result.
        let report = crate::replay::replay_sequential(&bundle.recording, &spec.program).unwrap();
        assert_eq!(report.epochs as u64, bundle.stats.epochs);
        assert_eq!(report.exit_code, Some(3000));
    }

    #[test]
    fn certain_worker_panics_exhaust_the_retry_budget() {
        crate::faults::silence_injected_panics();
        let spec = atomic_counter_spec(1000, 2);
        let plan = crate::faults::FaultPlan::none().worker_panics_with(1.0);
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000).faults(plan);
        // Every verify and every live attempt panics: the bounded retry
        // budget must surface DivergenceLoop instead of looping forever.
        assert!(matches!(
            record(&spec, &config),
            Err(RecordError::DivergenceLoop { epoch: 0 })
        ));
    }

    #[test]
    fn journaled_recording_salvages_identical_to_the_in_memory_one() {
        let spec = atomic_counter_spec(1500, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000);
        let mut journal = JournalWriter::new(Vec::new()).unwrap();
        let bundle = record_to(&spec, &config, &mut journal).unwrap();
        assert_eq!(
            u64::from(journal.epochs_committed()),
            bundle.stats.epochs,
            "every epoch must hit the journal"
        );
        let bytes = journal.into_inner();
        let salvaged = JournalReader::salvage(&bytes).unwrap();
        assert!(salvaged.clean);
        assert_eq!(salvaged.dropped_bytes, 0);
        assert_eq!(salvaged.committed(), bundle.recording.epochs.len());
        for (a, b) in salvaged
            .recording
            .epochs
            .iter()
            .zip(&bundle.recording.epochs)
        {
            assert_eq!(a.end_machine_hash, b.end_machine_hash);
            assert_eq!(a.schedule, b.schedule);
        }
        let report = crate::replay::replay_sequential(&salvaged.recording, &spec.program).unwrap();
        assert_eq!(report.epochs as u64, bundle.stats.epochs);
    }

    #[test]
    fn torn_sink_aborts_the_run_but_leaves_a_salvageable_prefix() {
        let spec = atomic_counter_spec(1500, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000);
        // Reference run against a healthy sink: sink faults must not
        // perturb the guest, so the crash run's prefix must bit-match it.
        let mut healthy = JournalWriter::new(Vec::new()).unwrap();
        let reference = record_to(&spec, &config, &mut healthy).unwrap();
        let healthy_len = healthy.bytes_written();

        let torn_at = healthy_len * 2 / 3;
        let mut sink = JournalWriter::new(FaultedSink::new(
            Vec::new(),
            crate::faults::FaultPlan::none()
                .sink_torn_at(torn_at)
                .sink_faults(),
        ))
        .unwrap();
        match record_to(&spec, &config, &mut sink) {
            Err(RecordError::Sink { detail }) => assert!(detail.contains("torn")),
            other => panic!("expected Sink error, got {other:?}"),
        }
        let faulted = sink.into_inner();
        assert_eq!(faulted.durable_bytes(), torn_at);
        let salvaged = JournalReader::salvage(faulted.get_ref()).unwrap();
        assert!(!salvaged.clean);
        assert!(
            salvaged.committed() < reference.recording.epochs.len(),
            "torn at 2/3 must lose the tail"
        );
        for (a, b) in salvaged
            .recording
            .epochs
            .iter()
            .zip(&reference.recording.epochs)
        {
            assert_eq!(a.end_machine_hash, b.end_machine_hash);
        }
        crate::replay::replay_sequential(&salvaged.recording, &spec.program).unwrap();
    }

    /// A storm-test config: the base micro-slice covers a whole per-CPU
    /// epoch, so the thread-parallel interleaving degenerates to the same
    /// thread-ordered serialization the hint encodes — zero baseline
    /// divergence. A storm shrinks the slices 64x, making every storm epoch
    /// race-divergent. The small `ep_quantum` keeps recovery round-robin
    /// fair so no thread sprints to completion and ends the contention.
    fn storm_config(seed: u64) -> DoublePlayConfig {
        let plan = crate::faults::FaultPlan::none()
            .seed(seed)
            .storms(1.0, 4, 64);
        DoublePlayConfig {
            tp_quantum: 6_000,
            tp_jitter: 2_000,
            ..DoublePlayConfig::new(2)
                .epoch_cycles(6_000)
                .ep_quantum(512)
                .hidden_seed(seed)
                .faults(plan)
        }
    }

    #[test]
    fn divergence_storm_degrades_to_serialized_recording() {
        let spec = racy_counter_spec(8_000);
        // Storm: every epoch diverges until the sliding window trips and
        // the coordinator records serialized epochs instead of aborting.
        let bundle = record(&spec, &storm_config(3)).unwrap();
        assert_eq!(
            bundle.stats.committed + bundle.stats.divergences,
            bundle.stats.epochs
        );
        assert!(
            bundle.stats.divergences > 0,
            "storm produced no divergences"
        );
        assert!(
            bundle.stats.serialized_epochs > 0,
            "storm never engaged the serialized fallback: {} divergences over {} epochs",
            bundle.stats.divergences,
            bundle.stats.epochs
        );
        // Degraded or not, the recording must still replay exactly.
        let report = crate::replay::replay_sequential(&bundle.recording, &spec.program).unwrap();
        assert_eq!(report.epochs as u64, bundle.stats.epochs);
    }

    #[test]
    fn serialized_fallback_engages_under_some_seed() {
        // Across a few seeds the forced storm must trip the sliding-window
        // threshold at least once, proving the degradation path runs.
        let mut engaged = 0u64;
        for seed in 0..6 {
            let spec = racy_counter_spec(8_000);
            let bundle = record(&spec, &storm_config(seed)).unwrap();
            engaged += bundle.stats.serialized_epochs;
            let report =
                crate::replay::replay_sequential(&bundle.recording, &spec.program).unwrap();
            assert_eq!(report.epochs as u64, bundle.stats.epochs);
        }
        assert!(engaged > 0, "no seed engaged serialized fallback");
    }

    #[test]
    fn full_rollback_records_and_replays_like_forward_recovery() {
        // forward_recovery(false) models the paper's rollback alternative:
        // the thread-parallel epoch is re-run too. It must cost at least as
        // much, diverge identically, and still produce an exact recording.
        let mut saw_divergence = false;
        for seed in 0..6 {
            let spec = racy_counter_spec(3_000);
            let base = DoublePlayConfig {
                tp_quantum: 200,
                tp_jitter: 300,
                ..DoublePlayConfig::new(2)
                    .epoch_cycles(20_000)
                    .hidden_seed(seed)
            };
            let rollback = base.forward_recovery(false);
            let fwd = record(&spec, &base).unwrap();
            let back = record(&spec, &rollback).unwrap();
            assert_eq!(fwd.stats.divergences, back.stats.divergences);
            if back.stats.divergences > 0 {
                saw_divergence = true;
                assert!(
                    back.stats.recorded_cycles >= fwd.stats.recorded_cycles,
                    "rollback cheaper than forward recovery: {} < {}",
                    back.stats.recorded_cycles,
                    fwd.stats.recorded_cycles
                );
                assert!(back.stats.wasted_tp_cycles >= fwd.stats.wasted_tp_cycles);
            }
            let r1 = crate::replay::replay_sequential(&back.recording, &spec.program).unwrap();
            let r2 = crate::replay::replay_sequential(&fwd.recording, &spec.program).unwrap();
            assert_eq!(r1.final_hash, r2.final_hash, "recovery modes disagree");
        }
        assert!(saw_divergence, "no seed diverged; rollback path untested");
    }
}
