//! Worker-core scheduling for the simulated-time pipeline.
//!
//! With spare cores, each epoch's epoch-parallel execution is a task that
//! becomes ready when the thread-parallel run finishes producing the epoch
//! (its end checkpoint carries the boundary targets), occupies one worker
//! core for its single-CPU duration, and commits in epoch order. This tiny
//! scheduler computes those times; the coordinator derives the recorded
//! end-to-end runtime from the last commit.

/// A pool of identical worker cores.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    free_at: Vec<u64>,
    /// Largest observed gap between a task becoming ready and starting
    /// (pipeline backlog diagnostic).
    pub max_wait: u64,
}

impl WorkerPool {
    /// Creates a pool of `workers` cores (at least one).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            free_at: vec![0; workers.max(1)],
            max_wait: 0,
        }
    }

    /// Schedules a task that becomes ready at `ready` and runs for
    /// `duration`; returns its completion time.
    pub fn schedule(&mut self, ready: u64, duration: u64) -> u64 {
        let idx = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(i, &t)| (t, *i))
            .map(|(i, _)| i)
            .expect("pool is never empty");
        let start = ready.max(self.free_at[idx]);
        self.max_wait = self.max_wait.max(start - ready);
        self.free_at[idx] = start + duration;
        self.free_at[idx]
    }

    /// Time at which every scheduled task has finished.
    pub fn all_idle_at(&self) -> u64 {
        self.free_at.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_serializes() {
        let mut p = WorkerPool::new(1);
        assert_eq!(p.schedule(0, 10), 10);
        assert_eq!(p.schedule(0, 10), 20);
        assert_eq!(p.schedule(100, 5), 105);
        assert_eq!(p.all_idle_at(), 105);
        assert_eq!(p.max_wait, 10);
    }

    #[test]
    fn parallel_workers_overlap() {
        let mut p = WorkerPool::new(2);
        assert_eq!(p.schedule(0, 10), 10);
        assert_eq!(p.schedule(0, 10), 10);
        assert_eq!(p.schedule(0, 10), 20); // third waits for a core
        assert_eq!(p.max_wait, 10);
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let mut p = WorkerPool::new(0);
        assert_eq!(p.schedule(5, 5), 10);
    }

    #[test]
    fn steady_pipeline_keeps_up_when_capacity_matches() {
        // N-per-epoch work on N workers arriving every epoch: no backlog
        // growth (the spare-cores regime of the paper).
        let mut p = WorkerPool::new(4);
        let mut last = 0;
        for epoch in 0..100u64 {
            let ready = epoch * 100;
            // 4 tasks per window of 400 worker-cycles capacity.
            last = p.schedule(ready, 95);
        }
        assert!(last < 100 * 100 + 400, "backlog grew: {last}");
    }
}
