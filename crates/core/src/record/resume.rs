//! Crash-resume: continue a recording run from its salvaged committed
//! prefix, byte-identical to a run that never crashed.
//!
//! A journal salvaged after a crash holds the committed epoch prefix —
//! but not the recorder's *cross-epoch* state: the thread-parallel
//! runner's hidden RNG, the atomic-ownership map, the adaptive-epoch
//! control, or the guest clock. None of that is journaled (it is exactly
//! the hidden nondeterminism the recorder must not depend on), so it
//! cannot be deserialized — but because the whole stack is deterministic
//! it can be **re-enacted**: [`resume_from`] re-runs the thread-parallel
//! side over the salvaged prefix epoch by epoch, reconstructing every
//! piece of carried state, and then re-enters the normal
//! sequential/pipelined coordinator at the next epoch.
//!
//! The re-enactment is cheaper than the original run: each prefix epoch
//! is classified against the journal, and the epoch-parallel *verify*
//! pass — the dominant recording cost — is skipped entirely for epochs
//! the journal shows committed clean (the thread-parallel end hash and
//! syscall log match the record). Only diverged and serialized epochs
//! re-run their single-CPU live execution, because their recorded state
//! *is* that live execution's outcome. That skipped verify work is the
//! "work saved" E17 measures against restart-from-zero.
//!
//! Every re-enacted epoch is hash-checked against the journal's identity
//! hash for it. Any disagreement — tampered journal, wrong seed, wrong
//! program build — surfaces as a typed
//! [`ResumeError::PrefixDiverged`], never as a silent wrong continuation.
//!
//! Modeled statistics of a resumed run cover the guest-visible counters
//! exactly (epochs, commits, divergences, instructions, the guest clock)
//! but not the epoch-parallel timing of the skipped verifies; wall-clock
//! measurements cover the resume itself.

use crate::checkpoint::Checkpoint;
use crate::config::DoublePlayConfig;
use crate::error::{RecordError, ResumeError};
use crate::journal::RecordSink;
use crate::record::coordinator::{
    charge_tp_side, drive_sequential, finish_session, run_live_guarded, run_tp_epoch, CommitState,
    ControlState, RecordingBundle, Session, MAX_EPOCHS,
};
use crate::record::pipeline::WorkerPool;
use crate::record::pipelined::drive_pipelined;
use crate::record::thread_parallel::TpRunner;
use crate::recording::{Recording, RecordingMeta};
use crate::stats::{RecorderStats, WallClockStats};
use crate::world::GuestSpec;
use std::time::Instant;

/// Resumes a crashed recording run: re-enacts `salvaged`'s committed
/// prefix through the deterministic VM (hash-checked epoch by epoch),
/// then continues recording epoch `salvaged.epochs.len()` onward into
/// `sink` under the normal pipelined/sequential coordinator.
///
/// `sink` must already hold the salvaged prefix — a
/// [`crate::JournalWriter::resume`]/[`resume_after`] or
/// [`crate::ShardedJournalWriter::resume`] writer positioned at the
/// truncation point. `resume_from` never calls [`RecordSink::begin`]:
/// the journal header the crashed incarnation wrote stays as-is, and the
/// appended epochs extend it byte-for-byte as an uninterrupted run would
/// have.
///
/// [`resume_after`]: crate::JournalWriter::resume_after
///
/// # Errors
///
/// [`ResumeError::BadPrefix`] when the prefix cannot belong to this
/// guest/config pairing, [`ResumeError::PrefixDiverged`] when
/// re-enactment disagrees with a journaled identity hash, and
/// [`ResumeError::Record`] for ordinary recording failures before or
/// after the hand-off.
pub fn resume_from(
    spec: &GuestSpec,
    config: &DoublePlayConfig,
    salvaged: Recording,
    sink: &mut dyn RecordSink,
) -> Result<RecordingBundle, ResumeError> {
    let wall_start = Instant::now();
    let bad = |detail: String| ResumeError::BadPrefix { detail };

    if salvaged.meta.guest_name != spec.name {
        return Err(bad(format!(
            "journal records guest '{}', offered '{}'",
            salvaged.meta.guest_name, spec.name
        )));
    }
    let program_hash = spec.program_hash();
    if salvaged.meta.program_hash != program_hash {
        return Err(bad(format!(
            "journal records program {:#x}, offered {program_hash:#x}",
            salvaged.meta.program_hash
        )));
    }
    // `pipelined` is an execution-strategy knob deliberately excluded
    // from the wire encoding; everything else must match, or the
    // re-enactment would diverge for config reasons, not tampering.
    if salvaged.meta.config.pipelined(false) != config.pipelined(false) {
        return Err(bad(
            "recorder configuration differs from the journal's".into()
        ));
    }

    let (mut machine, mut kernel) = spec.boot();
    if config.faults.is_active() {
        kernel.set_io_faults(config.faults.io_faults());
    }
    machine.mem_mut().take_dirty();
    let cost = *kernel.cost_model();
    let initial = Checkpoint::capture(&machine, &kernel);
    if initial.machine_hash != salvaged.meta.initial_machine_hash {
        return Err(bad(format!(
            "boot state {:#x} does not match the journal's initial hash {:#x}",
            initial.machine_hash, salvaged.meta.initial_machine_hash
        )));
    }
    let meta = RecordingMeta {
        guest_name: spec.name.clone(),
        program_hash,
        initial_machine_hash: initial.machine_hash,
        config: *config,
    };
    let initial_image = initial.to_image();
    let mut commit = CommitState {
        stats: RecorderStats::default(),
        epochs: Vec::new(),
        pool: WorkerPool::new(config.spare_workers.max(1)),
        tp_time: 0,
        commit_time: 0,
        prev: initial,
    };
    let mut tp = TpRunner::new(config);
    let mut control = ControlState::new(config);
    let mut guest_clock = 0u64;

    // Prefix re-enactment. Each salvaged epoch is replayed through the
    // thread-parallel side (and, where the original run fell back to a
    // live or serialized execution, through that same execution), with
    // the coordinator's carried state mutated exactly as the original
    // drivers would have mutated it.
    for (i, e) in salvaged.epochs.iter().enumerate() {
        let index = i as u32;
        if e.index != index {
            return Err(bad(format!(
                "salvaged epoch {} out of sequence (expected {index})",
                e.index
            )));
        }
        if commit.stats.tp_instructions > config.max_instructions || index >= MAX_EPOCHS {
            return Err(ResumeError::Record(RecordError::BudgetExhausted));
        }
        let epoch_start = guest_clock;

        if control.serialized_left > 0 {
            // The original run recorded this epoch in degraded serialized
            // mode; its journaled state is that single execution's
            // outcome, so re-run it with identical parameters.
            control.serialized_left -= 1;
            let duration = control.epoch_len.saturating_mul(config.cpus as u64).max(1);
            let live = run_live_guarded(
                &config.faults,
                &mut commit.stats,
                index,
                &commit.prev,
                duration,
                config.ep_quantum,
                epoch_start,
            )?;
            if live.end_hash != e.end_machine_hash {
                return Err(ResumeError::PrefixDiverged {
                    epoch: index,
                    expected: e.end_machine_hash,
                    actual: live.end_hash,
                });
            }
            commit.stats.tp_instructions += live.instructions;
            commit.stats.serialized_epochs += 1;
            commit.stats.committed += 1;
            commit.stats.epochs += 1;
            guest_clock = epoch_start + live.cycles;
            commit.prev = Checkpoint::capture(&live.machine, &live.kernel);
            commit.epochs.push(e.clone());
            machine = live.machine;
            kernel = live.kernel;
            continue;
        }

        let work = run_tp_epoch(
            &mut tp,
            &mut machine,
            &mut kernel,
            index,
            epoch_start,
            control.epoch_len,
        )?;
        guest_clock += work.tp_cycles;
        charge_tp_side(&mut commit, &cost, &work);
        let tp_hash = work.next_machine.state_hash();
        // Clean iff the original epoch committed its thread-parallel
        // state: no injected verify panic (keyed (epoch, attempt 0) —
        // replayable from the plan in the journaled config), matching end
        // hash, *and* matching syscall log. The log comparison closes the
        // corner where a divergence's live recovery coincidentally landed
        // on the thread-parallel hash.
        let clean = !config.faults.worker_panics(index, 0)
            && tp_hash == e.end_machine_hash
            && e.syscalls == work.syscalls;
        if clean {
            // The verify pass is skipped — this is the work resume saves.
            commit.prev = Checkpoint {
                machine: work.next_machine,
                kernel: work.next_kernel,
                machine_hash: tp_hash,
            };
            commit.stats.committed += 1;
            commit.stats.epochs += 1;
            commit.epochs.push(e.clone());
            control.on_clean(config);
            control.note_outcome(false);
        } else {
            // The original epoch diverged (or its verify worker panicked)
            // and forward recovery adopted the live re-execution's state:
            // re-run that same live execution and check it against the
            // journal.
            if config.faults.worker_panics(index, 0) {
                commit.stats.worker_retries += 1;
            }
            commit.stats.divergences += 1;
            control.on_diverged(config);
            let duration = work.tp_cycles.saturating_mul(config.cpus as u64).max(1);
            let live = run_live_guarded(
                &config.faults,
                &mut commit.stats,
                index,
                &commit.prev,
                duration,
                config.ep_quantum,
                epoch_start,
            )?;
            if live.end_hash != e.end_machine_hash {
                return Err(ResumeError::PrefixDiverged {
                    epoch: index,
                    expected: e.end_machine_hash,
                    actual: live.end_hash,
                });
            }
            commit.stats.epochs += 1;
            guest_clock = epoch_start + live.cycles;
            commit.prev = Checkpoint::capture(&live.machine, &live.kernel);
            commit.epochs.push(e.clone());
            machine = live.machine;
            kernel = live.kernel;
            control.note_outcome(true);
        }
    }

    let index = salvaged.epochs.len() as u32;
    let s = Session {
        commit,
        cost,
        meta,
        initial_image,
    };
    if machine.halted().is_some() || machine.live_threads() == 0 {
        // The guest completed inside the salvaged prefix: the crash hit
        // between the last epoch's commit and the FINAL marker becoming
        // durable. Nothing to record — seal the journal.
        let wall = WallClockStats {
            wall_ns: wall_start.elapsed().as_nanos() as u64,
            ..Default::default()
        };
        return finish_session(s, spec, config, sink, &kernel, wall).map_err(ResumeError::Record);
    }
    if config.pipelined && config.spare_workers > 0 {
        drive_pipelined(
            s,
            spec,
            config,
            sink,
            machine,
            kernel,
            tp,
            control,
            guest_clock,
            index,
            wall_start,
        )
        .map_err(ResumeError::Record)
    } else {
        drive_sequential(
            s,
            spec,
            config,
            sink,
            machine,
            kernel,
            tp,
            control,
            guest_clock,
            index,
            wall_start,
        )
        .map_err(ResumeError::Record)
    }
}
