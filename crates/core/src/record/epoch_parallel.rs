//! The epoch-parallel execution driver: DoublePlay's execution of record.
//!
//! Each epoch runs *all* threads time-sliced on a single logical CPU,
//! starting from the epoch's checkpoint. Because threads never overlap,
//! the resulting execution is fully determined by (schedule log, syscall
//! log, start state) — no shared-memory ordering is ever recorded.
//!
//! Two modes:
//!
//! * **Verify** ([`run_verify`]) — the normal recording path. The run
//!   *follows the thread-parallel run's schedule hint* (sync-ordered
//!   slices), re-executing deterministic syscalls against the epoch's own
//!   kernel snapshot and consuming logged-class results from the syscall
//!   log (checking number and argument digest). At the end, every thread
//!   must sit exactly at its epoch-boundary target and the machine digest
//!   must equal the next checkpoint's. Any deviation — a slice that can't
//!   be followed, a syscall that doesn't match, a digest mismatch — is a
//!   **divergence**: some data race resolved differently between the two
//!   executions. The hint (which was followed successfully) becomes the
//!   epoch's schedule log on commit.
//! * **Live** ([`run_live`]) — re-execution after a divergence (forward
//!   recovery), and the whole-run mode of the uniprocessor baseline. The
//!   scheduler is a deterministic round-robin; all syscalls execute for
//!   real; logged-class results are captured into a fresh syscall log. The
//!   end state *defines* the new truth.

use dp_os::abi;
use dp_os::kernel::{Disposition, Kernel, Wake};
use dp_vm::observer::NullObserver;
use dp_vm::{Fault, Machine, SliceLimits, StopReason, ThreadStatus, Tid, Word};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::checkpoint::{Checkpoint, EpochTargets};
use crate::error::RecordError;
use crate::logs::{
    apply_entry, request_hash, request_hash_args, SchedEvent, ScheduleLog, SyscallLog,
    SyscallLogEntry,
};

/// How many instructions a cancellable verify run executes between token
/// checks. Slices are chunked to this quantum; a mid-slice `Budget` stop
/// just continues the slice, so chunking never changes the outcome.
const CANCEL_CHECK_QUANTUM: u64 = 8_192;

/// Generation-based cooperative cancellation for speculative verify work.
///
/// The pipelined coordinator stamps each verify job with the generation
/// current at submission; a divergence at epoch *k* bumps the generation,
/// which (a) tells every in-flight worker running an epoch > *k* to bail
/// out at its next quantum boundary and (b) lets the commit stage discard
/// results from the dead speculation by comparing stamps.
#[derive(Debug, Default)]
pub struct CancelToken {
    generation: AtomicU64,
}

impl CancelToken {
    /// A fresh token at generation 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current generation (stamp new jobs with this).
    pub fn current(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Invalidates every job stamped with an older generation; returns the
    /// new generation.
    pub fn bump(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Whether a job stamped with `stamp` has been cancelled.
    pub fn is_stale(&self, stamp: u64) -> bool {
        self.current() != stamp
    }
}

/// Why an epoch-parallel run diverged from the thread-parallel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// A logged-class syscall did not match the next log entry.
    SyscallMismatch {
        /// Thread whose syscall mismatched.
        tid: Tid,
        /// What differed.
        detail: String,
    },
    /// A hint slice could not be followed (thread blocked, exited, trapped,
    /// or was missing where the hint said it should run).
    SliceMismatch {
        /// The thread the hint named.
        tid: Tid,
        /// What differed.
        detail: String,
    },
    /// Thread positions at the epoch's end disagree with the checkpoint.
    TargetMismatch {
        /// The offending thread.
        tid: Tid,
        /// What differed.
        detail: String,
    },
    /// All targets met but the final memory/thread state differs.
    HashMismatch {
        /// Digest the checkpoint expects.
        expected: u64,
        /// Digest the epoch-parallel run produced.
        actual: u64,
        /// First differing byte address, when diagnosable.
        first_difference: Option<Word>,
    },
    /// The epoch ended with unconsumed syscall-log entries.
    LeftoverLog {
        /// Entries never consumed.
        remaining: usize,
    },
    /// The guest faulted in the epoch-parallel run where the
    /// thread-parallel run did not (racy fault).
    GuestFault {
        /// The fault, formatted.
        detail: String,
    },
}

impl Divergence {
    /// Short category name (for rollback statistics tables).
    pub fn kind(&self) -> &'static str {
        match self {
            Divergence::SyscallMismatch { .. } => "syscall",
            Divergence::SliceMismatch { .. } => "slice",
            Divergence::TargetMismatch { .. } => "target",
            Divergence::HashMismatch { .. } => "hash",
            Divergence::LeftoverLog { .. } => "leftover-log",
            Divergence::GuestFault { .. } => "fault",
        }
    }
}

/// Result of running one epoch on the epoch-parallel CPU.
#[derive(Debug)]
pub struct EpOutcome {
    /// The schedule this run actually followed (the recording).
    pub schedule: ScheduleLog,
    /// Logged-class syscalls captured by a Live run (empty for Verify —
    /// the consumed thread-parallel log is stored instead).
    pub generated: SyscallLog,
    /// Machine at epoch end.
    pub machine: Machine,
    /// Kernel at epoch end.
    pub kernel: Kernel,
    /// Digest of `machine`.
    pub end_hash: u64,
    /// External output this epoch produced (released on commit).
    pub external: Vec<dp_os::kernel::ExternalChunk>,
    /// Single-CPU cycles consumed (the ep-worker occupancy time).
    pub cycles: u64,
    /// Guest instructions executed.
    pub instructions: u64,
    /// Set if the run diverged from the thread-parallel execution
    /// (Verify mode only).
    pub divergence: Option<Divergence>,
    /// Whether the machine halted during the epoch.
    pub finished: bool,
}

/// Verify-mode inputs.
pub struct VerifyInputs<'a> {
    /// The thread-parallel run's schedule hint for this epoch.
    pub hint: &'a ScheduleLog,
    /// Per-thread boundary targets from the next checkpoint.
    pub targets: &'a EpochTargets,
    /// The thread-parallel run's syscall log for this epoch.
    pub log: &'a SyscallLog,
    /// The next checkpoint's machine digest.
    pub expected_hash: u64,
    /// The next checkpoint's machine, for divergence diagnostics.
    pub expected_machine: Option<&'a Machine>,
}

/// Runs one epoch in **verify** mode from `start`, following the hint.
///
/// # Errors
///
/// Never fails on divergence (reported in the outcome); `Err` is reserved
/// for host-level problems and does not occur today, but the signature
/// matches [`run_live`] for symmetry at call sites.
pub fn run_verify(start: &Checkpoint, inputs: VerifyInputs<'_>) -> Result<EpOutcome, RecordError> {
    Ok(run_verify_cancellable(start, inputs, None)?
        .expect("verify without a cancel token always completes"))
}

/// [`run_verify`] with cooperative cancellation: when `cancel` is given as
/// `(token, stamp)` the run checks the token at every schedule event and
/// every [`CANCEL_CHECK_QUANTUM`] instructions within a slice, returning
/// `Ok(None)` as soon as the stamp goes stale. A completed run is
/// bit-identical to an uncancelled [`run_verify`] — chunked slices change
/// only where the interpreter pauses, never what it computes.
///
/// # Errors
///
/// As [`run_verify`].
pub fn run_verify_cancellable(
    start: &Checkpoint,
    inputs: VerifyInputs<'_>,
    cancel: Option<(&CancelToken, u64)>,
) -> Result<Option<EpOutcome>, RecordError> {
    let stale = || matches!(cancel, Some((token, stamp)) if token.is_stale(stamp));
    let chunk = if cancel.is_some() {
        CANCEL_CHECK_QUANTUM
    } else {
        u64::MAX
    };
    let mut machine = start.machine.clone();
    let mut kernel = start.kernel.clone();
    machine.mem_mut().take_dirty();
    let switch = kernel.cost_model().context_switch;
    let mut cursor = inputs.log.cursor();
    let mut external: Vec<dp_os::kernel::ExternalChunk> = Vec::new();
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    let mut divergence: Option<Divergence> = None;
    let mut last_tid: Option<Tid> = None;

    'events: for event in inputs.hint.events() {
        if stale() {
            return Ok(None);
        }
        match *event {
            SchedEvent::LoggedWake { tid } => {
                let pending = match machine.threads().get(tid.index()).and_then(|t| t.pending) {
                    Some(p) => p,
                    None => {
                        divergence = Some(Divergence::SliceMismatch {
                            tid,
                            detail: "logged wake but no pending syscall".into(),
                        });
                        break 'events;
                    }
                };
                let my_hash = request_hash(&machine, &pending);
                match cursor.peek(tid) {
                    Some(e) if e.num == pending.num && e.arg_hash == my_hash => {
                        let e = cursor.pop(tid).unwrap();
                        cycles += kernel.cost_model().syscall(e.effect.bytes());
                        external.extend(e.effect.external.iter().cloned());
                        apply_entry(&mut machine, e);
                    }
                    Some(e) => {
                        divergence = Some(Divergence::SyscallMismatch {
                            tid,
                            detail: format!(
                                "wake entry {} (hash {:#x}) vs pending {} (hash {:#x})",
                                abi::name(e.num),
                                e.arg_hash,
                                abi::name(pending.num),
                                my_hash
                            ),
                        });
                        break 'events;
                    }
                    None => {
                        divergence = Some(Divergence::SyscallMismatch {
                            tid,
                            detail: "logged wake with no log entry".into(),
                        });
                        break 'events;
                    }
                }
            }
            SchedEvent::Signal { tid, sig } => match kernel.take_pending_signal(tid) {
                Some((got, handler)) if got == sig && machine.thread(tid).is_ready() => {
                    machine.push_signal_frame(tid, handler, &[sig]);
                }
                other => {
                    divergence = Some(Divergence::SliceMismatch {
                        tid,
                        detail: format!("signal {sig} event but kernel has {other:?}"),
                    });
                    break 'events;
                }
            },
            SchedEvent::Slice { tid, instrs } => {
                if last_tid != Some(tid) {
                    cycles += switch;
                    last_tid = Some(tid);
                }
                if tid.index() >= machine.threads().len() {
                    divergence = Some(Divergence::SliceMismatch {
                        tid,
                        detail: "slice for a thread that does not exist".into(),
                    });
                    break 'events;
                }
                let mut remaining = instrs;
                while remaining > 0 {
                    if stale() {
                        return Ok(None);
                    }
                    if !machine.thread(tid).is_ready() {
                        divergence = Some(Divergence::SliceMismatch {
                            tid,
                            detail: format!(
                                "{remaining} instrs left but thread is {:?}",
                                machine.thread(tid).status
                            ),
                        });
                        break 'events;
                    }
                    let run = match machine.run_slice(
                        tid,
                        SliceLimits::budget(remaining.min(chunk)),
                        &mut NullObserver,
                    ) {
                        Ok(run) => run,
                        Err(fault) => {
                            divergence = Some(Divergence::GuestFault {
                                detail: fault.to_string(),
                            });
                            break 'events;
                        }
                    };
                    instructions += run.executed;
                    cycles += run.executed;
                    remaining -= run.executed;
                    match run.stop {
                        StopReason::Budget
                        | StopReason::IcountTarget
                        | StopReason::Atomic { .. } => {}
                        StopReason::Exited => {
                            kernel.on_thread_exited(&mut machine, tid);
                            if remaining > 0 {
                                divergence = Some(Divergence::SliceMismatch {
                                    tid,
                                    detail: format!("exited with {remaining} instrs left"),
                                });
                                break 'events;
                            }
                        }
                        StopReason::Syscall(req) => {
                            if abi::is_logged(req.num) {
                                let my_hash = request_hash(&machine, &req);
                                match cursor.peek(tid) {
                                    Some(e)
                                        if e.num == req.num
                                            && e.arg_hash == my_hash
                                            && !e.via_wake =>
                                    {
                                        let e = cursor.pop(tid).unwrap();
                                        cycles += kernel.cost_model().syscall(e.effect.bytes());
                                        external.extend(e.effect.external.iter().cloned());
                                        apply_entry(&mut machine, e);
                                    }
                                    Some(e) if e.num == req.num && e.via_wake => {
                                        // Blocks; the LoggedWake event will
                                        // complete it later.
                                    }
                                    Some(e) => {
                                        divergence = Some(Divergence::SyscallMismatch {
                                            tid,
                                            detail: format!(
                                                "issued {} (hash {:#x}) but log has {} (hash {:#x})",
                                                abi::name(req.num),
                                                my_hash,
                                                abi::name(e.num),
                                                e.arg_hash
                                            ),
                                        });
                                        break 'events;
                                    }
                                    None => {
                                        // Completion lies beyond this epoch:
                                        // the thread stays blocked, as the
                                        // thread-parallel run's did.
                                    }
                                }
                            } else {
                                let out = kernel.handle(&mut machine, req, cycles);
                                cycles += out.cost;
                            }
                            if remaining > 0 && !machine.thread(tid).is_ready() {
                                divergence = Some(Divergence::SliceMismatch {
                                    tid,
                                    detail: format!(
                                        "blocked at {} with {remaining} instrs left",
                                        abi::name(req.num)
                                    ),
                                });
                                break 'events;
                            }
                        }
                    }
                    if machine.halted().is_some() {
                        if remaining > 0 {
                            divergence = Some(Divergence::SliceMismatch {
                                tid,
                                detail: "halted mid-slice".into(),
                            });
                        }
                        break;
                    }
                }
                if machine.halted().is_some() && divergence.is_none() {
                    // Any hint events after a halt would be unfollowable;
                    // the thread-parallel run halted here too, so there are
                    // none (the end checks confirm).
                    continue;
                }
            }
        }
    }

    // End-of-epoch checks.
    if divergence.is_none() {
        divergence = end_checks(&machine, &inputs, &cursor);
    }

    let end_hash = machine.state_hash();
    let finished = machine.halted().is_some() || machine.live_threads() == 0;
    Ok(Some(EpOutcome {
        schedule: inputs.hint.clone(),
        generated: SyscallLog::new(),
        end_hash,
        external,
        cycles,
        instructions,
        divergence,
        finished,
        machine,
        kernel,
    }))
}

fn end_checks(
    machine: &Machine,
    inputs: &VerifyInputs<'_>,
    cursor: &crate::logs::SyscallCursor<'_>,
) -> Option<Divergence> {
    for (tid, t) in inputs.targets {
        if tid.index() >= machine.threads().len() {
            return Some(Divergence::TargetMismatch {
                tid: *tid,
                detail: "thread never created".into(),
            });
        }
        let th = machine.thread(*tid);
        if th.icount != t.icount || th.is_exited() != t.exited {
            return Some(Divergence::TargetMismatch {
                tid: *tid,
                detail: format!(
                    "icount {} (want {}), exited {} (want {})",
                    th.icount,
                    t.icount,
                    th.is_exited(),
                    t.exited
                ),
            });
        }
    }
    if machine.threads().len() > inputs.targets.len() {
        return Some(Divergence::TargetMismatch {
            tid: Tid(inputs.targets.len() as u32),
            detail: "spawned thread unknown to the next checkpoint".into(),
        });
    }
    if !cursor.exhausted() {
        return Some(Divergence::LeftoverLog {
            remaining: cursor.remaining(),
        });
    }
    let actual = machine.state_hash();
    if actual != inputs.expected_hash {
        let first_difference = inputs
            .expected_machine
            .and_then(|m| machine.mem().first_difference(m.mem()));
        return Some(Divergence::HashMismatch {
            expected: inputs.expected_hash,
            actual,
            first_difference,
        });
    }
    None
}

/// Runs one epoch in **live** mode from `start` for about `duration`
/// single-CPU cycles (stopping at a slice boundary). `base_now` seeds the
/// virtual clock so `clock()` results keep advancing across epochs.
///
/// # Errors
///
/// Returns guest faults and true deadlocks.
pub fn run_live(
    start: &Checkpoint,
    duration: u64,
    quantum: u64,
    base_now: u64,
) -> Result<EpOutcome, RecordError> {
    let mut machine = start.machine.clone();
    let mut kernel = start.kernel.clone();
    machine.mem_mut().take_dirty();
    let switch = kernel.cost_model().context_switch;
    let mut schedule = ScheduleLog::new();
    let mut generated = SyscallLog::new();
    let mut cycles = 0u64;
    let mut instructions = 0u64;

    'outer: loop {
        if machine.halted().is_some() || machine.live_threads() == 0 || cycles >= duration {
            break;
        }
        let mut progress = false;
        let nthreads = machine.threads().len();
        for idx in 0..nthreads {
            let tid = Tid(idx as u32);
            if machine.halted().is_some() || cycles >= duration {
                break 'outer;
            }
            if !machine.thread(tid).is_ready() {
                continue;
            }
            if let Some((sig, handler)) = kernel.take_pending_signal(tid) {
                machine.push_signal_frame(tid, handler, &[sig]);
                schedule.push_signal(tid, sig);
            }
            // Clamp the turn to the remaining duration: without this a
            // quantum larger than the epoch would let the first runnable
            // thread monopolize (and overshoot) the whole live epoch.
            let mut remaining = quantum.min(duration.saturating_sub(cycles)).max(1);
            cycles += switch;
            while remaining > 0 && machine.thread(tid).is_ready() && machine.halted().is_none() {
                let run =
                    machine.run_slice(tid, SliceLimits::budget(remaining), &mut NullObserver)?;
                if run.executed > 0 {
                    progress = true;
                }
                schedule.push_slice(tid, run.executed);
                instructions += run.executed;
                cycles += run.executed;
                remaining = remaining.saturating_sub(run.executed.max(1));
                match run.stop {
                    StopReason::Budget | StopReason::IcountTarget | StopReason::Atomic { .. } => {}
                    StopReason::Exited => {
                        let wakes = kernel.on_thread_exited(&mut machine, tid);
                        log_live_wakes(&mut generated, &mut schedule, &wakes);
                    }
                    StopReason::Syscall(req) => {
                        let arg_hash = request_hash(&machine, &req);
                        let out = kernel.handle(&mut machine, req, base_now + cycles);
                        cycles += out.cost;
                        if abi::is_logged(req.num) {
                            match out.disposition {
                                Disposition::Done { ret } => generated.push(SyscallLogEntry {
                                    tid,
                                    num: req.num,
                                    arg_hash,
                                    ret,
                                    effect: out.effect,
                                    via_wake: false,
                                }),
                                Disposition::Blocked => {
                                    let _ = arg_hash; // digested at wake
                                }
                                _ => {}
                            }
                        }
                        log_live_wakes(&mut generated, &mut schedule, &out.wakes);
                    }
                }
            }
        }

        if !progress {
            // Everything blocked: advance virtual time to the next event.
            match kernel.next_event_time(base_now + cycles) {
                Some(t) => {
                    cycles = t.saturating_sub(base_now).max(cycles + 1);
                    let wakes = kernel.advance_time(&mut machine, base_now + cycles);
                    if wakes.is_empty() && machine.ready_tids().is_empty() {
                        return Err(RecordError::Deadlock {
                            blocked: machine.live_threads(),
                        });
                    }
                    log_live_wakes(&mut generated, &mut schedule, &wakes);
                }
                None => {
                    return Err(RecordError::Deadlock {
                        blocked: machine.live_threads(),
                    })
                }
            }
        }
    }

    let external = kernel.take_external();
    let end_hash = machine.state_hash();
    let finished = machine.halted().is_some() || machine.live_threads() == 0;
    Ok(EpOutcome {
        schedule,
        generated,
        end_hash,
        external,
        cycles,
        instructions,
        divergence: None,
        finished,
        machine,
        kernel,
    })
}

fn log_live_wakes(generated: &mut SyscallLog, schedule: &mut ScheduleLog, wakes: &[Wake]) {
    for w in wakes {
        if abi::is_logged(w.num) {
            schedule.push_wake(w.tid);
            generated.push(SyscallLogEntry {
                tid: w.tid,
                num: w.num,
                arg_hash: request_hash_args(&w.req),
                ret: w.ret,
                effect: w.effect.clone(),
                via_wake: true,
            });
        }
    }
}

/// A convenience used by tests and diagnostics: true when a thread is
/// blocked inside a syscall.
pub fn is_waiting(machine: &Machine, tid: Tid) -> bool {
    machine.thread(tid).status == ThreadStatus::Waiting
}

/// Formats a fault as a divergence (shared helper for drivers that treat
/// verify-time faults as divergence).
pub fn fault_divergence(fault: &Fault) -> Divergence {
    Divergence::GuestFault {
        detail: fault.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DoublePlayConfig;
    use crate::record::thread_parallel::TpRunner;
    use crate::world::GuestSpec;

    /// A well-synchronized two-thread program (atomic increments):
    /// deterministic final memory under any schedule, and sync order is
    /// captured by the hint, so verification must always succeed.
    fn sync_spec() -> GuestSpec {
        crate::record::testutil::atomic_counter_spec(2000, 2)
    }

    /// Runs one tp epoch and the corresponding verify run.
    fn one_epoch(
        spec: &GuestSpec,
        config: &DoublePlayConfig,
    ) -> (EpOutcome, Checkpoint, Checkpoint) {
        let (mut machine, mut kernel) = spec.boot();
        let start = Checkpoint::capture(&machine, &kernel);
        let mut tp = TpRunner::new(config);
        let tp_out = tp
            .run_epoch(&mut machine, &mut kernel, 0, config.epoch_cycles)
            .unwrap();
        kernel.take_external();
        let next = Checkpoint::capture(&machine, &kernel);
        let ep = run_verify(
            &start,
            VerifyInputs {
                hint: &tp_out.hint,
                targets: &next.targets(),
                log: &tp_out.syscalls,
                expected_hash: next.machine_hash,
                expected_machine: Some(&next.machine),
            },
        )
        .unwrap();
        (ep, start, next)
    }

    #[test]
    fn synchronized_epoch_verifies_cleanly() {
        let spec = sync_spec();
        let config = DoublePlayConfig::new(2).epoch_cycles(5_000);
        let (ep, _, next) = one_epoch(&spec, &config);
        assert_eq!(ep.divergence, None);
        assert_eq!(ep.end_hash, next.machine_hash);
        assert!(ep.instructions > 0);
        assert!(!ep.schedule.is_empty());
    }

    #[test]
    fn cancellable_verify_matches_plain_verify_and_honors_the_token() {
        let spec = sync_spec();
        let config = DoublePlayConfig::new(2).epoch_cycles(5_000);
        let (mut machine, mut kernel) = spec.boot();
        let start = Checkpoint::capture(&machine, &kernel);
        let mut tp = TpRunner::new(&config);
        let tp_out = tp
            .run_epoch(&mut machine, &mut kernel, 0, config.epoch_cycles)
            .unwrap();
        kernel.take_external();
        let next = Checkpoint::capture(&machine, &kernel);
        let targets = next.targets();
        let inputs = || VerifyInputs {
            hint: &tp_out.hint,
            targets: &targets,
            log: &tp_out.syscalls,
            expected_hash: next.machine_hash,
            expected_machine: Some(&next.machine),
        };
        let plain = run_verify(&start, inputs()).unwrap();
        let token = CancelToken::new();
        let stamp = token.current();
        let chunked = run_verify_cancellable(&start, inputs(), Some((&token, stamp)))
            .unwrap()
            .expect("live token must not cancel");
        assert_eq!(chunked.divergence, None);
        assert_eq!(chunked.end_hash, plain.end_hash);
        assert_eq!(chunked.cycles, plain.cycles);
        assert_eq!(chunked.instructions, plain.instructions);
        assert_eq!(chunked.schedule, plain.schedule);
        // A stale stamp cancels before any work happens.
        token.bump();
        assert!(token.is_stale(stamp));
        let cancelled = run_verify_cancellable(&start, inputs(), Some((&token, stamp))).unwrap();
        assert!(cancelled.is_none(), "stale job must be abandoned");
    }

    #[test]
    fn verify_runs_every_epoch_of_a_full_program() {
        let spec = sync_spec();
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000);
        let (mut machine, mut kernel) = spec.boot();
        let mut tp = TpRunner::new(&config);
        let mut prev = Checkpoint::capture(&machine, &kernel);
        let mut t = 0;
        let mut epochs = 0;
        loop {
            let tp_out = tp
                .run_epoch(&mut machine, &mut kernel, t, config.epoch_cycles)
                .unwrap();
            t += tp_out.cycles;
            kernel.take_external();
            let next = Checkpoint::capture(&machine, &kernel);
            let ep = run_verify(
                &prev,
                VerifyInputs {
                    hint: &tp_out.hint,
                    targets: &next.targets(),
                    log: &tp_out.syscalls,
                    expected_hash: next.machine_hash,
                    expected_machine: Some(&next.machine),
                },
            )
            .unwrap();
            assert_eq!(
                ep.divergence, None,
                "unexpected divergence at epoch {epochs}"
            );
            prev = next;
            epochs += 1;
            if tp_out.finished {
                break;
            }
            assert!(epochs < 200, "runaway");
        }
        assert!(epochs >= 2);
        assert_eq!(machine.halted(), Some(4000));
    }

    #[test]
    fn contended_mutex_program_verifies_cleanly() {
        // Futex-based mutexes: acquisition order is captured via the atomic
        // and syscall sync points in the hint, so no divergence.
        use dp_os::guest::Rt;
        use dp_os::kernel::WorldConfig;
        use dp_vm::builder::ProgramBuilder;
        use dp_vm::Reg;
        use std::sync::Arc;
        let mut pb = ProgramBuilder::new();
        let rt = Rt::install(&mut pb);
        let lock = pb.global("lock", 8);
        let counter = pb.global("counter", 8);
        let mut w = pb.function("worker");
        let top = w.label();
        let done = w.label();
        w.consti(Reg(10), 0);
        w.bind(top);
        w.bin(dp_vm::BinOp::Ltu, Reg(11), Reg(10), 300i64);
        w.jz(Reg(11), done);
        w.consti(Reg(0), lock as i64);
        w.call(rt.mutex_lock);
        w.consti(Reg(12), counter as i64);
        w.load(Reg(13), Reg(12), 0, dp_vm::Width::W8);
        w.add(Reg(13), Reg(13), 1i64);
        w.store(Reg(13), Reg(12), 0, dp_vm::Width::W8);
        w.consti(Reg(0), lock as i64);
        w.call(rt.mutex_unlock);
        w.add(Reg(10), Reg(10), 1i64);
        w.jmp(top);
        w.bind(done);
        w.consti(Reg(0), 0);
        w.syscall(abi::SYS_THREAD_EXIT);
        w.finish();
        let worker = pb.declare("worker");
        let mut f = pb.function("main");
        for _ in 0..3 {
            f.consti(Reg(0), worker.0 as i64);
            f.consti(Reg(1), 0);
            f.consti(Reg(2), 0);
            f.syscall(abi::SYS_SPAWN);
        }
        for t in 1..=3 {
            f.consti(Reg(0), t);
            f.syscall(abi::SYS_JOIN);
        }
        f.consti(Reg(9), counter as i64);
        f.load(Reg(0), Reg(9), 0, dp_vm::Width::W8);
        f.syscall(abi::SYS_EXIT);
        f.finish();
        let spec = GuestSpec::new(
            "mutexed",
            Arc::new(pb.finish("main")),
            WorldConfig::default(),
        );

        for seed in 0..4 {
            let config = DoublePlayConfig {
                tp_quantum: 150,
                tp_jitter: 250,
                ..DoublePlayConfig::new(2)
                    .epoch_cycles(6_000)
                    .hidden_seed(seed)
            };
            let (mut machine, mut kernel) = spec.boot();
            let mut tp = TpRunner::new(&config);
            let mut prev = Checkpoint::capture(&machine, &kernel);
            let mut t = 0;
            loop {
                let tp_out = tp
                    .run_epoch(&mut machine, &mut kernel, t, config.epoch_cycles)
                    .unwrap();
                t += tp_out.cycles;
                kernel.take_external();
                let next = Checkpoint::capture(&machine, &kernel);
                let ep = run_verify(
                    &prev,
                    VerifyInputs {
                        hint: &tp_out.hint,
                        targets: &next.targets(),
                        log: &tp_out.syscalls,
                        expected_hash: next.machine_hash,
                        expected_machine: Some(&next.machine),
                    },
                )
                .unwrap();
                assert_eq!(ep.divergence, None, "seed {seed} diverged: lock order lost");
                prev = next;
                if tp_out.finished {
                    break;
                }
            }
            assert_eq!(machine.halted(), Some(900));
        }
    }

    #[test]
    fn racy_epoch_reports_divergence() {
        // Unsynchronized increments: the hint cannot capture plain-access
        // interleavings, so some seed must diverge.
        let spec = crate::record::testutil::racy_counter_spec(5000);
        let mut diverged = false;
        for seed in 0..10u64 {
            let config = DoublePlayConfig {
                tp_quantum: 200,
                tp_jitter: 300,
                ..DoublePlayConfig::new(2)
                    .epoch_cycles(50_000)
                    .hidden_seed(seed)
            };
            let (ep, _, _) = one_epoch(&spec, &config);
            if ep.divergence.is_some() {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "no seed produced a divergence");
    }

    #[test]
    fn live_mode_records_and_finishes() {
        let spec = sync_spec();
        let (machine, kernel) = spec.boot();
        let start = Checkpoint::capture(&machine, &kernel);
        let ep = run_live(&start, u64::MAX, 4_096, 0).unwrap();
        assert!(ep.finished);
        assert_eq!(ep.machine.halted(), Some(4000));
        assert_eq!(ep.divergence, None);
        // Deterministic: run again, same everything.
        let ep2 = run_live(&start, u64::MAX, 4_096, 0).unwrap();
        assert_eq!(ep2.end_hash, ep.end_hash);
        assert_eq!(ep2.schedule, ep.schedule);
    }

    #[test]
    fn live_mode_duration_bound_partitions_run() {
        let spec = sync_spec();
        let (machine, kernel) = spec.boot();
        let mut ckpt = Checkpoint::capture(&machine, &kernel);
        let mut segments = 0;
        let mut now = 0;
        loop {
            let ep = run_live(&ckpt, 3_000, 1_000, now).unwrap();
            now += ep.cycles;
            segments += 1;
            if ep.finished {
                assert_eq!(ep.machine.halted(), Some(4000));
                break;
            }
            ckpt = Checkpoint::capture(&ep.machine, &ep.kernel);
            assert!(segments < 1000, "runaway");
        }
        assert!(segments > 2);
    }

    #[test]
    fn divergence_kinds_have_names() {
        let kinds = [
            Divergence::SyscallMismatch {
                tid: Tid(0),
                detail: String::new(),
            }
            .kind(),
            Divergence::SliceMismatch {
                tid: Tid(0),
                detail: String::new(),
            }
            .kind(),
            Divergence::HashMismatch {
                expected: 0,
                actual: 1,
                first_difference: None,
            }
            .kind(),
        ];
        assert_eq!(kinds, ["syscall", "slice", "hash"]);
    }
}
