//! The multithreaded recording pipeline: uniparallelism on real spare
//! cores.
//!
//! The sequential coordinator interleaves the thread-parallel (TP) run and
//! the epoch-parallel verify on one OS thread, so recording wall-clock time
//! is their *sum* even though the paper's whole point is that they overlap.
//! This driver runs the same three stages on real threads:
//!
//! * **submit** (this thread): the TP front-end races ahead, up to
//!   [`DoublePlayConfig::spare_workers`] epochs beyond the last retired
//!   one. Each epoch's `(start checkpoint, TP outcome, targets)` is handed
//!   to the worker pool over a channel. Checkpoints taken here are
//!   *deferred* ([`Checkpoint::capture_deferred`]): the state digest — the
//!   dominant per-epoch cost — moves off the critical path.
//! * **verify** (worker threads): each worker dequeues a job, computes the
//!   deferred digest, and runs the panic-isolated verify
//!   ([`execute_verify`], the same entry point the sequential driver
//!   calls inline). Workers finish out of order.
//! * **commit** (this thread): epochs retire strictly in index order
//!   through the shared stage functions, so the `RecordSink` sees the
//!   exact byte sequence the sequential driver would produce.
//!
//! A divergence at epoch `k` invalidates every speculative epoch beyond
//! it: the [`CancelToken`] generation is bumped (workers poll it at event
//! boundaries and every few thousand instructions), in-flight state is
//! discarded, the TP runner and the adaptive-epoch control are rewound to
//! their post-`k` snapshots, live recovery runs, and the front-end restarts
//! from the adopted world — exactly the state the sequential driver would
//! hold at that point.
//!
//! **Byte-identity invariant**: for any seed, workload, and fault plan,
//! this driver produces a `Recording` (and journal byte stream) identical
//! to the sequential path, and identical modeled statistics; only the
//! [`WallClockStats`] measurements differ. Everything that feeds the
//! recording is computed either deterministically on this thread or as a
//! pure function of the job (`expected_hash`, the verify outcome), never
//! as a function of worker scheduling.

use crate::checkpoint::{Checkpoint, EpochTargets};
use crate::config::DoublePlayConfig;
use crate::error::RecordError;
use crate::faults::FaultPlan;
use crate::journal::RecordSink;
use crate::logs::{ScheduleLog, SyscallLog};
use crate::record::coordinator::{
    begin_session, charge_tp_side, commit_clean, execute_verify, finish_session,
    record_serialized_epoch, retire_diverged, run_tp_epoch, targets_of, ControlState, EpochWork,
    RecordingBundle, Session, VerifyJobRef, VerifyVerdict, MAX_EPOCHS,
};
use crate::record::epoch_parallel::CancelToken;
use crate::record::thread_parallel::{TpRunner, TpSnapshot};
use crate::stats::{WallClockStats, DEPTH_BUCKETS, MAX_TRACKED_WORKERS};
use dp_vm::Machine;
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// One verify job, owned so it can cross the channel. The clones are cheap:
/// machine pages and kernel file contents are `Arc`-shared (copy-on-write).
struct VerifyJob {
    index: u32,
    /// Cancellation generation at submit time.
    stamp: u64,
    /// Start-of-epoch world (digest deferred — never read by verify).
    start: Checkpoint,
    hint: ScheduleLog,
    syscalls: SyscallLog,
    targets: EpochTargets,
    /// The TP end state whose digest the worker computes.
    next_machine: Machine,
}

/// A worker's answer, tagged so the commit stage can discard stale
/// generations and account busy time per worker.
struct VerifyDone {
    index: u32,
    stamp: u64,
    expected_hash: u64,
    verdict: VerifyVerdict,
    busy_ns: u64,
    worker: usize,
}

/// One speculative epoch awaiting retirement, with everything needed to
/// rewind past it.
struct Speculation {
    work: EpochWork,
    /// TP-runner state right after this epoch's TP run (what the sequential
    /// driver would hold entering the divergence branch).
    tp_snap: TpSnapshot,
    /// Adaptive-epoch control right before this epoch's speculative
    /// clean-commit update.
    control_before: ControlState,
}

/// Verify-worker body: dequeue, check staleness, verify, report.
fn worker_loop(
    worker: usize,
    jobs: &Mutex<mpsc::Receiver<VerifyJob>>,
    results: &mpsc::Sender<VerifyDone>,
    cancel: &CancelToken,
    plan: &FaultPlan,
) {
    loop {
        // Hold the lock only for the dequeue; recv blocks at most one
        // worker while the others run jobs.
        let job = match jobs.lock().expect("job queue poisoned").recv() {
            Ok(j) => j,
            Err(_) => return, // submit side closed: drain complete
        };
        let begun = Instant::now();
        let (expected_hash, verdict) = if cancel.is_stale(job.stamp) {
            // Cancelled while queued: skip even the digest.
            (0, VerifyVerdict::Cancelled)
        } else {
            execute_verify(
                VerifyJobRef {
                    index: job.index,
                    start: &job.start,
                    hint: &job.hint,
                    syscalls: &job.syscalls,
                    targets: &job.targets,
                    next_machine: &job.next_machine,
                },
                plan,
                Some((cancel, job.stamp)),
            )
        };
        let done = VerifyDone {
            index: job.index,
            stamp: job.stamp,
            expected_hash,
            verdict,
            busy_ns: begun.elapsed().as_nanos() as u64,
            worker,
        };
        if results.send(done).is_err() {
            return; // commit side gone (error exit); nothing left to report to
        }
    }
}

/// Records `spec` with the TP front-end, verify workers, and commit stage
/// on real OS threads. Called through [`crate::record_to`] when
/// [`DoublePlayConfig::pipelined`] is set with spare workers available.
pub(crate) fn record_pipelined(
    spec: &crate::world::GuestSpec,
    config: &DoublePlayConfig,
    sink: &mut dyn RecordSink,
) -> Result<RecordingBundle, RecordError> {
    let wall_start = Instant::now();
    let (s, machine, kernel) = begin_session(spec, config, sink)?;
    let tp = TpRunner::new(config);
    let control = ControlState::new(config);
    drive_pipelined(
        s, spec, config, sink, machine, kernel, tp, control, 0, 0, wall_start,
    )
}

/// The pipelined driver's stage loop, entered either fresh (epoch 0, boot
/// state) or mid-run by [`crate::record::resume::resume_from`] with the
/// state a re-enacted salvaged prefix left behind — the pipelined
/// counterpart of [`crate::record::coordinator::drive_sequential`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_pipelined<'a>(
    mut s: Session,
    spec: &crate::world::GuestSpec,
    config: &'a DoublePlayConfig,
    sink: &mut dyn RecordSink,
    mut machine: Machine,
    mut kernel: dp_os::kernel::Kernel,
    mut tp: TpRunner<'a>,
    mut control: ControlState,
    guest_clock: u64,
    index: u32,
    wall_start: Instant,
) -> Result<RecordingBundle, RecordError> {
    let workers = config.spare_workers;
    let depth = workers; // speculate at most one epoch per spare core
    let cancel = CancelToken::new();
    let mut wall = WallClockStats {
        workers: workers as u64,
        pipelined: true,
        ..Default::default()
    };

    let (job_tx, job_rx) = mpsc::channel::<VerifyJob>();
    let (res_tx, res_rx) = mpsc::channel::<VerifyDone>();
    let job_rx = Arc::new(Mutex::new(job_rx));

    let drive = thread::scope(|scope| {
        for w in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let res_tx = res_tx.clone();
            let cancel = &cancel;
            let plan = &config.faults;
            scope.spawn(move || worker_loop(w, &job_rx, &res_tx, cancel, plan));
        }
        // Workers hold clones; results end when the last worker exits.
        drop(res_tx);

        // In-flight speculation, oldest (next to retire) first.
        let mut inflight: VecDeque<Speculation> = VecDeque::new();
        // Verdicts that arrived ahead of their retirement turn.
        let mut stash: BTreeMap<u32, (u64, VerifyVerdict)> = BTreeMap::new();
        let mut next_index = index;
        // Speculative guest clock / instruction count: what the committed
        // counters will read if everything in flight retires clean. On a
        // resumed run both start where the re-enacted prefix left them.
        let mut spec_clock = guest_clock;
        let mut spec_instr = s.commit.stats.tp_instructions;
        let mut front_halted = false;
        // A TP error is speculative until every earlier epoch retires
        // clean: a divergence below it rewinds past the error entirely.
        let mut front_err: Option<RecordError> = None;

        let outcome = loop {
            // Submit: race the TP front-end ahead while there is depth.
            while front_err.is_none()
                && !front_halted
                && control.serialized_left == 0
                && inflight.len() < depth
                && spec_instr <= config.max_instructions
                && next_index < MAX_EPOCHS
            {
                let epoch_start = spec_clock;
                let start = Checkpoint::capture_deferred(&machine, &kernel);
                let work = match run_tp_epoch(
                    &mut tp,
                    &mut machine,
                    &mut kernel,
                    next_index,
                    epoch_start,
                    control.epoch_len,
                ) {
                    Ok(w) => w,
                    Err(e) => {
                        front_err = Some(e);
                        break;
                    }
                };
                wall.depth_histogram[inflight.len().min(DEPTH_BUCKETS - 1)] += 1;
                let job = VerifyJob {
                    index: work.index,
                    stamp: cancel.current(),
                    start,
                    hint: work.hint.clone(),
                    syscalls: work.syscalls.clone(),
                    targets: targets_of(&work.next_machine),
                    next_machine: work.next_machine.clone(),
                };
                job_tx.send(job).expect("verify workers outlive the driver");
                spec_clock += work.tp_cycles;
                spec_instr += work.tp_instructions;
                front_halted = machine.halted().is_some() || machine.live_threads() == 0;
                let tp_snap = tp.snapshot();
                let control_before = control.clone();
                // Speculate a clean commit (the only outcome that leaves
                // the pipeline running); rewound from `control_before` if
                // the epoch diverges instead.
                control.on_clean(config);
                control.note_outcome(false);
                inflight.push_back(Speculation {
                    work,
                    tp_snap,
                    control_before,
                });
                next_index += 1;
            }

            if inflight.is_empty() {
                // The pipeline is drained: speculative conditions are now
                // authoritative, in the sequential driver's order.
                if let Some(e) = front_err.take() {
                    break Err(e);
                }
                if front_halted {
                    break Ok(());
                }
                if s.commit.stats.tp_instructions > config.max_instructions
                    || next_index >= MAX_EPOCHS
                {
                    break Err(RecordError::BudgetExhausted);
                }
                if control.serialized_left > 0 {
                    // Degraded mode runs inline: it only engages at a
                    // divergence retire, which always empties the pipeline
                    // first, so there is never speculation to race with.
                    control.serialized_left -= 1;
                    let epoch_start = spec_clock;
                    let adopted = match record_serialized_epoch(
                        &mut s.commit,
                        config,
                        &s.cost,
                        sink,
                        next_index,
                        epoch_start,
                        control.epoch_len,
                    ) {
                        Ok(a) => a,
                        Err(e) => break Err(e),
                    };
                    machine = adopted.machine;
                    kernel = adopted.kernel;
                    spec_clock = epoch_start + adopted.cycles;
                    spec_instr = s.commit.stats.tp_instructions;
                    next_index += 1;
                    front_halted = machine.halted().is_some() || machine.live_threads() == 0;
                    continue;
                }
                unreachable!("drained pipeline with nothing to do and no reason to stop");
            }

            // Commit stage: wait for the head epoch's verdict. Later
            // epochs' verdicts are stashed until their turn.
            let head_index = inflight.front().expect("checked non-empty").work.index;
            let (expected_hash, verdict) = loop {
                if let Some(v) = stash.remove(&head_index) {
                    break v;
                }
                let done = res_rx
                    .recv()
                    .expect("workers hold the result channel while jobs are in flight");
                wall.worker_busy_ns[done.worker.min(MAX_TRACKED_WORKERS - 1)] += done.busy_ns;
                if cancel.is_stale(done.stamp) {
                    continue; // a cancelled generation's answer: time counted, result dropped
                }
                stash.insert(done.index, (done.expected_hash, done.verdict));
            };

            let head = inflight.pop_front().expect("checked non-empty");
            let sys_enc = charge_tp_side(&mut s.commit, &s.cost, &head.work);
            match verdict {
                VerifyVerdict::Done(ep) if ep.divergence.is_none() => {
                    if let Err(e) = commit_clean(
                        &mut s.commit,
                        config,
                        &s.cost,
                        sink,
                        head.work,
                        *ep,
                        expected_hash,
                        sys_enc,
                    ) {
                        break Err(e);
                    }
                    // `control` already speculated this epoch's clean
                    // update at submit time.
                }
                VerifyVerdict::Failed(e) => break Err(e),
                VerifyVerdict::Cancelled => {
                    unreachable!("current-generation jobs are never cancelled")
                }
                diverged => {
                    // Divergence (or panicked worker): everything
                    // speculated beyond this epoch is invalid.
                    let verified = match diverged {
                        VerifyVerdict::Done(ep) => Some(*ep),
                        _ => None,
                    };
                    wall.cancelled_epochs += inflight.len() as u64;
                    cancel.bump();
                    inflight.clear();
                    stash.clear();
                    front_err = None;
                    tp.restore(head.tp_snap);
                    control = head.control_before;
                    control.on_diverged(config);
                    let epoch_start = head.work.epoch_start;
                    let adopted = match retire_diverged(
                        &mut s.commit,
                        config,
                        &s.cost,
                        sink,
                        head.work,
                        verified,
                    ) {
                        Ok(a) => a,
                        Err(e) => break Err(e),
                    };
                    control.note_outcome(true);
                    machine = adopted.machine;
                    kernel = adopted.kernel;
                    next_index = head_index + 1;
                    spec_clock = epoch_start + adopted.cycles;
                    spec_instr = s.commit.stats.tp_instructions;
                    front_halted = machine.halted().is_some() || machine.live_threads() == 0;
                }
            }
        };
        // Closing the job channel releases the workers; the scope joins
        // them before returning.
        drop(job_tx);
        outcome
    });

    // Workers are joined: collect busy time from any trailing results
    // (jobs that finished after their epoch was already retired or the
    // run aborted).
    while let Ok(done) = res_rx.try_recv() {
        wall.worker_busy_ns[done.worker.min(MAX_TRACKED_WORKERS - 1)] += done.busy_ns;
    }
    drive?;

    wall.wall_ns = wall_start.elapsed().as_nanos() as u64;
    finish_session(s, spec, config, sink, &kernel, wall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalWriter;
    use crate::record::coordinator::record_to;
    use crate::record::testutil::{atomic_counter_spec, compute_counter_spec, racy_counter_spec};
    use crate::world::GuestSpec;

    /// Records `spec` both ways and asserts byte-identical recordings,
    /// byte-identical journals, and equal modeled stats.
    fn assert_pipelined_matches_sequential(spec: &GuestSpec, config: &DoublePlayConfig) {
        let seq_cfg = config.pipelined(false);
        let pip_cfg = config.pipelined(true);
        let mut seq_journal = JournalWriter::new(Vec::new()).unwrap();
        let mut pip_journal = JournalWriter::new(Vec::new()).unwrap();
        let seq = record_to(spec, &seq_cfg, &mut seq_journal).unwrap();
        let pip = record_to(spec, &pip_cfg, &mut pip_journal).unwrap();
        assert_eq!(seq.stats, pip.stats, "modeled stats must match");
        let mut seq_bytes = Vec::new();
        let mut pip_bytes = Vec::new();
        seq.recording.save(&mut seq_bytes).unwrap();
        pip.recording.save(&mut pip_bytes).unwrap();
        assert_eq!(seq_bytes, pip_bytes, "recordings must be byte-identical");
        assert_eq!(
            seq_journal.into_inner(),
            pip_journal.into_inner(),
            "journals must be byte-identical"
        );
        assert!(pip.stats.wall.pipelined);
        assert_eq!(pip.stats.wall.workers as usize, config.spare_workers);
        assert!(!seq.stats.wall.pipelined);
    }

    #[test]
    fn clean_run_is_byte_identical_to_sequential() {
        let spec = compute_counter_spec(3_000, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(25_000);
        assert_pipelined_matches_sequential(&spec, &config);
    }

    /// The pipelined commit stage feeding a *threaded* sharded sink —
    /// the intended production pairing: verify on spare cores, shard lane
    /// threads absorbing the journal flushes — still merges byte-identical
    /// to the sequential driver's recording.
    #[test]
    fn pipelined_into_threaded_sharded_journal_merges_identically() {
        use crate::journal_shards::ShardedJournalWriter;
        let spec = atomic_counter_spec(4_000, 2);
        let config = DoublePlayConfig::new(2)
            .epoch_cycles(1_500)
            .spare_workers(2)
            .pipelined(true);
        let mut seq_journal = JournalWriter::new(Vec::new()).unwrap();
        let seq = record_to(&spec, &config.pipelined(false), &mut seq_journal).unwrap();
        let mut sharded = ShardedJournalWriter::threaded(
            (0..4).map(|_| Vec::new()).collect(),
            crate::journal_shards::DEFAULT_SHARD_BATCH,
        )
        .unwrap();
        let pip = record_to(&spec, &config, &mut sharded).unwrap();
        assert_eq!(seq.stats, pip.stats);
        let streams = sharded.into_writers().unwrap();
        let merged = crate::journal::JournalReader::salvage_shards(&streams).unwrap();
        assert!(merged.clean, "detail: {}", merged.detail);
        let mut seq_bytes = Vec::new();
        let mut merged_bytes = Vec::new();
        seq.recording.save(&mut seq_bytes).unwrap();
        merged.recording.save(&mut merged_bytes).unwrap();
        assert_eq!(seq_bytes, merged_bytes);
    }

    #[test]
    fn divergent_runs_are_byte_identical_to_sequential() {
        for seed in 0..4 {
            let spec = racy_counter_spec(3_000);
            let config = DoublePlayConfig {
                tp_quantum: 200,
                tp_jitter: 300,
                ..DoublePlayConfig::new(2)
                    .epoch_cycles(20_000)
                    .hidden_seed(seed)
            };
            assert_pipelined_matches_sequential(&spec, &config);
        }
    }

    #[test]
    fn worker_panics_are_byte_identical_to_sequential() {
        crate::faults::silence_injected_panics();
        let spec = atomic_counter_spec(1_500, 2);
        let plan = crate::faults::FaultPlan::none()
            .seed(5)
            .worker_panics_with(0.3);
        let config = DoublePlayConfig::new(2).epoch_cycles(4_000).faults(plan);
        assert_pipelined_matches_sequential(&spec, &config);
    }

    #[test]
    fn budget_exhaustion_matches_sequential() {
        let spec = atomic_counter_spec(100_000, 2);
        let config = DoublePlayConfig::new(2)
            .max_instructions(10_000)
            .pipelined(true);
        assert!(matches!(
            crate::record::coordinator::record(&spec, &config),
            Err(RecordError::BudgetExhausted)
        ));
    }

    #[test]
    fn pipelined_run_reports_wall_measurements() {
        let spec = compute_counter_spec(3_000, 2);
        let config = DoublePlayConfig::new(2)
            .epoch_cycles(25_000)
            .pipelined(true);
        let bundle = crate::record::coordinator::record(&spec, &config).unwrap();
        let w = &bundle.stats.wall;
        assert!(w.pipelined);
        assert!(w.wall_ns > 0);
        assert_eq!(w.workers as usize, config.spare_workers);
        assert!(w.busy_ns() > 0, "workers never ran a verify job");
        assert!(
            w.depth_histogram.iter().sum::<u64>() >= bundle.stats.committed,
            "every committed epoch was submitted through the pipeline"
        );
    }
}
