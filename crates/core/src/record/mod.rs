//! Recording: the uniparallel machinery.
//!
//! * [`thread_parallel`] — the full-speed multi-CPU execution that
//!   generates checkpoints and the syscall log;
//! * [`epoch_parallel`] — the single-CPU-per-epoch execution of record,
//!   with divergence detection;
//! * [`coordinator`] — the shared stage machinery tying them together
//!   (commit, divergence recovery, adaptive epoch sizing, the pipeline
//!   timing model) plus the sequential lockstep driver;
//! * [`pipelined`] — the real-thread driver: TP front-end speculating
//!   ahead, verify workers on spare cores, strictly-in-order commit;
//! * [`pipeline`] — worker-core scheduling for the simulated-time account;
//! * [`interleave`] — the hidden nondeterminism source;
//! * [`resume`] — crash-resume: re-enact a salvaged committed prefix,
//!   then re-enter the normal coordinator at the next epoch.

pub mod coordinator;
pub mod epoch_parallel;
pub mod interleave;
pub mod pipeline;
pub mod pipelined;
pub mod resume;
pub mod thread_parallel;

pub use coordinator::{measure_native, record, RecordingBundle};
pub use epoch_parallel::{run_live, run_verify, Divergence, EpOutcome, VerifyInputs};
pub use resume::resume_from;
pub use thread_parallel::{TpEpochOutcome, TpRunner};

/// Shared guest fixtures for the recorder's unit tests.
#[cfg(test)]
pub(crate) mod testutil {
    use crate::world::GuestSpec;
    use dp_os::abi;
    use dp_os::kernel::WorldConfig;
    use dp_vm::builder::ProgramBuilder;
    use dp_vm::Reg;
    use std::sync::Arc;

    /// Two threads perform `iters` unsynchronized read-modify-write
    /// increments each on a shared counter — racy by construction — then
    /// main exits with the counter value.
    pub fn racy_counter_spec(iters: i64) -> GuestSpec {
        let mut pb = ProgramBuilder::new();
        let counter = pb.global("counter", 8);
        let mut w = pb.function("worker");
        let top = w.label();
        let done = w.label();
        w.consti(Reg(10), 0);
        w.consti(Reg(9), counter as i64);
        w.bind(top);
        w.bin(dp_vm::BinOp::Ltu, Reg(11), Reg(10), iters);
        w.jz(Reg(11), done);
        w.load(Reg(12), Reg(9), 0, dp_vm::Width::W8);
        w.add(Reg(12), Reg(12), 1i64);
        w.store(Reg(12), Reg(9), 0, dp_vm::Width::W8);
        w.add(Reg(10), Reg(10), 1i64);
        w.jmp(top);
        w.bind(done);
        w.consti(Reg(0), 0);
        w.syscall(abi::SYS_THREAD_EXIT);
        w.finish();
        let worker = pb.declare("worker");
        let mut f = pb.function("main");
        for _ in 0..2 {
            f.consti(Reg(0), worker.0 as i64);
            f.consti(Reg(1), 0);
            f.consti(Reg(2), 0);
            f.syscall(abi::SYS_SPAWN);
        }
        for t in 1..=2 {
            f.consti(Reg(0), t);
            f.syscall(abi::SYS_JOIN);
        }
        f.consti(Reg(9), counter as i64);
        f.load(Reg(0), Reg(9), 0, dp_vm::Width::W8);
        f.syscall(abi::SYS_EXIT);
        f.finish();
        GuestSpec::new("racy", Arc::new(pb.finish("main")), WorldConfig::default())
    }

    /// Compute-heavy variant: each iteration does ~90 instructions of
    /// private arithmetic before one atomic increment — a realistic
    /// compute-to-sync ratio for overhead assertions.
    pub fn compute_counter_spec(iters: i64, workers: usize) -> GuestSpec {
        counter_spec(iters, workers, 30)
    }

    /// Like [`racy_counter_spec`] but with atomic increments: the final
    /// state is schedule-independent, so recording never diverges.
    pub fn atomic_counter_spec(iters: i64, workers: usize) -> GuestSpec {
        counter_spec(iters, workers, 0)
    }

    fn counter_spec(iters: i64, workers: usize, compute: usize) -> GuestSpec {
        let mut pb = ProgramBuilder::new();
        let counter = pb.global("counter", 8);
        let mut w = pb.function("worker");
        let top = w.label();
        let done = w.label();
        w.consti(Reg(10), 0);
        w.consti(Reg(9), counter as i64);
        w.bind(top);
        w.bin(dp_vm::BinOp::Ltu, Reg(11), Reg(10), iters);
        w.jz(Reg(11), done);
        for _ in 0..compute {
            w.add(Reg(13), Reg(13), 7i64);
            w.mul(Reg(13), Reg(13), 3i64);
            w.bin(dp_vm::BinOp::Xor, Reg(13), Reg(13), Reg(10));
        }
        w.fetch_add(Reg(12), Reg(9), 1i64);
        w.add(Reg(10), Reg(10), 1i64);
        w.jmp(top);
        w.bind(done);
        w.consti(Reg(0), 0);
        w.syscall(abi::SYS_THREAD_EXIT);
        w.finish();
        let worker = pb.declare("worker");
        let mut f = pb.function("main");
        for _ in 0..workers {
            f.consti(Reg(0), worker.0 as i64);
            f.consti(Reg(1), 0);
            f.consti(Reg(2), 0);
            f.syscall(abi::SYS_SPAWN);
        }
        for t in 1..=workers as i64 {
            f.consti(Reg(0), t);
            f.syscall(abi::SYS_JOIN);
        }
        f.consti(Reg(9), counter as i64);
        f.load(Reg(0), Reg(9), 0, dp_vm::Width::W8);
        f.syscall(abi::SYS_EXIT);
        f.finish();
        GuestSpec::new(
            "atomic",
            Arc::new(pb.finish("main")),
            WorldConfig::default(),
        )
    }
}
