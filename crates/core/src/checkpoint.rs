//! Checkpoints: copy-on-write snapshots of (machine, kernel) pairs.
//!
//! A checkpoint captures the *entire* recorded world — guest memory and
//! threads plus all kernel state (files, sockets, futex queues, timers,
//! entropy). Cloning is cheap (page tables and file contents are
//! `Arc`-shared); mutation after a checkpoint pays copy-on-write, which is
//! what the cost model charges per dirty page, mirroring the paper's
//! `fork()`-based checkpoints.

use dp_os::kernel::Kernel;
use dp_vm::{Machine, MachineImage, Program, Tid};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Where each thread must stop in the epoch-parallel execution: the
/// per-thread instruction counts captured at the *next* checkpoint. This is
/// the simulated stand-in for the paper's syscall + hardware-branch-counter
/// epoch boundary markers.
pub type EpochTargets = BTreeMap<Tid, ThreadTarget>;

/// One thread's epoch-boundary position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadTarget {
    /// Instruction count the thread must reach.
    pub icount: u64,
    /// Whether the thread had exited by the boundary.
    pub exited: bool,
}

/// A snapshot of the full world at an epoch boundary.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The machine at the boundary.
    pub machine: Machine,
    /// The kernel at the boundary.
    pub kernel: Kernel,
    /// Cached machine state hash (divergence detection compares these).
    pub machine_hash: u64,
}

impl Checkpoint {
    /// Snapshots the current world. The digest is computed *before* the
    /// machine is cloned so the refreshed per-page digest cache is part of
    /// the snapshot: restoring or re-hashing the checkpoint reuses it
    /// instead of re-hashing the resident footprint.
    pub fn capture(machine: &Machine, kernel: &Kernel) -> Self {
        let machine_hash = machine.state_hash();
        Checkpoint {
            machine: machine.clone(),
            kernel: kernel.clone(),
            machine_hash,
        }
    }

    /// Snapshots the current world *without* computing the machine digest
    /// (left 0). The pipelined recorder uses this on its speculative
    /// front-end: hashing is the dominant per-epoch cost, so it is deferred
    /// to the verify worker, which recomputes the digest off the critical
    /// path. A deferred checkpoint is only ever a verify/live *start* state
    /// (whose digest is never read); it must not become authoritative
    /// until the digest is filled in.
    pub fn capture_deferred(machine: &Machine, kernel: &Kernel) -> Self {
        Checkpoint {
            machine: machine.clone(),
            kernel: kernel.clone(),
            machine_hash: 0,
        }
    }

    /// Epoch-boundary targets derived from this checkpoint's thread table:
    /// running the previous epoch must bring every thread to exactly these
    /// instruction counts.
    pub fn targets(&self) -> EpochTargets {
        self.machine
            .threads()
            .iter()
            .map(|t| {
                (
                    t.tid,
                    ThreadTarget {
                        icount: t.icount,
                        exited: t.is_exited(),
                    },
                )
            })
            .collect()
    }

    /// Converts to a serializable image.
    pub fn to_image(&self) -> CheckpointImage {
        CheckpointImage {
            machine: self.machine.image(),
            kernel: self.kernel.clone(),
            machine_hash: self.machine_hash,
        }
    }

    /// Restores from an image, reattaching the program.
    pub fn from_image(program: Arc<Program>, image: CheckpointImage) -> Self {
        Checkpoint {
            machine: Machine::from_image(program, image.machine),
            kernel: image.kernel,
            machine_hash: image.machine_hash,
        }
    }
}

/// Serializable form of a [`Checkpoint`] (program detached).
#[derive(Debug, Clone)]
pub struct CheckpointImage {
    /// Machine state.
    pub machine: MachineImage,
    /// Kernel state.
    pub kernel: Kernel,
    /// Cached machine hash.
    pub machine_hash: u64,
}

dp_support::impl_wire_struct!(ThreadTarget { icount, exited });
dp_support::impl_wire_struct!(CheckpointImage {
    machine,
    kernel,
    machine_hash
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::GuestSpec;
    use dp_os::kernel::WorldConfig;
    use dp_vm::builder::ProgramBuilder;
    use dp_vm::observer::NullObserver;
    use dp_vm::{Reg, SliceLimits};

    fn spec() -> GuestSpec {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let top = f.label();
        f.bind(top);
        f.add(Reg(1), Reg(1), 1i64);
        f.store(Reg(1), Reg(2), 0x2000, dp_vm::Width::W8);
        f.jmp(top);
        f.finish();
        GuestSpec::new(
            "loop",
            std::sync::Arc::new(pb.finish("main")),
            WorldConfig::default(),
        )
    }

    #[test]
    fn capture_restore_identical() {
        let (mut m, k) = spec().boot();
        m.run_slice(Tid(0), SliceLimits::budget(10), &mut NullObserver)
            .unwrap();
        let ckpt = Checkpoint::capture(&m, &k);
        assert_eq!(ckpt.machine_hash, m.state_hash());
        // Mutating the live machine does not disturb the checkpoint.
        m.run_slice(Tid(0), SliceLimits::budget(10), &mut NullObserver)
            .unwrap();
        assert_ne!(ckpt.machine.state_hash(), m.state_hash());
        assert_eq!(ckpt.machine.state_hash(), ckpt.machine_hash);
    }

    #[test]
    fn targets_reflect_icounts_and_exits() {
        let (mut m, k) = spec().boot();
        m.run_slice(Tid(0), SliceLimits::budget(7), &mut NullObserver)
            .unwrap();
        let entry = m.program().entry();
        let t1 = m.spawn_thread(entry, &[]);
        m.exit_thread(t1, 9);
        let ckpt = Checkpoint::capture(&m, &k);
        let targets = ckpt.targets();
        assert_eq!(targets[&Tid(0)].icount, 7);
        assert!(!targets[&Tid(0)].exited);
        assert!(targets[&t1].exited);
    }

    #[test]
    fn image_roundtrip() {
        let s = spec();
        let (mut m, k) = s.boot();
        m.run_slice(Tid(0), SliceLimits::budget(25), &mut NullObserver)
            .unwrap();
        let ckpt = Checkpoint::capture(&m, &k);
        let image = ckpt.to_image();
        let restored = Checkpoint::from_image(s.program.clone(), image);
        assert_eq!(restored.machine_hash, ckpt.machine_hash);
        assert_eq!(restored.machine.state_hash(), ckpt.machine.state_hash());
        assert_eq!(restored.kernel, ckpt.kernel);
    }
}
