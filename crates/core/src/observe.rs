//! Observed replay: the analysis-facing event stream of a replayed
//! recording.
//!
//! Replay is the one place where a recording's entire execution is
//! re-created instruction by instruction, which makes it the natural
//! attachment point for offline analyses (the paper's stated use for its
//! logs: debugging and race diagnosis *after* the cheap recording run).
//! [`ReplayObserver`] extends the VM's [`MemObserver`] with the
//! kernel-level events an analysis needs to reconstruct happens-before
//! order — syscall traps (futex wait/wake, thread exit/join), thread
//! spawns, logged-wake deliveries, and signal deliveries — and
//! [`replay_observed`] drives a full sequential replay through one.
//!
//! The observer sees events in the epoch-parallel execution's total order
//! (the recorded time-slice order), interleaved with every data access the
//! interpreter performs. `dp-analyze` builds its vector-clock data-race
//! detector on exactly this stream.

use dp_vm::observer::{MemObserver, NullObserver};
use dp_vm::{Program, SyscallRequest, Tid, Word};
use std::sync::Arc;

use crate::checkpoint::Checkpoint;
use crate::error::ReplayError;
use crate::recording::Recording;
use crate::replay::{check_program, replay_epoch_observed, ReplayReport};

/// One kernel-level event surfaced during observed replay, in the recorded
/// total order of the epoch-parallel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayEvent {
    /// A thread trapped into the kernel. Emitted *before* the syscall is
    /// serviced (re-executed or satisfied from the log), so the observer
    /// sees the request exactly as issued — number and raw arguments
    /// included. For `futex_wait`/`futex_wake`, `req.args[0]` is the futex
    /// address; for `join`, `req.args[0]` is the joined thread.
    Trap {
        /// The trapping thread.
        tid: Tid,
        /// The thread's instruction count at the trap.
        icount: u64,
        /// The request as issued.
        req: SyscallRequest,
    },
    /// A `spawn` syscall created a new thread (emitted after the spawn is
    /// serviced, when the child's id is known).
    Spawned {
        /// The spawning thread.
        parent: Tid,
        /// The newly created thread.
        child: Tid,
    },
    /// A logged blocking syscall's completion was delivered at its recorded
    /// `LoggedWake` point. `req` is the request the thread had pending (for
    /// a `futex_wait`, `req.args[0]` is the futex address it slept on).
    Wake {
        /// The woken thread.
        tid: Tid,
        /// The request whose completion was applied.
        req: SyscallRequest,
    },
    /// A signal was delivered (handler frame pushed) at its recorded point.
    SignalDelivered {
        /// The receiving thread.
        tid: Tid,
        /// The signal number.
        sig: Word,
    },
    /// A thread exited by returning from its bottom frame (a thread that
    /// exits via the `thread_exit` syscall is seen as a [`ReplayEvent::Trap`]
    /// instead).
    ThreadExited {
        /// The exiting thread.
        tid: Tid,
    },
}

/// Receives everything an offline analysis needs from a replay: every data
/// access (via the [`MemObserver`] supertrait) plus the kernel-level
/// [`ReplayEvent`]s, all in the recorded total order.
///
/// The default event hooks do nothing, so a pure memory-access analysis
/// only implements `on_access`.
pub trait ReplayObserver: MemObserver {
    /// Called once before each epoch's events, with the epoch index.
    fn on_epoch_start(&mut self, index: u32) {
        let _ = index;
    }

    /// Called for each kernel-level event.
    fn on_replay_event(&mut self, event: &ReplayEvent) {
        let _ = event;
    }
}

impl ReplayObserver for NullObserver {}

/// Replays the whole recording sequentially (chaining state across epochs
/// from the initial checkpoint) while feeding every data access and kernel
/// event to `obs`. Verification is identical to
/// [`crate::replay_sequential`] — the analysis rides a fully verified
/// replay, so its input is exactly the recorded execution.
///
/// # Errors
///
/// Any [`ReplayError`] on mismatch.
pub fn replay_observed<O: ReplayObserver>(
    recording: &Recording,
    program: &Arc<Program>,
    obs: &mut O,
) -> Result<ReplayReport, ReplayError> {
    check_program(recording, program)?;
    let initial = Checkpoint::from_image(program.clone(), recording.initial.clone());
    let mut state = (initial.machine, initial.kernel);
    let mut instructions = 0u64;
    let mut final_hash = recording.meta.initial_machine_hash;
    for epoch in &recording.epochs {
        obs.on_epoch_start(epoch.index);
        let start = Checkpoint::capture(&state.0, &state.1);
        let (m, k, n) = replay_epoch_observed(&start, epoch, obs)?;
        instructions += n;
        final_hash = epoch.end_machine_hash;
        state = (m, k);
    }
    Ok(ReplayReport {
        epochs: recording.epochs.len() as u32,
        instructions,
        final_hash,
        exit_code: state.0.halted(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DoublePlayConfig;
    use crate::record::coordinator::record;
    use crate::record::testutil::atomic_counter_spec;
    use dp_os::abi;
    use dp_vm::observer::Access;

    /// Counts accesses and events; checks epoch ordering.
    #[derive(Default)]
    struct Counter {
        accesses: u64,
        traps: u64,
        spawns: u64,
        exits: u64,
        epochs: Vec<u32>,
    }

    impl MemObserver for Counter {
        fn on_access(&mut self, _access: Access) {
            self.accesses += 1;
        }
    }

    impl ReplayObserver for Counter {
        fn on_epoch_start(&mut self, index: u32) {
            self.epochs.push(index);
        }

        fn on_replay_event(&mut self, event: &ReplayEvent) {
            match event {
                ReplayEvent::Trap { req, .. } => {
                    self.traps += 1;
                    assert!(req.num < abi::SYSCALL_COUNT);
                }
                ReplayEvent::Spawned { parent, child } => {
                    self.spawns += 1;
                    assert_ne!(parent, child);
                }
                ReplayEvent::ThreadExited { .. } => self.exits += 1,
                _ => {}
            }
        }
    }

    #[test]
    fn observed_replay_sees_accesses_and_events() {
        let spec = atomic_counter_spec(2000, 2);
        let config = DoublePlayConfig::new(2).epoch_cycles(5_000);
        let bundle = record(&spec, &config).unwrap();
        let mut obs = Counter::default();
        let report = replay_observed(&bundle.recording, &spec.program, &mut obs).unwrap();
        assert_eq!(report.epochs as u64, bundle.stats.epochs);
        assert!(obs.accesses > 0, "no data accesses observed");
        assert!(obs.traps > 0, "no syscall traps observed");
        assert_eq!(obs.spawns, 2, "both worker spawns observed");
        assert_eq!(
            obs.epochs,
            (0..report.epochs).collect::<Vec<_>>(),
            "epochs observed in order"
        );
        // The observed replay verifies exactly like the plain one.
        let plain = crate::replay::replay_sequential(&bundle.recording, &spec.program).unwrap();
        assert_eq!(plain.final_hash, report.final_hash);
        assert_eq!(plain.instructions, report.instructions);
    }

    #[test]
    fn observed_replay_rejects_wrong_program() {
        let spec = atomic_counter_spec(500, 2);
        let bundle = record(&spec, &DoublePlayConfig::new(2)).unwrap();
        let other = atomic_counter_spec(501, 2);
        let mut obs = NullObserver;
        assert!(matches!(
            replay_observed(&bundle.recording, &other.program, &mut obs),
            Err(ReplayError::ProgramMismatch { .. })
        ));
    }
}
