//! The crash-consistent streaming recording journal (`DPRJ`).
//!
//! [`Recording::save`] is monolithic: nothing is durable until the whole
//! run finishes, so a crash of the recording machine forfeits everything
//! captured so far. The journal is the streaming alternative: the record
//! coordinator pushes every committed epoch through a [`RecordSink`], and
//! a [`JournalWriter`] sink appends it to a durable file as a
//! self-delimiting CRC32-framed record, flushing at each commit marker.
//! After a crash — torn write, `ENOSPC`, failed flush, SIGKILL — a
//! [`JournalReader::salvage`] scan reconstructs the longest committed
//! epoch prefix as a valid, replayable [`Recording`].
//!
//! ## Frame format
//!
//! ```text
//! journal := magic "DPRJ" | version u32 le | frame*
//! frame   := tag u8 | len u32 le | payload[len] | crc32(tag|len|payload) u32 le
//!
//! tag 1 HEADER  payload = wire(meta) ++ wire(initial checkpoint)
//! tag 2 EPOCH   payload = wire(EpochRecord)
//! tag 3 COMMIT  payload = epoch index u32 le ++ crc32(epoch payload) u32 le
//! tag 4 FINAL   payload = epoch count u32 le          (clean completion)
//! ```
//!
//! ## Commit rule
//!
//! An epoch is **committed** iff its EPOCH frame is intact (CRC valid,
//! payload decodable, index in sequence) *and* the immediately following
//! COMMIT frame is intact and names that epoch's index and payload CRC.
//! The writer flushes after each COMMIT frame, so the commit marker
//! reaching the device is the durability point — exactly the write-ahead
//! rule of database redo logs. A torn write can only ever hurt the
//! youngest, uncommitted suffix; salvage drops it and keeps the prefix.

use std::io::{self, Write};

use crate::checkpoint::CheckpointImage;
use crate::error::{ReplayError, ResumeError};
use crate::recording::{EncodedLogs, EpochRecord, Recording, RecordingMeta};
use dp_support::crc32::crc32;
use dp_support::wire::{to_bytes, Reader, Wire};

/// Journal magic: "DPRJ" (DoublePlay Recording Journal).
pub const JOURNAL_MAGIC: [u8; 4] = *b"DPRJ";
/// Journal format version; bumped on any layout change. Version 2 switched
/// the schedule/syscall log wire form to length-prefixed compact codec
/// payloads (the encode-once commit path).
const FORMAT_VERSION: u32 = 2;

const TAG_HEADER: u8 = 1;
const TAG_EPOCH: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_FINAL: u8 = 4;

/// Tag byte + u32 length prefix.
pub(crate) const FRAME_HEAD: usize = 5;
/// CRC32 trailer.
pub(crate) const FRAME_TAIL: usize = 4;

/// Where the coordinator streams a recording as it is produced.
///
/// [`epoch`](RecordSink::epoch) returning `Ok` means the sink has
/// *accepted* the epoch; each implementation defines its own durability
/// point. [`JournalWriter`] makes every epoch durable before returning
/// (flush per commit marker), while the sharded
/// [`crate::ShardedJournalWriter`] group-commits: acceptance is immediate
/// but durability arrives at the next per-shard batch flush — after a
/// crash, [`crate::JournalReader`] recovers exactly the durable prefix
/// either way. Errors abort the recording run with
/// [`crate::RecordError::Sink`]; everything already durable remains
/// salvageable.
pub trait RecordSink {
    /// Called once, before the first epoch, with the recording identity
    /// and the boot state.
    fn begin(&mut self, meta: &RecordingMeta, initial: &CheckpointImage) -> io::Result<()>;
    /// Called after each epoch commits (including recovered divergent
    /// epochs and serialized-fallback epochs — everything that becomes
    /// part of the final recording). Epochs arrive **strictly in index
    /// order** (0, 1, 2, …): both recording drivers retire through the
    /// same in-order commit stage — even the pipelined one, whose verify
    /// workers finish out of order, holds results back until their turn.
    /// Sinks may rely on this for append-only layouts (the sharded writer
    /// relies on it to assign epochs to shard streams deterministically).
    fn epoch(&mut self, epoch: &EpochRecord) -> io::Result<()>;
    /// Like [`epoch`](RecordSink::epoch), but with the compact-codec log
    /// encodings the commit path already produced for cost accounting.
    /// Serializing sinks override this to splice `logs` in verbatim
    /// ([`EpochRecord::put_with`]) instead of re-encoding both logs; the
    /// default ignores `logs` and delegates, so non-serializing sinks
    /// (taps, [`NullSink`]) need not change.
    fn epoch_encoded(&mut self, epoch: &EpochRecord, logs: &EncodedLogs) -> io::Result<()> {
        let _ = logs;
        self.epoch(epoch)
    }
    /// Called once on clean completion of the whole run.
    fn finish(&mut self) -> io::Result<()>;
}

/// The no-op sink behind plain [`crate::record`]: recording stays
/// in-memory-only, exactly as before journaling existed.
#[derive(Debug, Default)]
pub struct NullSink;

impl RecordSink for NullSink {
    fn begin(&mut self, _meta: &RecordingMeta, _initial: &CheckpointImage) -> io::Result<()> {
        Ok(())
    }
    fn epoch(&mut self, _epoch: &EpochRecord) -> io::Result<()> {
        Ok(())
    }
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Streams a recording into a durable sink as a `DPRJ` journal.
///
/// Construction writes the magic and version immediately, so even a run
/// that crashes before its first epoch leaves an identifiable journal.
#[derive(Debug)]
pub struct JournalWriter<W: Write> {
    sink: W,
    written: u64,
    epochs: u32,
}

impl<W: Write> JournalWriter<W> {
    /// Wraps `sink` and writes the journal preamble.
    ///
    /// # Errors
    ///
    /// I/O failures from the sink.
    pub fn new(mut sink: W) -> io::Result<Self> {
        sink.write_all(&JOURNAL_MAGIC)?;
        sink.write_all(&FORMAT_VERSION.to_le_bytes())?;
        Ok(JournalWriter {
            sink,
            written: (JOURNAL_MAGIC.len() + 4) as u64,
            epochs: 0,
        })
    }

    /// Wraps a sink already holding exactly the committed prefix of
    /// `salvaged` — the caller has truncated the torn tail to
    /// [`Salvaged::committed_bytes`] — and positions the writer to append
    /// epoch `salvaged.committed()` onward. Neither the preamble nor the
    /// header frame is rewritten: the journal continues byte-for-byte
    /// where the crashed incarnation's durable prefix ended.
    pub fn resume_after(sink: W, salvaged: &Salvaged) -> Self {
        JournalWriter {
            sink,
            written: salvaged.committed_bytes as u64,
            epochs: salvaged.committed() as u32,
        }
    }

    /// Total journal bytes written so far (the write-overhead metric).
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Epochs committed to the journal so far.
    pub fn epochs_committed(&self) -> u32 {
        self.epochs
    }

    /// A shared view of the sink.
    pub fn get_ref(&self) -> &W {
        &self.sink
    }

    /// Unwraps the sink (e.g. to salvage the bytes a faulted sink holds).
    pub fn into_inner(self) -> W {
        self.sink
    }

    /// Writes one framed record: tag, length, payload, CRC32 over all
    /// three (so a flipped tag or length is caught, not just payload rot).
    fn frame(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(payload.len()).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "journal frame payload of {} bytes exceeds u32",
                    payload.len()
                ),
            )
        })?;
        let mut head = [0u8; FRAME_HEAD];
        head[0] = tag;
        head[1..].copy_from_slice(&len.to_le_bytes());
        let crc = frame_crc(&head, payload);
        self.sink.write_all(&head)?;
        self.sink.write_all(payload)?;
        self.sink.write_all(&crc.to_le_bytes())?;
        self.written += (FRAME_HEAD + payload.len() + FRAME_TAIL) as u64;
        Ok(())
    }

    /// Appends one epoch from its serialized payload: in-order check,
    /// EPOCH frame, COMMIT marker, flush. Shared by both sink entry points
    /// so the commit rule is stated once.
    fn epoch_payload(&mut self, index: u32, payload: &[u8]) -> io::Result<()> {
        // Enforce the RecordSink in-order contract: a commit stage bug
        // (out-of-order retirement in the pipelined driver) must surface
        // here, not as a silently unreplayable journal.
        if index != self.epochs {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "out-of-order epoch {index} (journal expects {})",
                    self.epochs
                ),
            ));
        }
        let payload_crc = crc32(payload);
        self.frame(TAG_EPOCH, payload)?;
        let mut commit = [0u8; 8];
        commit[..4].copy_from_slice(&index.to_le_bytes());
        commit[4..].copy_from_slice(&payload_crc.to_le_bytes());
        self.frame(TAG_COMMIT, &commit)?;
        // The flush is the durability point: an epoch whose commit marker
        // never reached the device is, by the commit rule, uncommitted.
        self.sink.flush()?;
        self.epochs += 1;
        Ok(())
    }
}

impl JournalWriter<std::fs::File> {
    /// Reopens the journal at `path` for append: salvages the committed
    /// prefix, truncates any torn tail back to the last COMMIT frame
    /// (truncate-then-flush — the tail is gone and synced before any new
    /// byte is appended), and returns a writer accepting epoch `k+1`
    /// onward plus the salvage result (whose recording is the prefix to
    /// re-enact).
    ///
    /// # Errors
    ///
    /// [`ResumeError::AlreadyFinalized`] when the journal completed
    /// cleanly (nothing to resume), [`ResumeError::BadPrefix`] when
    /// nothing is salvageable, [`ResumeError::Io`] on reopen/truncate
    /// failures.
    pub fn resume(path: &std::path::Path) -> Result<(Self, Salvaged), ResumeError> {
        let io_err = |e: io::Error| ResumeError::Io {
            detail: e.to_string(),
        };
        let bytes = std::fs::read(path).map_err(io_err)?;
        let salvaged = JournalReader::salvage(&bytes).map_err(|e| ResumeError::BadPrefix {
            detail: e.to_string(),
        })?;
        if salvaged.clean {
            return Err(ResumeError::AlreadyFinalized {
                epochs: salvaged.committed(),
            });
        }
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(io_err)?;
        file.set_len(salvaged.committed_bytes as u64)
            .map_err(io_err)?;
        file.sync_data().map_err(io_err)?;
        let mut file = file;
        use std::io::Seek;
        file.seek(io::SeekFrom::End(0)).map_err(io_err)?;
        Ok((Self::resume_after(file, &salvaged), salvaged))
    }
}

/// CRC32 over the frame head and payload as one logical buffer.
pub(crate) fn frame_crc(head: &[u8], payload: &[u8]) -> u32 {
    let mut buf = Vec::with_capacity(head.len() + payload.len());
    buf.extend_from_slice(head);
    buf.extend_from_slice(payload);
    crc32(&buf)
}

impl<W: Write> RecordSink for JournalWriter<W> {
    fn begin(&mut self, meta: &RecordingMeta, initial: &CheckpointImage) -> io::Result<()> {
        let mut payload = Vec::new();
        meta.put(&mut payload);
        initial.put(&mut payload);
        self.frame(TAG_HEADER, &payload)?;
        self.sink.flush()
    }

    fn epoch(&mut self, epoch: &EpochRecord) -> io::Result<()> {
        let payload = to_bytes(epoch);
        self.epoch_payload(epoch.index, &payload)
    }

    fn epoch_encoded(&mut self, epoch: &EpochRecord, logs: &EncodedLogs) -> io::Result<()> {
        let mut payload = Vec::new();
        epoch.put_with(logs, &mut payload);
        self.epoch_payload(epoch.index, &payload)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.frame(TAG_FINAL, &self.epochs.to_le_bytes())?;
        self.sink.flush()
    }
}

/// What a salvage scan recovered from a journal.
#[derive(Debug)]
pub struct Salvaged {
    /// The reconstructed recording: header plus the longest committed
    /// epoch prefix. Always valid and replayable (possibly zero epochs).
    pub recording: Recording,
    /// True when the journal carries a FINAL frame matching the epoch
    /// count — the run completed cleanly; nothing was lost.
    pub clean: bool,
    /// Journal bytes consumed as valid frames.
    pub salvaged_bytes: usize,
    /// Bytes up to and including the last committed epoch's COMMIT frame
    /// (the header frame's end when no epoch committed). This is the
    /// truncation point for append-reopen: everything past it — a torn
    /// frame, an uncommitted epoch, even a bogus FINAL marker — is tail
    /// to drop before the journal accepts epoch `committed()` onward.
    pub committed_bytes: usize,
    /// Trailing bytes dropped (torn frame, uncommitted epoch, garbage).
    pub dropped_bytes: usize,
    /// Why the scan stopped, for operator-facing reporting.
    pub detail: String,
}

impl Salvaged {
    /// Epochs recovered.
    pub fn committed(&self) -> usize {
        self.recording.epochs.len()
    }
}

/// Parses `DPRJ` journals, including ones a crash left behind.
pub struct JournalReader;

/// One intact frame: tag, payload slice, and the offset just past it.
pub(crate) struct Frame<'a> {
    pub(crate) tag: u8,
    pub(crate) payload: &'a [u8],
    pub(crate) end: usize,
}

/// Reads the frame at `pos`, validating bounds and CRC. `None` means the
/// bytes from `pos` on do not form an intact frame — truncation, a torn
/// write, or corruption; salvage treats all three identically.
pub(crate) fn read_frame(buf: &[u8], pos: usize) -> Option<Frame<'_>> {
    let head = buf.get(pos..pos + FRAME_HEAD)?;
    let len = u32::from_le_bytes(head[1..5].try_into().unwrap()) as usize;
    let payload_end = pos.checked_add(FRAME_HEAD)?.checked_add(len)?;
    let end = payload_end.checked_add(FRAME_TAIL)?;
    if end > buf.len() {
        return None;
    }
    let payload = &buf[pos + FRAME_HEAD..payload_end];
    let stored = u32::from_le_bytes(buf[payload_end..end].try_into().unwrap());
    if stored != frame_crc(head, payload) {
        return None;
    }
    Some(Frame {
        tag: head[0],
        payload,
        end,
    })
}

impl JournalReader {
    /// Reconstructs the longest committed epoch prefix from a journal,
    /// applying the commit rule frame by frame. Works on intact journals
    /// (returns everything, `clean == true` when finalized) and on any
    /// crash-truncated or tail-corrupted byte prefix.
    ///
    /// # Errors
    ///
    /// [`ReplayError::UnsupportedVersion`] for a journal written by a
    /// different format version; [`ReplayError::Corrupt`] only when nothing
    /// is salvageable: missing or foreign magic or an unrecoverable header
    /// frame (without meta and the initial checkpoint there is no valid
    /// `Recording` to build). Never panics, whatever the input.
    pub fn salvage(buf: &[u8]) -> Result<Salvaged, ReplayError> {
        let corrupt = |detail: String| ReplayError::Corrupt { detail };
        if buf.len() < 8 {
            return Err(corrupt(format!(
                "file too short to be a journal ({} bytes)",
                buf.len()
            )));
        }
        if buf[..4] != JOURNAL_MAGIC {
            return Err(corrupt(format!("bad journal magic {:02x?}", &buf[..4])));
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(ReplayError::UnsupportedVersion {
                container: "journal",
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let header = read_frame(buf, 8)
            .filter(|f| f.tag == TAG_HEADER)
            .ok_or_else(|| corrupt("journal header frame missing or torn".into()))?;
        let mut r = Reader::new(header.payload);
        let meta = RecordingMeta::get(&mut r)
            .map_err(|e| corrupt(format!("journal header meta undecodable: {e}")))?;
        let initial = CheckpointImage::get(&mut r)
            .map_err(|e| corrupt(format!("journal header checkpoint undecodable: {e}")))?;
        if !r.is_empty() {
            return Err(corrupt(format!(
                "{} trailing bytes inside journal header frame",
                r.remaining()
            )));
        }

        let mut epochs: Vec<EpochRecord> = Vec::new();
        let mut pos = header.end;
        let mut committed_bytes = header.end;
        let mut clean = false;
        let detail = loop {
            let Some(frame) = read_frame(buf, pos) else {
                break if pos == buf.len() {
                    "journal ends mid-run (no final marker)".to_string()
                } else {
                    format!("torn or corrupt frame at byte {pos}")
                };
            };
            match frame.tag {
                TAG_EPOCH => {
                    let index = epochs.len() as u32;
                    let Ok(epoch) = dp_support::wire::from_bytes::<EpochRecord>(frame.payload)
                    else {
                        break format!("epoch frame at byte {pos} undecodable");
                    };
                    if epoch.index != index {
                        break format!(
                            "epoch frame at byte {pos} out of sequence \
                             (index {}, expected {index})",
                            epoch.index
                        );
                    }
                    // The commit rule: the very next frame must be this
                    // epoch's commit marker.
                    let payload_crc = crc32(frame.payload);
                    let Some(commit) = read_frame(buf, frame.end).filter(|c| {
                        c.tag == TAG_COMMIT
                            && c.payload.len() == 8
                            && c.payload[..4] == index.to_le_bytes()
                            && c.payload[4..] == payload_crc.to_le_bytes()
                    }) else {
                        break format!("epoch {index} has no commit marker (uncommitted)");
                    };
                    epochs.push(epoch);
                    pos = commit.end;
                    committed_bytes = pos;
                }
                TAG_FINAL => {
                    let ok = frame.payload.len() == 4
                        && frame.payload == (epochs.len() as u32).to_le_bytes();
                    pos = frame.end;
                    if ok {
                        clean = true;
                        break "clean completion".to_string();
                    }
                    break "final marker disagrees with committed epoch count".to_string();
                }
                TAG_COMMIT => break format!("orphan commit marker at byte {pos}"),
                t => break format!("unknown frame tag {t} at byte {pos}"),
            }
        };

        Ok(Salvaged {
            recording: Recording {
                meta,
                initial,
                epochs,
            },
            clean,
            salvaged_bytes: pos,
            committed_bytes,
            dropped_bytes: buf.len() - pos,
            detail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DoublePlayConfig;
    use crate::logs::{ScheduleLog, SyscallLog};
    use dp_vm::Tid;

    fn tiny_parts() -> (RecordingMeta, CheckpointImage, Vec<EpochRecord>) {
        let meta = RecordingMeta {
            guest_name: "j".into(),
            program_hash: 11,
            initial_machine_hash: 22,
            config: DoublePlayConfig::new(2),
        };
        let initial = CheckpointImage {
            machine: dp_vm::Machine::new(
                std::sync::Arc::new({
                    let mut pb = dp_vm::builder::ProgramBuilder::new();
                    let mut f = pb.function("main");
                    f.ret();
                    f.finish();
                    pb.finish("main")
                }),
                &[],
            )
            .image(),
            kernel: dp_os::kernel::Kernel::new(Default::default()),
            machine_hash: 22,
        };
        let epochs = (0..3)
            .map(|i| {
                let mut schedule = ScheduleLog::new();
                schedule.push_slice(Tid(0), 100 + i as u64);
                EpochRecord {
                    index: i,
                    schedule,
                    syscalls: SyscallLog::new(),
                    end_machine_hash: 100 + u64::from(i),
                    external: Vec::new(),
                    start: None,
                    tp_cycles: 10,
                }
            })
            .collect();
        (meta, initial, epochs)
    }

    fn journal_bytes(finalize: bool) -> (Vec<u8>, Vec<u64>) {
        let (meta, initial, epochs) = tiny_parts();
        let mut w = JournalWriter::new(Vec::new()).unwrap();
        w.begin(&meta, &initial).unwrap();
        let mut commit_offsets = Vec::new();
        for e in &epochs {
            w.epoch(e).unwrap();
            commit_offsets.push(w.bytes_written());
        }
        if finalize {
            w.finish().unwrap();
        }
        assert_eq!(w.epochs_committed(), 3);
        (w.into_inner(), commit_offsets)
    }

    #[test]
    fn out_of_order_epochs_are_rejected() {
        let (meta, initial, epochs) = tiny_parts();
        let mut w = JournalWriter::new(Vec::new()).unwrap();
        w.begin(&meta, &initial).unwrap();
        let err = w.epoch(&epochs[1]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        w.epoch(&epochs[0]).unwrap();
        assert_eq!(w.epochs_committed(), 1);
    }

    #[test]
    fn full_journal_salvages_clean() {
        let (buf, _) = journal_bytes(true);
        let s = JournalReader::salvage(&buf).unwrap();
        assert!(s.clean);
        assert_eq!(s.committed(), 3);
        assert_eq!(s.dropped_bytes, 0);
        assert_eq!(s.recording.epochs[2].end_machine_hash, 102);
        assert_eq!(s.recording.meta.guest_name, "j");
    }

    #[test]
    fn unfinalized_journal_salvages_all_commits_but_not_clean() {
        let (buf, _) = journal_bytes(false);
        let s = JournalReader::salvage(&buf).unwrap();
        assert!(!s.clean);
        assert_eq!(s.committed(), 3);
        assert_eq!(s.dropped_bytes, 0);
    }

    #[test]
    fn every_prefix_salvages_exactly_the_committed_epochs() {
        let (buf, commits) = journal_bytes(true);
        for cut in 0..=buf.len() {
            let expect: usize = commits.iter().filter(|&&o| o as usize <= cut).count();
            match JournalReader::salvage(&buf[..cut]) {
                Ok(s) => {
                    assert_eq!(
                        s.committed(),
                        expect,
                        "cut {cut}: salvaged {} epochs, expected {expect}",
                        s.committed()
                    );
                    assert_eq!(s.clean, cut == buf.len(), "cut {cut} clean flag");
                }
                Err(ReplayError::Corrupt { .. }) => {
                    // Only acceptable before the header frame is durable.
                    assert_eq!(expect, 0, "cut {cut}: header lost but epochs expected");
                }
                Err(e) => panic!("cut {cut}: unexpected error {e:?}"),
            }
        }
    }

    #[test]
    fn bitflips_after_header_never_gain_epochs_or_panic() {
        let (buf, commits) = journal_bytes(true);
        let full = commits.len();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            match JournalReader::salvage(&bad) {
                Ok(s) => assert!(s.committed() <= full),
                Err(ReplayError::Corrupt { .. }) => {}
                // A flip inside the 4-byte version field reads as a
                // foreign version, which is typed separately.
                Err(ReplayError::UnsupportedVersion { .. }) => assert!((4..8).contains(&i)),
                Err(e) => panic!("flip at {i}: unexpected error {e:?}"),
            }
        }
    }

    #[test]
    fn commit_marker_is_required() {
        // Chop the journal right after an epoch frame but before its
        // commit marker: the epoch must not be salvaged.
        let (buf, commits) = journal_bytes(false);
        let cut = commits[1] as usize - FRAME_HEAD - 8 - FRAME_TAIL - 1;
        let s = JournalReader::salvage(&buf[..cut]).unwrap();
        assert_eq!(s.committed(), 1);
        assert!(s.detail.contains("commit marker") || s.detail.contains("torn"));
    }

    #[test]
    fn committed_bytes_tracks_the_last_commit_frame() {
        let (buf, commits) = journal_bytes(true);
        let s = JournalReader::salvage(&buf).unwrap();
        // Clean journal: committed_bytes excludes the FINAL frame.
        assert_eq!(s.committed_bytes as u64, *commits.last().unwrap());
        assert_eq!(s.salvaged_bytes, buf.len());
        // Cut mid-epoch: committed_bytes stays at the previous commit.
        let cut = commits[1] as usize + 3;
        let s = JournalReader::salvage(&buf[..cut]).unwrap();
        assert_eq!(s.committed(), 2);
        assert_eq!(s.committed_bytes as u64, commits[1]);
        // No epochs at all: committed_bytes is the header frame's end,
        // and re-salvaging exactly that prefix is stable.
        let s = JournalReader::salvage(&buf[..commits[0] as usize - 1]).unwrap();
        assert_eq!(s.committed(), 0);
        let s0 = JournalReader::salvage(&buf[..s.committed_bytes]).unwrap();
        assert_eq!(s0.committed(), 0);
        assert_eq!(s0.committed_bytes, s.committed_bytes);
    }

    #[test]
    fn resume_after_continues_byte_identically() {
        let (full, commits) = journal_bytes(true);
        let (_, _, epochs) = tiny_parts();
        // Crash after epoch 1's commit, mid-epoch-2: salvage, truncate to
        // the committed prefix, and append the missing tail.
        let cut = commits[1] as usize + 7;
        let s = JournalReader::salvage(&full[..cut]).unwrap();
        assert_eq!(s.committed(), 2);
        let prefix = full[..s.committed_bytes].to_vec();
        let mut w = JournalWriter::resume_after(prefix, &s);
        assert_eq!(w.epochs_committed(), 2);
        assert_eq!(w.bytes_written() as usize, s.committed_bytes);
        // Out-of-order guard still holds across the crash boundary.
        assert!(w.epoch(&epochs[0]).is_err());
        w.epoch(&epochs[2]).unwrap();
        w.finish().unwrap();
        assert_eq!(w.into_inner(), full);
    }

    #[test]
    fn file_resume_truncates_the_torn_tail_and_appends() {
        let (full, commits) = journal_bytes(true);
        let (_, _, epochs) = tiny_parts();
        let dir = std::env::temp_dir().join(format!(
            "dprj-resume-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.dprj");
        let cut = commits[1] as usize + 7;
        std::fs::write(&path, &full[..cut]).unwrap();
        let (mut w, s) = JournalWriter::resume(&path).unwrap();
        assert_eq!(s.committed(), 2);
        assert_eq!(w.epochs_committed(), 2);
        w.epoch(&epochs[2]).unwrap();
        w.finish().unwrap();
        drop(w);
        assert_eq!(std::fs::read(&path).unwrap(), full);
        // A finalized journal is a typed no-op, not an append target.
        assert!(matches!(
            JournalWriter::resume(&path),
            Err(crate::error::ResumeError::AlreadyFinalized { epochs: 3 })
        ));
        // Garbage is a typed error, never a panic.
        let garbage = dir.join("garbage.dprj");
        std::fs::write(&garbage, b"not a journal").unwrap();
        assert!(matches!(
            JournalWriter::resume(&garbage),
            Err(crate::error::ResumeError::BadPrefix { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_and_foreign_magic_are_typed_errors() {
        assert!(matches!(
            JournalReader::salvage(b""),
            Err(ReplayError::Corrupt { .. })
        ));
        assert!(matches!(
            JournalReader::salvage(b"DPRC\x01\x00\x00\x00rest"),
            Err(ReplayError::Corrupt { .. })
        ));
        // A mismatched version on an intact preamble is not corruption: it
        // must surface as the typed version error (here, a version-1 file
        // from before the encode-once log format).
        for found in [1u32, 9] {
            let mut bad_version = Vec::new();
            bad_version.extend_from_slice(&JOURNAL_MAGIC);
            bad_version.extend_from_slice(&found.to_le_bytes());
            match JournalReader::salvage(&bad_version) {
                Err(ReplayError::UnsupportedVersion {
                    container,
                    found: f,
                    expected,
                }) => {
                    assert_eq!(container, "journal");
                    assert_eq!(f, found);
                    assert_eq!(expected, 2);
                }
                other => panic!("expected UnsupportedVersion, got {other:?}"),
            }
        }
    }

    #[test]
    fn epoch_encoded_writes_identical_bytes() {
        let (meta, initial, epochs) = tiny_parts();
        let mut w1 = JournalWriter::new(Vec::new()).unwrap();
        let mut w2 = JournalWriter::new(Vec::new()).unwrap();
        w1.begin(&meta, &initial).unwrap();
        w2.begin(&meta, &initial).unwrap();
        for ep in &epochs {
            w1.epoch(ep).unwrap();
            w2.epoch_encoded(ep, &EncodedLogs::of(ep)).unwrap();
        }
        w1.finish().unwrap();
        w2.finish().unwrap();
        assert_eq!(w1.into_inner(), w2.into_inner());
    }
}
