//! Whole-run fault planning: the seeded, deterministic fault-injection
//! subsystem behind the robustness experiments (`report e10`).
//!
//! A [`FaultPlan`] extends the kernel-level [`IoFaults`] plan with recorder
//! faults that exercise DoublePlay's recovery machinery:
//!
//! * **syscall I/O faults** (`fail_p`, `short_read_p`, `reset_p`) — injected
//!   by the simulated kernel at trap time; see [`dp_os::faults`];
//! * **worker panics** (`worker_panic_p`) — epoch-parallel verify/live
//!   workers and parallel-replay workers panic mid-epoch; the coordinator
//!   and replayer isolate them with `catch_unwind` and retry with a
//!   bounded budget;
//! * **divergence storms** (`storm_p`, `storm_len`, `storm_jitter_mult`) —
//!   windows of epochs whose thread-parallel scheduling jitter is
//!   amplified, driving up the data-race divergence rate until the
//!   coordinator degrades to serialized recording;
//! * **sink faults** (`sink` — see [`dp_os::fs::SinkFaults`]) — the
//!   durable sink the recording journal streams to dies mid-write (torn
//!   write at an exact byte offset), fills up (`ENOSPC`), fails a flush,
//!   or accepts short writes. These model a crash of the recording
//!   machine and drive the journal-salvage experiments (`report e12`).
//!
//! Like [`IoFaults`], every decision is a pure hash of semantic
//! coordinates (seed, epoch, attempt), so fault runs are reproducible and
//! recordings of surviving runs replay bit-exactly.

use dp_os::{IoFaults, SinkFaults};
use dp_support::rng::{mix, roll};

const SALT_PANIC: u64 = 0x70a1_c0de;
const SALT_STORM: u64 = 0x5708_4a11;
const SALT_SESSION: u64 = 0x5e55_10fd;

/// Marker carried in the payload of every injected worker panic, so the
/// quiet panic hook can tell injected faults from real bugs.
pub const INJECTED_PANIC_TAG: &str = "injected worker panic";

/// Installs (once, process-wide) a panic hook that swallows the message for
/// panics injected by a [`FaultPlan`] — they are expected and recovered, so
/// their backtraces are pure noise — while delegating every other panic to
/// the previously installed hook.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<String>()
                .map(|s| s.contains(INJECTED_PANIC_TAG))
                .or_else(|| {
                    payload
                        .downcast_ref::<&str>()
                        .map(|s| s.contains(INJECTED_PANIC_TAG))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

/// A seeded, deterministic fault-injection plan for one recording run.
/// `Default` injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed decorrelating plans with equal probabilities.
    pub seed: u64,
    /// Probability an I/O syscall fails outright (`EIO`).
    pub fail_p: f64,
    /// Probability a read/recv is truncated to a shorter length.
    pub short_read_p: f64,
    /// Probability a socket operation observes a connection reset.
    pub reset_p: f64,
    /// Probability an epoch-parallel (or parallel-replay) worker panics
    /// while executing an epoch. Decisions vary per retry attempt, so any
    /// probability below 1.0 eventually succeeds within the retry budget.
    pub worker_panic_p: f64,
    /// Probability that a given window of epochs is a divergence storm.
    pub storm_p: f64,
    /// Length of a storm window in epochs (0 disables storms).
    pub storm_len: u32,
    /// Storm intensity: thread-parallel micro-slices shrink by this factor
    /// during a storm, amplifying the effective scheduling jitter (the
    /// relative variance of interleaving points) and with it the data-race
    /// divergence rate.
    pub storm_intensity: u64,
    /// Faults of the durable sink the recording journal streams to. These
    /// never perturb the guest (the sink is outside the recorded world);
    /// they decide how much of the journal survives a simulated crash.
    pub sink: SinkFaults,
}

impl FaultPlan {
    /// No injected faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when any fault class that perturbs the *recorded world* is
    /// enabled. Sink faults are deliberately excluded: they live outside
    /// the recorded world, so they must not change what gets installed in
    /// the kernel (and with it the guest's execution).
    pub fn is_active(&self) -> bool {
        self.fail_p > 0.0
            || self.short_read_p > 0.0
            || self.reset_p > 0.0
            || self.worker_panic_p > 0.0
            || (self.storm_p > 0.0 && self.storm_len > 0)
    }

    /// Sets the plan seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the syscall-level fault probabilities.
    pub fn io(mut self, fail_p: f64, short_read_p: f64, reset_p: f64) -> Self {
        self.fail_p = fail_p;
        self.short_read_p = short_read_p;
        self.reset_p = reset_p;
        self
    }

    /// Sets the worker-panic probability.
    pub fn worker_panics_with(mut self, p: f64) -> Self {
        self.worker_panic_p = p;
        self
    }

    /// Enables divergence storms: windows of `len` epochs occur with
    /// probability `p` at the given `intensity`.
    pub fn storms(mut self, p: f64, len: u32, intensity: u64) -> Self {
        self.storm_p = p;
        self.storm_len = len;
        self.storm_intensity = intensity;
        self
    }

    /// Sets the whole sink-fault plan.
    pub fn sink(mut self, sink: SinkFaults) -> Self {
        self.sink = sink;
        self
    }

    /// The sink dies with a torn write once `offset` bytes are durable.
    pub fn sink_torn_at(mut self, offset: u64) -> Self {
        self.sink.torn_at = Some(offset);
        self
    }

    /// The sink reports `ENOSPC` once `offset` bytes are durable.
    pub fn sink_enospc_at(mut self, offset: u64) -> Self {
        self.sink.enospc_at = Some(offset);
        self
    }

    /// The sink's n-th flush (1-based) fails.
    pub fn sink_fail_flush_at(mut self, n: u64) -> Self {
        self.sink.fail_flush_at = Some(n);
        self
    }

    /// Sink write calls accept only a prefix with probability `p`
    /// (survivable: the journal writer retries them).
    pub fn sink_short_writes(mut self, p: f64) -> Self {
        self.sink.short_write_p = p;
        self
    }

    /// The sink slice of this plan, seeded from the plan seed unless the
    /// sink plan carries its own.
    pub fn sink_faults(&self) -> SinkFaults {
        let mut s = self.sink;
        if s.seed == 0 {
            s.seed = self.seed;
        }
        s
    }

    /// Derives the per-session plan for session `sid` of a multi-session
    /// service: identical probabilities, decorrelated decisions.
    ///
    /// The daemon hands every session the same operator-supplied template
    /// plan; reseeding by session id keeps fault decisions independent
    /// across sessions (session 7's storm windows say nothing about
    /// session 8's) while staying a pure function of `(template, sid)`, so
    /// a solo re-run of any one session injects the exact same faults. A
    /// sink plan carrying its own seed is reseeded the same way.
    pub fn for_session(mut self, sid: u64) -> Self {
        self.seed = mix(&[self.seed, sid, SALT_SESSION]);
        if self.sink.seed != 0 {
            self.sink.seed = mix(&[self.sink.seed, sid, SALT_SESSION]);
        }
        self
    }

    /// The kernel-level slice of this plan.
    pub fn io_faults(&self) -> IoFaults {
        IoFaults {
            seed: self.seed,
            fail_p: self.fail_p,
            short_read_p: self.short_read_p,
            reset_p: self.reset_p,
        }
    }

    /// Should the worker executing `epoch` panic on retry `attempt`?
    ///
    /// A pure hash of `(seed, epoch, attempt)` — no interior state, no
    /// call-order dependence. This is what keeps panic injection
    /// deterministic in the pipelined recorder, where concurrent verify
    /// workers evaluate it in whatever order the OS schedules them: a
    /// given `(epoch, attempt)` answers the same on every thread, every
    /// run, so the pipelined and sequential drivers inject identically.
    pub fn worker_panics(&self, epoch: u32, attempt: u32) -> bool {
        self.worker_panic_p > 0.0
            && roll(
                mix(&[self.seed, u64::from(epoch), u64::from(attempt), SALT_PANIC]),
                self.worker_panic_p,
            )
    }

    /// True when `epoch` falls inside a divergence-storm window.
    pub fn storm(&self, epoch: u32) -> bool {
        if self.storm_p <= 0.0 || self.storm_len == 0 {
            return false;
        }
        let window = u64::from(epoch / self.storm_len);
        roll(mix(&[self.seed, window, SALT_STORM]), self.storm_p)
    }

    /// The thread-parallel `(quantum, jitter)` pair to use for `epoch`
    /// given the configured base values. During a storm both shrink by the
    /// intensity factor: micro-slices get small and irregular, so racing
    /// accesses interleave at far finer granularity and divergence surges.
    pub fn storm_slice(&self, epoch: u32, quantum: u64, jitter: u64) -> (u64, u64) {
        if self.storm(epoch) {
            let f = self.storm_intensity.max(1);
            ((quantum / f).max(8), (jitter / f).max(8))
        } else {
            (quantum, jitter)
        }
    }
}

dp_support::impl_wire_struct!(FaultPlan {
    seed,
    fail_p,
    short_read_p,
    reset_p,
    worker_panic_p,
    storm_p,
    storm_len,
    storm_intensity,
    sink
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert!(!p.worker_panics(0, 0));
        assert!(!p.storm(0));
        assert_eq!(p.storm_slice(0, 700, 300), (700, 300));
        assert_eq!(p.io_faults(), IoFaults::none());
    }

    #[test]
    fn builder_chains_and_slices() {
        let p = FaultPlan::none()
            .seed(7)
            .io(0.1, 0.2, 0.3)
            .worker_panics_with(0.4)
            .storms(0.5, 4, 8);
        assert!(p.is_active());
        let io = p.io_faults();
        assert_eq!(io.seed, 7);
        assert_eq!(io.fail_p, 0.1);
        assert_eq!(io.short_read_p, 0.2);
        assert_eq!(io.reset_p, 0.3);
    }

    #[test]
    fn sink_faults_inherit_the_plan_seed() {
        let p = FaultPlan::none().seed(9).sink_torn_at(100);
        assert_eq!(p.sink_faults().seed, 9);
        assert_eq!(p.sink_faults().torn_at, Some(100));
        // Sink faults never activate the recorded-world fault path.
        assert!(!p.is_active());
        assert!(p.sink_faults().is_active());
        let own_seed = FaultPlan::none().seed(9).sink(SinkFaults {
            seed: 4,
            ..SinkFaults::none()
        });
        assert_eq!(own_seed.sink_faults().seed, 4);
    }

    #[test]
    fn per_session_plans_are_deterministic_and_decorrelated() {
        let template = FaultPlan::none().seed(3).storms(0.5, 4, 8);
        let a = template.for_session(7);
        let b = template.for_session(8);
        // Pure function of (template, sid): re-deriving gives the same plan.
        assert_eq!(a, template.for_session(7));
        // Distinct sessions draw from distinct decision streams.
        assert_ne!(a.seed, b.seed);
        let differs = (0..64u32).any(|w| a.storm(w * 4) != b.storm(w * 4));
        assert!(differs, "sessions 7 and 8 share every storm window");
        // Probabilities are untouched — only the seed moves.
        assert_eq!(a.storm_p, template.storm_p);
        assert_eq!(a.storm_len, template.storm_len);
        // A sink plan with its own seed is reseeded too; a seedless one
        // keeps inheriting the (already reseeded) plan seed.
        let own = template
            .sink(SinkFaults {
                seed: 5,
                short_write_p: 0.1,
                ..SinkFaults::none()
            })
            .for_session(7);
        assert_ne!(own.sink.seed, 5);
        let inherit = template.sink_short_writes(0.1).for_session(7);
        assert_eq!(inherit.sink_faults().seed, inherit.seed);
    }

    #[test]
    fn certain_panics_fire_on_every_attempt() {
        let p = FaultPlan::none().worker_panics_with(1.0);
        for attempt in 0..10 {
            assert!(p.worker_panics(3, attempt));
        }
    }

    #[test]
    fn sub_certain_panics_vary_by_attempt() {
        let p = FaultPlan::none().seed(11).worker_panics_with(0.5);
        let outcomes: Vec<bool> = (0..64).map(|a| p.worker_panics(0, a)).collect();
        assert!(outcomes.iter().any(|&b| b));
        assert!(outcomes.iter().any(|&b| !b));
    }

    #[test]
    fn storms_cover_whole_windows() {
        let p = FaultPlan::none().seed(2).storms(0.5, 4, 8);
        for w in 0..32u32 {
            let first = p.storm(w * 4);
            for e in w * 4..w * 4 + 4 {
                assert_eq!(p.storm(e), first, "window {w} not uniform");
            }
        }
        let hits = (0..128).filter(|&w| p.storm(w * 4)).count();
        assert!(hits > 32 && hits < 96, "storm rate off: {hits}/128");
        assert_eq!(
            p.storm_slice(0, 800, 160),
            if p.storm(0) { (100, 20) } else { (800, 160) }
        );
    }
}
