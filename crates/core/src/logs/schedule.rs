//! The schedule log: the heart of DoublePlay's logging story.
//!
//! Because each epoch of the epoch-parallel execution runs all threads
//! time-sliced on a single processor, reproducing it needs only the sequence
//! of scheduling decisions — *which thread ran for how many instructions* —
//! plus the points where asynchronous events (logged syscall completions,
//! signals) were delivered. No shared-memory access ordering is ever logged;
//! that is the paper's central saving.

use dp_vm::{Tid, Word};

/// One scheduling event in an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// `tid` ran for exactly `instrs` instructions.
    Slice {
        /// Thread that ran.
        tid: Tid,
        /// Instructions executed.
        instrs: u64,
    },
    /// A logged blocking syscall's completion was delivered to `tid` at this
    /// point (the thread was `Waiting`; its result comes from the syscall
    /// log).
    LoggedWake {
        /// Thread whose pending syscall completed.
        tid: Tid,
    },
    /// Signal `sig` was delivered to `tid` at this point (handler frame
    /// pushed before its next slice).
    Signal {
        /// Thread receiving the signal.
        tid: Tid,
        /// Signal number.
        sig: Word,
    },
}

/// An epoch's schedule log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleLog {
    events: Vec<SchedEvent>,
}

impl ScheduleLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a slice, coalescing with an immediately preceding slice of
    /// the same thread (uninterrupted execution needs only one entry).
    pub fn push_slice(&mut self, tid: Tid, instrs: u64) {
        if instrs == 0 {
            return;
        }
        if let Some(SchedEvent::Slice {
            tid: last,
            instrs: n,
        }) = self.events.last_mut()
        {
            if *last == tid {
                *n += instrs;
                return;
            }
        }
        self.events.push(SchedEvent::Slice { tid, instrs });
    }

    /// Appends a logged-wake delivery.
    pub fn push_wake(&mut self, tid: Tid) {
        self.events.push(SchedEvent::LoggedWake { tid });
    }

    /// Appends a signal delivery.
    pub fn push_signal(&mut self, tid: Tid, sig: Word) {
        self.events.push(SchedEvent::Signal { tid, sig });
    }

    /// The events in order.
    pub fn events(&self) -> &[SchedEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total instructions covered by the log's slices.
    pub fn total_instructions(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                SchedEvent::Slice { instrs, .. } => *instrs,
                _ => 0,
            })
            .sum()
    }

    /// Event counts by kind: `(slices, wakes, signals)`.
    pub fn event_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for e in &self.events {
            match e {
                SchedEvent::Slice { .. } => counts.0 += 1,
                SchedEvent::LoggedWake { .. } => counts.1 += 1,
                SchedEvent::Signal { .. } => counts.2 += 1,
            }
        }
        counts
    }

    /// Per-thread `(slice count, instruction total)`, sorted by thread id —
    /// the per-thread view the inspection tooling prints.
    pub fn per_thread_totals(&self) -> Vec<(Tid, usize, u64)> {
        let mut totals: std::collections::BTreeMap<u32, (usize, u64)> =
            std::collections::BTreeMap::new();
        for e in &self.events {
            if let SchedEvent::Slice { tid, instrs } = e {
                let t = totals.entry(tid.0).or_default();
                t.0 += 1;
                t.1 += instrs;
            }
        }
        totals
            .into_iter()
            .map(|(tid, (n, instrs))| (Tid(tid), n, instrs))
            .collect()
    }
}

impl FromIterator<SchedEvent> for ScheduleLog {
    fn from_iter<I: IntoIterator<Item = SchedEvent>>(iter: I) -> Self {
        let mut log = ScheduleLog::new();
        for e in iter {
            match e {
                SchedEvent::Slice { tid, instrs } => log.push_slice(tid, instrs),
                SchedEvent::LoggedWake { tid } => log.push_wake(tid),
                SchedEvent::Signal { tid, sig } => log.push_signal(tid, sig),
            }
        }
        log
    }
}

dp_support::impl_wire_enum!(SchedEvent {
    0 => Slice { tid, instrs },
    1 => LoggedWake { tid },
    2 => Signal { tid, sig },
});

/// Wire form: a length-prefixed [`super::codec::encode_schedule`] payload.
/// Delegating to the compact codec makes the coordinator's cost-accounting
/// encoding *the* serialized bytes, so the commit path can encode each log
/// once and sinks splice the bytes in verbatim
/// ([`crate::recording::EpochRecord::put_with`]).
impl dp_support::wire::Wire for ScheduleLog {
    fn put(&self, out: &mut Vec<u8>) {
        let enc = super::codec::encode_schedule(self);
        dp_support::wire::put_varint(out, enc.len() as u64);
        out.extend_from_slice(&enc);
    }

    fn get(r: &mut dp_support::wire::Reader<'_>) -> Result<Self, dp_support::wire::WireError> {
        let len = <usize as dp_support::wire::Wire>::get(r)?;
        let offset = r.pos();
        let raw = r.take(len, "schedule log payload")?;
        super::codec::decode_schedule(raw).map_err(|e| dp_support::wire::WireError {
            offset: offset + e.offset,
            context: "schedule log payload",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_adjacent_same_thread_slices() {
        let mut log = ScheduleLog::new();
        log.push_slice(Tid(0), 100);
        log.push_slice(Tid(0), 50);
        log.push_slice(Tid(1), 10);
        log.push_slice(Tid(0), 5);
        assert_eq!(log.len(), 3);
        assert_eq!(
            log.events()[0],
            SchedEvent::Slice {
                tid: Tid(0),
                instrs: 150
            }
        );
        assert_eq!(log.total_instructions(), 165);
    }

    #[test]
    fn wake_breaks_coalescing() {
        let mut log = ScheduleLog::new();
        log.push_slice(Tid(0), 10);
        log.push_wake(Tid(1));
        log.push_slice(Tid(0), 10);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn zero_length_slices_are_dropped() {
        let mut log = ScheduleLog::new();
        log.push_slice(Tid(0), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn from_iterator_coalesces_too() {
        let log: ScheduleLog = vec![
            SchedEvent::Slice {
                tid: Tid(2),
                instrs: 1,
            },
            SchedEvent::Slice {
                tid: Tid(2),
                instrs: 2,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(log.len(), 1);
        assert_eq!(log.total_instructions(), 3);
    }
}
