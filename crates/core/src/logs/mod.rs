//! Recording logs: what DoublePlay writes while an application runs.
//!
//! Three kinds of information fully determine the recorded execution:
//!
//! 1. the **schedule log** ([`schedule::ScheduleLog`]) — time-slice order
//!    within each epoch of the epoch-parallel execution;
//! 2. the **syscall log** ([`syscalls::SyscallLog`]) — results of
//!    logged-class (timing/boundary) syscalls;
//! 3. the per-epoch **state digests** stored in the recording, which are
//!    not needed for replay but let every consumer verify it.
//!
//! [`codec`] provides the compact binary encoding used to measure log sizes
//! and persist recordings.

pub mod codec;
pub mod schedule;
pub mod syscalls;

pub use codec::{decode_schedule, decode_syscalls, encode_schedule, encode_syscalls, CodecError};
pub use schedule::{SchedEvent, ScheduleLog};
pub use syscalls::{
    apply_entry, request_hash, request_hash_args, SyscallCursor, SyscallLog, SyscallLogEntry,
};
