//! Compact binary encoding of logs.
//!
//! The paper's log-size table reports *compressed* log rates; this codec is
//! the reproduction's analogue: LEB128 varints for counts and deltas, raw
//! bytes for payloads. It is used both to measure realistic log sizes
//! (Table "log sizes", experiment E4) and as the wire format when a
//! recording is saved.

use super::schedule::{SchedEvent, ScheduleLog};
use super::syscalls::{SyscallLog, SyscallLogEntry};
use dp_os::kernel::{ExternalChunk, ExternalDest, SyscallEffect};
use dp_vm::Tid;

/// Encoding/decoding failure (truncated or corrupt input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Offset at which decoding failed.
    pub offset: usize,
    /// What was being decoded.
    pub context: &'static str,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "log decode error at byte {}: {}",
            self.offset, self.context
        )
    }
}

impl std::error::Error for CodecError {}

/// Appends a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint, advancing `pos`.
///
/// # Errors
///
/// Fails on truncation or overlong (>10-byte) encodings.
pub fn get_varint(buf: &[u8], pos: &mut usize, context: &'static str) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(CodecError {
            offset: *pos,
            context,
        })?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError {
                offset: *pos,
                context,
            });
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn get_bytes(buf: &[u8], pos: &mut usize, context: &'static str) -> Result<Vec<u8>, CodecError> {
    let len = get_varint(buf, pos, context)? as usize;
    let end = pos.checked_add(len).ok_or(CodecError {
        offset: *pos,
        context,
    })?;
    if end > buf.len() {
        return Err(CodecError {
            offset: *pos,
            context,
        });
    }
    let out = buf[*pos..end].to_vec();
    *pos = end;
    Ok(out)
}

const TAG_SLICE: u64 = 0;
const TAG_WAKE: u64 = 1;
const TAG_SIGNAL: u64 = 2;

/// Encodes a schedule log.
pub fn encode_schedule(log: &ScheduleLog) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, log.len() as u64);
    for e in log.events() {
        match e {
            SchedEvent::Slice { tid, instrs } => {
                put_varint(&mut out, TAG_SLICE);
                put_varint(&mut out, tid.0 as u64);
                put_varint(&mut out, *instrs);
            }
            SchedEvent::LoggedWake { tid } => {
                put_varint(&mut out, TAG_WAKE);
                put_varint(&mut out, tid.0 as u64);
            }
            SchedEvent::Signal { tid, sig } => {
                put_varint(&mut out, TAG_SIGNAL);
                put_varint(&mut out, tid.0 as u64);
                put_varint(&mut out, *sig);
            }
        }
    }
    out
}

/// Decodes a schedule log.
///
/// # Errors
///
/// Fails on truncated or corrupt input.
pub fn decode_schedule(buf: &[u8]) -> Result<ScheduleLog, CodecError> {
    let mut pos = 0;
    let count = get_varint(buf, &mut pos, "schedule count")?;
    let mut events = Vec::new();
    for _ in 0..count {
        let tag = get_varint(buf, &mut pos, "schedule tag")?;
        let tid = Tid(get_varint(buf, &mut pos, "schedule tid")? as u32);
        events.push(match tag {
            TAG_SLICE => SchedEvent::Slice {
                tid,
                instrs: get_varint(buf, &mut pos, "slice length")?,
            },
            TAG_WAKE => SchedEvent::LoggedWake { tid },
            TAG_SIGNAL => SchedEvent::Signal {
                tid,
                sig: get_varint(buf, &mut pos, "signal number")?,
            },
            _ => {
                return Err(CodecError {
                    offset: pos,
                    context: "unknown schedule tag",
                })
            }
        });
    }
    // Bypass coalescing: the encoded form is already canonical.
    Ok(events.into_iter().collect())
}

const DEST_CONSOLE: u64 = 0;
const DEST_SOCKET: u64 = 1;

fn put_effect(out: &mut Vec<u8>, effect: &SyscallEffect) {
    put_varint(out, effect.guest_writes.len() as u64);
    for (addr, bytes) in &effect.guest_writes {
        put_varint(out, *addr);
        put_bytes(out, bytes);
    }
    put_varint(out, effect.external.len() as u64);
    for chunk in &effect.external {
        match &chunk.dest {
            ExternalDest::Console => put_varint(out, DEST_CONSOLE),
            ExternalDest::Socket(fd) => {
                put_varint(out, DEST_SOCKET);
                put_varint(out, *fd as u64);
            }
        }
        put_bytes(out, &chunk.bytes);
    }
}

fn get_effect(buf: &[u8], pos: &mut usize) -> Result<SyscallEffect, CodecError> {
    let mut effect = SyscallEffect::default();
    let writes = get_varint(buf, pos, "guest write count")?;
    for _ in 0..writes {
        let addr = get_varint(buf, pos, "guest write addr")?;
        let bytes = get_bytes(buf, pos, "guest write bytes")?;
        effect.guest_writes.push((addr, bytes));
    }
    let chunks = get_varint(buf, pos, "external chunk count")?;
    for _ in 0..chunks {
        let dest = match get_varint(buf, pos, "external dest")? {
            DEST_CONSOLE => ExternalDest::Console,
            DEST_SOCKET => ExternalDest::Socket(get_varint(buf, pos, "socket fd")? as u32),
            _ => {
                return Err(CodecError {
                    offset: *pos,
                    context: "unknown external dest",
                })
            }
        };
        let bytes = get_bytes(buf, pos, "external bytes")?;
        effect.external.push(ExternalChunk { dest, bytes });
    }
    Ok(effect)
}

/// Encodes a syscall log.
pub fn encode_syscalls(log: &SyscallLog) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, log.len() as u64);
    for e in log.entries() {
        put_varint(&mut out, e.tid.0 as u64);
        put_varint(&mut out, e.num as u64);
        out.extend_from_slice(&e.arg_hash.to_le_bytes());
        put_varint(&mut out, e.ret);
        put_varint(&mut out, e.via_wake as u64);
        put_effect(&mut out, &e.effect);
    }
    out
}

/// Decodes a syscall log.
///
/// # Errors
///
/// Fails on truncated or corrupt input.
pub fn decode_syscalls(buf: &[u8]) -> Result<SyscallLog, CodecError> {
    let mut pos = 0;
    let count = get_varint(buf, &mut pos, "syscall count")?;
    let mut log = SyscallLog::new();
    for _ in 0..count {
        let tid = Tid(get_varint(buf, &mut pos, "syscall tid")? as u32);
        let num = get_varint(buf, &mut pos, "syscall num")? as u32;
        if pos + 8 > buf.len() {
            return Err(CodecError {
                offset: pos,
                context: "arg hash",
            });
        }
        let arg_hash = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
        pos += 8;
        let ret = get_varint(buf, &mut pos, "syscall ret")?;
        let via_wake = get_varint(buf, &mut pos, "via wake flag")? != 0;
        let effect = get_effect(buf, &mut pos)?;
        log.push(SyscallLogEntry {
            tid,
            num,
            arg_hash,
            ret,
            effect,
            via_wake,
        });
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_os::abi;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos, "test").unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_truncation_is_an_error() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert!(get_varint(&buf, &mut pos, "test").is_err());
    }

    #[test]
    fn schedule_roundtrip() {
        let mut log = ScheduleLog::new();
        log.push_slice(Tid(0), 10_000);
        log.push_wake(Tid(3));
        log.push_signal(Tid(1), 9);
        log.push_slice(Tid(1), 1);
        let buf = encode_schedule(&log);
        let back = decode_schedule(&buf).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn syscall_roundtrip_with_effects() {
        let mut log = SyscallLog::new();
        log.push(SyscallLogEntry {
            tid: Tid(2),
            num: abi::SYS_RECV,
            arg_hash: 0xdead_beef_cafe_f00d,
            ret: 5,
            via_wake: true,
            effect: SyscallEffect {
                guest_writes: vec![(0x3000, b"hello".to_vec())],
                external: vec![ExternalChunk {
                    dest: ExternalDest::Socket(1001),
                    bytes: b"out".to_vec(),
                }],
            },
        });
        log.push(SyscallLogEntry {
            tid: Tid(0),
            num: abi::SYS_CLOCK,
            arg_hash: 1,
            ret: u64::MAX,
            effect: SyscallEffect::default(),
            via_wake: false,
        });
        let buf = encode_syscalls(&log);
        let back = decode_syscalls(&buf).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn corrupt_tags_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1); // one event
        put_varint(&mut buf, 9); // bad tag
        put_varint(&mut buf, 0);
        assert!(decode_schedule(&buf).is_err());
    }

    #[test]
    fn schedule_encoding_is_compact() {
        // A full epoch of one thread = a handful of bytes; this is the
        // paper's claim that uniparallel logging is tiny.
        let mut log = ScheduleLog::new();
        log.push_slice(Tid(0), 1_000_000);
        assert!(encode_schedule(&log).len() <= 8);
    }
}
