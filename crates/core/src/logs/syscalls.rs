//! The syscall (input) log: results of logged-class syscalls, in completion
//! order, with per-thread consumption cursors.
//!
//! The thread-parallel execution produces these entries; the epoch-parallel
//! execution consumes them instead of touching the (already consumed)
//! external world, verifying on each consumption that the syscall it is
//! about to satisfy matches what was logged — a mismatch is an early
//! divergence signal.

use dp_os::kernel::SyscallEffect;
use dp_vm::{Machine, SyscallRequest, Tid, Word};
use std::collections::{BTreeMap, VecDeque};

use dp_os::abi;

/// One logged syscall completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallLogEntry {
    /// Thread whose syscall completed.
    pub tid: Tid,
    /// Syscall number.
    pub num: u32,
    /// Digest of the arguments (and outbound payload, for output syscalls)
    /// at issue time; consumers verify theirs against it.
    pub arg_hash: u64,
    /// Result returned to the guest.
    pub ret: Word,
    /// Memory writes and external output the completion performed.
    pub effect: SyscallEffect,
    /// True when the syscall blocked and completed later via a wake (the
    /// consumer must apply it at the recorded `LoggedWake` point, not at
    /// issue).
    pub via_wake: bool,
}

/// Digest of a syscall request as issued by `machine`'s thread. For output
/// syscalls (`send`, `console`) the outbound payload is folded in, so a
/// guest that would emit different bytes is detected as divergent before
/// anything is externalized.
pub fn request_hash(machine: &Machine, req: &SyscallRequest) -> u64 {
    let mut h = dp_vm::hash::Fnv1a::new();
    h.write_u32(req.num);
    for a in &req.args {
        h.write_u64(*a);
    }
    let payload = match req.num {
        abi::SYS_CONSOLE => Some((req.args[0], req.args[1])),
        abi::SYS_SEND => Some((req.args[1], req.args[2])),
        _ => None,
    };
    if let Some((ptr, len)) = payload {
        // Verify hot path: one call per logged syscall per verify attempt.
        // Stream the payload through a stack buffer instead of allocating
        // a Vec per call.
        let len = (len as usize).min(1 << 20);
        let mut buf = [0u8; 1024];
        let mut done = 0usize;
        while done < len {
            let n = (len - done).min(buf.len());
            machine
                .mem()
                .read_into(ptr.wrapping_add(done as u64), &mut buf[..n]);
            h.write_bytes(&buf[..n]);
            done += n;
        }
    }
    h.finish()
}

/// Digest of a request from its number and arguments alone. Equal to
/// [`request_hash`] for every syscall that can block (none of them carry an
/// outbound payload), which is why wakes can be digested without a machine.
pub fn request_hash_args(req: &SyscallRequest) -> u64 {
    let mut h = dp_vm::hash::Fnv1a::new();
    h.write_u32(req.num);
    for a in &req.args {
        h.write_u64(*a);
    }
    h.finish()
}

/// An epoch's syscall log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyscallLog {
    entries: Vec<SyscallLogEntry>,
}

impl SyscallLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a completion.
    pub fn push(&mut self, entry: SyscallLogEntry) {
        self.entries.push(entry);
    }

    /// Entries in completion order.
    pub fn entries(&self) -> &[SyscallLogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no syscalls were logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds a per-thread consumption cursor over this log.
    pub fn cursor(&self) -> SyscallCursor<'_> {
        let mut per_tid: BTreeMap<Tid, VecDeque<&SyscallLogEntry>> = BTreeMap::new();
        for e in &self.entries {
            per_tid.entry(e.tid).or_default().push_back(e);
        }
        SyscallCursor {
            per_tid,
            consumed: 0,
            total: self.entries.len(),
        }
    }
}

impl FromIterator<SyscallLogEntry> for SyscallLog {
    fn from_iter<I: IntoIterator<Item = SyscallLogEntry>>(iter: I) -> Self {
        SyscallLog {
            entries: iter.into_iter().collect(),
        }
    }
}

/// Per-thread FIFO view of a [`SyscallLog`]. A thread's completions are
/// consumed strictly in order; cross-thread order is irrelevant to the
/// consumer (each thread has at most one outstanding syscall).
#[derive(Debug)]
pub struct SyscallCursor<'a> {
    per_tid: BTreeMap<Tid, VecDeque<&'a SyscallLogEntry>>,
    consumed: usize,
    total: usize,
}

impl<'a> SyscallCursor<'a> {
    /// Next unconsumed entry for `tid`, if any.
    pub fn peek(&self, tid: Tid) -> Option<&'a SyscallLogEntry> {
        self.per_tid.get(&tid).and_then(|q| q.front().copied())
    }

    /// Consumes the next entry for `tid`.
    pub fn pop(&mut self, tid: Tid) -> Option<&'a SyscallLogEntry> {
        let e = self.per_tid.get_mut(&tid)?.pop_front();
        if e.is_some() {
            self.consumed += 1;
        }
        e
    }

    /// Entries not yet consumed.
    pub fn remaining(&self) -> usize {
        self.total - self.consumed
    }

    /// True when every entry has been consumed (required for an epoch to
    /// verify: leftover completions mean the executions disagreed).
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

/// Applies a logged completion to the machine: performs the guest memory
/// writes and completes the pending syscall with the logged result.
///
/// # Panics
///
/// Panics if `tid` has no pending syscall (caller must check).
pub fn apply_entry(machine: &mut Machine, entry: &SyscallLogEntry) {
    for (addr, bytes) in &entry.effect.guest_writes {
        machine.mem_mut().write_bytes(*addr, bytes);
    }
    machine.complete_syscall(entry.tid, entry.ret);
}

dp_support::impl_wire_struct!(SyscallLogEntry {
    tid,
    num,
    arg_hash,
    ret,
    effect,
    via_wake
});

/// Wire form: a length-prefixed [`super::codec::encode_syscalls`] payload —
/// same single-encoding scheme as [`super::schedule::ScheduleLog`]'s wire
/// impl, so the commit path's cost-accounting encoding is reused verbatim
/// by every sink.
impl dp_support::wire::Wire for SyscallLog {
    fn put(&self, out: &mut Vec<u8>) {
        let enc = super::codec::encode_syscalls(self);
        dp_support::wire::put_varint(out, enc.len() as u64);
        out.extend_from_slice(&enc);
    }

    fn get(r: &mut dp_support::wire::Reader<'_>) -> Result<Self, dp_support::wire::WireError> {
        let len = <usize as dp_support::wire::Wire>::get(r)?;
        let offset = r.pos();
        let raw = r.take(len, "syscall log payload")?;
        super::codec::decode_syscalls(raw).map_err(|e| dp_support::wire::WireError {
            offset: offset + e.offset,
            context: "syscall log payload",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tid: u32, num: u32, ret: u64) -> SyscallLogEntry {
        SyscallLogEntry {
            tid: Tid(tid),
            num,
            arg_hash: 0,
            ret,
            effect: SyscallEffect::default(),
            via_wake: false,
        }
    }

    #[test]
    fn cursor_is_per_thread_fifo() {
        let log: SyscallLog = vec![
            entry(0, abi::SYS_CLOCK, 10),
            entry(1, abi::SYS_RANDOM, 99),
            entry(0, abi::SYS_CLOCK, 20),
        ]
        .into_iter()
        .collect();
        let mut cur = log.cursor();
        assert_eq!(cur.remaining(), 3);
        assert_eq!(cur.peek(Tid(0)).unwrap().ret, 10);
        assert_eq!(cur.pop(Tid(0)).unwrap().ret, 10);
        assert_eq!(cur.pop(Tid(1)).unwrap().ret, 99);
        assert_eq!(cur.pop(Tid(0)).unwrap().ret, 20);
        assert!(cur.exhausted());
        assert!(cur.pop(Tid(0)).is_none());
        assert!(cur.peek(Tid(5)).is_none());
    }

    #[test]
    fn request_hash_covers_payload() {
        use dp_vm::builder::ProgramBuilder;
        use std::sync::Arc;
        let mut pb = ProgramBuilder::new();
        let buf = pb.global_data("buf", b"payload!");
        let mut f = pb.function("main");
        f.ret();
        f.finish();
        let mut m = Machine::new(Arc::new(pb.finish("main")), &[]);
        let req = SyscallRequest {
            tid: Tid(0),
            num: abi::SYS_CONSOLE,
            args: [buf, 8, 0, 0, 0, 0],
        };
        let h1 = request_hash(&m, &req);
        m.mem_mut().write_bytes(buf, b"PAYLOAD!");
        let h2 = request_hash(&m, &req);
        assert_ne!(h1, h2, "payload change must change the digest");
        // Non-payload syscalls hash args only.
        let req2 = SyscallRequest {
            tid: Tid(0),
            num: abi::SYS_CLOCK,
            args: [0; 6],
        };
        let h3 = request_hash(&m, &req2);
        m.mem_mut().write_bytes(buf, b"payload!");
        assert_eq!(h3, request_hash(&m, &req2));
    }

    #[test]
    fn apply_entry_writes_and_completes() {
        use dp_vm::builder::ProgramBuilder;
        use dp_vm::observer::NullObserver;
        use dp_vm::{Reg, SliceLimits};
        use std::sync::Arc;
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.consti(Reg(0), 0);
        f.syscall(abi::SYS_RECV);
        f.ret();
        f.finish();
        let mut m = Machine::new(Arc::new(pb.finish("main")), &[]);
        m.run_slice(Tid(0), SliceLimits::budget(10), &mut NullObserver)
            .unwrap();
        let mut e = entry(0, abi::SYS_RECV, 4);
        e.effect.guest_writes.push((0x4000, b"data".to_vec()));
        apply_entry(&mut m, &e);
        assert_eq!(m.mem().read_bytes(0x4000, 4), b"data");
        assert_eq!(m.thread(Tid(0)).regs[0], 4);
        assert!(m.thread(Tid(0)).is_ready());
    }
}
