//! Recordings: the persistent artifact a DoublePlay run produces.
//!
//! A recording is *complete*: given the same [`crate::GuestSpec`] (verified
//! by program hash), any consumer can re-create the recorded execution —
//! sequentially from the initial state, or epoch-by-epoch in parallel when
//! per-epoch checkpoints were kept.

use std::io::{Read, Write};

use crate::checkpoint::CheckpointImage;
use crate::config::DoublePlayConfig;
use crate::error::{ReplayError, SaveError};
use crate::logs::{codec, ScheduleLog, SyscallLog};
use dp_os::kernel::ExternalChunk;
use dp_support::crc32::crc32;
use dp_support::wire::{from_bytes, to_bytes, Wire};

/// Identity and configuration of a recording.
#[derive(Debug, Clone)]
pub struct RecordingMeta {
    /// Name of the recorded guest.
    pub guest_name: String,
    /// Content hash of the recorded program.
    pub program_hash: u64,
    /// Digest of the boot state.
    pub initial_machine_hash: u64,
    /// The recorder configuration used.
    pub config: DoublePlayConfig,
}

/// One epoch of the recorded execution.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Epoch number (0-based).
    pub index: u32,
    /// Time-slice order of the epoch-parallel execution.
    pub schedule: ScheduleLog,
    /// Logged-class syscall results consumed within the epoch.
    pub syscalls: SyscallLog,
    /// Digest of the machine state at the epoch's end.
    pub end_machine_hash: u64,
    /// External output released when this epoch committed.
    pub external: Vec<ExternalChunk>,
    /// Start-of-epoch checkpoint (present when the recorder kept
    /// checkpoints; enables parallel replay and replay-to-point).
    pub start: Option<CheckpointImage>,
    /// Thread-parallel wall cycles of the epoch (diagnostics).
    pub tp_cycles: u64,
}

/// The compact-codec encodings of one epoch's logs, produced once in the
/// recorder's commit path (where their lengths feed cost accounting) and
/// spliced verbatim into the serialized [`EpochRecord`] by sinks that
/// implement [`crate::journal::RecordSink::epoch_encoded`] — the logs are
/// never encoded twice for one commit.
#[derive(Debug, Clone, Default)]
pub struct EncodedLogs {
    /// [`codec::encode_schedule`] of the epoch's schedule log.
    pub schedule: Vec<u8>,
    /// [`codec::encode_syscalls`] of the epoch's syscall log.
    pub syscalls: Vec<u8>,
}

impl EncodedLogs {
    /// Encodes both logs of `epoch` (the fallback for callers that did not
    /// carry encodings from the commit path).
    pub fn of(epoch: &EpochRecord) -> Self {
        EncodedLogs {
            schedule: codec::encode_schedule(&epoch.schedule),
            syscalls: codec::encode_syscalls(&epoch.syscalls),
        }
    }
}

impl EpochRecord {
    /// Serializes the record like its [`Wire`] impl, but splices the
    /// pre-encoded log payloads in instead of re-encoding them. Must mirror
    /// the `impl_wire_struct!` field order exactly; the
    /// `put_with_matches_wire_encoding` test pins the equivalence.
    pub fn put_with(&self, logs: &EncodedLogs, out: &mut Vec<u8>) {
        self.index.put(out);
        dp_support::wire::put_varint(out, logs.schedule.len() as u64);
        out.extend_from_slice(&logs.schedule);
        dp_support::wire::put_varint(out, logs.syscalls.len() as u64);
        out.extend_from_slice(&logs.syscalls);
        self.end_machine_hash.put(out);
        self.external.put(out);
        self.start.put(out);
        self.tp_cycles.put(out);
    }
}

/// A complete recording.
#[derive(Debug, Clone)]
pub struct Recording {
    /// Identity and configuration.
    pub meta: RecordingMeta,
    /// The boot state.
    pub initial: CheckpointImage,
    /// Epochs in order.
    pub epochs: Vec<EpochRecord>,
}

impl Recording {
    /// Encoded size of all schedule logs (compact wire format).
    pub fn schedule_bytes(&self) -> u64 {
        self.epochs
            .iter()
            .map(|e| codec::encode_schedule(&e.schedule).len() as u64)
            .sum()
    }

    /// Encoded size of all syscall logs.
    pub fn syscall_bytes(&self) -> u64 {
        self.epochs
            .iter()
            .map(|e| codec::encode_syscalls(&e.syscalls).len() as u64)
            .sum()
    }

    /// Total encoded log size (the paper's log-size metric; checkpoints are
    /// accounted separately, as in the paper).
    pub fn log_bytes(&self) -> u64 {
        self.schedule_bytes() + self.syscall_bytes()
    }

    /// All external output in commit order, flattened to bytes per
    /// destination-agnostic stream (convenient for asserting console
    /// output in tests and examples).
    pub fn console_output(&self) -> Vec<u8> {
        self.epochs
            .iter()
            .flat_map(|e| e.external.iter())
            .filter(|c| matches!(c.dest, dp_os::kernel::ExternalDest::Console))
            .flat_map(|c| c.bytes.iter().copied())
            .collect()
    }

    /// All external output chunks in commit order.
    pub fn external(&self) -> impl Iterator<Item = &ExternalChunk> {
        self.epochs.iter().flat_map(|e| e.external.iter())
    }

    /// Total schedule events across epochs.
    pub fn schedule_events(&self) -> u64 {
        self.epochs.iter().map(|e| e.schedule.len() as u64).sum()
    }

    /// Total logged syscalls across epochs.
    pub fn logged_syscalls(&self) -> u64 {
        self.epochs.iter().map(|e| e.syscalls.len() as u64).sum()
    }

    /// True when every epoch carries a start checkpoint.
    pub fn has_checkpoints(&self) -> bool {
        self.epochs.iter().all(|e| e.start.is_some())
    }

    /// Serializes the recording to a writer in the versioned container
    /// format: magic, format version, then CRC32-guarded sections (meta,
    /// initial checkpoint, one per epoch).
    ///
    /// # Errors
    ///
    /// [`SaveError::TooManyEpochs`] when the epoch count does not fit the
    /// container's u32 count field (saving would silently truncate);
    /// [`SaveError::Io`] for writer failures.
    pub fn save<W: Write>(&self, mut writer: W) -> Result<(), SaveError> {
        let count = u32::try_from(self.epochs.len()).map_err(|_| SaveError::TooManyEpochs {
            count: self.epochs.len(),
        })?;
        writer.write_all(&MAGIC)?;
        writer.write_all(&FORMAT_VERSION.to_le_bytes())?;
        write_section(&mut writer, &to_bytes(&self.meta))?;
        write_section(&mut writer, &to_bytes(&self.initial))?;
        writer.write_all(&count.to_le_bytes())?;
        for epoch in &self.epochs {
            write_section(&mut writer, &to_bytes(epoch))?;
        }
        Ok(())
    }

    /// Deserializes a recording from a reader, validating magic, format
    /// version, and every section checksum before decoding.
    ///
    /// # Errors
    ///
    /// [`ReplayError::Io`] if the reader fails;
    /// [`ReplayError::UnsupportedVersion`] for an intact container written
    /// by a different format version;
    /// [`ReplayError::Corrupt`] for any malformed, truncated, or
    /// bit-flipped container — never a panic.
    pub fn load<R: Read>(mut reader: R) -> Result<Self, ReplayError> {
        let mut buf = Vec::new();
        reader.read_to_end(&mut buf).map_err(|e| ReplayError::Io {
            detail: e.to_string(),
        })?;
        let mut c = Container { buf: &buf, pos: 0 };
        let magic = c.bytes(4, "magic")?;
        if magic != MAGIC {
            return Err(corrupt(format!("bad magic {magic:02x?}")));
        }
        let version = c.u32_le("format version")?;
        if version != FORMAT_VERSION {
            return Err(ReplayError::UnsupportedVersion {
                container: "recording",
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let meta: RecordingMeta = c.section("meta")?;
        let initial: CheckpointImage = c.section("initial checkpoint")?;
        let count = c.u32_le("epoch count")?;
        // Plausibility: every epoch section costs at least its length
        // prefix and CRC trailer, so a count whose floor exceeds the
        // remaining bytes is corrupt — reject it before looping.
        let floor = (count as u64).saturating_mul(MIN_SECTION_BYTES);
        let remaining = (c.buf.len() - c.pos) as u64;
        if floor > remaining {
            return Err(corrupt(format!(
                "epoch count {count} implies at least {floor} bytes but only {remaining} remain"
            )));
        }
        let mut epochs = Vec::new();
        for i in 0..count {
            epochs.push(c.section_indexed("epoch", i)?);
        }
        if c.pos != c.buf.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after last epoch",
                c.buf.len() - c.pos
            )));
        }
        Ok(Recording {
            meta,
            initial,
            epochs,
        })
    }
}

/// Container magic: "DPRC" (DoublePlay ReCording).
const MAGIC: [u8; 4] = *b"DPRC";
/// Container format version; bumped on any layout change. Version 2
/// switched the schedule/syscall log wire form to length-prefixed compact
/// codec payloads (the encode-once commit path).
const FORMAT_VERSION: u32 = 2;
/// Least bytes one section can occupy: u32 length prefix + u32 CRC32.
pub(crate) const MIN_SECTION_BYTES: u64 = 8;

fn corrupt(detail: String) -> ReplayError {
    ReplayError::Corrupt { detail }
}

/// Writes one length-prefixed, CRC32-trailed section.
fn write_section<W: Write>(writer: &mut W, payload: &[u8]) -> std::io::Result<()> {
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.write_all(&crc32(payload).to_le_bytes())
}

/// Bounds-checked cursor over the container bytes.
struct Container<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Container<'a> {
    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], ReplayError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt(format!("truncated at {what} (offset {})", self.pos)))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32_le(&mut self, what: &str) -> Result<u32, ReplayError> {
        let raw = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
    }

    /// Reads one section: length prefix, payload, CRC32; validates the
    /// checksum before handing the payload to the decoder.
    fn section<T: Wire>(&mut self, what: &str) -> Result<T, ReplayError> {
        let len = self.u32_le(what)? as usize;
        let payload = self.bytes(len, what)?;
        let stored = self.u32_le(what)?;
        let actual = crc32(payload);
        if stored != actual {
            return Err(corrupt(format!(
                "{what} checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        from_bytes(payload).map_err(|e| corrupt(format!("{what} payload undecodable: {e}")))
    }

    fn section_indexed<T: Wire>(&mut self, what: &str, index: u32) -> Result<T, ReplayError> {
        self.section(&format!("{what} {index}"))
    }
}

dp_support::impl_wire_struct!(RecordingMeta {
    guest_name,
    program_hash,
    initial_machine_hash,
    config
});
dp_support::impl_wire_struct!(EpochRecord {
    index,
    schedule,
    syscalls,
    end_machine_hash,
    external,
    start,
    tp_cycles
});

#[cfg(test)]
mod tests {
    use super::*;
    use dp_os::kernel::ExternalDest;
    use dp_vm::Tid;

    fn tiny_recording() -> Recording {
        let mut schedule = ScheduleLog::new();
        schedule.push_slice(Tid(0), 100);
        Recording {
            meta: RecordingMeta {
                guest_name: "t".into(),
                program_hash: 1,
                initial_machine_hash: 2,
                config: DoublePlayConfig::new(2),
            },
            initial: CheckpointImage {
                machine: dp_vm::Machine::new(
                    std::sync::Arc::new({
                        let mut pb = dp_vm::builder::ProgramBuilder::new();
                        let mut f = pb.function("main");
                        f.ret();
                        f.finish();
                        pb.finish("main")
                    }),
                    &[],
                )
                .image(),
                kernel: dp_os::kernel::Kernel::new(Default::default()),
                machine_hash: 2,
            },
            epochs: vec![EpochRecord {
                index: 0,
                schedule,
                syscalls: SyscallLog::new(),
                end_machine_hash: 3,
                external: vec![ExternalChunk {
                    dest: ExternalDest::Console,
                    bytes: b"hi".to_vec(),
                }],
                start: None,
                tp_cycles: 500,
            }],
        }
    }

    #[test]
    fn size_accounting() {
        let r = tiny_recording();
        assert!(r.schedule_bytes() > 0);
        assert!(r.syscall_bytes() > 0); // count prefix
        assert_eq!(r.log_bytes(), r.schedule_bytes() + r.syscall_bytes());
        assert_eq!(r.schedule_events(), 1);
        assert_eq!(r.logged_syscalls(), 0);
        assert!(!r.has_checkpoints());
    }

    #[test]
    fn console_output_concatenates() {
        let r = tiny_recording();
        assert_eq!(r.console_output(), b"hi");
        assert_eq!(r.external().count(), 1);
    }

    #[test]
    fn save_load_roundtrip() {
        let r = tiny_recording();
        let mut buf = Vec::new();
        r.save(&mut buf).unwrap();
        let back = Recording::load(&buf[..]).unwrap();
        assert_eq!(back.meta.guest_name, "t");
        assert_eq!(back.epochs.len(), 1);
        assert_eq!(back.epochs[0].end_machine_hash, 3);
        assert_eq!(back.console_output(), b"hi");
    }

    #[test]
    fn save_surfaces_writer_errors_as_typed_io() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        match tiny_recording().save(Broken) {
            Err(SaveError::Io { detail }) => assert!(detail.contains("disk on fire")),
            other => panic!("expected SaveError::Io, got {other:?}"),
        }
    }

    #[test]
    fn put_with_matches_wire_encoding() {
        let r = tiny_recording();
        let epoch = &r.epochs[0];
        let generic = to_bytes(epoch);
        let mut spliced = Vec::new();
        epoch.put_with(&EncodedLogs::of(epoch), &mut spliced);
        assert_eq!(generic, spliced, "put_with must mirror the Wire impl");
    }

    #[test]
    fn old_format_version_is_a_typed_version_error() {
        let r = tiny_recording();
        let mut buf = Vec::new();
        r.save(&mut buf).unwrap();
        // A version-1 file is not corrupt, just older: rewrite the version
        // field and expect the typed error, never Corrupt or a bogus decode.
        buf[4..8].copy_from_slice(&1u32.to_le_bytes());
        match Recording::load(&buf[..]) {
            Err(ReplayError::UnsupportedVersion {
                container,
                found,
                expected,
            }) => {
                assert_eq!(container, "recording");
                assert_eq!(found, 1);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn implausible_epoch_count_is_rejected_without_looping() {
        let r = tiny_recording();
        let mut buf = Vec::new();
        r.save(&mut buf).unwrap();
        // Find the epoch-count field: it sits right after the two header
        // sections. Overwrite it with u32::MAX; load must reject on the
        // plausibility floor, not iterate four billion times.
        let mut pos = 8; // magic + version
        for _ in 0..2 {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4 + len + 4;
        }
        buf[pos..pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        match Recording::load(&buf[..]) {
            Err(ReplayError::Corrupt { detail }) => {
                assert!(detail.contains("epoch count"), "detail: {detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
