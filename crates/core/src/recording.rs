//! Recordings: the persistent artifact a DoublePlay run produces.
//!
//! A recording is *complete*: given the same [`crate::GuestSpec`] (verified
//! by program hash), any consumer can re-create the recorded execution —
//! sequentially from the initial state, or epoch-by-epoch in parallel when
//! per-epoch checkpoints were kept.

use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

use crate::checkpoint::CheckpointImage;
use crate::config::DoublePlayConfig;
use crate::logs::{codec, ScheduleLog, SyscallLog};
use dp_os::kernel::ExternalChunk;

/// Identity and configuration of a recording.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecordingMeta {
    /// Name of the recorded guest.
    pub guest_name: String,
    /// Content hash of the recorded program.
    pub program_hash: u64,
    /// Digest of the boot state.
    pub initial_machine_hash: u64,
    /// The recorder configuration used.
    pub config: DoublePlayConfig,
}

/// One epoch of the recorded execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch number (0-based).
    pub index: u32,
    /// Time-slice order of the epoch-parallel execution.
    pub schedule: ScheduleLog,
    /// Logged-class syscall results consumed within the epoch.
    pub syscalls: SyscallLog,
    /// Digest of the machine state at the epoch's end.
    pub end_machine_hash: u64,
    /// External output released when this epoch committed.
    pub external: Vec<ExternalChunk>,
    /// Start-of-epoch checkpoint (present when the recorder kept
    /// checkpoints; enables parallel replay and replay-to-point).
    pub start: Option<CheckpointImage>,
    /// Thread-parallel wall cycles of the epoch (diagnostics).
    pub tp_cycles: u64,
}

/// A complete recording.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recording {
    /// Identity and configuration.
    pub meta: RecordingMeta,
    /// The boot state.
    pub initial: CheckpointImage,
    /// Epochs in order.
    pub epochs: Vec<EpochRecord>,
}

impl Recording {
    /// Encoded size of all schedule logs (compact wire format).
    pub fn schedule_bytes(&self) -> u64 {
        self.epochs
            .iter()
            .map(|e| codec::encode_schedule(&e.schedule).len() as u64)
            .sum()
    }

    /// Encoded size of all syscall logs.
    pub fn syscall_bytes(&self) -> u64 {
        self.epochs
            .iter()
            .map(|e| codec::encode_syscalls(&e.syscalls).len() as u64)
            .sum()
    }

    /// Total encoded log size (the paper's log-size metric; checkpoints are
    /// accounted separately, as in the paper).
    pub fn log_bytes(&self) -> u64 {
        self.schedule_bytes() + self.syscall_bytes()
    }

    /// All external output in commit order, flattened to bytes per
    /// destination-agnostic stream (convenient for asserting console
    /// output in tests and examples).
    pub fn console_output(&self) -> Vec<u8> {
        self.epochs
            .iter()
            .flat_map(|e| e.external.iter())
            .filter(|c| matches!(c.dest, dp_os::kernel::ExternalDest::Console))
            .flat_map(|c| c.bytes.iter().copied())
            .collect()
    }

    /// All external output chunks in commit order.
    pub fn external(&self) -> impl Iterator<Item = &ExternalChunk> {
        self.epochs.iter().flat_map(|e| e.external.iter())
    }

    /// Total schedule events across epochs.
    pub fn schedule_events(&self) -> u64 {
        self.epochs.iter().map(|e| e.schedule.len() as u64).sum()
    }

    /// Total logged syscalls across epochs.
    pub fn logged_syscalls(&self) -> u64 {
        self.epochs.iter().map(|e| e.syscalls.len() as u64).sum()
    }

    /// True when every epoch carries a start checkpoint.
    pub fn has_checkpoints(&self) -> bool {
        self.epochs.iter().all(|e| e.start.is_some())
    }

    /// Serializes the recording to a writer (bincode).
    ///
    /// # Errors
    ///
    /// I/O or encoding failures.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), bincode::Error> {
        bincode::serialize_into(writer, self)
    }

    /// Deserializes a recording from a reader.
    ///
    /// # Errors
    ///
    /// I/O or decoding failures.
    pub fn load<R: Read>(reader: R) -> Result<Self, bincode::Error> {
        bincode::deserialize_from(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_os::kernel::ExternalDest;
    use dp_vm::Tid;

    fn tiny_recording() -> Recording {
        let mut schedule = ScheduleLog::new();
        schedule.push_slice(Tid(0), 100);
        Recording {
            meta: RecordingMeta {
                guest_name: "t".into(),
                program_hash: 1,
                initial_machine_hash: 2,
                config: DoublePlayConfig::new(2),
            },
            initial: CheckpointImage {
                machine: dp_vm::Machine::new(
                    std::sync::Arc::new({
                        let mut pb = dp_vm::builder::ProgramBuilder::new();
                        let mut f = pb.function("main");
                        f.ret();
                        f.finish();
                        pb.finish("main")
                    }),
                    &[],
                )
                .image(),
                kernel: dp_os::kernel::Kernel::new(Default::default()),
                machine_hash: 2,
            },
            epochs: vec![EpochRecord {
                index: 0,
                schedule,
                syscalls: SyscallLog::new(),
                end_machine_hash: 3,
                external: vec![ExternalChunk {
                    dest: ExternalDest::Console,
                    bytes: b"hi".to_vec(),
                }],
                start: None,
                tp_cycles: 500,
            }],
        }
    }

    #[test]
    fn size_accounting() {
        let r = tiny_recording();
        assert!(r.schedule_bytes() > 0);
        assert!(r.syscall_bytes() > 0); // count prefix
        assert_eq!(r.log_bytes(), r.schedule_bytes() + r.syscall_bytes());
        assert_eq!(r.schedule_events(), 1);
        assert_eq!(r.logged_syscalls(), 0);
        assert!(!r.has_checkpoints());
    }

    #[test]
    fn console_output_concatenates() {
        let r = tiny_recording();
        assert_eq!(r.console_output(), b"hi");
        assert_eq!(r.external().count(), 1);
    }

    #[test]
    fn save_load_roundtrip() {
        let r = tiny_recording();
        let mut buf = Vec::new();
        r.save(&mut buf).unwrap();
        let back = Recording::load(&buf[..]).unwrap();
        assert_eq!(back.meta.guest_name, "t");
        assert_eq!(back.epochs.len(), 1);
        assert_eq!(back.epochs[0].end_machine_hash, 3);
        assert_eq!(back.console_output(), b"hi");
    }
}
