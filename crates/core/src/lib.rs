//! # dp-core — DoublePlay: parallelizing sequential logging and replay
//!
//! A from-scratch reproduction of the DoublePlay system (Veeraraghavan et
//! al., ASPLOS 2011): deterministic record/replay for multithreaded
//! programs on multiprocessors via **uniparallelism**.
//!
//! ## The idea
//!
//! Deterministic multiprocessor replay is expensive because racing
//! shared-memory accesses must be ordered. DoublePlay instead runs the
//! program twice, concurrently:
//!
//! * a **thread-parallel execution** across all CPUs, which only generates
//!   epoch checkpoints and a syscall log (never the execution of record);
//! * an **epoch-parallel execution**, where each epoch (time interval) runs
//!   *all* threads time-sliced on one CPU, different epochs on different
//!   CPUs, each from its checkpoint.
//!
//! Within an epoch threads never race — so recording needs only a schedule
//! log (thread time-slice order) plus logged syscall results. If a data
//! race makes the epoch-parallel run disagree with the thread-parallel
//! run's next checkpoint, the divergence is detected by state digest
//! comparison and forward recovery adopts the epoch-parallel state.
//!
//! ## Quick start
//!
//! ```
//! use dp_core::{record, replay_sequential, DoublePlayConfig, GuestSpec};
//! use dp_os::{abi, kernel::WorldConfig};
//! use dp_vm::builder::ProgramBuilder;
//! use dp_vm::Reg;
//! use std::sync::Arc;
//!
//! // A trivial guest: exit(7).
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main");
//! f.consti(Reg(0), 7);
//! f.syscall(abi::SYS_EXIT);
//! f.finish();
//! let spec = GuestSpec::new("demo", Arc::new(pb.finish("main")), WorldConfig::default());
//!
//! let bundle = record(&spec, &DoublePlayConfig::new(2))?;
//! let report = replay_sequential(&bundle.recording, &spec.program)?;
//! assert_eq!(report.exit_code, Some(7));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Map of the crate
//!
//! | Paper concept | Here |
//! |---|---|
//! | epochs & checkpoints | [`checkpoint`] |
//! | schedule + syscall logs | [`logs`] |
//! | thread-parallel execution | [`record::thread_parallel`] |
//! | epoch-parallel execution & divergence | [`record::epoch_parallel`] |
//! | uniparallel coordination, forward recovery | [`record::coordinator`] |
//! | multithreaded recording on real spare cores | [`record::pipelined`] |
//! | offline replay (sequential / parallel / to-point) | [`replay`] |
//! | the recording artifact | [`recording`] |
//! | crash-consistent streaming journal & salvage | [`journal`] |
//! | sharded parallel journaling & cross-shard merge | [`journal_shards`] |

#![warn(missing_docs)]

pub mod checkpoint;
mod config;
mod error;
pub mod faults;
pub mod journal;
pub mod journal_shards;
pub mod logs;
pub mod observe;
pub mod record;
pub mod recording;
pub mod replay;
mod stats;
mod world;

pub use checkpoint::{Checkpoint, CheckpointImage, EpochTargets, ThreadTarget};
pub use config::{validate_worker_counts, ConfigError, DoublePlayConfig, MAX_SPARE_WORKERS};
pub use error::{RecordError, ReplayError, ResumeError, SaveError};
pub use faults::FaultPlan;
pub use journal::{JournalReader, JournalWriter, NullSink, RecordSink, Salvaged};
pub use journal_shards::{ShardSalvaged, ShardedJournalWriter, DEFAULT_SHARD_BATCH, SHARD_MAGIC};
pub use observe::{replay_observed, ReplayEvent, ReplayObserver};
pub use record::coordinator::{measure_native, record, record_to, RecordingBundle};
pub use record::epoch_parallel::Divergence;
pub use record::resume::resume_from;
pub use recording::{EncodedLogs, EpochRecord, Recording, RecordingMeta};
pub use replay::{
    replay_epoch, replay_epoch_observed, replay_parallel, replay_sequential, replay_to_point,
    ReplayReport,
};
pub use stats::{RecorderStats, WallClockStats, DEPTH_BUCKETS, MAX_TRACKED_WORKERS};
pub use world::GuestSpec;
