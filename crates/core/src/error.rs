//! Errors surfaced by recording and replay.

use dp_vm::{Fault, Tid};
use std::fmt;

/// Errors raised while recording an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// A guest thread faulted (the guest program is buggy; faults are
    /// deterministic, so this is not a recorder failure).
    Guest(Fault),
    /// The guest deadlocked: no runnable threads and no future events.
    Deadlock {
        /// Live (blocked) threads at the deadlock.
        blocked: usize,
    },
    /// The per-run instruction budget was exhausted.
    BudgetExhausted,
    /// The recorder hit its bound on consecutive divergences for one epoch,
    /// which indicates a recorder bug rather than ordinary races.
    DivergenceLoop {
        /// Epoch index that would not converge.
        epoch: u32,
    },
    /// The durable sink the recording journal streams to failed (torn
    /// write, full disk, failed flush). Epochs committed to the journal
    /// before the failure remain salvageable; the run itself is over.
    Sink {
        /// The underlying sink error, formatted.
        detail: String,
    },
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Guest(fault) => write!(f, "guest fault while recording: {fault}"),
            RecordError::Deadlock { blocked } => {
                write!(
                    f,
                    "guest deadlock while recording ({blocked} threads blocked)"
                )
            }
            RecordError::BudgetExhausted => write!(f, "recording instruction budget exhausted"),
            RecordError::DivergenceLoop { epoch } => {
                write!(
                    f,
                    "epoch {epoch} failed to converge after repeated divergence"
                )
            }
            RecordError::Sink { detail } => {
                write!(f, "recording journal sink failed: {detail}")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// Errors raised while serializing a recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaveError {
    /// The recording has more epochs than the container's u32 epoch count
    /// can represent; saving would silently truncate the tail.
    TooManyEpochs {
        /// The unencodable epoch count.
        count: usize,
    },
    /// The underlying writer failed.
    Io {
        /// The underlying I/O error, formatted.
        detail: String,
    },
}

impl fmt::Display for SaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaveError::TooManyEpochs { count } => {
                write!(f, "{count} epochs exceed the container's u32 epoch count")
            }
            SaveError::Io { detail } => write!(f, "recording write failed: {detail}"),
        }
    }
}

impl std::error::Error for SaveError {}

impl From<std::io::Error> for SaveError {
    fn from(e: std::io::Error) -> Self {
        SaveError::Io {
            detail: e.to_string(),
        }
    }
}

impl From<Fault> for RecordError {
    fn from(fault: Fault) -> Self {
        RecordError::Guest(fault)
    }
}

/// Errors raised while replaying a recording. Any of these mean the replay
/// does not reproduce the recorded execution — the failure deterministic
/// replay is designed to make impossible, so they indicate corruption or a
/// mismatched program/world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The supplied program does not match the recording's program hash.
    ProgramMismatch {
        /// Hash stored in the recording.
        expected: u64,
        /// Hash of the supplied program.
        actual: u64,
    },
    /// A schedule-log slice could not be followed (thread not runnable or
    /// wrong instruction count).
    ScheduleMismatch {
        /// Epoch where the mismatch occurred.
        epoch: u32,
        /// Thread the schedule named.
        tid: Tid,
        /// Description of the mismatch.
        detail: String,
    },
    /// A syscall trap did not match the next log entry for its thread.
    LogMismatch {
        /// Epoch where the mismatch occurred.
        epoch: u32,
        /// Thread whose syscall mismatched.
        tid: Tid,
        /// Description of the mismatch.
        detail: String,
    },
    /// The replayed epoch's final state hash differs from the recording.
    HashMismatch {
        /// Epoch whose end state differed.
        epoch: u32,
        /// Hash stored in the recording.
        expected: u64,
        /// Hash produced by the replay.
        actual: u64,
    },
    /// A guest fault occurred at a point where the recording had none.
    Guest(Fault),
    /// The recording has no stored checkpoints but a parallel replay was
    /// requested, or an epoch index was out of range.
    BadRequest {
        /// Description of the unusable request.
        detail: String,
    },
    /// The container is intact but written by an incompatible format
    /// version — a file from an older (or newer) build, not corruption.
    /// Distinguished from [`ReplayError::Corrupt`] so tooling can tell
    /// "re-record with this build" apart from "the bytes are damaged".
    UnsupportedVersion {
        /// Which container ("recording", "journal", "journal shard").
        container: &'static str,
        /// Version stored in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The recording container is corrupt: bad magic, a failed per-section
    /// CRC32, or an undecodable payload.
    Corrupt {
        /// What failed to validate.
        detail: String,
    },
    /// Reading the recording container from its source failed.
    Io {
        /// The underlying I/O error, formatted.
        detail: String,
    },
    /// A replay worker panicked and exhausted its retry budget (or died
    /// outside an epoch).
    WorkerPanicked {
        /// Epoch being replayed when the worker died, if known.
        epoch: Option<u32>,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::ProgramMismatch { expected, actual } => write!(
                f,
                "program hash {actual:#x} does not match recording ({expected:#x})"
            ),
            ReplayError::ScheduleMismatch { epoch, tid, detail } => {
                write!(f, "schedule mismatch in epoch {epoch} on {tid}: {detail}")
            }
            ReplayError::LogMismatch { epoch, tid, detail } => {
                write!(f, "syscall log mismatch in epoch {epoch} on {tid}: {detail}")
            }
            ReplayError::HashMismatch {
                epoch,
                expected,
                actual,
            } => write!(
                f,
                "state hash mismatch at end of epoch {epoch}: expected {expected:#x}, got {actual:#x}"
            ),
            ReplayError::Guest(fault) => write!(f, "unexpected guest fault in replay: {fault}"),
            ReplayError::BadRequest { detail } => write!(f, "bad replay request: {detail}"),
            ReplayError::UnsupportedVersion {
                container,
                found,
                expected,
            } => write!(
                f,
                "unsupported {container} format version {found} (this build reads version {expected})"
            ),
            ReplayError::Corrupt { detail } => write!(f, "corrupt recording: {detail}"),
            ReplayError::Io { detail } => write!(f, "recording i/o error: {detail}"),
            ReplayError::WorkerPanicked { epoch: Some(e) } => {
                write!(f, "replay worker panicked in epoch {e} (retries exhausted)")
            }
            ReplayError::WorkerPanicked { epoch: None } => {
                write!(f, "replay worker panicked outside an epoch")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<Fault> for ReplayError {
    fn from(fault: Fault) -> Self {
        ReplayError::Guest(fault)
    }
}

/// Errors raised while resuming a crashed recording run from its salvaged
/// committed prefix. Resume re-enacts the prefix through the deterministic
/// VM and hash-checks every epoch against the journal, so a journal that
/// does not belong to the offered guest/config — tampered, trimmed, or
/// simply someone else's — surfaces as a typed error here, never as a
/// silently wrong continuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// Re-enacting the salvaged prefix produced an end-of-epoch state that
    /// disagrees with the journal's identity hash for that epoch: the
    /// journal was recorded by a different execution (tampered hashes,
    /// wrong seed, wrong program build).
    PrefixDiverged {
        /// Epoch whose re-enacted state differed.
        epoch: u32,
        /// Hash the journal stores for the epoch.
        expected: u64,
        /// Hash the re-enactment produced.
        actual: u64,
    },
    /// The journal carries a clean completion marker: the run already
    /// finished and there is nothing to resume. A typed no-op, not a
    /// failure — the salvaged recording is complete and servable as-is.
    AlreadyFinalized {
        /// Epochs the finalized journal holds.
        epochs: usize,
    },
    /// The salvaged prefix cannot belong to the offered guest/config
    /// pairing: mismatched program hash, initial state, or recorder
    /// configuration, out-of-sequence epoch indices, or a journal too
    /// damaged to salvage at all.
    BadPrefix {
        /// What failed to line up.
        detail: String,
    },
    /// Reopening or truncating the journal for append failed.
    Io {
        /// The underlying I/O error, formatted.
        detail: String,
    },
    /// The recorder failed while re-enacting the prefix or continuing the
    /// run past it.
    Record(RecordError),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::PrefixDiverged {
                epoch,
                expected,
                actual,
            } => write!(
                f,
                "salvaged prefix diverged at epoch {epoch}: journal says {expected:#x}, \
                 re-enactment produced {actual:#x}"
            ),
            ResumeError::AlreadyFinalized { epochs } => {
                write!(
                    f,
                    "journal is finalized ({epochs} epochs); nothing to resume"
                )
            }
            ResumeError::BadPrefix { detail } => {
                write!(f, "salvaged prefix unusable for resume: {detail}")
            }
            ResumeError::Io { detail } => write!(f, "journal reopen failed: {detail}"),
            ResumeError::Record(e) => write!(f, "recording failed during resume: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<RecordError> for ResumeError {
    fn from(e: RecordError) -> Self {
        ResumeError::Record(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_vm::{FuncId, Pc};

    #[test]
    fn record_error_display() {
        let e = RecordError::Deadlock { blocked: 3 };
        assert!(e.to_string().contains("3 threads"));
        let f = RecordError::from(Fault::FellOffFunction {
            tid: Tid(1),
            func: FuncId(0),
        });
        assert!(f.to_string().contains("guest fault"));
    }

    #[test]
    fn resume_error_display() {
        let e = ResumeError::PrefixDiverged {
            epoch: 2,
            expected: 0x10,
            actual: 0x20,
        };
        assert!(e.to_string().contains("epoch 2"));
        assert!(ResumeError::AlreadyFinalized { epochs: 7 }
            .to_string()
            .contains("finalized"));
        let wrapped = ResumeError::from(RecordError::BudgetExhausted);
        assert!(wrapped.to_string().contains("budget"));
    }

    #[test]
    fn unsupported_version_display_names_the_container() {
        let e = ReplayError::UnsupportedVersion {
            container: "journal",
            found: 1,
            expected: 2,
        };
        let s = e.to_string();
        assert!(s.contains("journal"));
        assert!(s.contains("version 1"));
        assert!(s.contains("version 2"));
    }

    #[test]
    fn replay_error_display() {
        let e = ReplayError::HashMismatch {
            epoch: 4,
            expected: 0xabc,
            actual: 0xdef,
        };
        let s = e.to_string();
        assert!(s.contains("epoch 4"));
        assert!(s.contains("0xabc"));
        let e = ReplayError::ScheduleMismatch {
            epoch: 1,
            tid: Tid(2),
            detail: "thread exited early".into(),
        };
        assert!(e.to_string().contains("t2"));
        let _ = ReplayError::Guest(Fault::DivideByZero {
            tid: Tid(0),
            pc: Pc {
                func: FuncId(0),
                idx: 0,
            },
        })
        .to_string();
    }
}
